#!/usr/bin/env python
"""Wavelet image compression — the application the paper's introduction
motivates (EOSDIS-scale remote-sensing archives).

Decomposes a Landsat-like scene, keeps only the largest detail
coefficients, and reports reconstruction quality (PSNR) at several
compression ratios, for each of the paper's three filter banks.

Run:  python examples/image_compression.py
"""

from __future__ import annotations

import os

import numpy as np

from repro.data import landsat_like_scene

# CI smoke runs set REPRO_EXAMPLE_SCALE (e.g. 0.25) to shrink the
# workload; 1.0 reproduces the full-size output discussed in the text.
SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))
TINY = SCALE < 1.0

from repro.wavelet import (
    filter_bank_for_length,
    mallat_decompose_2d,
    mallat_reconstruct_2d,
    max_decomposition_levels,
)


def psnr(original: np.ndarray, reconstructed: np.ndarray, peak: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB."""
    mse = float(((original - reconstructed) ** 2).mean())
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(peak**2 / mse)


def main() -> None:
    side = 128 if TINY else 256
    image = landsat_like_scene((side, side))
    keep_fractions = (0.50, 0.10, 0.02)

    print(f"{'filter':>8} {'levels':>6} " + "".join(f"{f:>14.0%}" for f in keep_fractions))
    for filter_length in (2, 4, 8):
        bank = filter_bank_for_length(filter_length)
        levels = min(4, max_decomposition_levels(image.shape, bank.length))
        pyramid = mallat_decompose_2d(image, bank, levels=levels)
        cells = []
        for keep in keep_fractions:
            compressed = pyramid.compression_candidates(keep)
            reconstructed = mallat_reconstruct_2d(compressed, bank)
            cells.append(f"{psnr(image, reconstructed):10.1f} dB")
        print(f"{bank.name:>8} {levels:>6} " + "".join(f"{c:>14}" for c in cells))

    print(
        "\nLonger filters concentrate energy better: at a fixed kept "
        "fraction, daub8 should beat haar on PSNR."
    )
    bank_h = filter_bank_for_length(2)
    bank_8 = filter_bank_for_length(8)
    rec_h = mallat_reconstruct_2d(
        mallat_decompose_2d(image, bank_h, 4).compression_candidates(0.02), bank_h
    )
    rec_8 = mallat_reconstruct_2d(
        mallat_decompose_2d(image, bank_8, 4).compression_candidates(0.02), bank_8
    )
    print(f"haar @2%: {psnr(image, rec_h):.1f} dB   daub8 @2%: {psnr(image, rec_8):.1f} dB")


if __name__ == "__main__":
    main()
