#!/usr/bin/env python
"""Langmuir (plasma) oscillation with the 3-D electrostatic PIC code —
Appendix B's plasma application.

A cold electron plasma given a small sinusoidal density perturbation
oscillates at the plasma frequency, sloshing energy between the electric
field and the particles.  The example shows the energy exchange and then
runs the same problem through the worker-worker parallel code with both
global-sum implementations.

Run:  python examples/plasma_oscillation.py
"""

from __future__ import annotations

import os

import numpy as np

from repro.data import uniform_cube
from repro.machines import paragon
from repro.pic import Grid3D, PicSimulation, run_parallel_pic

# CI smoke runs set REPRO_EXAMPLE_SCALE (e.g. 0.25) to shrink the
# workload; 1.0 reproduces the full-size output discussed in the text.
SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))
TINY = SCALE < 1.0



def perturbed_plasma(n: int, amplitude: float = 0.1, seed: int = 7):
    """Uniform plasma with a sinusoidal position perturbation along x."""
    particles = uniform_cube(n, thermal_speed=0.0, seed=seed)
    x = particles.positions[:, 0]
    particles.positions[:, 0] = np.mod(
        x + amplitude / (2 * np.pi) * np.sin(2 * np.pi * x), 1.0
    )
    return particles


def main() -> None:
    grid = Grid3D(16)
    n_particles = 1024 if TINY else 8192
    seq_steps = 6 if TINY else 12
    particles = perturbed_plasma(n_particles)

    sim = PicSimulation(grid, particles.copy(), dt_max=0.02)
    print(f"cold perturbed plasma, {n_particles} particles, 16^3 grid:")
    print(f"{'step':>5} {'dt':>8} {'field E':>12} {'kinetic E':>12}")
    for stats in sim.run(seq_steps):
        print(
            f"{stats.step:>5} {stats.dt:8.4f} {stats.field_energy:12.5e} "
            f"{stats.kinetic_energy:12.5e}"
        )
    print(
        "\nfield energy falls as kinetic energy rises (and back): the "
        "electrostatic oscillation."
    )

    # --- Parallel run: the gssum-vs-prefix story of Appendix B 4.2.2.
    print("\nworker-worker PIC on the simulated Paragon (2 steps, P=16):")
    for method in ("prefix", "gssum"):
        outcome = run_parallel_pic(
            paragon(16, protocol="nx"),
            grid,
            particles.copy(),
            steps=2,
            dt_max=0.02,
            global_sum=method,
            collect=False,
        )
        budget = outcome.run.mean_budget().fractions()
        print(
            f"  {method:<7} virtual {outcome.run.elapsed_s:6.3f}s  "
            f"comm {budget['comm']:.0%}  messages {outcome.run.messages_sent}"
        )
    print("the many-to-many gssum pays for itself in message count and time.")


if __name__ == "__main__":
    main()
