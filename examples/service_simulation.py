#!/usr/bin/env python
"""Service simulation: an always-on multi-tenant wavelet service.

The paper ran one decomposition at a time on a dedicated machine; this
example asks the production question — what happens when an open-loop
stream of requests hits a space-shared Paragon continuously?  It:

1. builds the default tenant mix (interactive small-DWT traffic, batch
   analytics, and a multispectral-fusion pipeline lab),
2. measures each job template once through the runtime engine (the
   service-time oracle),
3. runs a seeded open-loop simulation at 60% of estimated capacity and
   prints the steady-state p50/p99 latencies, and
4. sweeps offered load with the closed-loop autopilot to locate the
   saturation knee.

Run:  python examples/service_simulation.py
"""

from __future__ import annotations

import os

from repro.runtime import machine_template
from repro.service import (
    EngineOracle,
    PoissonProcess,
    Service,
    ServiceConfig,
    estimate_capacity_rate,
    get_mix,
    run_load_sweep,
)

# CI smoke runs set REPRO_EXAMPLE_SCALE (e.g. 0.25) to shrink the
# workload; 1.0 reproduces the horizons discussed in the text.
SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))
TINY = SCALE < 1.0


def main() -> None:
    # --- 1. Machine + tenant mix + measured service times.
    template = machine_template("paragon", protocol="nx")
    nodes = template.total_nodes
    mix = get_mix("default")
    oracle = EngineOracle("paragon", protocol="nx")
    capacity = estimate_capacity_rate(mix, oracle, nodes)
    print(f"machine: {nodes} nodes; estimated capacity {capacity:.1f} req/s")
    for name in mix.template_names():
        print(f"  {name:<14} {oracle.service_s(mix.templates[name]) * 1e3:8.2f} ms/job")

    # --- 2. Open-loop run at 60% of capacity.
    horizon = 10.0 if TINY else 30.0
    service = Service(
        nodes,
        mix,
        PoissonProcess(0.6 * capacity, seed=42),
        oracle,
        config=ServiceConfig(horizon_s=horizon),
        seed=42,
    )
    snap = service.run().snapshot
    jobs, latency = snap["jobs"], snap["latency"]
    print(
        f"\nat 0.60x load over {horizon:.0f}s: {jobs['completed']} items in "
        f"{jobs['submissions']} submissions "
        f"({jobs['completed'] - jobs['submissions']} coalesced away)"
    )
    print(
        f"  queue wait p50/p99: {latency['queue_wait']['p50'] * 1e3:.1f}/"
        f"{latency['queue_wait']['p99'] * 1e3:.1f} ms, "
        f"turnaround p99 {latency['turnaround']['p99'] * 1e3:.1f} ms, "
        f"utilization {snap['utilization']:.0%}"
    )

    # --- 3. Closed-loop autopilot: where does this machine saturate?
    multipliers = (0.5, 1.0, 2.0) if TINY else (0.25, 0.5, 0.75, 1.0, 1.5, 2.0)
    sweep = run_load_sweep(
        nodes,
        mix,
        oracle,
        multipliers=multipliers,
        seed=42,
        horizon_s=horizon,
    )
    print(f"\nload sweep ({len(sweep['points'])} points):")
    for point in sweep["points"]:
        flag = "  <- unstable" if point["unstable"] else ""
        print(
            f"  {point['offered_load']:.2f}x  p99 "
            f"{point['p99_turnaround_s']:8.4f}s  util "
            f"{point['utilization']:.0%}  backlog {point['backlog_end']}{flag}"
        )
    knee = sweep["knee"]
    if knee["detected"]:
        print(
            f"saturation knee: {knee['offered_load']:.2f}x offered load "
            f"({knee['rate_s']:.1f} req/s) via {knee['method']}"
        )
    else:
        print("no saturation knee inside the sweep range")


if __name__ == "__main__":
    main()
