#!/usr/bin/env python
"""Interacting galaxies with Barnes-Hut — Appendix B's N-body problem.

Simulates two Plummer-model galaxies on an encounter orbit, sequentially
and on a simulated 16-processor Paragon (manager-worker, costzones), then
compares the parallel run's performance budget at two machine sizes.

Run:  python examples/galaxy_collision.py
"""

from __future__ import annotations

import os

import numpy as np

from repro.data import two_galaxies
from repro.machines import paragon
from repro.nbody import NBodySimulation, run_parallel_nbody

# CI smoke runs set REPRO_EXAMPLE_SCALE (e.g. 0.25) to shrink the
# workload; 1.0 reproduces the full-size output discussed in the text.
SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))
TINY = SCALE < 1.0



def main() -> None:
    bodies = 512 if TINY else 2048
    seq_steps = 4 if TINY else 10
    par_steps = 2 if TINY else 5
    particles = two_galaxies(bodies, separation=4.0, approach_speed=0.6, seed=42)

    # --- Sequential reference with diagnostics.
    sim = NBodySimulation(particles.copy(), dt=0.01, theta=0.6)
    initial_energy = sim.energy()
    print(f"sequential Barnes-Hut, {bodies} bodies, {seq_steps} steps:")
    for stats in sim.run(seq_steps):
        if stats.step % 5 == 0:
            print(
                f"  step {stats.step}: {stats.total_interactions:,} interactions, "
                f"tree {stats.tree_cells} cells (depth {stats.tree_depth})"
            )
    drift = abs(sim.energy() - initial_energy) / abs(initial_energy)
    print(f"  relative energy drift: {drift:.2%}")

    # --- The same problem on simulated Paragons (NX messaging, as in
    #     Appendix B), showing how the manager-worker overheads grow.
    print(f"\nmanager-worker on the simulated Paragon ({par_steps} steps):")
    for nranks in (4, 16):
        outcome = run_parallel_nbody(
            paragon(nranks, protocol="nx"), particles.copy(), steps=par_steps, dt=0.01
        )
        budget = outcome.run.mean_budget().fractions()
        print(
            f"  P={nranks:<3} virtual time {outcome.run.elapsed_s:7.2f}s   "
            f"work {budget['work']:.0%}  comm {budget['comm']:.0%}  "
            f"imbalance {budget['imbalance']:.0%}"
        )

    # --- Costzones adapt: the per-step interaction totals feed the next
    #     step's partition.
    outcome = run_parallel_nbody(
        paragon(8, protocol="nx"), particles.copy(), steps=2 if TINY else 3
    )
    print(
        "\ninteractions per step (costzones rebalance on these):",
        ", ".join(f"{i:,}" for i in outcome.interactions_per_step),
    )


if __name__ == "__main__":
    main()
