#!/usr/bin/env python
"""Characterize a custom workload with the Appendix C toolkit.

Builds an instruction trace for a small dense matrix multiply, schedules
it on the oracle model, and compares its centroid against the NAS-like
suite to find which benchmark would exercise a machine most similarly —
exactly the benchmark-suite-design use case the paper proposes.

Run:  python examples/workload_analysis.py
"""

from __future__ import annotations

import os

import numpy as np

from repro.workload import (
    INSTRUCTION_TYPES,
    Trace,
    nas_suite,
    oracle_schedule,
    similarity,
    smoothability,
)

# CI smoke runs set REPRO_EXAMPLE_SCALE (e.g. 0.25) to shrink the
# workload; 1.0 reproduces the full-size output discussed in the text.
SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))
TINY = SCALE < 1.0



def matmul_trace(n: int = 12) -> Trace:
    """Dataflow trace of a dense n x n x n matrix multiply."""
    trace = Trace("matmul")
    a = [[trace.append("memops") for _ in range(n)] for _ in range(n)]
    b = [[trace.append("memops") for _ in range(n)] for _ in range(n)]
    for i in range(n):
        for j in range(n):
            acc = None
            for k in range(n):
                addr = trace.append("intops", (a[i][k],))
                product = trace.append("fpops", (addr, b[k][j]))
                acc = trace.append("fpops", (product,) if acc is None else (product, acc))
            trace.append("memops", (acc,))
        trace.append("branchops", (acc,))
    return trace


def main() -> None:
    trace = matmul_trace(6 if TINY else 12)
    schedule = oracle_schedule(trace)
    workload = schedule.workload
    smooth = smoothability(trace)

    print(f"matmul trace: {len(trace)} instructions")
    print(f"  critical path: {schedule.critical_path} cycles")
    print(f"  average parallelism: {workload.average_parallelism:.1f}")
    print(f"  smoothability: {smooth.smoothability:.3f}")
    print("  centroid (mean parallel instruction):")
    for name, value in zip(INSTRUCTION_TYPES, workload.centroid()):
        print(f"    {name:<11}{value:8.2f}")

    print("\nsimilarity to the NAS-like suite (0 = would exercise a machine "
          "identically):")
    scores = []
    for kernel in nas_suite(0.2 if TINY else 0.5):
        other = oracle_schedule(kernel).workload
        scores.append((similarity(workload, other), kernel.name))
    for score, name in sorted(scores):
        bar = "#" * int(round((1 - score) * 40))
        print(f"  {name:<8}{score:6.3f} |{bar}")
    best = min(scores)
    print(f"\nmost similar: {best[1]} -> a suite already containing {best[1]} "
          "gains least from adding this matmul workload.")


if __name__ == "__main__":
    main()
