#!/usr/bin/env python
"""Benchmark-suite design with the workload vector-space model —
Appendix C's stated purpose ("informed decisions on the composition of
parallel benchmark suites").

Characterizes the NAS-like kernels, flags redundant pairs, selects a
4-member representative subset, and quantifies how well the subset
covers the full suite.

Run:  python examples/suite_design.py
"""

from __future__ import annotations

import os

from repro.workload import (
    coverage_radius,
    nas_suite,
    oracle_schedule,
    redundant_pairs,
    required_units,
    select_representatives,
    similarity_matrix,
)

# CI smoke runs set REPRO_EXAMPLE_SCALE (e.g. 0.25) to shrink the
# workload; 1.0 reproduces the full-size output discussed in the text.
SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))
TINY = SCALE < 1.0



def main() -> None:
    suite = nas_suite(0.2 if TINY else 0.5)
    names = [trace.name for trace in suite]
    workloads = [oracle_schedule(trace).workload for trace in suite]

    print("pairwise similarity (0 = identical machine exercise):\n")
    header = "        " + "".join(f"{n:>8}" for n in names)
    print(header)
    matrix = similarity_matrix(workloads)
    for i, name in enumerate(names):
        row = "".join(f"{matrix[i, j]:8.2f}" for j in range(i + 1))
        print(f"{name:>8}{row}")

    print("\nredundant pairs (distance < 0.45):")
    for i, j, distance in redundant_pairs(workloads, threshold=0.45):
        print(f"  {names[i]} ~ {names[j]}  ({distance:.3f})")

    chosen = select_representatives(workloads, 4)
    subset = [workloads[i] for i in chosen]
    radius = coverage_radius(subset, workloads)
    print(f"\n4-member representative suite: {[names[i] for i in chosen]}")
    print(f"coverage radius over the full suite: {radius:.3f} "
          "(max distance from any kernel to its nearest representative)")

    print("\nfunctional units a machine needs to feed each representative "
          "(centroid-derived):")
    for index in chosen:
        units = required_units(workloads[index])
        compact = ", ".join(f"{k[:-3]}={v}" for k, v in units.items())
        print(f"  {names[index]:>8}: {compact}")


if __name__ == "__main__":
    main()
