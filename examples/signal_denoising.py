#!/usr/bin/env python
"""1-D signal processing: denoising a noisy waveform by wavelet
shrinkage, with the decomposition optionally running on a simulated
parallel machine (the paper's "speech analysis" motivation).

Run:  python examples/signal_denoising.py
"""

from __future__ import annotations

import os

import numpy as np

from repro.machines import paragon
from repro.wavelet import daubechies_filter, denoise_1d, dwt_1d, idwt_1d, soft_threshold
from repro.wavelet.parallel import run_spmd_dwt_1d, run_spmd_idwt_1d

# CI smoke runs set REPRO_EXAMPLE_SCALE (e.g. 0.25) to shrink the
# workload; 1.0 reproduces the full-size output discussed in the text.
SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))
TINY = SCALE < 1.0



def test_signal(n: int = 2048, noise: float = 0.35, seed: int = 2):
    """A blocky-plus-tonal waveform under Gaussian noise."""
    rng = np.random.default_rng(seed)
    t = np.linspace(0.0, 1.0, n, endpoint=False)
    clean = (
        np.sin(2 * np.pi * 4 * t)
        + 0.6 * np.sign(np.sin(2 * np.pi * 2 * t + 0.4))
        + 0.3 * np.sin(2 * np.pi * 17 * t)
    )
    return clean, clean + rng.standard_normal(n) * noise


def snr_db(reference: np.ndarray, estimate: np.ndarray) -> float:
    noise_power = float(((estimate - reference) ** 2).mean())
    signal_power = float((reference**2).mean())
    return 10.0 * np.log10(signal_power / noise_power)


def main() -> None:
    clean, noisy = test_signal(512 if TINY else 2048)
    print(f"input SNR: {snr_db(clean, noisy):5.1f} dB")

    for length in (2, 4, 8):
        bank = daubechies_filter(length)
        denoised = denoise_1d(noisy, bank=bank)
        print(f"  {bank.name:>6} shrinkage -> {snr_db(clean, denoised):5.1f} dB")

    # The same shrinkage with the transform distributed over a simulated
    # 8-processor Paragon: numerically identical, plus a machine budget.
    bank = daubechies_filter(8)
    levels = 4
    forward = run_spmd_dwt_1d(paragon(8, protocol="nx"), noisy, bank, levels)
    reference_approx, reference_details = dwt_1d(noisy, bank, levels)
    assert np.allclose(forward.approximation, reference_approx)

    sigma = np.median(np.abs(forward.details[0])) / 0.6745
    threshold = sigma * np.sqrt(2 * np.log(noisy.size))
    shrunk = [soft_threshold(d, threshold) for d in forward.details]
    _, denoised_parallel = run_spmd_idwt_1d(
        paragon(8, protocol="nx"), forward.approximation, shrunk, bank
    )
    sequential = idwt_1d(reference_approx, shrunk, bank)
    assert np.allclose(denoised_parallel, sequential, atol=1e-10)

    budget = forward.run.mean_budget().fractions()
    print(
        f"\nparallel path (P=8): {snr_db(clean, denoised_parallel):5.1f} dB, "
        f"identical to sequential; decomposition budget: "
        f"work {budget['work']:.0%}, comm {budget['comm']:.0%}"
    )


if __name__ == "__main__":
    main()
