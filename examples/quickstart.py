#!/usr/bin/env python
"""Quickstart: decompose an image with the Mallat transform, reconstruct
it perfectly, and run the same decomposition on two simulated 1995-era
parallel machines.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import os

import numpy as np

from repro.data import landsat_like_scene
from repro.machines import paragon
from repro.machines.simd import MasParMachine, maspar_mp2
from repro.wavelet import (
    daubechies_filter,
    mallat_decompose_2d,
    mallat_reconstruct_2d,
)
from repro.wavelet.parallel import run_spmd_wavelet, simd_mallat_decompose

# CI smoke runs set REPRO_EXAMPLE_SCALE (e.g. 0.25) to shrink the
# workload; 1.0 reproduces the full-size output discussed in the text.
SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))
TINY = SCALE < 1.0



def main() -> None:
    # --- 1. A synthetic Landsat-like scene (the paper used a 512x512
    #        Landsat-TM image of the Pacific Northwest).
    side = 128 if TINY else 256
    image = landsat_like_scene((side, side))
    bank = daubechies_filter(8)

    # --- 2. Sequential multi-resolution decomposition (2 levels).
    pyramid = mallat_decompose_2d(image, bank, levels=2)
    print(f"decomposed {image.shape} -> approximation {pyramid.approximation.shape}, "
          f"{pyramid.levels} detail levels")
    print(f"energy conserved: input {np.sum(image**2):.6e} == "
          f"pyramid {pyramid.total_energy():.6e}")

    # --- 3. Perfect reconstruction.
    reconstructed = mallat_reconstruct_2d(pyramid, bank)
    print(f"max reconstruction error: {np.abs(reconstructed - image).max():.2e}")

    # --- 4. The same transform on a simulated 16-processor Intel Paragon
    #        (striped domains, snake placement, guard-zone exchange).
    procs = 8 if TINY else 16
    outcome = run_spmd_wavelet(paragon(procs), image, bank, levels=2)
    assert np.allclose(outcome.pyramid.approximation, pyramid.approximation)
    budget = outcome.run.mean_budget().fractions()
    print(f"\nParagon/{procs}: {outcome.run.elapsed_s * 1e3:.1f} virtual ms "
          f"(work {budget['work']:.0%}, comm {budget['comm']:.0%})")

    # --- 5. And on a simulated 16K-PE MasPar MP-2 (systolic algorithm).
    machine = MasParMachine(maspar_mp2(), "hierarchical")
    simd = simd_mallat_decompose(machine, image, bank, levels=2)
    assert np.allclose(simd.pyramid.approximation, pyramid.approximation)
    print(f"MasPar MP-2: {simd.elapsed_s * 1e3:.2f} virtual ms "
          f"({1 / simd.elapsed_s:.0f} images/second)")


if __name__ == "__main__":
    main()
