#!/usr/bin/env python
"""The snake-placement experiment of Appendix A Section 5.1, interactive.

Shows why the 'straightforward' rank-to-node assignment stops scaling
past four processors on the Paragon's 4-wide mesh: logical neighbors at
stripe-row boundaries route across an entire mesh row under X-then-Y
dimension-ordered routing and collide with the in-row guard traffic.

Run:  python examples/placement_study.py
"""

from __future__ import annotations

import os

from repro.data import landsat_like_scene
from repro.machines import paragon, row_major_placement, snake_placement
from repro.machines.network import Mesh2D
from repro.wavelet import daubechies_filter
from repro.wavelet.parallel import run_spmd_wavelet

# CI smoke runs set REPRO_EXAMPLE_SCALE (e.g. 0.25) to shrink the
# workload; 1.0 reproduces the full-size output discussed in the text.
SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))
TINY = SCALE < 1.0



def show_route_conflict() -> None:
    """Print the physical routes that collide under naive placement."""
    mesh = Mesh2D(4, 16)
    naive = row_major_placement(8)
    snake = snake_placement(8)

    print("guard messages go from rank r+1 to rank r; consider ranks 3<-4:")
    for name, placement in [("naive", naive), ("snake", snake)]:
        src, dst = placement[4], placement[3]
        route = mesh.route(src, dst)
        print(f"  {name:>5}: node {mesh.coord(src)} -> {mesh.coord(dst)}, "
              f"{len(route)} channel(s): {route}")
    in_row = set(mesh.route(naive[5], naive[4]))
    crossing = set(mesh.route(naive[4], naive[3]))
    print(f"  naive row-crossing path shares {len(in_row & crossing)} channel(s) "
          "with the 4<-5 in-row message -> serialization")


def measure() -> None:
    side = 256 if TINY else 512
    image = landsat_like_scene((side, side))
    bank = daubechies_filter(2)
    print("\ndecomposition-region time, filter 2, 4 levels (virtual seconds):")
    print(f"{'P':>4} {'snake':>10} {'naive':>10} {'naive/snake':>12}")
    # 256 rows cannot stripe over 32 ranks at 4 levels, so the tiny
    # run stops at 16 processors.
    for nranks in (2, 4, 8, 16) if TINY else (2, 4, 8, 16, 32):
        times = {}
        for placement in ("snake", "naive"):
            outcome = run_spmd_wavelet(
                paragon(nranks, placement),
                image,
                bank,
                levels=4,
                distribute=False,
                collect=False,
            )
            times[placement] = outcome.run.elapsed_s
        print(
            f"{nranks:>4} {times['snake']:>10.4f} {times['naive']:>10.4f} "
            f"{times['naive'] / times['snake']:>12.3f}"
        )
    print("\nup to 4 processors the placements are identical (one mesh row);")
    print("beyond 4, the row-crossing conflicts tax the naive placement.")


def main() -> None:
    show_route_conflict()
    measure()


if __name__ == "__main__":
    main()
