#!/usr/bin/env python
"""Wavelet-based image registration — the [Lem94] application from the
paper's introduction (registering remotely sensed scenes).

Registers misaligned Landsat-like scenes via coarse-to-fine pyramid
search, showing the estimate refine level by level, and compares the
pyramid search's cost against brute-force full-resolution correlation.

Run:  python examples/image_registration.py
"""

from __future__ import annotations

import os

import time

import numpy as np

from repro.data import landsat_like_scene

# CI smoke runs set REPRO_EXAMPLE_SCALE (e.g. 0.25) to shrink the
# workload; 1.0 reproduces the full-size output discussed in the text.
SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))
TINY = SCALE < 1.0

from repro.wavelet import register_translation
from repro.wavelet.registration import _correlation_score


def brute_force(reference: np.ndarray, target: np.ndarray, radius: int = 64):
    """Exhaustive correlation over a +-radius window (the baseline the
    pyramid search avoids)."""
    best, best_score = (0, 0), -np.inf
    for dy in range(-radius, radius + 1):
        for dx in range(-radius, radius + 1):
            score = _correlation_score(reference, target, (dy, dx))
            if score > best_score:
                best_score, best = score, (dy, dx)
    return best, best_score


def main() -> None:
    side = 128 if TINY else 256
    scene = landsat_like_scene((side, side))
    rng = np.random.default_rng(9)

    print(f"registering noisy, shifted copies of a {side}x{side} scene:\n")
    print(f"{'true shift':>14} {'estimated':>12} {'score':>7}   refinement path")
    shifts = [(5, -3), (13, 9)] if TINY else [(5, -3), (31, 17), (-52, 44)]
    for true_shift in shifts:
        target = np.roll(scene, (-true_shift[0], -true_shift[1]), axis=(0, 1))
        target = target + rng.standard_normal(target.shape) * 0.03 * scene.std()
        result = register_translation(scene, target)
        print(
            f"{str(true_shift):>14} {str(result.shift):>12} {result.score:7.3f}   "
            + " -> ".join(str(p) for p in result.path)
        )

    # Cost comparison on a smaller window problem.
    small = landsat_like_scene((64, 64) if TINY else (128, 128), seed=4)
    target = np.roll(small, (-20, 13), axis=(0, 1))
    start = time.perf_counter()
    pyramid_result = register_translation(small, target)
    pyramid_time = time.perf_counter() - start
    start = time.perf_counter()
    brute_result, _ = brute_force(small, target, radius=12 if TINY else 24)
    brute_time = time.perf_counter() - start
    print(
        f"\npyramid search: {pyramid_result.shift} in {pyramid_time * 1e3:.1f} ms;  "
        f"brute force (+-24 window): {brute_result} in {brute_time * 1e3:.0f} ms"
    )
    print("the pyramid's coarse phase correlation covers the whole image at a")
    print("fraction of the pixels — the speed the paper's EOSDIS motivation demands.")


if __name__ == "__main__":
    main()
