"""Shim for legacy editable installs (environments without the wheel pkg)."""

from setuptools import setup

setup()
