"""End-to-end integration: a miniature version of the whole JNNIE
campaign — every subsystem exercised through its public API in one pass,
cross-checking the parallel paths against sequential references.
"""

import numpy as np
import pytest

from repro.data import landsat_like_scene, plummer_sphere, two_galaxies, uniform_cube
from repro.machines import Engine, paragon, t3d
from repro.machines.simd import MasParMachine, maspar_mp2
from repro.nbody import (
    NBodySimulation,
    run_parallel_nbody,
    tree_statistics,
    build_tree,
)
from repro.pic import Grid3D, PicSimulation, run_parallel_pic
from repro.wavelet import (
    daubechies_filter,
    mallat_decompose_2d,
    mallat_reconstruct_2d,
    register_translation,
    texture_signature,
)
from repro.wavelet.parallel import (
    run_spmd_reconstruct,
    run_spmd_wavelet,
    simd_mallat_decompose,
)
from repro.workload import (
    nas_suite,
    oracle_schedule,
    select_representatives,
    similarity_matrix,
    smoothability,
)


class TestAppendixACampaign:
    def test_wavelet_study_end_to_end(self):
        """Scene -> parallel decomposition on both machines -> parallel
        reconstruction -> registration of a shifted copy."""
        scene = landsat_like_scene((128, 128))
        bank = daubechies_filter(4)

        # Coarse-grain MIMD path.
        forward = run_spmd_wavelet(paragon(8), scene, bank, 2)
        reference = mallat_decompose_2d(scene, bank, 2)
        np.testing.assert_allclose(
            forward.pyramid.approximation, reference.approximation, atol=1e-9
        )
        backward = run_spmd_reconstruct(paragon(8), forward.pyramid, bank)
        np.testing.assert_allclose(backward.image, scene, atol=1e-8)

        # Fine-grain SIMD path.
        simd = simd_mallat_decompose(
            MasParMachine(maspar_mp2(pe_side=32)), scene, bank, 2
        )
        np.testing.assert_allclose(
            simd.pyramid.details[0].hh, reference.details[0].hh, atol=1e-9
        )
        # The SIMD array is far faster than the message-passing machine.
        assert simd.elapsed_s < forward.run.elapsed_s

        # Application layer: registration over the pyramid.
        shifted = np.roll(scene, (-10, 24), axis=(0, 1))
        result = register_translation(scene, shifted)
        assert result.shift == (10, -24)

        # Application layer: texture signatures are stable.
        assert texture_signature(scene).shape == (10,)


class TestAppendixBCampaign:
    def test_nbody_study_end_to_end(self):
        galaxies = two_galaxies(512, seed=11)
        # Sequential reference trajectory quality.
        sequential = NBodySimulation(galaxies.copy(), dt=0.005, theta=0.5)
        initial_energy = sequential.energy()
        sequential.run(4)
        assert abs(sequential.energy() - initial_energy) < 0.1 * abs(initial_energy)

        # Parallel on both machines; Paragon slower than T3D, both correct.
        paragon_run = run_parallel_nbody(
            paragon(8, protocol="nx"), galaxies.copy(), steps=2, dt=0.005
        )
        t3d_run = run_parallel_nbody(t3d(8), galaxies.copy(), steps=2, dt=0.005)
        np.testing.assert_allclose(
            paragon_run.particles.positions, t3d_run.particles.positions, atol=1e-9
        )
        assert t3d_run.run.elapsed_s < paragon_run.run.elapsed_s

        # Tree shape is sane.
        tree = build_tree(galaxies.positions, galaxies.masses)
        stats = tree_statistics(tree)
        assert stats.leaves >= galaxies.n // 2

    def test_pic_study_end_to_end(self):
        grid = Grid3D(8)
        plasma = uniform_cube(512, thermal_speed=0.05, seed=12)
        sequential = PicSimulation(grid, plasma.copy(), dt_max=0.02)
        sequential.run(2)

        for machine in (paragon(4, protocol="nx"), t3d(4)):
            parallel = run_parallel_pic(machine, grid, plasma.copy(), steps=2, dt_max=0.02)
            np.testing.assert_allclose(
                parallel.particles.positions, sequential.particles.positions, atol=1e-9
            )

    def test_parallel_nbody_in_three_dimensions(self):
        """The octree path through the full parallel stack."""
        cluster = plummer_sphere(256, dim=3, seed=13)
        outcome = run_parallel_nbody(
            paragon(4, protocol="nx"), cluster.copy(), steps=2, dt=0.005
        )
        # Sequential reference with the identical scheme.
        from repro.nbody import tree_forces

        pos = cluster.positions.copy()
        vel = cluster.velocities.copy()
        for _ in range(2):
            tree = build_tree(pos, cluster.masses)
            acc = tree_forces(tree, pos, cluster.masses, theta=0.6).accelerations
            vel = vel + acc * 0.005
            pos = pos + vel * 0.005
        np.testing.assert_allclose(outcome.particles.positions, pos, atol=1e-9)
        assert tree.children.shape[1] == 8  # genuinely an octree


class TestAppendixCCampaign:
    def test_workload_study_end_to_end(self):
        suite = nas_suite(0.3)
        workloads = [oracle_schedule(trace).workload for trace in suite]
        matrix = similarity_matrix(workloads)
        # Symmetric with a zero diagonal, values in [0, 1].
        np.testing.assert_allclose(matrix, matrix.T)
        assert matrix.max() <= 1.0 + 1e-12

        # Smoothability justifies centroids for every member.
        values = [smoothability(trace).smoothability for trace in suite]
        assert min(values) > 0.5

        # Suite design: four representatives cover the eight kernels.
        chosen = select_representatives(workloads, 4)
        assert len(chosen) == 4


class TestCrossCutting:
    def test_budgets_account_for_elapsed_time(self):
        """For every subsystem's parallel run, per-rank budget components
        sum exactly to the elapsed time."""
        scene = landsat_like_scene((64, 64))
        runs = []
        runs.append(
            run_spmd_wavelet(paragon(4), scene, daubechies_filter(4), 1).run
        )
        runs.append(
            run_parallel_nbody(
                paragon(4, protocol="nx"),
                plummer_sphere(128, dim=2, seed=14),
                steps=1,
            ).run
        )
        runs.append(
            run_parallel_pic(
                paragon(4, protocol="nx"),
                Grid3D(8),
                uniform_cube(256, seed=15),
                steps=1,
            ).run
        )
        for run in runs:
            for budget in run.budgets:
                assert budget.total_s == pytest.approx(run.elapsed_s, rel=1e-9)
