"""Service event-loop tests: pinned metrics, batching, admission,
pipelines, policies, and snapshot validation."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime.policy import FifoBackfill
from repro.service import (
    SNAPSHOT_SCHEMA,
    AdmissionController,
    FixedOracle,
    JobTemplate,
    Mix,
    PipelineTemplate,
    PoissonProcess,
    Service,
    ServiceConfig,
    TenantProfile,
    percentile,
    validate_snapshot,
)


def tiny_mix() -> Mix:
    templates = {
        "small": JobTemplate(name="small", nranks=2, batchable=True),
        "big": JobTemplate(name="big", nranks=4),
    }
    pipelines = {
        "pipe": PipelineTemplate(name="pipe", stages=(("small", "small"), ("big",))),
    }
    tenants = (
        TenantProfile(name="alpha", weight=2.0, priority=1, work=(("small", 1.0),)),
        TenantProfile(
            name="beta", weight=1.0, priority=0, work=(("big", 0.6), ("pipe", 0.4))
        ),
    )
    return Mix(name="tiny", tenants=tenants, templates=templates, pipelines=pipelines)


ORACLE = FixedOracle({"small": 0.2, "big": 0.5})
CONFIG = ServiceConfig(horizon_s=30.0, batch_window_s=0.25, max_batch=4)


def run_tiny(**overrides):
    kwargs = dict(config=CONFIG, seed=11)
    kwargs.update(overrides)
    return Service(
        8, tiny_mix(), PoissonProcess(3.0, seed=11), ORACLE, **kwargs
    ).run()


@pytest.fixture(scope="module")
def report():
    return run_tiny()


class TestPinnedMetrics:
    """Exact values for (mix=tiny, poisson 3/s, seed 11, horizon 30)."""

    def test_counts(self, report):
        jobs = report.snapshot["jobs"]
        assert jobs["offered"] == 116
        assert jobs["completed"] == 116
        assert jobs["shed"] == 0
        assert jobs["pipelines_completed"] == 15
        # Batching coalesced items: fewer submissions than items.
        assert jobs["submissions"] == 97

    def test_latency_percentiles(self, report):
        latency = report.snapshot["latency"]
        assert latency["queue_wait"]["p50"] == pytest.approx(0.1326905016, abs=1e-9)
        assert latency["queue_wait"]["p99"] == pytest.approx(0.8940031330, abs=1e-9)
        assert latency["turnaround"]["p50"] == pytest.approx(0.5, abs=1e-9)
        assert latency["turnaround"]["p99"] == pytest.approx(1.3940031330, abs=1e-9)

    def test_backlog_and_utilization(self, report):
        backlog = report.snapshot["backlog"]
        assert backlog["peak"] == 3
        assert backlog["end"] == 0
        assert backlog["mean"] == pytest.approx(0.5333333333, abs=1e-9)
        assert report.snapshot["utilization"] == pytest.approx(0.3675082738, abs=1e-9)
        assert report.makespan_s == pytest.approx(30.4755043586, abs=1e-9)

    def test_per_tenant_split(self, report):
        per = {e["tenant"]: e["completed"] for e in report.snapshot["per_tenant"]}
        assert per == {"alpha": 59, "beta": 57}

    def test_snapshot_is_schema_valid(self, report):
        assert report.snapshot["schema"] == SNAPSHOT_SCHEMA
        validate_snapshot(report.snapshot)  # no raise


class TestDeterminism:
    def test_replay_identical_snapshot(self, report):
        assert run_tiny().snapshot == report.snapshot

    def test_seed_changes_outcome(self, report):
        other = run_tiny(seed=12)
        assert other.snapshot != report.snapshot

    def test_service_runs_exactly_once(self):
        service = Service(
            8, tiny_mix(), PoissonProcess(3.0, seed=11), ORACLE,
            config=CONFIG, seed=11,
        )
        service.run()
        with pytest.raises(ConfigurationError):
            service.run()


class TestBatching:
    def test_batches_share_one_submission(self, report):
        jobs = report.snapshot["jobs"]
        assert jobs["submissions"] < jobs["offered"]
        batched = [
            item for item in report.accounting.items if item.batch_size > 1
        ]
        assert batched, "expected at least one coalesced batch"
        assert all(item.template == "small" for item in batched)
        assert max(item.batch_size for item in batched) <= CONFIG.max_batch

    def test_batch_window_bounds_added_wait(self, report):
        for item in report.accounting.items:
            if item.batch_size > 1:
                # An item never waits in an open batch past the window
                # unless the queue itself is backed up; with this light
                # load the wait stays under window + service + epsilon.
                assert item.queue_wait_s < CONFIG.batch_window_s + 1.5

    def test_disabling_batching_means_one_item_per_submission(self):
        report = run_tiny(
            config=ServiceConfig(horizon_s=30.0, batch_window_s=0.25, max_batch=1)
        )
        jobs = report.snapshot["jobs"]
        # A pipeline is 3 items and 3 submissions, a single request 1 and
        # 1 — with coalescing off the two counts must agree exactly.
        assert jobs["submissions"] == jobs["offered"]
        assert all(item.batch_size == 1 for item in report.accounting.items)


class TestAdmission:
    def test_queue_limit_sheds_typed_rejections(self):
        report = run_tiny(
            admission=AdmissionController(queue_limit=2),
        )
        jobs = report.snapshot["jobs"]
        assert jobs["shed"] > 0
        assert jobs["admitted"] + jobs["shed"] == jobs["offered"]
        assert set(jobs["shed_reasons"]) == {"queue-full"}
        validate_snapshot(report.snapshot)

    def test_rate_limit_sheds_only_the_capped_tenant(self):
        report = run_tiny(
            admission=AdmissionController(tenant_rate_limits={"alpha": 0.5}),
        )
        sheds = report.accounting.sheds
        assert sheds and all(s.tenant == "alpha" for s in sheds)
        assert all(s.reason == "rate-limit" for s in sheds)

    def test_open_door_sheds_nothing(self, report):
        assert report.snapshot["jobs"]["shed"] == 0


class TestPipelines:
    def test_stage_ordering_is_respected(self, report):
        # Every completed pipeline's makespan covers at least one small
        # stage followed by the big stage (stages gate sequentially).
        makespans = [
            finish - arrival
            for arrival, finish, _ in report.accounting.pipelines
        ]
        assert len(makespans) == 15
        assert min(makespans) >= 0.2 + 0.5 - 1e-9

    def test_pipeline_makespan_reported(self, report):
        dist = report.snapshot["latency"]["pipeline_makespan"]
        assert dist["count"] == 15
        assert dist["p50"] >= 0.7


class TestPolicies:
    def test_fifo_and_fair_complete_the_same_work(self, report):
        fifo = run_tiny(policy=FifoBackfill())
        assert (
            fifo.snapshot["jobs"]["completed"]
            == report.snapshot["jobs"]["completed"]
        )
        # Ordering differs under load, but both drain fully.
        assert fifo.backlog_end == 0 and report.backlog_end == 0

    def test_fair_share_protects_the_high_priority_tenant(self):
        # Saturate the machine: alpha (priority 1) must keep its p99
        # below beta's despite the shared queue.
        heavy = Service(
            8,
            tiny_mix(),
            PoissonProcess(12.0, seed=3),
            ORACLE,
            config=ServiceConfig(horizon_s=20.0, batch_window_s=0.25, max_batch=4),
            seed=3,
        ).run()
        per = {e["tenant"]: e for e in heavy.snapshot["per_tenant"]}
        assert (
            per["alpha"]["turnaround"]["p99"] < per["beta"]["turnaround"]["p99"]
        )


class TestValidation:
    def test_template_too_big_for_machine(self):
        mix = Mix(
            name="huge",
            tenants=(TenantProfile(name="t", work=(("big", 1.0),)),),
            templates={"big": JobTemplate(name="big", nranks=64)},
        )
        with pytest.raises(ConfigurationError):
            Service(8, mix, PoissonProcess(1.0, seed=0), ORACLE)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(horizon_s=0.0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(max_batch=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(batch_window_s=-1.0)

    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50.0) == 2.0
        assert percentile(values, 99.0) == 4.0
        assert percentile(values, 0.0) == 1.0
        with pytest.raises(ConfigurationError):
            percentile([], 50.0)

    def test_validate_snapshot_rejects_tampering(self, report):
        doc = {**report.snapshot, "schema": "bogus/v9"}
        with pytest.raises(ConfigurationError):
            validate_snapshot(doc)
        broken = {**report.snapshot, "utilization": 1.7}
        with pytest.raises(ConfigurationError):
            validate_snapshot(broken)
