"""Tests for the space-sharing buddy partition manager."""

import pytest

from repro.errors import ConfigurationError
from repro.machines.network import Mesh2D, Torus3D
from repro.machines.partition import PartitionManager


@pytest.fixture
def manager():
    return PartitionManager(Torus3D(8, 4, 8))  # 256 nodes, T3D-like


class TestAllocate:
    def test_full_machine(self, manager):
        partition = manager.allocate(256)
        assert partition.size == 256
        assert manager.free_nodes == 0

    def test_power_of_two_only(self, manager):
        with pytest.raises(ConfigurationError):
            manager.allocate(24)
        with pytest.raises(ConfigurationError):
            manager.allocate(0)

    def test_oversized_rejected(self, manager):
        with pytest.raises(ConfigurationError):
            manager.allocate(512)

    def test_partitions_disjoint(self, manager):
        seen = set()
        for size in (64, 64, 32, 32, 16, 16, 16, 16):
            nodes = set(manager.allocate(size).nodes)
            assert not (nodes & seen)
            seen |= nodes
        assert len(seen) == 256

    def test_exhaustion_raises(self, manager):
        manager.allocate(128)
        manager.allocate(128)
        with pytest.raises(ConfigurationError):
            manager.allocate(1)

    def test_nodes_contiguous(self, manager):
        partition = manager.allocate(32)
        nodes = list(partition.nodes)
        assert nodes == list(range(nodes[0], nodes[0] + 32))

    def test_non_power_machine_rounds_down(self):
        # The Paragon's 64-node mesh hosts 54 compute nodes in the paper;
        # a 60-node topology manages 32 usable nodes buddy-style.
        manager = PartitionManager(Mesh2D(6, 10))
        assert manager.usable_nodes == 32
        assert manager.allocate(32).size == 32


class TestRelease:
    def test_release_restores_capacity(self, manager):
        partition = manager.allocate(128)
        manager.release(partition)
        assert manager.free_nodes == 256
        assert manager.largest_free_block() == 256

    def test_buddies_coalesce(self, manager):
        a = manager.allocate(128)
        b = manager.allocate(128)
        manager.release(a)
        manager.release(b)
        assert manager.largest_free_block() == 256

    def test_fragmentation_limits_largest_block(self, manager):
        a = manager.allocate(64)
        b = manager.allocate(64)
        manager.allocate(64)
        manager.release(a)
        manager.release(b)
        # 128 coalesced from a+b, the other half still split.
        assert manager.largest_free_block() == 128

    def test_double_release_rejected(self, manager):
        partition = manager.allocate(16)
        manager.release(partition)
        with pytest.raises(ConfigurationError):
            manager.release(partition)

    def test_allocated_partition_count(self, manager):
        a = manager.allocate(8)
        manager.allocate(8)
        assert manager.allocated_partitions == 2
        manager.release(a)
        assert manager.allocated_partitions == 1


class TestIntegrationWithMachines:
    def test_partition_drives_machine_placement(self):
        """An allocated partition's nodes serve directly as a Machine
        placement — the way jobs landed on 1995 space-shared systems."""
        from repro.machines import Engine, Machine
        from repro.machines.cpu import CpuModel
        from repro.machines.network import ContentionNetwork

        topology = Torus3D(8, 4, 8)
        manager = PartitionManager(topology)
        manager.allocate(64)  # someone else's job
        mine = manager.allocate(8)
        machine = Machine(
            name="t3d-partition",
            cpu=CpuModel(1e7, 2e7, 1e7),
            network=ContentionNetwork(topology=topology),
            placement=list(mine.nodes),
        )

        def program(ctx):
            yield ctx.compute(flops=1e6)
            return ctx.rank

        result = Engine(machine).run(program)
        assert result.results == list(range(8))
