"""Cost-model consistency: the OpCounts the SPMD programs charge through
``ctx.charge`` must equal what :mod:`repro.wavelet.cost` (and the kernel
registry's cost methods) predict for the same pass sizes — for every
kernel.  A drift between the two silently skews every simulated timing.
"""

import numpy as np
import pytest

from repro.wavelet import (
    ConvKernel,
    LiftingKernel,
    daubechies_filter,
    dwt_1d,
    filter_pass_cost,
    get_kernel,
    haar_filter,
    lifting_pass_cost,
    lifting_scheme,
    mallat_decompose_2d,
    single_loop_sweep_cost,
    synthesis_pass_cost,
)
from repro.wavelet.parallel.decomposition import StripeDecomposition
from repro.wavelet.parallel.spmd import striped_wavelet_program
from repro.wavelet.parallel.spmd_1d import dwt_1d_program, idwt_1d_program
from repro.wavelet.parallel.spmd_reconstruct import striped_reconstruct_program

BANKS = [haar_filter(), daubechies_filter(4), daubechies_filter(8)]


class RecordingCtx:
    """Single-rank stand-in for the engine context: runs a rank program
    to completion, recording every ``ctx.charge`` OpCount."""

    rank = 0
    nranks = 1

    def __init__(self):
        self.charged = []

    def compute(self, flops=0.0, memops=0.0, intops=0.0, redundant=False):
        return None

    def charge(self, ops):
        self.charged.append(ops)
        return None

    def send(self, *args, **kwargs):  # pragma: no cover - single rank
        raise AssertionError("single-rank program must not send")

    def recv(self, *args, **kwargs):  # pragma: no cover - single rank
        raise AssertionError("single-rank program must not recv")


def drive(program, *args, **kwargs):
    """Run a rank program generator on a RecordingCtx; return the ctx."""
    ctx = RecordingCtx()
    gen = program(ctx, *args, **kwargs)
    try:
        gen.send(None)
        while True:
            gen.send(None)
    except StopIteration:
        return ctx


def _assert_same(charged, expected):
    assert len(charged) == len(expected)
    for got, want in zip(charged, expected):
        assert got.flops == want.flops
        assert got.memops == want.memops
        assert got.intops == want.intops


@pytest.mark.parametrize("bank", BANKS, ids=lambda b: b.name)
@pytest.mark.parametrize("kernel", ["conv", "lifting", "fused", "single-loop"])
def test_striped_2d_charges_match_cost_model(bank, kernel):
    rows = cols = 64
    levels = 2
    image = np.random.RandomState(0).standard_normal((rows, cols))
    decomp = StripeDecomposition(rows, cols, 1, levels)
    ctx = drive(
        striped_wavelet_program, image, bank, levels, decomp, kernel=kernel
    )

    taps = lifting_scheme(bank).step_taps
    expected = []
    r, c = rows, cols
    for _ in range(levels):
        if kernel == "conv":
            expected.append(filter_pass_cost(2 * r * (c // 2), bank.length))
            expected.append(filter_pass_cost(4 * (r // 2) * (c // 2), bank.length))
        elif kernel == "single-loop":
            # One monolithic sweep per level: a single charge.
            expected.append(single_loop_sweep_cost(r, c, taps))
        else:
            expected.append(lifting_pass_cost(2 * r * (c // 2), taps))
            expected.append(lifting_pass_cost(4 * (r // 2) * (c // 2), taps))
        r //= 2
        c //= 2
    _assert_same(ctx.charged, expected)

    # The registry kernel's level_cost aggregates the same passes the
    # program charged (row+column for the separable traversals, one
    # sweep for single-loop).
    registry_kernel = get_kernel(kernel)
    passes = 1 if kernel == "single-loop" else 2
    r, c = rows, cols
    for level in range(levels):
        level_total = ctx.charged[passes * level]
        for i in range(1, passes):
            level_total = level_total + ctx.charged[passes * level + i]
        predicted = registry_kernel.level_cost(r, c, bank)
        assert level_total.flops == predicted.flops
        assert level_total.memops == predicted.memops
        assert level_total.intops == predicted.intops
        r //= 2
        c //= 2


@pytest.mark.parametrize("bank", BANKS, ids=lambda b: b.name)
@pytest.mark.parametrize("kernel", ["conv", "lifting"])
def test_dwt_1d_charges_match_cost_model(bank, kernel):
    n, levels = 256, 3
    signal = np.random.RandomState(1).standard_normal(n)
    ctx = drive(dwt_1d_program, signal, bank, levels, kernel=kernel)

    taps = lifting_scheme(bank).step_taps
    expected = []
    length = n
    for _ in range(levels):
        out_len = length // 2
        if kernel == "conv":
            expected.append(filter_pass_cost(2 * out_len, bank.length))
        else:
            expected.append(lifting_pass_cost(2 * out_len, taps))
        length = out_len
    _assert_same(ctx.charged, expected)


@pytest.mark.parametrize("bank", BANKS, ids=lambda b: b.name)
@pytest.mark.parametrize("kernel", ["conv", "fused"])
def test_idwt_1d_charges_match_cost_model(bank, kernel):
    n, levels = 256, 3
    signal = np.random.RandomState(2).standard_normal(n)
    approx, details = dwt_1d(signal, bank, levels)
    ctx = drive(idwt_1d_program, approx, details, bank, kernel=kernel)

    taps = lifting_scheme(bank).step_taps
    expected = []
    length = approx.shape[0]
    for _ in range(levels):
        out_len = 2 * length
        if kernel == "conv":
            # Conv synthesis charges per-channel outputs (two channels).
            expected.append(synthesis_pass_cost(2 * out_len, bank.length))
        else:
            # Lifting emits both lanes in one pass over out_len samples.
            expected.append(lifting_pass_cost(out_len, taps))
        length = out_len
    _assert_same(ctx.charged, expected)


@pytest.mark.parametrize("bank", BANKS, ids=lambda b: b.name)
@pytest.mark.parametrize("kernel", ["conv", "lifting"])
def test_reconstruct_charges_match_cost_model(bank, kernel):
    rows = cols = 64
    levels = 2
    image = np.random.RandomState(3).standard_normal((rows, cols))
    pyramid = mallat_decompose_2d(image, bank, levels)
    decomp = StripeDecomposition(rows, cols, 1, levels)
    ctx = drive(striped_reconstruct_program, pyramid, bank, decomp, kernel=kernel)

    taps = lifting_scheme(bank).step_taps
    expected = []
    r = rows // 2**levels
    c = cols // 2**levels
    for _ in range(levels):
        out_rows = 2 * r
        if kernel == "conv":
            expected.append(synthesis_pass_cost(4 * out_rows * c, bank.length))
            expected.append(synthesis_pass_cost(2 * out_rows * 2 * c, bank.length))
        else:
            expected.append(lifting_pass_cost(2 * out_rows * c, taps))
            expected.append(lifting_pass_cost(out_rows * 2 * c, taps))
        r, c = out_rows, 2 * c
    _assert_same(ctx.charged, expected)


@pytest.mark.parametrize("bank", BANKS, ids=lambda b: b.name)
def test_lifting_cheaper_than_conv_above_haar(bank):
    """The factorization's whole point: fewer flops per output for m >= 4
    (Haar's lifting form costs the same as its 2-tap convolution)."""
    conv = ConvKernel().level_cost(64, 64, bank)
    lifting = LiftingKernel().level_cost(64, 64, bank)
    if bank.length > 2:
        assert lifting.flops < conv.flops
    else:
        assert lifting.flops <= conv.flops + 64 * 64 * 3  # scaling multiplies
