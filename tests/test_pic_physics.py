"""Physics-validation tests for the PIC code.

Beyond unit correctness, these exercise the classic kinetic-plasma
behaviors an electrostatic PIC code must reproduce: Langmuir oscillation
energy exchange, the two-stream instability's exponential field growth,
and momentum conservation.

Units: unit box, unit total mass/charge magnitude, so the plasma
frequency is ``omega_p = 1`` and the fundamental mode is ``k = 2*pi``.
"""

import numpy as np
import pytest

from repro.data import ParticleSet, uniform_cube
from repro.pic import Grid3D, PicSimulation


def perturbed_plasma(n, amplitude=0.08, seed=3):
    particles = uniform_cube(n, thermal_speed=0.0, seed=seed)
    x = particles.positions[:, 0]
    particles.positions[:, 0] = np.mod(
        x + amplitude / (2 * np.pi) * np.sin(2 * np.pi * x), 1.0
    )
    return particles


def two_stream(n, drift=0.12, seed=4):
    """Two counter-streaming cold beams along x.

    The drift is chosen with ``k * v < omega_p`` (k = 2*pi) so the
    fundamental mode is two-stream unstable.
    """
    particles = uniform_cube(n, thermal_speed=0.0, seed=seed)
    half = n // 2
    particles.velocities[:half, 0] = drift
    particles.velocities[half:, 0] = -drift
    # Seed the instability with a tiny density ripple.
    x = particles.positions[:, 0]
    particles.positions[:, 0] = np.mod(x + 1e-3 * np.sin(2 * np.pi * x), 1.0)
    return particles


class TestLangmuirOscillation:
    def test_energy_exchanges_between_field_and_particles(self):
        # omega_p = 1: a quarter period is t = pi/2, reached by step ~16.
        sim = PicSimulation(Grid3D(16), perturbed_plasma(8192), dt_max=0.1)
        stats = sim.run(40)
        field = np.array([s.field_energy for s in stats])
        kinetic = np.array([s.kinetic_energy for s in stats])
        # The initially cold plasma gains kinetic energy as the field
        # does work, then gives it back: field energy dips well below its
        # starting value while kinetic peaks.
        assert field[0] > 0
        assert field.min() < 0.5 * field[0]
        assert kinetic.max() > 10 * kinetic[0] + 1e-18
        # Energy returns: the field recovers a substantial fraction later.
        dip = int(np.argmin(field))
        assert field[dip:].max() > 0.5 * field[0]

    def test_oscillation_period_scales_with_density(self):
        """Plasma frequency grows with charge-to-mass weight: the heavier
        (denser-equivalent) plasma's field energy dips sooner."""

        def first_dip(mass_scale):
            base = perturbed_plasma(4096)
            particles = ParticleSet(
                base.positions, base.velocities, base.masses * mass_scale
            )
            sim = PicSimulation(Grid3D(8), particles, dt_max=0.05)
            stats = sim.run(60)
            field = np.array([s.field_energy for s in stats])
            threshold = 0.5 * field[0]
            below = np.nonzero(field < threshold)[0]
            return below[0] if below.size else len(field)

        light = first_dip(1.0)
        heavy = first_dip(4.0)  # 4x charge & mass => 2x plasma frequency
        assert heavy < light


class TestTwoStreamInstability:
    def test_field_energy_grows_exponentially(self):
        sim = PicSimulation(Grid3D(8), two_stream(8192), dt_max=0.25)
        stats = sim.run(120)
        field = np.array([s.field_energy for s in stats])
        # The instability amplifies the seeded noise by orders of
        # magnitude before saturating.
        assert field.max() > 50 * field[0]
        # The linear phase shows sustained (near-monotone) growth.
        peak = int(np.argmax(field))
        assert peak > 10
        linear_phase = field[2 : max(6, 3 * peak // 4)]
        growth_steps = np.diff(np.log(linear_phase + 1e-30))
        assert growth_steps.mean() > 0.0

    def test_momentum_conserved(self):
        particles = two_stream(8192)
        sim = PicSimulation(Grid3D(16), particles, dt_max=0.1)
        before = particles.momentum()
        sim.run(30)
        after = particles.momentum()
        typical = float(np.abs(particles.velocities).mean()) + 1e-12
        assert np.abs(after - before).max() < 5e-3 * typical
