"""Deterministic digesting of driver outcomes (shared by the back-compat
digest pins in ``tests/test_runtime_compat.py``).

The walk serializes every scalar via ``repr`` and every array via its
dtype/shape/raw bytes, so two outcomes digest equal iff they are
byte-identical — the contract the runtime refactor must preserve.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _feed(h, obj) -> None:
    if obj is None:
        h.update(b"N")
    elif isinstance(obj, np.ndarray):
        h.update(b"A")
        h.update(str(obj.dtype).encode())
        h.update(str(obj.shape).encode())
        h.update(np.ascontiguousarray(obj).tobytes())
    elif isinstance(obj, (bool, int, float, complex, str, np.generic)):
        h.update(repr(obj).encode())
    elif isinstance(obj, slice):
        h.update(repr((obj.start, obj.stop, obj.step)).encode())
    elif isinstance(obj, (list, tuple)):
        h.update(b"L")
        for item in obj:
            _feed(h, item)
        h.update(b"l")
    elif isinstance(obj, dict):
        h.update(b"D")
        for key in sorted(obj):
            _feed(h, key)
            _feed(h, obj[key])
        h.update(b"d")
    else:
        raise TypeError(f"undigestable object {type(obj)!r}")


def digest(obj) -> str:
    """sha256 hex digest of a nested scalar/array/container structure."""
    h = hashlib.sha256()
    _feed(h, obj)
    return h.hexdigest()


def run_result_digest(run) -> str:
    """Digest of a RunResult's observable outcome: elapsed time, values,
    budgets, finish times, and network counters."""
    return digest(
        {
            "elapsed_s": run.elapsed_s,
            "results": run.results,
            "budgets": [
                (b.work_s, b.comm_s, b.redundancy_s, b.imbalance_s)
                for b in run.budgets
            ],
            "finish_times": run.finish_times,
            "messages_sent": run.messages_sent,
            "bytes_sent": run.bytes_sent,
            "contention_s": run.contention_s,
            "fault_stats": run.fault_stats,
        }
    )
