"""Tests for the periodized filtering primitives."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.wavelet.conv import (
    analyze_axis,
    analyze_axis_valid,
    periodic_convolve,
    periodic_correlate,
    synthesize_axis,
)


def brute_analyze(x, taps):
    n = len(x)
    out = np.zeros(n // 2)
    for i in range(n // 2):
        out[i] = sum(taps[k] * x[(2 * i + k) % n] for k in range(len(taps)))
    return out


def brute_synthesize(a, taps, n):
    out = np.zeros(n)
    for m_idx in range(n):
        for j in range(len(a)):
            k = (m_idx - 2 * j) % n
            if k < len(taps):
                out[m_idx] += a[j] * taps[k]
    return out


class TestAnalyzeAxis:
    def test_matches_bruteforce(self):
        rng = np.random.default_rng(0)
        x = rng.random(16)
        taps = rng.random(4)
        np.testing.assert_allclose(analyze_axis(x, taps, 0), brute_analyze(x, taps))

    def test_matches_bruteforce_long_filter(self):
        rng = np.random.default_rng(1)
        x = rng.random(12)
        taps = rng.random(8)
        np.testing.assert_allclose(analyze_axis(x, taps, 0), brute_analyze(x, taps))

    def test_2d_axis0_vs_axis1(self):
        rng = np.random.default_rng(2)
        img = rng.random((8, 8))
        taps = rng.random(2)
        np.testing.assert_allclose(
            analyze_axis(img, taps, 0), analyze_axis(img.T, taps, 1).T
        )

    def test_halves_target_axis_only(self):
        out = analyze_axis(np.ones((6, 10)), np.ones(2), axis=1)
        assert out.shape == (6, 5)

    def test_odd_length_raises(self):
        with pytest.raises(ConfigurationError):
            analyze_axis(np.ones(7), np.ones(2), 0)

    def test_filter_longer_than_axis_raises(self):
        with pytest.raises(ConfigurationError):
            analyze_axis(np.ones(4), np.ones(8), 0)

    def test_constant_input_lowpass(self):
        # A normalized lowpass filter (sum sqrt(2)) scales a constant.
        taps = np.array([1.0, 1.0]) / np.sqrt(2)
        out = analyze_axis(np.full(8, 3.0), taps, 0)
        np.testing.assert_allclose(out, np.full(4, 3.0 * np.sqrt(2)))


class TestAnalyzeAxisValid:
    def test_matches_periodized_interior(self):
        rng = np.random.default_rng(3)
        x = rng.random(16)
        taps = rng.random(4)
        periodized = analyze_axis(x, taps, 0)
        # Interior outputs (those not wrapping) agree with valid mode.
        valid = analyze_axis_valid(x, taps, 0, out_len=6)
        np.testing.assert_allclose(valid, periodized[:6])

    def test_guard_extension_reproduces_wrap(self):
        rng = np.random.default_rng(4)
        x = rng.random(16)
        taps = rng.random(4)
        periodized = analyze_axis(x, taps, 0)
        extended = np.concatenate([x, x[: len(taps)]])
        valid = analyze_axis_valid(extended, taps, 0, out_len=8)
        np.testing.assert_allclose(valid, periodized)

    def test_insufficient_input_raises(self):
        with pytest.raises(ConfigurationError):
            analyze_axis_valid(np.ones(5), np.ones(4), 0, out_len=2)

    def test_zero_out_len(self):
        out = analyze_axis_valid(np.ones(4), np.ones(2), 0, out_len=0)
        assert out.shape == (0,)

    def test_negative_out_len_raises(self):
        with pytest.raises(ConfigurationError):
            analyze_axis_valid(np.ones(4), np.ones(2), 0, out_len=-1)


class TestSynthesizeAxis:
    def test_matches_bruteforce(self):
        rng = np.random.default_rng(5)
        a = rng.random(8)
        taps = rng.random(4)
        np.testing.assert_allclose(
            synthesize_axis(a, taps, 0), brute_synthesize(a, taps, 16)
        )

    def test_doubles_axis(self):
        out = synthesize_axis(np.ones((3, 4)), np.ones(2), axis=1)
        assert out.shape == (3, 8)

    def test_adjoint_of_analyze(self):
        # <analyze(x), y> == <x, synthesize(y)> for any x, y.
        rng = np.random.default_rng(6)
        taps = rng.random(4)
        x = rng.random(16)
        y = rng.random(8)
        lhs = analyze_axis(x, taps, 0) @ y
        rhs = x @ synthesize_axis(y, taps, 0)
        assert lhs == pytest.approx(rhs)


class TestFullRatePrimitives:
    def test_correlate_impulse_extracts_taps(self):
        taps = np.array([1.0, 2.0, 3.0])
        x = np.zeros(8)
        x[0] = 1.0
        out = periodic_correlate(x, taps, 0)
        # out[n] = taps at position -n mod 8 -> taps appear reversed at end.
        np.testing.assert_allclose(out[:1], [1.0])
        np.testing.assert_allclose(out[-2:], [3.0, 2.0])

    def test_convolve_impulse_reproduces_taps(self):
        taps = np.array([1.0, 2.0, 3.0])
        x = np.zeros(8)
        x[0] = 1.0
        out = periodic_convolve(x, taps, 0)
        np.testing.assert_allclose(out[:3], taps)

    def test_correlate_then_decimate_equals_analyze(self):
        rng = np.random.default_rng(7)
        x = rng.random(16)
        taps = rng.random(4)
        np.testing.assert_allclose(
            periodic_correlate(x, taps, 0)[::2], analyze_axis(x, taps, 0)
        )

    def test_short_axis_raises(self):
        with pytest.raises(ConfigurationError):
            periodic_correlate(np.ones(2), np.ones(4), 0)
        with pytest.raises(ConfigurationError):
            periodic_convolve(np.ones(2), np.ones(4), 0)
