"""Tests for the communication microbenchmarks — and through them, that
the calibrated machine models behave like their parameters claim."""

import pytest

from repro.errors import ConfigurationError
from repro.machines import (
    bisection_exchange,
    paragon,
    ping_pong,
    ring_bandwidth,
    t3d,
    workstation,
)


class TestPingPong:
    def test_alpha_beta_reflect_spec(self):
        machine = paragon(8, protocol="nx")
        model = ping_pong(machine)
        # alpha should sit near the spec's latency + software overheads
        # (0.12 ms network + 2 x 0.05 ms software).
        assert 100e-6 < model.alpha_s < 800e-6
        # beta is bounded by the 30 MB/s channel but reduced by the
        # serialized copy costs on both ends.
        assert 10e6 < model.beta_bytes_per_s < 30e6

    def test_pvm_slower_than_nx(self):
        pvm = ping_pong(paragon(8, protocol="pvm"))
        nx = ping_pong(paragon(8, protocol="nx"))
        assert pvm.alpha_s > nx.alpha_s
        assert pvm.beta_bytes_per_s < nx.beta_bytes_per_s

    def test_prediction_interpolates_samples(self):
        model = ping_pong(t3d(4))
        for nbytes, measured in model.samples:
            assert model.predict(nbytes) == pytest.approx(measured, rel=0.5)

    def test_time_grows_with_size(self):
        model = ping_pong(paragon(4, protocol="nx"))
        times = [t for _, t in model.samples]
        assert times == sorted(times)

    def test_needs_two_ranks(self):
        with pytest.raises(ConfigurationError):
            ping_pong(workstation())

    def test_same_endpoints_rejected(self):
        with pytest.raises(ConfigurationError):
            ping_pong(paragon(4), src=2, dst=2)


class TestAggregatePatterns:
    def test_ring_exceeds_single_channel(self):
        """Neighbor exchanges run concurrently on disjoint channels, so
        aggregate ring bandwidth beats one channel's rate."""
        machine = paragon(16, protocol="nx")
        assert ring_bandwidth(machine) > 30e6

    def test_mesh_bisection_below_ring(self):
        """Cross-machine pairs share the few bisection channels of the
        4-wide mesh; aggregate rate drops below the neighbor ring's."""
        machine = paragon(16, protocol="nx")
        assert bisection_exchange(machine) < ring_bandwidth(machine)

    def test_torus_bisection_healthy(self):
        """The T3D torus has enough bisection links that the exchange
        keeps most of the ring rate."""
        machine = t3d(16)
        assert bisection_exchange(machine) > 0.6 * ring_bandwidth(machine)

    def test_odd_rank_bisection_rejected(self):
        with pytest.raises(ConfigurationError):
            bisection_exchange(paragon(5))

    def test_ring_needs_two(self):
        with pytest.raises(ConfigurationError):
            ring_bandwidth(workstation())
