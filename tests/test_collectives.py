"""Tests for the NX/PVM-style collective operations."""

import numpy as np
import pytest

from repro.errors import CommunicationError, ConfigurationError
from repro.machines import (
    Engine,
    Machine,
    allgather,
    allreduce,
    alltoall,
    barrier,
    bcast,
    gather,
    gssum_naive,
    reduce,
    scatter,
    sendrecv,
)
from repro.machines.api import (
    ALLREDUCE_ALGORITHMS,
    allreduce_rabenseifner,
    broadcast_tree,
    get_allreduce,
)
from repro.machines.cpu import CpuModel
from repro.machines.network import ContentionNetwork, FullyConnected


def ideal_machine(nranks):
    return Machine(
        name="ideal",
        cpu=CpuModel(1e9, 1e9, 1e9),
        network=ContentionNetwork(
            topology=FullyConnected(nranks), latency_s=1e-6, per_hop_s=0.0, bytes_per_s=1e9
        ),
        placement=list(range(nranks)),
        sw_send_overhead_s=1e-6,
        sw_recv_overhead_s=1e-6,
        copy_bytes_per_s=1e9,
    )


def run(nranks, prog, *args):
    return Engine(ideal_machine(nranks)).run(prog, *args)


@pytest.mark.parametrize("nranks", [1, 2, 3, 4, 7, 8])
class TestBcast:
    def test_value_reaches_all(self, nranks):
        def prog(ctx):
            data = {"v": 42} if ctx.rank == 0 else None
            data = yield from bcast(ctx, data, root=0)
            return data["v"]

        assert run(nranks, prog).results == [42] * nranks

    def test_nonzero_root(self, nranks):
        root = nranks - 1

        def prog(ctx):
            data = "payload" if ctx.rank == root else None
            return (yield from bcast(ctx, data, root=root))

        assert run(nranks, prog).results == ["payload"] * nranks


@pytest.mark.parametrize("nranks", [1, 2, 3, 5, 8])
class TestReduce:
    def test_sum_at_root(self, nranks):
        def prog(ctx):
            return (yield from reduce(ctx, ctx.rank + 1))

        results = run(nranks, prog).results
        assert results[0] == nranks * (nranks + 1) // 2
        assert all(r is None for r in results[1:])

    def test_custom_op(self, nranks):
        def prog(ctx):
            return (yield from reduce(ctx, ctx.rank, op=max))

        assert run(nranks, prog).results[0] == nranks - 1

    def test_nonzero_root(self, nranks):
        root = nranks // 2

        def prog(ctx):
            return (yield from reduce(ctx, 1, root=root))

        results = run(nranks, prog).results
        assert results[root] == nranks


@pytest.mark.parametrize("nranks", [1, 2, 3, 4, 6, 8])
class TestAllreduce:
    def test_array_sum_everywhere(self, nranks):
        def prog(ctx):
            total = yield from allreduce(ctx, np.full(3, float(ctx.rank)))
            return total.tolist()

        expected = [float(sum(range(nranks)))] * 3
        for result in run(nranks, prog).results:
            assert result == expected

    def test_matches_gssum(self, nranks):
        def prog(ctx):
            a = yield from allreduce(ctx, float(ctx.rank + 1))
            b = yield from gssum_naive(ctx, float(ctx.rank + 1))
            return (a, b)

        for a, b in run(nranks, prog).results:
            assert a == pytest.approx(b)


class TestGssumScaling:
    def test_naive_costs_more_messages_than_prefix(self):
        """The Appendix B observation: gssum's many-to-many exchange sends
        O(P^2) messages where recursive doubling needs O(P log P)."""

        def prog_naive(ctx):
            yield from gssum_naive(ctx, 1.0)
            return None

        def prog_prefix(ctx):
            yield from allreduce(ctx, 1.0)
            return None

        naive_msgs = run(16, prog_naive).messages_sent
        prefix_msgs = run(16, prog_prefix).messages_sent
        assert naive_msgs == 16 * 15
        assert prefix_msgs < naive_msgs / 2


@pytest.mark.parametrize("nranks", [1, 2, 5, 8])
class TestGatherScatter:
    def test_gather(self, nranks):
        def prog(ctx):
            return (yield from gather(ctx, ctx.rank * 2, root=0))

        assert run(nranks, prog).results[0] == [2 * r for r in range(nranks)]

    def test_scatter(self, nranks):
        def prog(ctx):
            values = [f"item{i}" for i in range(ctx.nranks)] if ctx.rank == 0 else None
            return (yield from scatter(ctx, values, root=0))

        assert run(nranks, prog).results == [f"item{i}" for i in range(nranks)]

    def test_allgather(self, nranks):
        def prog(ctx):
            return (yield from allgather(ctx, ctx.rank))

        for result in run(nranks, prog).results:
            assert result == list(range(nranks))

    def test_alltoall(self, nranks):
        def prog(ctx):
            values = [(ctx.rank, dst) for dst in range(ctx.nranks)]
            return (yield from alltoall(ctx, values))

        results = run(nranks, prog).results
        for rank, received in enumerate(results):
            assert received == [(src, rank) for src in range(nranks)]


@pytest.mark.parametrize("nranks", [1, 2, 3, 4, 6, 8])
class TestRabenseifner:
    def test_array_sum_matches_rdouble(self, nranks):
        def prog(ctx):
            vec = np.full(16, float(ctx.rank + 1))
            a = yield from allreduce_rabenseifner(ctx, vec)
            b = yield from allreduce(ctx, vec)
            return a.tolist(), b.tolist()

        expected = [nranks * (nranks + 1) / 2] * 16
        for a, b in run(nranks, prog).results:
            assert a == pytest.approx(b)
            assert a == pytest.approx(expected)

    def test_scalar_falls_back_to_rdouble(self, nranks):
        def prog(ctx):
            a = yield from allreduce_rabenseifner(ctx, float(ctx.rank))
            b = yield from allreduce(ctx, float(ctx.rank))
            return a, b

        for a, b in run(nranks, prog).results:
            assert a == b

    def test_custom_elementwise_op(self, nranks):
        def prog(ctx):
            vec = np.full(8, float(ctx.rank))
            out = yield from allreduce_rabenseifner(ctx, vec, op=np.maximum)
            return out.tolist()

        for out in run(nranks, prog).results:
            assert out == [float(nranks - 1)] * 8


@pytest.mark.parametrize("nranks", [1, 2, 3, 5, 8, 9])
class TestBroadcastTree:
    def test_reaches_all_ranks(self, nranks):
        def prog(ctx):
            data = {"v": 42} if ctx.rank == 0 else None
            data = yield from broadcast_tree(ctx, data)
            return data["v"]

        assert run(nranks, prog).results == [42] * nranks

    def test_radix_three(self, nranks):
        def prog(ctx):
            data = "payload" if ctx.rank == 0 else None
            return (yield from broadcast_tree(ctx, data, radix=3))

        assert run(nranks, prog).results == ["payload"] * nranks

    def test_nonzero_root(self, nranks):
        root = nranks - 1

        def prog(ctx):
            data = ("blob", root) if ctx.rank == root else None
            return (yield from broadcast_tree(ctx, data, root=root))

        assert run(nranks, prog).results == [("blob", root)] * nranks


class TestBroadcastTreeErrors:
    def test_bad_radix_raises(self):
        def prog(ctx):
            return (yield from broadcast_tree(ctx, 1, radix=1))

        with pytest.raises(CommunicationError):
            run(2, prog)

    def test_bad_root_raises(self):
        def prog(ctx):
            return (yield from broadcast_tree(ctx, 1, root=5))

        with pytest.raises(CommunicationError):
            run(2, prog)


class TestAllreduceRegistry:
    def test_known_schedules_resolve(self):
        assert get_allreduce("rdouble") is allreduce
        assert get_allreduce("rabenseifner") is allreduce_rabenseifner
        assert set(ALLREDUCE_ALGORITHMS) == {"rdouble", "rabenseifner"}

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="unknown collective"):
            get_allreduce("butterfly")


class TestBarrierAndSendrecv:
    def test_barrier_synchronizes_clocks(self):
        def prog(ctx):
            yield ctx.compute(flops=1e6 * (ctx.rank + 1))
            yield from barrier(ctx)
            return None

        result = run(4, prog)
        # After a barrier everyone finishes within one message round.
        spread = max(result.finish_times) - min(result.finish_times)
        assert spread < 1e-3

    def test_sendrecv_ring(self):
        def prog(ctx):
            right = (ctx.rank + 1) % ctx.nranks
            left = (ctx.rank - 1) % ctx.nranks
            got = yield from sendrecv(ctx, right, ctx.rank, left)
            return got

        assert run(4, prog).results == [3, 0, 1, 2]

    def test_scatter_wrong_length_raises(self):
        def prog(ctx):
            return (yield from scatter(ctx, [1, 2], root=0))

        with pytest.raises(CommunicationError):
            run(3, prog)

    def test_bad_root_raises(self):
        def prog(ctx):
            return (yield from bcast(ctx, 1, root=9))

        with pytest.raises(CommunicationError):
            run(2, prog)
