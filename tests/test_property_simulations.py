"""Property-based tests for N-body, PIC, and workload invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import uniform_cube
from repro.nbody import build_tree, costzones_partition, direct_forces, tree_forces
from repro.pic import Grid3D, deposit_cic, gather_field, solve_poisson
from repro.workload import (
    ParallelWorkload,
    Trace,
    list_schedule,
    oracle_schedule,
    similarity,
)


def random_positions(draw, n, dim, seed):
    rng = np.random.default_rng(seed)
    return rng.random((n, dim)) * 2.0 - 1.0


class TestNBodyProperties:
    @given(n=st.integers(2, 80), seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_tree_partitions_bodies(self, n, seed):
        rng = np.random.default_rng(seed)
        positions = rng.random((n, 2))
        tree = build_tree(positions, np.ones(n))
        assert sorted(tree.order.tolist()) == list(range(n))
        assert tree.mass[0] == pytest.approx(n)

    @given(n=st.integers(3, 60), seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_small_theta_approaches_direct(self, n, seed):
        rng = np.random.default_rng(seed)
        positions = rng.random((n, 2))
        masses = rng.random(n) + 0.1
        tree = build_tree(positions, masses)
        approx = tree_forces(tree, positions, masses, theta=0.05, softening=0.01)
        exact = direct_forces(positions, masses, softening=0.01)
        scale = np.abs(exact.accelerations).max() + 1e-12
        assert np.abs(approx.accelerations - exact.accelerations).max() < 0.05 * scale

    @given(
        n=st.integers(4, 100),
        nranks=st.integers(1, 8),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_costzones_is_a_partition(self, n, nranks, seed):
        rng = np.random.default_rng(seed)
        positions = rng.random((n, 2))
        tree = build_tree(positions, np.ones(n))
        costs = rng.exponential(1.0, n) + 0.01
        zones = costzones_partition(tree, costs, nranks)
        assert len(zones) == nranks
        combined = np.sort(np.concatenate([z for z in zones]))
        np.testing.assert_array_equal(combined, np.arange(n))


class TestPicProperties:
    @given(
        n=st.integers(1, 200),
        m=st.sampled_from([4, 8]),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_deposit_conserves_charge(self, n, m, seed):
        grid = Grid3D(m)
        rng = np.random.default_rng(seed)
        positions = rng.random((n, 3))
        charges = rng.standard_normal(n)
        rho = deposit_cic(grid, positions, charges)
        assert rho.sum() * grid.cell_volume() == pytest.approx(
            charges.sum(), rel=1e-9, abs=1e-12
        )

    @given(m=st.sampled_from([4, 8]), seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_poisson_inverts_laplacian(self, m, seed):
        grid = Grid3D(m)
        rng = np.random.default_rng(seed)
        rho = rng.standard_normal((m, m, m))
        phi = solve_poisson(grid, rho)
        np.testing.assert_allclose(
            grid.fd_laplacian(phi), -(rho - rho.mean()), atol=1e-8
        )

    @given(
        m=st.sampled_from([4, 8]),
        seed=st.integers(0, 1000),
        n=st.integers(1, 50),
    )
    @settings(max_examples=25, deadline=None)
    def test_gather_bounded_by_field_extrema(self, m, seed, n):
        """Trilinear interpolation never overshoots the grid extrema."""
        grid = Grid3D(m)
        rng = np.random.default_rng(seed)
        field = rng.standard_normal((3, m, m, m))
        positions = rng.random((n, 3))
        values = gather_field(grid, field, positions)
        for component in range(3):
            assert values[:, component].max() <= field[component].max() + 1e-12
            assert values[:, component].min() >= field[component].min() - 1e-12


class TestWorkloadProperties:
    @given(
        n=st.integers(1, 120),
        fan=st.integers(1, 3),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_oracle_schedule_respects_dependencies(self, n, fan, seed):
        rng = np.random.default_rng(seed)
        trace = Trace("random")
        types = ("intops", "memops", "fpops", "branchops")
        for i in range(n):
            ndeps = min(i, int(rng.integers(0, fan + 1)))
            deps = tuple(int(d) for d in rng.choice(i, size=ndeps, replace=False)) if ndeps else ()
            trace.append(types[int(rng.integers(0, 4))], deps)
        result = oracle_schedule(trace)
        # Work is conserved and parallelism is at least 1.
        assert result.workload.total_operations == n
        assert result.workload.average_parallelism >= 1.0
        assert result.critical_path <= n

    @given(
        n=st.integers(2, 80),
        capacity=st.integers(1, 6),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_capacity_never_exceeded(self, n, capacity, seed):
        rng = np.random.default_rng(seed)
        trace = Trace("random")
        for i in range(n):
            deps = (int(rng.integers(0, i)),) if i and rng.random() < 0.5 else ()
            trace.append("intops", deps)
        result = list_schedule(trace, capacity)
        assert result.workload.parallelism_profile().max() <= capacity
        assert result.critical_path >= oracle_schedule(trace).critical_path

    @given(
        rows=st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 9), st.integers(0, 9)),
            min_size=1,
            max_size=8,
        ).filter(lambda rs: any(any(r) for r in rs)),
    )
    @settings(max_examples=40, deadline=None)
    def test_similarity_metric_axioms(self, rows):
        wl = ParallelWorkload.from_counts("w", rows)
        doubled = ParallelWorkload.from_counts("w2", [tuple(2 * v for v in r) for r in rows])
        # Identity and bounds.
        assert similarity(wl, wl) == pytest.approx(0.0, abs=1e-12)
        value = similarity(wl, doubled)
        assert 0.0 <= value <= 1.0 + 1e-12
        # Doubling every count halves... the normalized distance is 0.5.
        assert value == pytest.approx(0.5, abs=1e-9)
