"""Property tests for the adversary overlay (hypothesis).

Two invariants make adversarial runs replayable and composable:

* **Interleaving independence** — the overlay's decision for a message
  is keyed by its per-channel ordinal, never by global arrival order:
  feeding the same per-channel send sequences in any global interleaving
  yields identical :class:`AdversaryAction` streams.  (This is what lets
  a persisted finding replay bitwise even though the engine's event
  order depends on timing.)
* **Fault-plan non-interference** — wrapping a :class:`FaultPlan` in an
  :class:`AdversaryPlan` never changes a single random-fault decision:
  the overlay's hash draws live in salted domains disjoint from the
  fault plan's, and the delegation is exact.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines.faults import FaultConfig, FaultPlan
from repro.machines.tags import COLLECTIVE_TAG_BASE
from repro.scenarios import AdversaryConfig, AdversaryPlan

#: Behaviors whose intercept decisions the interleaving property covers
#: ("cartel" attacks compute time through straggler_factor, not sends).
MESSAGE_BEHAVIORS = (
    "withhold", "jam", "spam", "poison", "replay", "reorder", "byzantine",
)

# Channels from the adversary (rank 1) to its peers.  The byzantine
# behavior only wakes on collective-band tags, so include one.
CHANNELS = (
    (0, 11),
    (2, 11),
    (3, 17),
    (0, COLLECTIVE_TAG_BASE + 1),
)


def _payload(channel_index: int, ordinal: int) -> float:
    """A distinct float payload per (channel, ordinal) — float so the
    poisoning behaviors always find a leaf to perturb."""
    return 1.0 + channel_index + ordinal / 16.0


def _actions_for_order(behavior: str, seed: int, order: list) -> dict:
    """Feed one global interleaving; collect action per (channel, ordinal)."""
    plan = AdversaryPlan(
        seed, AdversaryConfig(behavior=behavior, rank=1, rate=0.5)
    )
    counters = {index: 0 for index in set(order)}
    actions = {}
    for channel_index in order:
        dst, tag = CHANNELS[channel_index]
        ordinal = counters[channel_index]
        counters[channel_index] = ordinal + 1
        action = plan.intercept_send(
            1, dst, tag, _payload(channel_index, ordinal), 0.0
        )
        actions[(channel_index, ordinal)] = action
    return actions


@st.composite
def interleavings(draw):
    """Two global orders of the same per-channel send sequences."""
    counts = draw(
        st.lists(
            st.integers(min_value=1, max_value=4),
            min_size=len(CHANNELS),
            max_size=len(CHANNELS),
        )
    )
    multiset = [
        index for index, count in enumerate(counts) for _ in range(count)
    ]
    # Any permutation of the channel-id multiset is a valid interleaving:
    # popping each channel's sends FIFO preserves per-channel order.
    shuffled = draw(st.permutations(multiset))
    return multiset, list(shuffled)


@pytest.mark.parametrize("behavior", MESSAGE_BEHAVIORS)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1), orders=interleavings())
@settings(max_examples=25, deadline=None)
def test_decisions_independent_of_interleaving(behavior, seed, orders):
    order_a, order_b = orders
    assert _actions_for_order(behavior, seed, order_a) == _actions_for_order(
        behavior, seed, order_b
    )


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    channel=st.sampled_from(range(len(CHANNELS))),
    count=st.integers(min_value=2, max_value=5),
)
@settings(max_examples=25, deadline=None)
def test_replay_always_resends_the_channel_predecessor(seed, channel, count):
    plan = AdversaryPlan(
        seed, AdversaryConfig(behavior="replay", rank=1, rate=1.0)
    )
    dst, tag = CHANNELS[channel]
    for ordinal in range(count):
        action = plan.intercept_send(1, dst, tag, _payload(channel, ordinal), 0.0)
        if ordinal == 0:
            assert action is None  # nothing to replay yet
        else:
            assert action.replay
            assert action.replay_payload == _payload(channel, ordinal - 1)


fault_configs = st.builds(
    FaultConfig,
    drop_rate=st.floats(min_value=0.0, max_value=0.3),
    duplicate_rate=st.floats(min_value=0.0, max_value=0.3),
    corrupt_rate=st.floats(min_value=0.0, max_value=0.3),
    delay_rate=st.floats(min_value=0.0, max_value=0.5),
    max_delay_s=st.floats(min_value=0.0, max_value=1e-3),
    crashes=st.sampled_from([(), ((2, 0.5),), ((1, 0.25), (3, 0.75))]),
    stragglers=st.sampled_from([(), ((3, 2.0, 0.0, 1.0),)]),
)

adversaries = st.builds(
    AdversaryConfig,
    behavior=st.sampled_from(MESSAGE_BEHAVIORS + ("cartel",)),
    rank=st.just(1),
    rate=st.floats(min_value=0.0, max_value=1.0),
)


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    config=fault_configs,
    adversary=adversaries,
)
@settings(max_examples=40, deadline=None)
def test_overlay_never_perturbs_fault_decisions(seed, config, adversary):
    bare = FaultPlan(seed, config)
    overlaid = AdversaryPlan(seed, adversary, config)
    for msg_index in range(12):
        for attempt in range(3):
            assert overlaid.message_fate(msg_index, attempt) == bare.message_fate(
                msg_index, attempt
            )
    assert overlaid.crash_schedule == bare.crash_schedule
    assert overlaid.has_link_slowdowns == bare.has_link_slowdowns
    for t in (0.0, 0.5, 1.5):
        assert overlaid.link_factor(0, 1, t) == bare.link_factor(0, 1, t)
        for rank in range(4):
            if rank in (adversary.cartel_ranks if adversary.behavior == "cartel" else ()):
                continue  # the cartel is *supposed* to slow these ranks
            assert overlaid.straggler_factor(rank, t) == bare.straggler_factor(rank, t)


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_cartel_multiplies_base_straggler_factor(seed):
    config = FaultConfig(stragglers=((1, 2.0, 0.0, 1.0),))
    adversary = AdversaryConfig(
        behavior="cartel", rank=1, accomplices=(2,), slowdown=4.0
    )
    bare = FaultPlan(seed, config)
    overlaid = AdversaryPlan(seed, adversary, config)
    t = 0.5
    # Composition, not replacement: the cartel slowdown stacks on top of
    # whatever random straggler window the fault plan already imposed.
    assert overlaid.straggler_factor(1, t) == bare.straggler_factor(1, t) * 4.0
    assert overlaid.straggler_factor(2, t) == bare.straggler_factor(2, t) * 4.0
    assert overlaid.straggler_factor(0, t) == bare.straggler_factor(0, t)


def test_without_crash_restarts_from_ordinal_zero():
    adversary = AdversaryConfig(behavior="poison", rank=1, rate=1.0)
    plan = AdversaryPlan(7, adversary)
    first = plan.intercept_send(1, 0, 11, 2.5, 0.0)
    plan.intercept_send(1, 0, 11, 3.5, 0.0)
    repaired = plan.without_crash(1)
    # Fresh channel state: the restarted attempt re-derives the same
    # decision for the channel's first send...
    assert repaired.intercept_send(1, 0, 11, 2.5, 0.0) == first
    # ...while the attack counters survive the restart (shared stats).
    assert repaired.stats is plan.stats
