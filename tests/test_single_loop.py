"""Single-loop 2-D lifting kernel: equivalence, byte-identity of the
pre-existing kernels through the plan/executor refactor, valid-mode
guard handling, and the SPMD/SIMD parallel paths.

The sha256 pins were captured on the pre-refactor kernel stack: the
conv/lifting/fused pipelines must produce byte-identical output after
the refactor, proving the plan layer changed structure, not numerics.
"""

import hashlib

import numpy as np
import pytest
from numpy.random import RandomState

from repro.errors import ConfigurationError, DecompositionError
from repro.machines.specs import paragon
from repro.wavelet import (
    dwt_1d,
    filter_bank_for_length,
    idwt_1d,
    lifting_scheme,
    mallat_decompose_2d,
    mallat_reconstruct_2d,
    mallat_step_2d,
)
from repro.wavelet.parallel.spmd import run_spmd_wavelet
from repro.wavelet.singleloop import (
    single_loop_analyze_2d,
    single_loop_analyze_valid,
    single_loop_synthesize_2d,
)

BANK_LENGTHS = (2, 4, 8)

# Agreement bounds for unit-normal inputs: measured worst case is ~1e-11
# (D8); these match the bench harness budgets.
FORWARD_TOL = 1e-9
ROUND_TRIP_TOL = 1e-10


def _max_diff(p, q):
    diff = float(np.abs(p.approximation - q.approximation).max())
    for a, b in zip(p.details, q.details):
        diff = max(
            diff,
            float(np.abs(a.lh - b.lh).max()),
            float(np.abs(a.hl - b.hl).max()),
            float(np.abs(a.hh - b.hh).max()),
        )
    return diff


# -- byte-identity of the pre-refactor kernels ------------------------------

_PIPELINE_DIGESTS = {
    "conv": "80a15cb0aa6c3a8cbfdccb541485a6b21fba12c97457ab425ff04ea8161ce973",
    "lifting": "e7b42bd555ac3cae1fae5acb25ed7bc7fbe764d30f178f427268cbb6bb72a6fc",
    "fused": "e7b42bd555ac3cae1fae5acb25ed7bc7fbe764d30f178f427268cbb6bb72a6fc",
}


def _pipeline_digest(kernel):
    h = hashlib.sha256()
    for m in BANK_LENGTHS:
        rng = RandomState(777 + m)
        image = rng.standard_normal((64, 96))
        signal = rng.standard_normal(256)
        bank = filter_bank_for_length(m)
        pyramid = mallat_decompose_2d(image, bank, 3, kernel=kernel)
        h.update(pyramid.approximation.tobytes())
        for t in pyramid.details:
            h.update(t.lh.tobytes())
            h.update(t.hl.tobytes())
            h.update(t.hh.tobytes())
        h.update(mallat_reconstruct_2d(pyramid, bank, kernel=kernel).tobytes())
        approx, details = dwt_1d(signal, bank, 3, kernel=kernel)
        h.update(approx.tobytes())
        for d in details:
            h.update(d.tobytes())
        h.update(idwt_1d(approx, details, bank, kernel=kernel).tobytes())
    return h.hexdigest()


@pytest.mark.parametrize("kernel", sorted(_PIPELINE_DIGESTS))
def test_refactor_left_existing_kernels_byte_identical(kernel):
    assert _pipeline_digest(kernel) == _PIPELINE_DIGESTS[kernel]


# -- sequential equivalence -------------------------------------------------

class TestSequentialEquivalence:
    @pytest.mark.parametrize("m", BANK_LENGTHS)
    @pytest.mark.parametrize("shape", [(64, 64), (64, 96), (32, 48), (16, 80)])
    def test_step_matches_conv(self, m, shape):
        bank = filter_bank_for_length(m)
        image = RandomState(m).standard_normal(shape)
        ref = mallat_step_2d(image, bank, kernel="conv")
        got = mallat_step_2d(image, bank, kernel="single-loop")
        for name in ("ll", "lh", "hl", "hh"):
            assert np.abs(getattr(got, name) - getattr(ref, name)).max() < FORWARD_TOL

    @pytest.mark.parametrize("m", BANK_LENGTHS)
    def test_matches_separable_lifting_exactly_enough(self, m):
        # Interleaved (V H) product == separable (V..)(H..) as operators;
        # only float reassociation separates the two lifting traversals.
        bank = filter_bank_for_length(m)
        image = RandomState(10 + m).standard_normal((64, 96))
        lift = mallat_decompose_2d(image, bank, 3, kernel="lifting")
        sweep = mallat_decompose_2d(image, bank, 3, kernel="single-loop")
        assert _max_diff(lift, sweep) < 1e-10

    @pytest.mark.parametrize("m", BANK_LENGTHS)
    @pytest.mark.parametrize("levels", [1, 2, 3])
    def test_multi_level_pyramid_matches_conv(self, m, levels):
        bank = filter_bank_for_length(m)
        image = RandomState(20 + m).standard_normal((64, 96))
        ref = mallat_decompose_2d(image, bank, levels, kernel="conv")
        got = mallat_decompose_2d(image, bank, levels, kernel="single-loop")
        assert _max_diff(ref, got) < FORWARD_TOL

    @pytest.mark.parametrize("m", BANK_LENGTHS)
    def test_round_trip(self, m):
        bank = filter_bank_for_length(m)
        image = RandomState(30 + m).standard_normal((64, 96))
        pyramid = mallat_decompose_2d(image, bank, 3, kernel="single-loop")
        back = mallat_reconstruct_2d(pyramid, bank, kernel="single-loop")
        assert np.abs(back - image).max() < ROUND_TRIP_TOL

    @pytest.mark.parametrize("m", BANK_LENGTHS)
    def test_1d_degenerates_to_lifting(self, m):
        bank = filter_bank_for_length(m)
        signal = RandomState(40 + m).standard_normal(256)
        a_ref, d_ref = dwt_1d(signal, bank, 3, kernel="lifting")
        a_got, d_got = dwt_1d(signal, bank, 3, kernel="single-loop")
        assert np.array_equal(a_ref, a_got)
        assert all(np.array_equal(r, g) for r, g in zip(d_ref, d_got))

    def test_analyze_synthesize_primitives_invert(self):
        scheme = lifting_scheme(filter_bank_for_length(8))
        image = RandomState(3).standard_normal((32, 48))
        bands = single_loop_analyze_2d(image, scheme)
        back = single_loop_synthesize_2d(*bands, scheme)
        assert np.abs(back - image).max() < ROUND_TRIP_TOL

    def test_too_small_image_rejected(self):
        scheme = lifting_scheme(filter_bank_for_length(8))
        with pytest.raises(ConfigurationError):
            single_loop_analyze_2d(np.zeros((4, 32)), scheme)


# -- valid-mode sweep -------------------------------------------------------

class TestValidMode:
    @pytest.mark.parametrize("m", BANK_LENGTHS)
    def test_periodic_extension_reproduces_periodized_interior(self, m):
        from repro.wavelet.plan import parse_kernel_spec

        bank = filter_bank_for_length(m)
        scheme = lifting_scheme(bank)
        front, back = parse_kernel_spec("single-loop").analysis_guard_depths(bank)
        image = RandomState(50 + m).standard_normal((64, 48))
        ref = single_loop_analyze_2d(image, scheme)

        # Rebuild each 16-row stripe from its periodically wrapped guards.
        for start in range(0, 64, 16):
            rows = np.arange(start - front, start + 16 + back) % 64
            ext = image[rows]
            got = single_loop_analyze_valid(
                ext, scheme, 8, 24, front, periodic_cols=True
            )
            for got_band, ref_band in zip(got, ref):
                assert np.array_equal(got_band, ref_band[start // 2 : start // 2 + 8])

    def test_insufficient_row_guard_raises(self):
        scheme = lifting_scheme(filter_bank_for_length(8))
        ext = RandomState(0).standard_normal((20, 32))
        with pytest.raises(ConfigurationError, match="row guard"):
            single_loop_analyze_valid(ext, scheme, 10, 32, 0, periodic_cols=True)

    def test_insufficient_column_guard_raises(self):
        scheme = lifting_scheme(filter_bank_for_length(8))
        ext = RandomState(1).standard_normal((32, 20))
        front, _ = 4, 0
        with pytest.raises(ConfigurationError, match="column guard"):
            single_loop_analyze_valid(ext, scheme, 8, 10, front, 0)

    def test_odd_lead_rejected(self):
        scheme = lifting_scheme(filter_bank_for_length(2))
        with pytest.raises(ConfigurationError, match="even"):
            single_loop_analyze_valid(np.zeros((8, 8)), scheme, 2, 4, 3)


# -- SPMD programs ----------------------------------------------------------

class TestSpmd:
    @pytest.mark.parametrize("m", BANK_LENGTHS)
    @pytest.mark.parametrize("decomposition,nranks", [
        ("striped", 1), ("striped", 4), ("block", 4), ("block", 8),
    ])
    def test_parallel_matches_sequential_bitwise(self, m, decomposition, nranks):
        bank = filter_bank_for_length(m)
        levels = 2
        image = RandomState(60 + m).standard_normal((64, 96))
        seq = mallat_decompose_2d(image, bank, levels, kernel="single-loop")
        outcome = run_spmd_wavelet(
            paragon(nranks), image, bank, levels,
            kernel="single-loop", decomposition=decomposition,
        )
        assert _max_diff(outcome.pyramid, seq) == 0.0

    def test_striped_uses_the_sweep_guard_tags(self):
        from repro.machines import tags
        from repro.runtime import JobSpec, RunOptions, launch

        # D8 has non-zero margins on both sides, so both guard
        # directions must flow (D4's front margin is 0).
        bank = filter_bank_for_length(8)
        image = RandomState(2).standard_normal((64, 64))
        spec = JobSpec(
            program="wavelet",
            params={"image": image, "bank": bank, "levels": 2},
            options=RunOptions(
                machine="paragon", nranks=4, kernel="single-loop",
                record_trace=True,
            ),
        )
        run = launch(spec).run
        sent = {e.tag for e in run.trace if e.kind == "send"}
        assert tags.WAVELET_SWEEP_GUARD in sent
        assert tags.WAVELET_SWEEP_GUARD_FRONT in sent
        # The raw-tile sweep replaces the per-pass row/col guard tags.
        assert tags.WAVELET_ROW_GUARD not in sent
        assert tags.WAVELET_COL_GUARD not in sent

    def test_block_uses_both_sweep_guard_axes(self):
        from repro.machines import tags
        from repro.runtime import JobSpec, RunOptions, launch

        bank = filter_bank_for_length(4)
        image = RandomState(5).standard_normal((64, 64))
        spec = JobSpec(
            program="wavelet",
            params={"image": image, "bank": bank, "levels": 1},
            options=RunOptions(
                machine="paragon", nranks=4, kernel="single-loop",
                decomposition="block", record_trace=True,
            ),
        )
        run = launch(spec).run
        sent = {e.tag for e in run.trace if e.kind == "send"}
        assert tags.WAVELET_SWEEP_GUARD in sent
        assert tags.WAVELET_SWEEP_COL_GUARD in sent

    def test_too_shallow_stripe_rejected_up_front(self):
        bank = filter_bank_for_length(8)
        image = RandomState(6).standard_normal((64, 64))
        with pytest.raises(DecompositionError):
            run_spmd_wavelet(
                paragon(4), image, bank, 3, kernel="single-loop",
                decomposition="striped",
            )


# -- MasPar SIMD ------------------------------------------------------------

class TestSimd:
    @pytest.mark.parametrize("m", BANK_LENGTHS)
    def test_simd_single_loop_matches_sequential(self, m):
        from repro.machines.simd import MasParMachine, maspar_mp2
        from repro.wavelet.parallel import simd_mallat_decompose

        bank = filter_bank_for_length(m)
        image = RandomState(70 + m).standard_normal((32, 32))
        seq = mallat_decompose_2d(image, bank, 2, kernel="single-loop")
        outcome = simd_mallat_decompose(
            MasParMachine(maspar_mp2(pe_side=32)), image, bank, 2,
            algorithm="single-loop",
        )
        assert outcome.algorithm == "single-loop"
        assert _max_diff(outcome.pyramid, seq) == 0.0

    def test_unknown_algorithm_lists_single_loop(self):
        from repro.machines.simd import MasParMachine, maspar_mp2
        from repro.wavelet.parallel import simd_mallat_decompose

        bank = filter_bank_for_length(2)
        with pytest.raises(ConfigurationError, match="single-loop"):
            simd_mallat_decompose(
                MasParMachine(maspar_mp2(pe_side=8)), np.zeros((8, 8)), bank, 1,
                algorithm="warped",
            )
