"""Tests for the Section 5.4 'physical effects' model (cooling-gradient
node speed variability)."""

import pytest

from repro.errors import ConfigurationError
from repro.machines import Engine, Machine, cooling_gradient_factors, paragon
from repro.machines.cpu import CpuModel
from repro.machines.network import ContentionNetwork, Mesh2D


class TestCoolingGradient:
    def test_span_matches_variability(self):
        factors = cooling_gradient_factors(variability=0.07)
        assert min(factors) == pytest.approx(0.93)
        assert max(factors) == pytest.approx(1.0)

    def test_monotone_with_distance_from_cooling(self):
        factors = cooling_gradient_factors(width=4, height=4, variability=0.1)
        rows = [factors[r * 4] for r in range(4)]
        assert rows == sorted(rows)

    def test_zero_variability_is_uniform(self):
        factors = cooling_gradient_factors(variability=0.0)
        assert set(factors) == {1.0}

    def test_bad_variability_raises(self):
        with pytest.raises(ConfigurationError):
            cooling_gradient_factors(variability=1.5)


class TestMachineSpeedFactors:
    def _machine(self, speed_factors):
        return Machine(
            name="m",
            cpu=CpuModel(1e6, 1e6, 1e6),
            network=ContentionNetwork(topology=Mesh2D(2, 2)),
            placement=[0, 1, 2, 3],
            speed_factors=speed_factors,
        )

    def test_slow_node_takes_longer(self):
        machine = self._machine([0.5, 1.0, 1.0, 1.0])

        def prog(ctx):
            yield ctx.compute(flops=1e6)
            return None

        result = Engine(machine).run(prog)
        assert result.finish_times[0] == pytest.approx(2.0)
        assert result.finish_times[1] == pytest.approx(1.0)

    def test_dict_factors_by_node(self):
        machine = self._machine({2: 0.5})
        assert machine.rank_speed == [1.0, 1.0, 0.5, 1.0]

    def test_default_uniform(self):
        machine = self._machine(None)
        assert machine.rank_speed == [1.0] * 4

    def test_nonpositive_factor_raises(self):
        with pytest.raises(ConfigurationError):
            self._machine([1.0, 0.0, 1.0, 1.0])

    def test_short_list_raises(self):
        with pytest.raises(ConfigurationError):
            self._machine([1.0, 1.0])

    def test_speed_variability_creates_imbalance(self):
        """Uniform work on a thermally graded machine shows up as
        imbalance overhead — the Section 5.4 observation that the same
        problem ran at different speeds on different partitions."""
        machine = paragon(32, protocol="nx", cooling_variability=0.07)

        def prog(ctx):
            yield ctx.compute(flops=4e6)
            return None

        result = Engine(machine).run(prog)
        spread = max(result.finish_times) / min(result.finish_times) - 1.0
        assert 0.03 < spread <= 0.08
        assert max(b.imbalance_s for b in result.budgets) > 0.0

    def test_partition_position_changes_runtime(self):
        """The same 4-node job runs measurably slower on the partition
        nearest the cooling system."""
        factors = cooling_gradient_factors(variability=0.07)
        base = dict(
            cpu=CpuModel(4e6, 2.24e6, 5.5e6),
            network=ContentionNetwork(topology=Mesh2D(4, 16)),
            speed_factors=factors,
        )
        cold = Machine(name="cold", placement=[0, 1, 2, 3], **base)
        warm = Machine(name="warm", placement=[60, 61, 62, 63], **base)

        def prog(ctx):
            yield ctx.compute(flops=4e6)
            return None

        cold_time = Engine(cold).run(prog).elapsed_s
        warm_time = Engine(warm).run(prog).elapsed_s
        assert cold_time > warm_time
        assert cold_time / warm_time == pytest.approx(1.0 / 0.93, rel=0.01)
