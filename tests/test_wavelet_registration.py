"""Tests for wavelet-based image registration and extended filter banks."""

import numpy as np
import pytest

from repro.data import landsat_like_scene
from repro.errors import ConfigurationError
from repro.wavelet import (
    daubechies_filter,
    mallat_decompose_2d,
    mallat_reconstruct_2d,
    phase_correlation,
    register_translation,
)


@pytest.fixture(scope="module")
def scene():
    return landsat_like_scene((128, 128))


class TestPhaseCorrelation:
    def test_recovers_exact_circular_shift(self, scene):
        target = np.roll(scene, (-5, 9), axis=(0, 1))
        assert phase_correlation(scene, target) == (5, -9)

    def test_zero_shift(self, scene):
        assert phase_correlation(scene, scene) == (0, 0)

    def test_large_shift_wraps_to_signed(self, scene):
        target = np.roll(scene, (-100, 0), axis=(0, 1))
        dy, dx = phase_correlation(scene, target)
        # 100 forward == 28 backward on a 128 row image.
        assert (dy, dx) == (-28, 0)

    def test_shape_mismatch_raises(self, scene):
        with pytest.raises(ConfigurationError):
            phase_correlation(scene, scene[:64])


class TestRegisterTranslation:
    @pytest.mark.parametrize("shift", [(3, -7), (40, 25), (-60, 50), (0, 0)])
    def test_exact_recovery(self, scene, shift):
        target = np.roll(scene, (-shift[0], -shift[1]), axis=(0, 1))
        result = register_translation(scene, target)
        assert result.shift == shift
        assert result.score == pytest.approx(1.0, abs=1e-9)

    def test_path_refines_coarse_to_fine(self, scene):
        target = np.roll(scene, (-40, -24), axis=(0, 1))
        result = register_translation(scene, target)
        assert len(result.path) >= 2
        # The final path entry is the answer; earlier ones are coarser.
        assert result.path[-1] == result.shift

    def test_robust_to_noise(self, scene):
        rng = np.random.default_rng(5)
        target = np.roll(scene, (-12, 6), axis=(0, 1))
        noisy = target + rng.standard_normal(target.shape) * 0.05 * scene.std()
        result = register_translation(scene, noisy)
        assert result.shift == (12, -6)
        assert result.score > 0.9

    def test_explicit_levels_and_bank(self, scene):
        target = np.roll(scene, (-8, -8), axis=(0, 1))
        result = register_translation(
            scene, target, bank=daubechies_filter(4), levels=2
        )
        assert result.shift == (8, 8)

    def test_bad_levels_raise(self, scene):
        with pytest.raises(ConfigurationError):
            register_translation(scene, scene, levels=99)

    def test_shape_mismatch_raises(self, scene):
        with pytest.raises(ConfigurationError):
            register_translation(scene, scene[:, :64])


class TestExtendedDaubechies:
    @pytest.mark.parametrize("length", [6, 10, 12, 16, 20, 28])
    def test_factorized_banks_are_orthonormal(self, length):
        assert daubechies_filter(length).is_orthonormal(tol=1e-7)

    @pytest.mark.parametrize("length", [6, 12, 20])
    def test_perfect_reconstruction(self, length):
        bank = daubechies_filter(length)
        image = np.random.default_rng(1).random((64, 64))
        pyramid = mallat_decompose_2d(image, bank, 1)
        np.testing.assert_allclose(
            mallat_reconstruct_2d(pyramid, bank), image, atol=1e-8
        )

    def test_derived_matches_tabulated(self):
        from repro.wavelet.filters import _DB2, _DB4, _daubechies_scaling

        np.testing.assert_allclose(_daubechies_scaling(2), _DB2, atol=1e-10)
        np.testing.assert_allclose(_daubechies_scaling(4), _DB4, atol=1e-6)

    def test_vanishing_moments(self):
        """A length-2p Daubechies high-pass annihilates polynomials of
        degree < p."""
        for length, order in ((4, 2), (8, 4), (12, 6)):
            bank = daubechies_filter(length)
            n = np.arange(length, dtype=np.float64)
            for degree in range(order):
                moment = (bank.highpass * n**degree).sum()
                assert abs(moment) < 1e-6, (length, degree)

    def test_out_of_range_lengths_raise(self):
        with pytest.raises(ConfigurationError):
            daubechies_filter(30)
        with pytest.raises(ConfigurationError):
            daubechies_filter(5)
        with pytest.raises(ConfigurationError):
            daubechies_filter(0)
