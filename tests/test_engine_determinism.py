"""Determinism regression tests and property tests for the engine's
matching/sizing primitives.

The fault subsystem's whole value rests on replay determinism: two runs
of the same (program, machine, plan) must produce byte-identical traces
and budgets.  These tests pin that, plus the white-box contracts the
scheduler relies on — ``payload_nbytes`` totalling rules and the
``(arrive, (src, tag))`` tie-break in mailbox matching.
"""

import pickle

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.machines import ANY_SOURCE, ANY_TAG, Engine, paragon, payload_nbytes
from repro.machines.engine import _RankState, _RecvOp
from repro.machines.faults import FaultConfig, FaultPlan


def _busy_program(ctx, steps=3):
    """Ring exchange with compute, wildcard recvs, and checkpoints —
    exercises every trace event kind."""
    right = (ctx.rank + 1) % ctx.nranks
    acc = float(ctx.rank)
    for step in range(steps):
        yield ctx.compute(flops=2e6)
        yield ctx.send(right, np.full(16, acc), tag=step)
        token = yield ctx.recv(tag=step)  # wildcard source
        acc += float(token[0])
        yield ctx.checkpoint((step + 1, acc))
    return acc


def _snapshot(run):
    """Byte-stable fingerprint of everything a run produced."""
    return pickle.dumps(
        (run.elapsed_s, run.results, run.budgets, run.finish_times,
         run.messages_sent, run.bytes_sent, run.fault_stats, run.trace),
        protocol=pickle.HIGHEST_PROTOCOL,
    )


class TestReplayDeterminism:
    def test_back_to_back_runs_byte_identical(self):
        # Fresh machine per run: the contention network carries state.
        runs = [
            Engine(paragon(4, protocol="nx"), record_trace=True).run(_busy_program)
            for _ in range(2)
        ]
        assert _snapshot(runs[0]) == _snapshot(runs[1])

    def test_faulted_runs_byte_identical(self):
        cfg = FaultConfig(
            drop_rate=0.3, duplicate_rate=0.2, corrupt_rate=0.1,
            delay_rate=0.3, max_delay_s=1e-3,
            stragglers=((1, 2.0, 0.0, 1.0),),
            link_slowdowns=((0, 2, 3.0, 0.0, 1.0),),
        )
        runs = [
            Engine(
                paragon(4, protocol="nx"), record_trace=True,
                faults=FaultPlan(11, cfg),
            ).run(_busy_program)
            for _ in range(2)
        ]
        assert _snapshot(runs[0]) == _snapshot(runs[1])

    def test_tracing_does_not_perturb_schedule(self):
        # Fault decisions are hash-keyed, not stream-drawn, so observing
        # the run (tracing on) cannot change any timing or value.
        plan = lambda: FaultPlan(3, FaultConfig(drop_rate=0.3, duplicate_rate=0.2))  # noqa: E731
        traced = Engine(
            paragon(4, protocol="nx"), record_trace=True, faults=plan()
        ).run(_busy_program)
        blind = Engine(paragon(4, protocol="nx"), faults=plan()).run(_busy_program)
        assert traced.elapsed_s == blind.elapsed_s
        assert traced.results == blind.results
        assert traced.budgets == blind.budgets
        assert traced.fault_stats == blind.fault_stats

    def test_different_seeds_diverge(self):
        cfg = FaultConfig(drop_rate=0.4, duplicate_rate=0.2)
        elapsed = {
            Engine(paragon(4, protocol="nx"), faults=FaultPlan(seed, cfg))
            .run(_busy_program).elapsed_s
            for seed in range(6)
        }
        assert len(elapsed) > 1  # seeds actually steer the schedule


# --------------------------------------------------------------------------
# payload_nbytes properties
# --------------------------------------------------------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**31), 2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=8),
    st.binary(max_size=16),
    hnp.arrays(
        dtype=st.sampled_from([np.float64, np.float32, np.int32]),
        shape=st.integers(0, 8),
        elements=st.just(0),
    ),
)

payloads = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=4), children, max_size=4),
        st.tuples(children, children),
    ),
    max_leaves=12,
)


class TestPayloadNbytesProperties:
    @given(payload=payloads)
    @settings(max_examples=80, deadline=None)
    def test_nonnegative_int(self, payload):
        size = payload_nbytes(payload)
        assert isinstance(size, int)
        assert size >= 0

    @given(payload=payloads)
    @settings(max_examples=60, deadline=None)
    def test_list_adds_item_plus_header(self, payload):
        assert payload_nbytes([payload]) == payload_nbytes(payload) + 8
        assert payload_nbytes((payload,)) == payload_nbytes(payload) + 8

    @given(items=st.lists(scalars, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_list_is_sum_of_items(self, items):
        assert payload_nbytes(items) == sum(payload_nbytes(i) + 8 for i in items)

    @given(
        arr=hnp.arrays(
            dtype=st.sampled_from([np.float64, np.float32, np.int16]),
            shape=hnp.array_shapes(max_dims=3, max_side=5).map(
                lambda s: s if all(s) else (0,)
            ),
            elements=st.just(1),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_array_reports_buffer_size(self, arr):
        assert payload_nbytes(arr) == arr.nbytes

    def test_zero_size_array_is_zero(self):
        assert payload_nbytes(np.empty(0)) == 0
        assert payload_nbytes(np.empty((3, 0, 2))) == 0

    @given(blob=st.binary(max_size=64), text=st.text(max_size=32))
    @settings(max_examples=40, deadline=None)
    def test_bytes_and_text(self, blob, text):
        assert payload_nbytes(blob) == len(blob)
        assert payload_nbytes(text) == len(text.encode())


# --------------------------------------------------------------------------
# _match tie-break properties (white-box)
# --------------------------------------------------------------------------


def _engine_and_state(nranks=8):
    engine = Engine(paragon(nranks, protocol="nx"))
    return engine, _RankState(0, None, nranks)


channels = st.lists(
    st.tuples(
        st.integers(0, 7),  # src
        st.integers(0, 3),  # tag
        st.floats(0.0, 1.0, allow_nan=False),  # arrive
    ),
    min_size=1,
    max_size=10,
    unique_by=lambda c: (c[0], c[1]),  # one head message per channel
)


class TestMatchProperties:
    @given(msgs=channels)
    @settings(max_examples=100, deadline=None)
    def test_wildcard_picks_lexicographic_minimum(self, msgs):
        engine, state = _engine_and_state()
        for src, tag, arrive in msgs:
            state.mailbox[(src, tag)] = [(arrive, f"m{src}.{tag}", None)]
        matched = engine._match(state, _RecvOp(src=ANY_SOURCE, tag=ANY_TAG))
        assert matched is not None
        (src, tag), (arrive, _payload, _meta) = matched
        expected = min((a, (s, t)) for s, t, a in msgs)
        assert (arrive, (src, tag)) == expected

    @given(msgs=channels, src=st.integers(0, 7))
    @settings(max_examples=60, deadline=None)
    def test_source_filter_respected(self, msgs, src):
        engine, state = _engine_and_state()
        for s, t, a in msgs:
            state.mailbox[(s, t)] = [(a, "x", None)]
        matched = engine._match(state, _RecvOp(src=src, tag=ANY_TAG))
        candidates = [(a, (s, t)) for s, t, a in msgs if s == src]
        if not candidates:
            assert matched is None
        else:
            (m_src, m_tag), (m_arrive, _, _) = matched
            assert m_src == src
            assert (m_arrive, (m_src, m_tag)) == min(candidates)

    @given(msgs=channels, deadline=st.floats(0.0, 1.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_before_excludes_late_arrivals(self, msgs, deadline):
        engine, state = _engine_and_state()
        for s, t, a in msgs:
            state.mailbox[(s, t)] = [(a, "x", None)]
        matched = engine._match(
            state, _RecvOp(src=ANY_SOURCE, tag=ANY_TAG), before=deadline
        )
        in_time = [(a, (s, t)) for s, t, a in msgs if a <= deadline]
        if not in_time:
            assert matched is None
            # late messages must stay queued for a later receive
            assert sum(len(q) for q in state.mailbox.values()) == len(msgs)
        else:
            (m_src, m_tag), (m_arrive, _, _) = matched
            assert (m_arrive, (m_src, m_tag)) == min(in_time)

    def test_tie_break_is_src_then_tag(self):
        engine, state = _engine_and_state()
        state.mailbox[(2, 0)] = [(0.5, "late src", None)]
        state.mailbox[(1, 3)] = [(0.5, "early src", None)]
        state.mailbox[(1, 1)] = [(0.5, "early src, early tag", None)]
        matched = engine._match(state, _RecvOp(src=ANY_SOURCE, tag=ANY_TAG))
        assert matched[0] == (1, 1)
