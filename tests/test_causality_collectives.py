"""Race-free certification of the collectives library (ISSUE satellite):
every collective is traced and certified free of wildcard hazards, and
``gssum_naive`` vs the prefix ``allreduce`` — the Section 4.2.2 global-sum
comparison — are certified individually."""

import numpy as np
import pytest

from repro.machines import Engine, Machine, exercise_collectives
from repro.machines.api import (
    allreduce,
    allreduce_rabenseifner,
    broadcast_tree,
    gssum_naive,
)
from repro.machines.cpu import CpuModel
from repro.machines.causality import certify_deterministic
from repro.machines.network import ContentionNetwork, FullyConnected


def ideal_machine(nranks):
    return Machine(
        name="ideal",
        cpu=CpuModel(1e9, 1e9, 1e9),
        network=ContentionNetwork(
            topology=FullyConnected(nranks), latency_s=1e-6, per_hop_s=0, bytes_per_s=1e9
        ),
        placement=list(range(nranks)),
        sw_send_overhead_s=1e-6,
        sw_recv_overhead_s=1e-6,
        copy_bytes_per_s=1e9,
    )


def certified(nranks, prog, *args, **kwargs):
    run = Engine(ideal_machine(nranks), record_trace=True).run(prog, *args, **kwargs)
    return run, certify_deterministic(run.trace)


@pytest.mark.parametrize("nranks", [2, 3, 4, 8])
def test_collectives_sweep_race_free(nranks):
    def prog(ctx):
        out = yield from exercise_collectives(ctx)
        return out

    run, report = certified(nranks, prog)
    # Posting-only certification: no collective uses wildcard matching
    # at all, so its matching cannot depend on timing.
    assert report.wildcard_recvs == 0
    assert report.deterministic
    # And the values are right while we're here.
    total = sum(range(nranks))
    for rank, out in enumerate(run.results):
        assert out["bcast"] == 0
        assert out["allreduce"] == total
        assert out["gssum_naive"] == total
        assert out["allgather"] == list(range(nranks))
        assert out["scatter"] == rank
        assert out["alltoall"] == [(src, rank) for src in range(nranks)]
        assert out["sendrecv"] == (rank - 1) % nranks


@pytest.mark.parametrize("nranks", [2, 4, 5, 8])
def test_gssum_naive_vs_prefix_allreduce_race_free(nranks):
    """The paper's two global-sum algorithms agree and neither is
    timing-sensitive, so the Fig. 7 gssum collapse is pure contention,
    not nondeterminism."""

    def prog(ctx):
        naive = yield from gssum_naive(ctx, float(ctx.rank + 1))
        prefix = yield from allreduce(ctx, float(ctx.rank + 1))
        return naive, prefix

    run, report = certified(nranks, prog)
    assert report.wildcard_recvs == 0 and report.deterministic
    expected = float(sum(range(1, nranks + 1)))
    for naive, prefix in run.results:
        assert naive == pytest.approx(expected)
        assert prefix == pytest.approx(expected)


@pytest.mark.parametrize("nranks", [2, 3, 4, 8])
def test_rabenseifner_race_free(nranks):
    """The hierarchical all-reduce (reduce-scatter + allgather) posts
    only exact-shape receives, so it certifies clean like the rest."""

    def prog(ctx):
        vec = np.full(8, float(ctx.rank + 1))
        out = yield from allreduce_rabenseifner(ctx, vec)
        return float(out[0])

    run, report = certified(nranks, prog)
    assert report.wildcard_recvs == 0 and report.deterministic
    expected = nranks * (nranks + 1) / 2
    for out in run.results:
        assert out == pytest.approx(expected)


@pytest.mark.parametrize("radix", [2, 3])
def test_broadcast_tree_race_free(radix):
    def prog(ctx):
        data = "blob" if ctx.rank == 2 else None
        return (yield from broadcast_tree(ctx, data, root=2, radix=radix))

    run, report = certified(6, prog)
    assert report.wildcard_recvs == 0 and report.deterministic
    assert run.results == ["blob"] * 6
