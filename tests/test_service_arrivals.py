"""Arrival-process tests: replay determinism, statistics, shapes."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.service.arrivals import (
    ARRIVAL_KINDS,
    DiurnalProcess,
    MMPPProcess,
    PoissonProcess,
    parse_arrival_spec,
)

HORIZON = 200.0


def _cv2(times):
    """Squared coefficient of variation of the interarrival gaps."""
    gaps = [b - a for a, b in zip(times, times[1:])]
    mean = sum(gaps) / len(gaps)
    var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
    return var / mean**2


class TestReplayDeterminism:
    @pytest.mark.parametrize(
        "process",
        [
            PoissonProcess(3.0, seed=42),
            MMPPProcess(3.0, seed=42),
            DiurnalProcess(3.0, seed=42),
        ],
        ids=ARRIVAL_KINDS,
    )
    def test_times_replays_identically(self, process):
        first = list(process.times(HORIZON))
        second = list(process.times(HORIZON))
        assert first == second
        assert first, "expected arrivals over a long horizon"

    def test_prefix_stability_across_horizons(self):
        # Growing the horizon must extend the stream, not reshuffle it.
        process = PoissonProcess(2.0, seed=9)
        short = list(process.times(50.0))
        long = list(process.times(HORIZON))
        assert long[: len(short)] == short

    def test_different_seeds_differ(self):
        a = list(PoissonProcess(3.0, seed=0).times(HORIZON))
        b = list(PoissonProcess(3.0, seed=1).times(HORIZON))
        assert a != b

    def test_times_are_strictly_increasing_and_bounded(self):
        for process in (
            PoissonProcess(5.0, seed=3),
            MMPPProcess(5.0, seed=3),
            DiurnalProcess(5.0, seed=3),
        ):
            times = list(process.times(HORIZON))
            assert all(b > a for a, b in zip(times, times[1:]))
            assert all(0.0 < t <= HORIZON for t in times)


class TestPoissonStatistics:
    def test_mean_interarrival_matches_rate(self):
        rate = 4.0
        times = list(PoissonProcess(rate, seed=1).times(500.0))
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean_gap = sum(gaps) / len(gaps)
        assert mean_gap == pytest.approx(1.0 / rate, rel=0.1)

    def test_count_matches_rate_times_horizon(self):
        rate = 4.0
        count = len(list(PoissonProcess(rate, seed=1).times(500.0)))
        expected = rate * 500.0
        # 5-sigma band of the Poisson count.
        assert abs(count - expected) < 5.0 * math.sqrt(expected)

    def test_interarrival_cv2_near_one(self):
        times = list(PoissonProcess(4.0, seed=1).times(500.0))
        assert _cv2(times) == pytest.approx(1.0, abs=0.25)


class TestMMPP:
    def test_long_run_rate_preserved(self):
        rate = 4.0
        count = len(list(MMPPProcess(rate, seed=5).times(2000.0)))
        assert count == pytest.approx(rate * 2000.0, rel=0.1)

    def test_burstier_than_poisson(self):
        times = list(MMPPProcess(4.0, seed=5).times(2000.0))
        assert _cv2(times) > 1.3

    def test_phase_parameters_validated(self):
        with pytest.raises(ConfigurationError):
            MMPPProcess(1.0, seed=0, burst=0.5)
        with pytest.raises(ConfigurationError):
            MMPPProcess(1.0, seed=0, idle=1.5)
        with pytest.raises(ConfigurationError):
            MMPPProcess(1.0, seed=0, cycle_s=0.0)


class TestDiurnal:
    def test_rate_at_follows_sinusoid(self):
        process = DiurnalProcess(10.0, seed=0, amplitude=0.8, period_s=60.0)
        assert process.rate_at(15.0) == pytest.approx(18.0)  # peak
        assert process.rate_at(45.0) == pytest.approx(2.0)  # trough
        assert process.rate_at(0.0) == pytest.approx(10.0)

    def test_peak_half_beats_trough_half(self):
        process = DiurnalProcess(10.0, seed=2, amplitude=0.8, period_s=60.0)
        times = list(process.times(600.0))  # 10 periods
        peak = sum(1 for t in times if (t % 60.0) < 30.0)
        trough = len(times) - peak
        assert peak > 2.0 * trough

    def test_mean_rate_preserved_by_thinning(self):
        process = DiurnalProcess(10.0, seed=2, amplitude=0.8, period_s=60.0)
        count = len(list(process.times(600.0)))
        assert count == pytest.approx(10.0 * 600.0, rel=0.1)

    def test_amplitude_validated(self):
        with pytest.raises(ConfigurationError):
            DiurnalProcess(1.0, seed=0, amplitude=1.0)


class TestParseSpec:
    def test_kind_with_rate(self):
        process = parse_arrival_spec("poisson:2.5", seed=7)
        assert isinstance(process, PoissonProcess)
        assert process.rate_s == 2.5 and process.seed == 7

    def test_kind_case_insensitive(self):
        assert isinstance(parse_arrival_spec("BURSTY:1", 0), MMPPProcess)

    def test_fallback_rate_keyword(self):
        process = parse_arrival_spec("diurnal", 0, rate_s=3.0)
        assert isinstance(process, DiurnalProcess) and process.rate_s == 3.0

    def test_spec_rate_wins_over_keyword(self):
        assert parse_arrival_spec("poisson:9", 0, rate_s=1.0).rate_s == 9.0

    def test_errors(self):
        with pytest.raises(ConfigurationError):
            parse_arrival_spec("weibull:1", 0)
        with pytest.raises(ConfigurationError):
            parse_arrival_spec("poisson:fast", 0)
        with pytest.raises(ConfigurationError):
            parse_arrival_spec("poisson", 0)  # no rate anywhere
        with pytest.raises(ConfigurationError):
            PoissonProcess(0.0, seed=0)
