"""Protocol-verifier guarantees: the three SPMD apps certify clean, every
planted defect is flagged with the exact rule id and line, the static
matched-channel set covers (and on the striped wavelet equals) the
channels observed in recorded traces, SARIF output validates, and the
new suppression forms work."""

import json
import textwrap

import numpy as np

import repro
from repro.analysis import (
    DEFAULT_PROTOCOL_PROGRAMS,
    ProtocolProgram,
    check_protocol,
    concrete_channels,
    format_sarif,
    lint_paths,
    lint_sources,
    validate_sarif,
)
from repro.analysis.linter import LintConfig
from repro.analysis.rules import parse_suppressions
from repro.analysis.sources import discover_package, modules_from_sources
from repro.data import plummer_sphere, uniform_cube
from repro.machines import Engine, paragon
from repro.machines.causality import observed_channels
from repro.nbody.parallel import manager_worker_program
from repro.pic import Grid3D
from repro.pic.parallel import pic_program
from repro.wavelet import filter_bank_for_length
from repro.wavelet.parallel.decomposition import StripeDecomposition
from repro.wavelet.parallel.spmd import striped_wavelet_program


def _repo_modules():
    root = repro.__file__.rsplit("/", 1)[0]
    return discover_package(root)


def _proto_findings(sources, programs):
    """PROTO-* findings from linting in-memory fixtures with the
    protocol pass enabled, as exact (rule_id, line) pairs."""
    config = LintConfig(protocol=True, protocol_programs=programs)
    report = lint_sources(sources, config)
    return [
        (f.rule_id, f.line)
        for f in report.findings
        if f.rule_id.startswith("PROTO-")
    ]


class TestRealProgramsCertify:
    def test_all_registered_programs_extract_and_certify(self):
        """The acceptance gate: every registered SPMD program — striped
        and block wavelet, 1-D forward/inverse, reconstruction, both
        n-body drivers, PIC — yields a protocol with zero PROTO-*
        findings: sends matched, deadlock-free, collectives uniform,
        guard depths on contract."""
        findings, protocols = check_protocol(_repo_modules())
        assert findings == [], [f"{f.module}:{f.line} {f.rule_id}" for f in findings]
        assert {p.func for p in protocols} == {
            spec.func for spec in DEFAULT_PROTOCOL_PROGRAMS
        }
        # Each point-to-point program has matched channels; the deadlock
        # proof is non-vacuous (there are blocking ops to order).
        matched = {p.func: len(p.matches) for p in protocols}
        assert matched["striped_wavelet_program"] == 7
        assert matched["block_wavelet_program"] == 12
        assert matched["manager_worker_program"] >= 2

    def test_lint_protocol_repo_clean(self):
        report = lint_paths(config=LintConfig(protocol=True))
        assert report.findings == []
        assert report.exit_code == 0

    def test_cli_protocol_flag(self, capsys):
        from repro.cli import main

        assert main(["lint", "--protocol"]) == 0
        assert "0 error(s)" in capsys.readouterr().out


class TestPlantedFixtures:
    def test_unmatched_send_and_recv(self):
        """A send to ``rank+1`` paired with a receive *from* ``rank+1``:
        the inversion fails in both directions."""
        source = textwrap.dedent(
            """\
            TAG = 7200

            def skew_program(ctx):
                rank, nranks = ctx.rank, ctx.nranks
                right = (rank + 1) % nranks
                yield ctx.send(right, rank, tag=TAG)
                got = yield ctx.recv(right, tag=TAG)
                return got
            """
        )
        assert _proto_findings(
            {"fix.skew": source}, (ProtocolProgram("fix.skew", "skew_program"),)
        ) == [
            ("PROTO-UNMATCHED-SEND", 6),
            ("PROTO-UNMATCHED-RECV", 7),
        ]

    def test_symbolic_deadlock_cycle(self):
        """Every rank posts its ring receive before its send: correctly
        matched, but the wait-for graph has a cycle at every nranks."""
        source = textwrap.dedent(
            """\
            TAG = 7100

            def ring_program(ctx):
                rank, nranks = ctx.rank, ctx.nranks
                left = (rank - 1) % nranks
                right = (rank + 1) % nranks
                got = yield ctx.recv(left, tag=TAG)
                yield ctx.send(right, rank, tag=TAG)
                return got
            """
        )
        assert _proto_findings(
            {"fix.ring": source}, (ProtocolProgram("fix.ring", "ring_program"),)
        ) == [("PROTO-DEADLOCK-CYCLE", 7)]

    def test_send_before_recv_ring_is_deadlock_free(self):
        """The same exchange with sends first is certified clean — the
        cycle finding above is about order, not shape."""
        source = textwrap.dedent(
            """\
            TAG = 7101

            def shift_program(ctx):
                rank, nranks = ctx.rank, ctx.nranks
                left = (rank - 1) % nranks
                right = (rank + 1) % nranks
                yield ctx.send(right, rank, tag=TAG)
                got = yield ctx.recv(left, tag=TAG)
                return got
            """
        )
        assert (
            _proto_findings(
                {"fix.shift": source}, (ProtocolProgram("fix.shift", "shift_program"),)
            )
            == []
        )

    def test_rank_divergent_collective(self):
        source = textwrap.dedent(
            """\
            from repro.machines.api import bcast

            def lopsided_program(ctx):
                if ctx.rank == 0:
                    data = yield from bcast(ctx, list(range(8)), root=0)
                else:
                    data = None
                return data
            """
        )
        assert _proto_findings(
            {"fix.lopsided": source},
            (ProtocolProgram("fix.lopsided", "lopsided_program"),),
        ) == [("PROTO-COLLECTIVE-DIVERGENCE", 5)]

    def test_off_by_one_guard_depth(self):
        """A 1-D analysis exchange shipping ``back - 1`` rows on the
        guard tag: flagged once against the plan contract."""
        source = textwrap.dedent(
            """\
            from repro.machines.tags import DWT1D_GUARD

            def offbyone_program(ctx, samples, bank):
                rank, nranks = ctx.rank, ctx.nranks
                m = bank.length
                front, back = 0, m
                left = (rank - 1) % nranks
                right = (rank + 1) % nranks
                current = samples
                yield ctx.send(left, current[:back - 1].copy(), tag=DWT1D_GUARD)
                guard = yield ctx.recv(right, tag=DWT1D_GUARD)
                return guard
            """
        )
        assert _proto_findings(
            {"fix.depth": source},
            (ProtocolProgram("fix.depth", "offbyone_program", "analysis"),),
        ) == [("PROTO-GUARD-DEPTH-MISMATCH", 10)]

    def test_correct_guard_depth_certifies(self):
        """The honest version of the same program is contract-clean."""
        source = textwrap.dedent(
            """\
            from repro.machines.tags import DWT1D_GUARD

            def honest_program(ctx, samples, bank):
                rank, nranks = ctx.rank, ctx.nranks
                m = bank.length
                front, back = 0, m
                left = (rank - 1) % nranks
                right = (rank + 1) % nranks
                current = samples
                yield ctx.send(left, current[:back].copy(), tag=DWT1D_GUARD)
                guard = yield ctx.recv(right, tag=DWT1D_GUARD)
                return guard
            """
        )
        assert (
            _proto_findings(
                {"fix.honest": source},
                (ProtocolProgram("fix.honest", "honest_program", "analysis"),),
            )
            == []
        )


class TestStaticSupersetOfTrace:
    """The verifier's validation discipline: its concrete expansion must
    cover every channel a recorded run used — exact on striped wavelet."""

    def _protocols(self):
        findings, protocols = check_protocol(_repo_modules())
        assert findings == []
        return {p.func: p for p in protocols}

    def test_striped_wavelet_exact(self):
        bank = filter_bank_for_length(4)
        image = np.random.default_rng(0).normal(size=(64, 64))
        run = Engine(paragon(4), record_trace=True).run(
            striped_wavelet_program,
            image,
            bank,
            1,
            StripeDecomposition(64, 64, 4, 1),
        )
        dynamic = observed_channels(run.trace)
        env = {
            "kernel": "conv",
            "nranks": 4,
            "distribute": True,
            "collect": True,
            "restore": None,
            "sweep": False,
            "m": bank.length,
            "front": 0,
            "back": bank.length,
            "rows": 16,
            "checkpoint_interval": 0,
        }
        static = concrete_channels(
            self._protocols()["striped_wavelet_program"], 4, env
        )
        assert dynamic == static  # superset, and exact
        # Sanity on shape: one fan-out, one ring shift, one fan-in.
        assert (0, 1, 1) in static and (2, 1, 3) in static and (3, 0, 4) in static

    def test_nbody_manager_worker_superset(self):
        run = Engine(paragon(4, protocol="nx"), record_trace=True).run(
            manager_worker_program, plummer_sphere(64, dim=2, seed=0), 1
        )
        dynamic = observed_channels(run.trace)
        env = {
            "nranks": 4,
            "checkpoint_interval": 0,
            "restore": None,
            "integrator": "leapfrog",
        }
        static = concrete_channels(self._protocols()["manager_worker_program"], 4, env)
        assert dynamic <= static
        assert {(r, 0, 11) for r in (1, 2, 3)} <= static

    def test_pic_superset_and_final_gather(self):
        run = Engine(paragon(4, protocol="nx"), record_trace=True).run(
            pic_program,
            Grid3D(8),
            uniform_cube(128, thermal_speed=0.05, seed=0),
            1,
            collect=False,
        )
        dynamic = observed_channels(run.trace)
        env = {"nranks": 4, "collect": False, "poisson": "replicated"}
        proto = self._protocols()["pic_program"]
        static = concrete_channels(proto, 4, env)
        assert dynamic <= static
        # With collection on, the user-tagged final gather appears as a
        # fan-in star even though it is a collective.
        with_collect = concrete_channels(proto, 4, dict(env, collect=True))
        assert {(r, 0, 21) for r in (1, 2, 3)} <= with_collect


class TestSarifExport:
    def _dirty_report(self):
        source = (
            "import time\n\ndef prog(ctx):\n"
            "    got = yield ctx.recv()\n"
            "    return got, time.time()\n"
        )
        report = lint_sources({"fix.bad": source})
        assert report.findings
        return report

    def test_sarif_document_validates(self):
        doc = format_sarif(self._dirty_report())
        assert validate_sarif(doc) == []
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert "PROTO-DEADLOCK-CYCLE" in rule_ids
        for result in run["results"]:
            index = result["ruleIndex"]
            assert rule_ids[index] == result["ruleId"]
            region = result["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] >= 1

    def test_validator_rejects_corruption(self):
        doc = format_sarif(self._dirty_report())
        doc["runs"][0]["results"][0]["ruleIndex"] = 999
        assert any("ruleIndex" in e for e in validate_sarif(doc))
        assert any("version" in e for e in validate_sarif({"runs": []}))

    def test_cli_sarif_format(self, capsys):
        from repro.cli import main

        assert main(["lint", "--format=sarif"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert validate_sarif(doc) == []
        assert doc["runs"][0]["results"] == []  # repo lints clean


class TestSuppressionForms:
    def test_parse_disable_next_and_file(self):
        source = (
            "# lint: disable-next=DET-WALL-CLOCK\n"
            "x = 1\n"
            "# lint: disable-file=COMM-TAG-LITERAL\n"
        )
        assert parse_suppressions(source) == {
            2: {"DET-WALL-CLOCK"},
            0: {"COMM-TAG-LITERAL"},
        }

    def test_disable_next_waives_following_line(self):
        source = textwrap.dedent(
            """\
            import time

            def stamp():
                # lint: disable-next=DET-WALL-CLOCK
                return time.time()
            """
        )
        report = lint_sources({"fix.next": source})
        assert report.findings == []
        assert [f.rule_id for f in report.suppressed] == ["DET-WALL-CLOCK"]

    def test_disable_file_waives_whole_module(self):
        source = textwrap.dedent(
            """\
            # lint: disable-file=DET-WALL-CLOCK
            import time

            def stamp():
                return time.time()

            def stamp2():
                return time.time()
            """
        )
        report = lint_sources({"fix.file": source})
        assert report.findings == []
        assert [f.rule_id for f in report.suppressed] == [
            "DET-WALL-CLOCK",
            "DET-WALL-CLOCK",
        ]

    def test_disable_file_is_rule_specific(self):
        source = textwrap.dedent(
            """\
            # lint: disable-file=COMM-TAG-LITERAL
            import time

            def stamp():
                return time.time()
            """
        )
        report = lint_sources({"fix.other": source})
        assert [f.rule_id for f in report.findings] == ["DET-WALL-CLOCK"]


class TestExtractionEdges:
    def test_missing_module_is_skipped(self):
        mods = modules_from_sources({"fix.empty": "x = 1\n"})
        findings, protocols = check_protocol(
            mods, programs=(ProtocolProgram("fix.absent", "nope"),)
        )
        assert findings == [] and protocols == []

    def test_unresolvable_tag_is_reported(self):
        source = textwrap.dedent(
            """\
            def wild_program(ctx, tag):
                rank, nranks = ctx.rank, ctx.nranks
                right = (rank + 1) % nranks
                left = (rank - 1) % nranks
                yield ctx.send(right, rank, tag=tag)
                got = yield ctx.recv(left, tag=tag)
                return got
            """
        )
        found = _proto_findings(
            {"fix.wild": source}, (ProtocolProgram("fix.wild", "wild_program"),)
        )
        assert found == [
            ("PROTO-UNMATCHED-SEND", 5),
            ("PROTO-UNMATCHED-RECV", 6),
        ]

    def test_xor_butterfly_matches_and_expands(self):
        source = textwrap.dedent(
            """\
            TAG = 7300

            def butterfly_program(ctx):
                rank, nranks = ctx.rank, ctx.nranks
                partner = rank ^ 1
                yield ctx.send(partner, rank, tag=TAG)
                got = yield ctx.recv(partner, tag=TAG)
                return got
            """
        )
        mods = modules_from_sources({"fix.xor": source})
        specs = (ProtocolProgram("fix.xor", "butterfly_program"),)
        findings, protocols = check_protocol(mods, programs=specs)
        assert findings == []
        channels = concrete_channels(protocols[0], 4, {})
        assert channels == {(0, 1, 7300), (1, 0, 7300), (2, 3, 7300), (3, 2, 7300)}
