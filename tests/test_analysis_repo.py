"""Repo-level analysis guarantees: the tree lints clean, the tag
registry's frozen numbering holds, and the static race candidates are a
superset of the dynamic detector's findings on traced runs."""

import json
import textwrap

import numpy as np
import pytest

from repro.analysis import lint_paths, lint_sources
from repro.analysis.linter import LintConfig
from repro.data import plummer_sphere, uniform_cube
from repro.errors import ConfigurationError
from repro.machines import Engine, paragon
from repro.machines.causality import find_wildcard_races
from repro.machines.tags import (
    REGISTRY,
    USER_TAG_CEILING,
    TagRegistry,
    verify_collision_free,
)
from repro.nbody.parallel import manager_worker_program
from repro.pic import Grid3D
from repro.pic.parallel import pic_program
from repro.wavelet import filter_bank_for_length
from repro.wavelet.parallel.decomposition import StripeDecomposition
from repro.wavelet.parallel.spmd import striped_wavelet_program


class TestRepoIsClean:
    def test_lint_clean_with_empty_baseline(self):
        """The gate the CI lint job enforces: zero unwaived findings and
        *no baseline needed* — the allowance file stays empty/absent."""
        report = lint_paths()
        assert report.modules_checked > 80
        details = "\n".join(
            f"{f.path}:{f.line} [{f.rule_id}] {f.message}" for f in report.findings
        )
        assert report.findings == [], f"repo must lint clean:\n{details}"
        assert report.exit_code == 0
        assert report.baselined == []

    def test_only_reviewed_suppressions_exist(self):
        """Inline waivers are a reviewed set; growing it is a deliberate
        act, not an accident."""
        report = lint_paths()
        waived = sorted((f.module, f.rule_id) for f in report.suppressed)
        assert waived == [
            # _match_linear and _backfill_heap both reduce their dict
            # walk to an order-insensitive minimum.
            ("repro.machines.engine", "DET-DICT-ITERATION"),
            ("repro.machines.engine", "DET-DICT-ITERATION"),
            ("repro.perf.bench", "DET-WALL-CLOCK"),
            ("repro.perf.bench", "DET-WALL-CLOCK"),
            # The engine rank-scaling benchmark times host seconds by
            # design (events/sec is the quantity under ratchet).
            ("repro.perf.engine_bench", "DET-WALL-CLOCK"),
            ("repro.perf.engine_bench", "DET-WALL-CLOCK"),
        ]


class TestTagRegistry:
    def test_frozen_numbering(self):
        """The digest pins in test_runtime_compat.py ride on these exact
        values — renumbering is a trace-format break."""
        expected = {
            "wavelet.spmd.distribute": 1,
            "wavelet.spmd.row_guard": 2,
            "wavelet.spmd.col_guard": 3,
            "wavelet.spmd.collect": 4,
            "wavelet.reconstruct.distribute": 5,
            "wavelet.reconstruct.guard": 6,
            "wavelet.reconstruct.collect": 7,
            "wavelet.dwt1d.distribute": 8,
            "wavelet.dwt1d.guard": 9,
            "wavelet.dwt1d.collect": 10,
            "nbody.update": 11,
            "wavelet.spmd.sweep_guard": 12,
            "wavelet.spmd.sweep_guard_front": 13,
            "wavelet.spmd.sweep_col_guard": 14,
            "wavelet.spmd.sweep_col_guard_front": 15,
            "pic.final": 21,
            "wavelet.spmd.col_guard_front": 31,
            "wavelet.spmd.row_guard_front": 32,
            "wavelet.dwt1d.guard_front": 33,
            "wavelet.dwt1d.guard_back": 34,
            "wavelet.reconstruct.guard_back": 35,
            "scenarios.adversary.spam": 36,
        }
        assert REGISTRY.all_tags() == expected

    def test_modules_reexport_registry_values(self):
        from repro.machines import api
        from repro.machines.faults import transport
        from repro.wavelet.parallel import spmd

        assert spmd._TAG_ROW_GUARD == 2
        assert api.COLLECTIVE_TAG_BASE == 900_000
        assert transport.DATA_TAG_BASE == 950_000
        assert transport.ACK_TAG_BASE == 975_000

    def test_verify_collision_free_passes(self):
        verify_collision_free()

    def test_duplicate_value_rejected(self):
        reg = TagRegistry()
        reg.allocate("a", 1)
        with pytest.raises(ConfigurationError, match="already owned"):
            reg.allocate("b", 1)

    def test_duplicate_name_rejected(self):
        reg = TagRegistry()
        reg.allocate("a", 1)
        with pytest.raises(ConfigurationError, match="already allocated"):
            reg.allocate("a", 2)

    def test_allocation_inside_reserved_range_rejected(self):
        reg = TagRegistry()
        reg.reserve_range("block", 100, 200)
        with pytest.raises(ConfigurationError, match="reserved"):
            reg.allocate("a", 150)

    def test_overlapping_ranges_rejected(self):
        reg = TagRegistry()
        reg.reserve_range("block", 100, 200)
        with pytest.raises(ConfigurationError, match="overlaps"):
            reg.reserve_range("other", 150, 250)

    def test_name_of_resolves_values_and_ranges(self):
        assert REGISTRY.name_of(2) == "wavelet.spmd.row_guard"
        assert REGISTRY.name_of(900_007) == "collectives"
        assert REGISTRY.name_of(950_001) == "faults.transport.data"
        assert REGISTRY.name_of(899_999) is None

    def test_user_tags_below_ceiling(self):
        assert all(v < USER_TAG_CEILING for v in REGISTRY.all_tags().values())


def _static_race_candidates(module_names):
    """COMM-WILDCARD-RECV findings for the given real modules."""
    import repro

    root = repro.__file__.rsplit("/", 1)[0]
    report = lint_paths([root])
    return [
        f
        for f in report.findings + report.suppressed
        if f.rule_id == "COMM-WILDCARD-RECV" and f.module in module_names
    ]


class TestStaticSupersetOfDynamic:
    """Static race candidates must cover every dynamic race: a run can
    only exercise wildcard receives that exist in the source."""

    def test_apps_zero_dynamic_races_zero_static_candidates(self):
        """All three applications: the dynamic detector certifies the
        traced runs race-free AND the static analysis finds no wildcard
        receive in their sources — the superset relation holds as
        empty ⊇ empty, with the stronger fact that it is exact."""
        candidates = _static_race_candidates(
            {
                "repro.wavelet.parallel.spmd",
                "repro.nbody.parallel",
                "repro.pic.parallel",
            }
        )
        assert candidates == []

        image = np.random.default_rng(0).normal(size=(64, 64))
        runs = [
            Engine(paragon(4), record_trace=True).run(
                striped_wavelet_program,
                image,
                filter_bank_for_length(4),
                1,
                StripeDecomposition(64, 64, 4, 1),
            ),
            Engine(paragon(4, protocol="nx"), record_trace=True).run(
                manager_worker_program, plummer_sphere(64, dim=2, seed=0), 1
            ),
            Engine(paragon(4, protocol="nx"), record_trace=True).run(
                pic_program,
                Grid3D(8),
                uniform_cube(128, thermal_speed=0.05, seed=0),
                1,
                collect=False,
            ),
        ]
        for run in runs:
            assert find_wildcard_races(run.trace) == []

    def test_racing_program_flagged_statically_and_dynamically(self):
        """A program with a genuine wildcard race: the dynamic detector
        reports it, and the static candidate set is non-empty — i.e. the
        superset relation is not vacuous."""
        source = textwrap.dedent(
            """\
            from repro.machines import ANY_SOURCE

            TAG = 7990

            def racy_program(ctx):
                if ctx.rank == 0:
                    first = yield ctx.recv(ANY_SOURCE, tag=TAG)
                    second = yield ctx.recv(ANY_SOURCE, tag=TAG)
                    return (first, second)
                yield ctx.compute(flops=1e5 * ctx.rank)
                yield ctx.send(0, ctx.rank, tag=TAG)
                return None
            """
        )
        report = lint_sources({"fix.racy": source})
        static_sites = [
            f.line for f in report.findings if f.rule_id == "COMM-WILDCARD-RECV"
        ]
        assert static_sites == [7, 8]

        namespace = {}
        exec(compile(source, "<fix.racy>", "exec"), namespace)
        run = Engine(paragon(3), record_trace=True).run(namespace["racy_program"])
        races = find_wildcard_races(run.trace)
        assert races, "the planted race must be dynamically observable"
        # Superset at site granularity: every dynamically racing receive
        # was statically flagged (the static list covers both receives;
        # the dynamic frontier attributes the hazard to the first).
        assert len(static_sites) >= len(races)

    def test_dynamic_detector_finds_nothing_static_missed(self):
        """A causally-ordered program whose wildcard receives are benign:
        static analysis still lists them as candidates (superset may be
        strict), and the dynamic run confirms they never race."""
        source = textwrap.dedent(
            """\
            from repro.machines import ANY_SOURCE

            TAG = 7991
            GO = 7992

            def ordered_program(ctx):
                if ctx.rank == 0:
                    first = yield ctx.recv(ANY_SOURCE, tag=TAG)
                    yield ctx.send(2, "go", tag=GO)
                    second = yield ctx.recv(ANY_SOURCE, tag=TAG)
                    return (first, second)
                if ctx.rank == 1:
                    yield ctx.send(0, "early", tag=TAG)
                else:
                    _ = yield ctx.recv(0, tag=GO)
                    yield ctx.send(0, "late", tag=TAG)
                return None
            """
        )
        report = lint_sources({"fix.ordered": source})
        static_sites = [
            f.line for f in report.findings if f.rule_id == "COMM-WILDCARD-RECV"
        ]
        assert static_sites == [8, 10]

        namespace = {}
        exec(compile(source, "<fix.ordered>", "exec"), namespace)
        run = Engine(paragon(3), record_trace=True).run(namespace["ordered_program"])
        assert find_wildcard_races(run.trace) == []  # strict superset: 2 > 0


class TestLintCli:
    def test_human_format_clean_exit(self, capsys):
        from repro.cli import main

        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s)" in out

    def test_json_format_schema(self, capsys):
        from repro.cli import main

        assert main(["lint", "--format=json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.lint.report/v1"
        assert doc["errors"] == 0 and doc["findings"] == []
        assert "COMM-TAG-COLLISION" in doc["rules"]

    def test_violating_file_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.py"
        bad.write_text(
            "import time\n\ndef prog(ctx):\n"
            "    got = yield ctx.recv()\n"
            "    return got, time.time()\n"
        )
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "COMM-WILDCARD-RECV" in out and "DET-WALL-CLOCK" in out
        assert f"{bad}:4" in out

    def test_write_and_apply_baseline(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.py"
        bad.write_text("import time\n\ndef stamp():\n    return time.time()\n")
        baseline = tmp_path / "baseline.json"
        assert main(["lint", str(bad), "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert main(["lint", str(bad), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_comm_summary_lists_app_sites(self, capsys):
        from repro.cli import main

        assert main(["lint", "--comm-summary"]) == 0
        out = capsys.readouterr().out
        assert "repro.wavelet.parallel.spmd:" in out
        assert "_TAG_ROW_GUARD=2" in out
