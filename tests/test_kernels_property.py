"""Property-based kernel equivalence (hypothesis) and the seed-path
byte-identity regression.

The lifting, fused, and single-loop kernels must reproduce the conv
reference — forward, inverse, and round-trip — for arbitrary float64
inputs, within a tolerance that scales with the data magnitude.  The default ``kernel="conv"`` path
must stay byte-for-byte what the seed produced, pinned by sha256 digests
over a fixed pipeline.
"""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.wavelet import (
    denoise_2d,
    dwt_1d,
    filter_bank_for_length,
    get_kernel,
    idwt_1d,
    mallat_decompose_2d,
    mallat_inverse_step_2d,
    mallat_reconstruct_2d,
    mallat_step_2d,
)
from repro.errors import ConfigurationError

filter_lengths = st.sampled_from([2, 4, 8])
kernels = st.sampled_from(["lifting", "fused", "fused:16", "single-loop"])


def images(side_pows=(4, 5)):
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(
            st.sampled_from([2**p for p in side_pows]),
            st.sampled_from([2**p for p in side_pows]),
        ),
        elements=st.floats(-1e4, 1e4, allow_nan=False, width=64),
    )


def signals(min_pow=5, max_pow=7):
    return hnp.arrays(
        dtype=np.float64,
        shape=st.integers(min_pow, max_pow).map(lambda p: 2**p),
        elements=st.floats(-1e4, 1e4, allow_nan=False, width=64),
    )


def _tol(data, budget):
    """Absolute budget scaled by the data's magnitude (float64 relative)."""
    return budget * max(1.0, float(np.abs(data).max()))


@settings(max_examples=25, deadline=None)
@given(image=images(), m=filter_lengths, kernel=kernels)
def test_forward_step_matches_conv(image, m, kernel):
    bank = filter_bank_for_length(m)
    ref = mallat_step_2d(image, bank)
    got = mallat_step_2d(image, bank, kernel=kernel)
    tol = _tol(image, 1e-9)
    for band in ("ll", "lh", "hl", "hh"):
        assert np.abs(getattr(got, band) - getattr(ref, band)).max() <= tol


@settings(max_examples=25, deadline=None)
@given(image=images(), m=filter_lengths, kernel=kernels)
def test_inverse_step_matches_conv(image, m, kernel):
    bank = filter_bank_for_length(m)
    subbands = mallat_step_2d(image, bank)
    ref = mallat_inverse_step_2d(subbands, bank)
    got = mallat_inverse_step_2d(subbands, bank, kernel=kernel)
    assert np.abs(got - ref).max() <= _tol(image, 1e-9)


@settings(max_examples=25, deadline=None)
@given(image=images(), m=filter_lengths, kernel=kernels)
def test_2d_round_trip(image, m, kernel):
    bank = filter_bank_for_length(m)
    pyramid = mallat_decompose_2d(image, bank, 2, kernel=kernel)
    back = mallat_reconstruct_2d(pyramid, bank, kernel=kernel)
    assert np.abs(back - image).max() <= _tol(image, 1e-10)


@settings(max_examples=25, deadline=None)
@given(signal=signals(), m=filter_lengths, kernel=kernels)
def test_1d_matches_conv_and_round_trips(signal, m, kernel):
    bank = filter_bank_for_length(m)
    ref_a, ref_d = dwt_1d(signal, bank, 2)
    approx, details = dwt_1d(signal, bank, 2, kernel=kernel)
    tol = _tol(signal, 1e-9)
    assert np.abs(approx - ref_a).max() <= tol
    for got, ref in zip(details, ref_d):
        assert np.abs(got - ref).max() <= tol
    back = idwt_1d(approx, details, bank, kernel=kernel)
    assert np.abs(back - signal).max() <= _tol(signal, 1e-10)


def test_registry_rejects_unknown_names():
    with pytest.raises(ConfigurationError):
        get_kernel("winograd")
    kernel = get_kernel("fused")
    assert get_kernel(kernel) is kernel  # instances pass through


# ---------------------------------------------------------------------------
# Seed-path byte identity: the default kernel must keep producing the exact
# bytes the pre-registry implementation produced (digests recorded when the
# registry landed, verified byte-identical against the seed revision).
# ---------------------------------------------------------------------------

_SEED_DIGESTS = {
    2: "55ab8197bb1f5a44d39719adca7f97d64f64d1f4befdb90f82e25dae67de2f4c",
    4: "a2a0086aab26988486bb5de8f48173a040b3d5ddf6e6da79c179de1730c7a6d9",
    8: "f5223a5c7b450aa8cda636a3bb42e1d0823d7f62ea2025a4f8b56b3313645fa7",
}


def _seed_pipeline_digest(m: int) -> str:
    rng = np.random.RandomState(42)
    image = rng.standard_normal((64, 64))
    signal = rng.standard_normal(256)
    bank = filter_bank_for_length(m)
    h = hashlib.sha256()
    pyramid = mallat_decompose_2d(image, bank, 3)
    h.update(pyramid.approximation.tobytes())
    for triple in pyramid.details:
        h.update(triple.lh.tobytes())
        h.update(triple.hl.tobytes())
        h.update(triple.hh.tobytes())
    h.update(mallat_reconstruct_2d(pyramid, bank).tobytes())
    approx, details = dwt_1d(signal, bank, 3)
    h.update(approx.tobytes())
    for band in details:
        h.update(band.tobytes())
    h.update(idwt_1d(approx, details, bank).tobytes())
    h.update(denoise_2d(image, bank=bank, levels=2).tobytes())
    return h.hexdigest()


@pytest.mark.parametrize("m", sorted(_SEED_DIGESTS))
def test_default_kernel_is_byte_identical_to_seed(m):
    assert _seed_pipeline_digest(m) == _SEED_DIGESTS[m]
