"""Adversarial scenario certification: the detect-or-survive matrix.

Every registered scenario must certify exactly as the registry pins it
for every target app — an attack is either *detected* by a named defense
layer or *survived* bitwise; silent corruption is the failure mode this
suite exists to rule out.  The clean fault-free references are pinned by
sha256 digest, proving the adversary plumbing (the ``intercept_send``
hook, the spam tag, the overlay) costs nothing when no adversary runs:
non-adversarial results stay byte-identical to the seed behavior.

The committed corpus ``tests/data/scenario_findings.json`` is the fuzz
regression: every persisted finding must replay bitwise from its
``(scenario, seed, placement)`` key.
"""

import os

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    APPS,
    NRANKS,
    SCENARIOS,
    AdversaryConfig,
    CertificationError,
    ScenarioDef,
    certify,
    check_expected,
    clean_reference_digest,
    empty_corpus,
    finding_from_certification,
    finding_id,
    get_scenario,
    load_corpus,
    merge_findings,
    replay_finding,
    run_fuzz,
    scenario_ids,
    validate_findings,
)

CORPUS_PATH = os.path.join(os.path.dirname(__file__), "data", "scenario_findings.json")

#: sha256 pins of the fault-free reference results on the 4-rank NX
#: Paragon — the byte-identity proof that scenario plumbing changes
#: nothing when no adversary is attached.
REFERENCE_DIGESTS = {
    "wavelet": "23055fbbaaa9185b1212a19ce14a68768d0b1546924a8196a7e7c49f7021b2df",
    "nbody": "236edb1162cab5b39577be24688fd854fb8101eb94b84bd086e8719d0437844f",
    "pic": "828035f90034af275b3c6d29c352f6d09da8400e81757df2055003804852645c",
}

ENGINE_CELLS = [
    (scenario, app)
    for scenario in SCENARIOS
    if scenario.kind == "engine"
    for app in APPS
]


class TestReferencePins:
    @pytest.mark.parametrize("app", APPS)
    def test_clean_reference_digest_pinned(self, app):
        assert clean_reference_digest(app) == REFERENCE_DIGESTS[app]


class TestCertificationMatrix:
    @pytest.mark.parametrize(
        "scenario, app",
        ENGINE_CELLS,
        ids=[f"{s.scenario_id}-{app}" for s, app in ENGINE_CELLS],
    )
    def test_engine_cell_matches_registry(self, scenario, app):
        cert = certify(scenario, app)
        check_expected(cert, scenario)  # raises on contradiction
        assert cert.reference_digest == REFERENCE_DIGESTS[app]
        if cert.verdict == "survived":
            # Survival is bitwise: the digest equals the clean pin.
            assert cert.digest == REFERENCE_DIGESTS[app]
        elif cert.layer == "value-transparency":
            # The oracle only fires when a completed run's digest drifts.
            assert cert.digest and cert.digest != REFERENCE_DIGESTS[app]
        else:
            # Loud detections never complete, so there is nothing to digest.
            assert cert.digest == ""

    def test_static_scenario_detected_by_linter(self):
        scenario = get_scenario("hostile-source-lint")
        cert = certify(scenario)
        check_expected(cert, scenario)
        assert cert.verdict == "detected" and cert.layer == "lint"
        assert cert.attacks > 0  # the linter found at least one rule hit

    def test_attacking_scenarios_actually_fire(self):
        # A scenario that never intervenes certifies vacuously; every
        # engine scenario must register at least one attack on some app.
        for scenario in SCENARIOS:
            if scenario.kind != "engine":
                continue
            fired = sum(certify(scenario, app).attacks for app in APPS)
            assert fired > 0, f"{scenario.scenario_id} never attacked"

    def test_mismatch_raises_certification_error(self):
        scenario = ScenarioDef(
            scenario_id="wrong-expectation",
            title="registered wrong on purpose",
            adversary=AdversaryConfig(behavior="withhold", rank=1),
            expected={"wavelet": ("survived", "clean")},
        )
        cert = certify(scenario, "wavelet")
        with pytest.raises(CertificationError, match="wrong-expectation"):
            check_expected(cert, scenario)


class TestRegistry:
    def test_ids_are_stable_and_unique(self):
        ids = scenario_ids()
        assert len(ids) == len(set(ids))
        assert "withhold-silence" in ids and "hostile-source-lint" in ids

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            get_scenario("no-such-attack")

    def test_placed_moves_the_adversary(self):
        scenario = get_scenario("poison-boundary")
        moved = scenario.placed(2)
        assert moved.adversary.rank == 2
        assert scenario.adversary.rank == 1  # original untouched

    def test_engine_scenarios_cover_every_app(self):
        for scenario in SCENARIOS:
            if scenario.kind == "engine":
                assert sorted(scenario.expected) == sorted(APPS)


class TestFindingsCorpus:
    def test_committed_corpus_validates(self):
        corpus = load_corpus(CORPUS_PATH)
        assert corpus["nranks"] == NRANKS
        assert corpus["findings"], "committed corpus must not be empty"
        # Every registered scenario contributed at least one finding.
        covered = {finding["scenario"] for finding in corpus["findings"]}
        assert covered == set(scenario_ids())

    def test_every_finding_replays_bitwise(self):
        corpus = load_corpus(CORPUS_PATH)
        for finding in corpus["findings"]:
            _cert, mismatches = replay_finding(finding, nranks=corpus["nranks"])
            assert not mismatches, f"{finding['id']}: {mismatches}"

    def test_merge_keeps_novel_signatures_only(self):
        findings = run_fuzz(
            ["withhold-silence"], apps=("wavelet",), seeds=(0, 1), placements=(1,)
        )
        corpus = empty_corpus()
        added = merge_findings(corpus, findings)
        # Both seeds certify detected/deadlock: one signature, one finding.
        assert added == 1 and len(corpus["findings"]) == 1
        assert merge_findings(corpus, findings) == 0  # idempotent

    def test_validate_rejects_malformed_documents(self):
        with pytest.raises(ConfigurationError, match="schema"):
            validate_findings({"schema": "bogus", "nranks": 4, "findings": []})
        good = finding_from_certification(
            certify(get_scenario("withhold-silence"), "wavelet")
        )
        bad_type = dict(good, attacks="three")
        with pytest.raises(ConfigurationError, match="attacks"):
            validate_findings(
                {"schema": "repro.scenarios.findings/v1", "nranks": 4,
                 "findings": [bad_type]}
            )
        bad_id = dict(good, id="someone/else/s9/r9")
        with pytest.raises(ConfigurationError, match="does not match"):
            validate_findings(
                {"schema": "repro.scenarios.findings/v1", "nranks": 4,
                 "findings": [bad_id]}
            )
        with pytest.raises(ConfigurationError, match="duplicate"):
            validate_findings(
                {"schema": "repro.scenarios.findings/v1", "nranks": 4,
                 "findings": [good, dict(good)]}
            )

    def test_finding_id_round_trips(self):
        assert finding_id("spam-flood", "pic", 3, 2) == "spam-flood/pic/s3/r2"
