"""Tests for the happens-before graph, clock stamps, and critical path."""

import numpy as np
import pytest

from repro.errors import CausalityError
from repro.machines import Engine, Machine, paragon
from repro.machines.cpu import CpuModel
from repro.machines.engine import TraceEvent
from repro.machines.causality import HappensBeforeGraph
from repro.machines.network import ContentionNetwork, FullyConnected
from repro.wavelet import filter_bank_for_length
from repro.wavelet.parallel.decomposition import StripeDecomposition
from repro.wavelet.parallel.spmd import striped_wavelet_program


def ideal_machine(nranks):
    return Machine(
        name="ideal",
        cpu=CpuModel(1e9, 1e9, 1e9),
        network=ContentionNetwork(
            topology=FullyConnected(nranks), latency_s=1e-6, per_hop_s=0, bytes_per_s=1e9
        ),
        placement=list(range(nranks)),
        sw_send_overhead_s=1e-6,
        sw_recv_overhead_s=1e-6,
        copy_bytes_per_s=1e9,
    )


def ring_prog(ctx):
    """Each rank computes, sends right, receives from left, computes."""
    yield ctx.compute(flops=1e6 * (1 + ctx.rank))
    yield ctx.send((ctx.rank + 1) % ctx.nranks, np.ones(64), tag=7)
    _ = yield ctx.recv((ctx.rank - 1) % ctx.nranks, tag=7)
    yield ctx.compute(flops=1e5)
    return None


def traced(nranks, prog):
    return Engine(ideal_machine(nranks), record_trace=True).run(prog)


class TestStamps:
    def test_lamport_increases_along_program_order(self):
        run = traced(3, ring_prog)
        for rank in range(3):
            stamps = [e.lamport for e in run.trace if e.rank == rank]
            assert stamps == sorted(stamps)
            assert len(set(stamps)) == len(stamps)

    def test_vector_clock_own_component_counts_events(self):
        run = traced(3, ring_prog)
        for rank in range(3):
            events = [e for e in run.trace if e.rank == rank]
            assert [e.vclock[rank] for e in events] == list(
                range(1, len(events) + 1)
            )

    def test_matched_send_happens_before_recv(self):
        run = traced(4, ring_prog)
        graph = HappensBeforeGraph(run.trace)
        edges = graph.message_edges()
        assert len(edges) == 4
        for send_idx, recv_idx in edges:
            send, recv = run.trace[send_idx], run.trace[recv_idx]
            assert send.msg_id == recv.match_id
            assert graph.happens_before(send_idx, recv_idx)
            assert not graph.happens_before(recv_idx, send_idx)
            # The recv's vector clock dominates the send's everywhere.
            assert all(a <= b for a, b in zip(send.vclock, recv.vclock))
            assert recv.lamport > send.lamport

    def test_msg_ids_unique_and_monotone(self):
        run = traced(4, ring_prog)
        ids = [e.msg_id for e in run.trace if e.kind == "send"]
        assert sorted(ids) == list(range(len(ids)))

    def test_untraced_run_has_no_stamps(self):
        run = Engine(ideal_machine(2)).run(ring_prog)
        assert run.trace is None


class TestHappensBefore:
    def test_vclock_verdicts_match_reachability(self):
        run = traced(4, ring_prog)
        graph = HappensBeforeGraph(run.trace)
        assert graph.vclocks_consistent()

    def test_program_order_is_happens_before(self):
        run = traced(3, ring_prog)
        graph = HappensBeforeGraph(run.trace)
        for rank in range(3):
            indices = [i for i, e in enumerate(run.trace) if e.rank == rank]
            for a, b in zip(indices, indices[1:]):
                assert graph.happens_before(a, b)

    def test_event_not_ordered_with_itself(self):
        run = traced(2, ring_prog)
        graph = HappensBeforeGraph(run.trace)
        assert not graph.happens_before(0, 0)
        assert not graph.concurrent(0, 0)

    def test_missing_trace_rejected(self):
        with pytest.raises(CausalityError):
            HappensBeforeGraph(None)

    def test_bad_index_rejected(self):
        run = traced(2, ring_prog)
        graph = HappensBeforeGraph(run.trace)
        with pytest.raises(CausalityError):
            graph.happens_before(0, 10_000)


class TestHandBuiltConcurrency:
    """Acceptance example: a 3-rank trace where ``concurrent()`` agrees
    with virtual-time interval overlap on every event pair."""

    @staticmethod
    def _trace():
        return [
            # rank 0: compute [0,2), send msg 0 to rank 1 [2,2.1)
            TraceEvent(0, "compute", 0.0, 2.0, lamport=1, vclock=(1, 0, 0)),
            TraceEvent(0, "send", 2.0, 2.1, peer=1, nbytes=8, tag=5,
                       msg_id=0, lamport=2, vclock=(2, 0, 0)),
            # rank 1: compute [0,3), recv msg 0 [3,3.2), compute [3.2,4)
            TraceEvent(1, "compute", 0.0, 3.0, lamport=1, vclock=(0, 1, 0)),
            TraceEvent(1, "recv", 3.0, 3.2, peer=0, nbytes=8, tag=5,
                       match_id=0, arrive_s=2.5, min_arrive_s=2.5,
                       lamport=3, vclock=(2, 2, 0)),
            TraceEvent(1, "compute", 3.2, 4.0, lamport=4, vclock=(2, 3, 0)),
            # rank 2: one long concurrent compute [0,4)
            TraceEvent(2, "compute", 0.0, 4.0, lamport=1, vclock=(0, 0, 1)),
        ]

    def test_concurrent_agrees_with_interval_overlap(self):
        trace = self._trace()
        graph = HappensBeforeGraph(trace)
        for a in range(len(trace)):
            for b in range(a + 1, len(trace)):
                ea, eb = trace[a], trace[b]
                overlap = ea.start_s < eb.end_s and eb.start_s < ea.end_s
                assert graph.concurrent(a, b) == overlap, (a, b)

    def test_message_edge_found(self):
        graph = HappensBeforeGraph(self._trace())
        assert graph.message_edges() == [(1, 3)]

    def test_vclocks_consistent_on_hand_built(self):
        assert HappensBeforeGraph(self._trace()).vclocks_consistent()


class TestCriticalPath:
    def test_single_rank_bound_equals_elapsed(self):
        def prog(ctx):
            yield ctx.compute(flops=1e6)
            yield ctx.compute(flops=2e6)
            return None

        run = traced(1, prog)
        analysis = HappensBeforeGraph(run.trace).critical_path(run.elapsed_s)
        assert analysis.lower_bound_s == pytest.approx(run.elapsed_s)
        assert analysis.slack_s == pytest.approx(0.0, abs=1e-12)
        assert analysis.work_s == pytest.approx(run.elapsed_s)

    def test_bound_never_exceeds_elapsed(self):
        run = traced(4, ring_prog)
        analysis = HappensBeforeGraph(run.trace).critical_path(run.elapsed_s)
        assert 0.0 < analysis.lower_bound_s <= run.elapsed_s + 1e-12
        assert analysis.slack_s >= -1e-12

    def test_path_is_causally_ordered_chain(self):
        run = traced(4, ring_prog)
        graph = HappensBeforeGraph(run.trace)
        analysis = graph.critical_path(run.elapsed_s)
        assert len(analysis.path) >= 2
        for a, b in zip(analysis.path, analysis.path[1:]):
            assert graph.happens_before(a, b)

    def test_pipeline_bound_spans_message_chain(self):
        # rank 0 computes then sends to rank 1, which computes after: the
        # bound must cover both computes plus the transfer, not just one
        # rank's finish time.
        def prog(ctx):
            if ctx.rank == 0:
                yield ctx.compute(flops=5e6)
                yield ctx.send(1, np.ones(1000), tag=1)
            else:
                _ = yield ctx.recv(0, tag=1)
                yield ctx.compute(flops=5e6)
            return None

        run = traced(2, prog)
        graph = HappensBeforeGraph(run.trace)
        analysis = graph.critical_path(run.elapsed_s)
        assert analysis.lower_bound_s == pytest.approx(run.elapsed_s)
        assert analysis.transit_s > 0.0

    def test_empty_trace(self):
        analysis = HappensBeforeGraph([]).critical_path(1.0)
        assert analysis.lower_bound_s == 0.0 and analysis.slack_s == 1.0


class TestPlacementSlack:
    """The Fig. 5 mechanism: naive placement loses to contention, which
    the causal lower bound excludes — so its slack must be larger."""

    @staticmethod
    def _slack(placement):
        image = np.random.default_rng(7).normal(size=(256, 256))
        bank = filter_bank_for_length(8)
        decomp = StripeDecomposition(256, 256, 16, 1)
        machine = paragon(16, placement)  # pvm protocol, as in Appendix A
        run = Engine(machine, record_trace=True).run(
            striped_wavelet_program, image, bank, 1, decomp
        )
        return HappensBeforeGraph(run.trace).critical_path(run.elapsed_s)

    def test_naive_slack_strictly_larger_than_snake(self):
        snake = self._slack("snake")
        naive = self._slack("naive")
        assert naive.slack_s > snake.slack_s
        assert snake.slack_s >= 0.0
