"""Tests for multi-level pyramids and reconstruction."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.wavelet import (
    daubechies_filter,
    haar_filter,
    mallat_decompose_2d,
    mallat_reconstruct_2d,
)


@pytest.fixture
def image():
    return np.random.default_rng(7).random((64, 64)) * 255


class TestDecompose:
    @pytest.mark.parametrize("length,levels", [(8, 1), (4, 2), (2, 4)])
    def test_paper_configurations(self, image, length, levels):
        """The three filter/level pairs the paper's experiments sweep."""
        bank = daubechies_filter(length)
        pyr = mallat_decompose_2d(image, bank, levels=levels)
        assert pyr.levels == levels
        assert pyr.approximation.shape == (64 // 2**levels, 64 // 2**levels)

    def test_detail_shapes_shrink(self, image):
        pyr = mallat_decompose_2d(image, haar_filter(), levels=3)
        assert [t.shape for t in pyr.details] == [(32, 32), (16, 16), (8, 8)]

    def test_critically_sampled(self, image):
        pyr = mallat_decompose_2d(image, haar_filter(), levels=3)
        assert pyr.coefficient_count() == image.size

    def test_original_shape(self, image):
        pyr = mallat_decompose_2d(image, haar_filter(), levels=2)
        assert pyr.original_shape == (64, 64)

    def test_total_energy_conserved(self, image):
        for length in (2, 4, 8):
            pyr = mallat_decompose_2d(image, daubechies_filter(length), levels=2)
            assert pyr.total_energy() == pytest.approx((image**2).sum(), rel=1e-12)

    def test_too_many_levels_raises(self, image):
        with pytest.raises(ConfigurationError):
            mallat_decompose_2d(image, daubechies_filter(8), levels=5)

    def test_zero_levels_raises(self, image):
        with pytest.raises(ConfigurationError):
            mallat_decompose_2d(image, haar_filter(), levels=0)

    def test_non_2d_raises(self):
        with pytest.raises(ConfigurationError):
            mallat_decompose_2d(np.ones(64), haar_filter(), levels=1)

    def test_filter_name_recorded(self, image):
        pyr = mallat_decompose_2d(image, daubechies_filter(8), levels=1)
        assert pyr.filter_name == "daub8"


class TestReconstruct:
    @pytest.mark.parametrize("length,levels", [(8, 1), (4, 2), (2, 4), (8, 2)])
    def test_perfect_reconstruction(self, image, length, levels):
        bank = daubechies_filter(length)
        pyr = mallat_decompose_2d(image, bank, levels=levels)
        rec = mallat_reconstruct_2d(pyr, bank)
        np.testing.assert_allclose(rec, image, atol=1e-9)

    def test_wrong_bank_does_not_reconstruct(self, image):
        pyr = mallat_decompose_2d(image, daubechies_filter(8), levels=1)
        rec = mallat_reconstruct_2d(pyr, haar_filter())
        assert np.abs(rec - image).max() > 1.0

    def test_mismatched_detail_shape_raises(self, image):
        pyr = mallat_decompose_2d(image, haar_filter(), levels=2)
        bad = type(pyr)(
            approximation=pyr.approximation[:4, :4],
            details=pyr.details,
            filter_name=pyr.filter_name,
        )
        with pytest.raises(ConfigurationError):
            mallat_reconstruct_2d(bad, haar_filter())


class TestCompression:
    def test_keep_all_is_identity(self, image):
        pyr = mallat_decompose_2d(image, daubechies_filter(4), levels=2)
        kept = pyr.compression_candidates(1.0)
        np.testing.assert_allclose(kept.details[0].hh, pyr.details[0].hh)

    def test_thresholding_zeroes_coefficients(self, image):
        pyr = mallat_decompose_2d(image, daubechies_filter(4), levels=2)
        kept = pyr.compression_candidates(0.1)
        total = sum(
            int((band != 0).sum())
            for t in kept.details
            for band in (t.lh, t.hl, t.hh)
        )
        original = sum(
            band.size for t in pyr.details for band in (t.lh, t.hl, t.hh)
        )
        assert total <= int(original * 0.11) + 3

    def test_reconstruction_error_decreases_with_kept_fraction(self, image):
        bank = daubechies_filter(4)
        pyr = mallat_decompose_2d(image, bank, levels=2)
        errors = []
        for fraction in (0.02, 0.2, 1.0):
            rec = mallat_reconstruct_2d(pyr.compression_candidates(fraction), bank)
            errors.append(float(((rec - image) ** 2).mean()))
        assert errors[0] >= errors[1] >= errors[2]
        assert errors[2] == pytest.approx(0.0, abs=1e-15)

    def test_bad_fraction_raises(self, image):
        pyr = mallat_decompose_2d(image, haar_filter(), levels=1)
        with pytest.raises(ConfigurationError):
            pyr.compression_candidates(0.0)
        with pytest.raises(ConfigurationError):
            pyr.compression_candidates(1.5)
