"""Tests for the space-sharing runtime scheduler.

Covers the buddy-allocation behavior through the scheduler, FIFO +
backfill determinism, byte-identical partition runs vs standalone
machines of the same size, and queue-wait/turnaround accounting.
"""

import pytest

from tests._digest_util import run_result_digest
from repro.data import landsat_like_scene
from repro.errors import ConfigurationError
from repro.machines import paragon
from repro.runtime import (
    JobSpec,
    RunOptions,
    Scheduler,
    machine_template,
)
from repro.wavelet import filter_bank_for_length
from repro.wavelet.parallel import run_spmd_wavelet


IMAGE = landsat_like_scene((64, 64))
BANK = filter_bank_for_length(4)


def wavelet_spec(nranks: int, name: str = "") -> JobSpec:
    return JobSpec(
        program="wavelet",
        params={"image": IMAGE, "bank": BANK, "levels": 2},
        options=RunOptions(nranks=nranks),
        name=name,
    )


def workload_spec(nranks: int, repeats: int = 1, name: str = "") -> JobSpec:
    from repro.workload import nas_suite

    return JobSpec(
        program="workload",
        params={"trace": nas_suite(0.1)[0], "repeats": repeats},
        options=RunOptions(nranks=nranks),
        name=name,
    )


@pytest.fixture
def sched():
    return Scheduler(machine_template("paragon", protocol="pvm"))


class TestSubmit:
    def test_rounds_to_power_of_two(self, sched):
        sched.submit(workload_spec(6))
        results = sched.run()
        assert results[0].partition_size == 8
        assert len(results[0].nodes) == 6

    def test_oversized_rejected(self, sched):
        with pytest.raises(ConfigurationError):
            sched.submit(wavelet_spec(65))

    def test_zero_ranks_rejected(self, sched):
        with pytest.raises(ConfigurationError):
            sched.submit(wavelet_spec(0))

    def test_negative_submit_time_rejected(self, sched):
        with pytest.raises(ConfigurationError):
            sched.submit(wavelet_spec(4), submit_s=-1.0)

    def test_job_ids_are_fifo_positions(self, sched):
        assert sched.submit(wavelet_spec(4)) == 0
        assert sched.submit(wavelet_spec(4)) == 1


class TestSpaceSharing:
    def test_disjoint_concurrent_partitions(self, sched):
        for _ in range(4):
            sched.submit(workload_spec(16))
        results = sched.run()
        # 4 x 16 = 64 nodes: everything fits at t=0, nothing queues.
        assert all(r.start_s == 0.0 for r in results)
        seen = set()
        for result in results:
            nodes = set(result.nodes)
            assert not (nodes & seen)
            seen |= nodes
        assert len(seen) == 64

    def test_machine_accepted_in_place_of_template(self):
        sched = Scheduler(paragon(8))
        sched.submit(wavelet_spec(4))
        sched.submit(wavelet_spec(4))
        results = sched.run()
        assert [r.start_s for r in results] == [0.0, 0.0]

    def test_partition_freed_for_later_jobs(self, sched):
        for _ in range(3):
            sched.submit(workload_spec(64))
        results = sched.run()
        # Serial reuse of the whole machine: each job starts when the
        # previous one finishes on the same (released) partition.
        assert results[0].start_s == 0.0
        assert results[1].start_s == pytest.approx(results[0].finish_s)
        assert results[2].start_s == pytest.approx(results[1].finish_s)
        assert results[0].nodes == results[1].nodes == results[2].nodes


class TestDeterminismAndBackfill:
    def test_two_runs_identical(self):
        def build():
            sched = Scheduler(machine_template("paragon", protocol="pvm"))
            sched.submit(workload_spec(32))
            sched.submit(wavelet_spec(8))
            sched.submit(workload_spec(16))
            sched.submit(workload_spec(8, repeats=2))
            return sched.run()

        first, second = build(), build()
        assert [r.job_id for r in first] == [r.job_id for r in second]
        assert [r.nodes for r in first] == [r.nodes for r in second]
        assert [r.finish_s for r in first] == [r.finish_s for r in second]
        assert [run_result_digest(r.run) for r in first] == [
            run_result_digest(r.run) for r in second
        ]

    def test_backfill_around_blocked_head(self, sched):
        a = sched.submit(workload_spec(64, name="a"))  # whole machine
        b = sched.submit(workload_spec(64, name="b"))  # blocked behind a
        c = sched.submit(workload_spec(16, name="c"))  # cannot fit either
        results = {r.job_id: r for r in sched.run()}
        assert results[a].start_s == 0.0
        # b and c both wait for a; c backfills at the same instant b
        # starts only if space remains -- with b taking all 64 nodes it
        # cannot, so c runs after b.
        assert results[b].start_s == pytest.approx(results[a].finish_s)
        assert results[c].start_s == pytest.approx(results[b].finish_s)

    def test_backfill_lets_small_job_pass(self, sched):
        a = sched.submit(workload_spec(32, name="a"))
        b = sched.submit(workload_spec(64, name="b"))  # must wait for a
        c = sched.submit(workload_spec(16, name="c"))  # fits beside a now
        results = {r.job_id: r for r in sched.run()}
        assert results[a].start_s == 0.0
        assert results[c].start_s == 0.0  # backfilled past the blocked b
        assert results[b].start_s == pytest.approx(
            max(results[a].finish_s, results[c].finish_s)
        )

    def test_late_submission_waits_for_arrival(self, sched):
        sched.submit(workload_spec(16), submit_s=0.5)
        results = sched.run()
        assert results[0].start_s == pytest.approx(0.5)
        assert results[0].queue_wait_s == pytest.approx(0.0)


class TestPartitionEqualsStandalone:
    def test_partition_run_matches_dedicated_machine(self):
        solo = run_spmd_wavelet(paragon(8), IMAGE, BANK, 2)
        solo_digest = run_result_digest(solo.run)

        sched = Scheduler(machine_template("paragon", protocol="pvm"))
        sched.submit(wavelet_spec(8))
        sched.submit(wavelet_spec(8))  # lands on a translated partition
        results = sched.run()
        assert results[0].nodes != results[1].nodes
        for result in results:
            assert run_result_digest(result.run) == solo_digest

    def test_outcome_assembled_per_job(self):
        solo = run_spmd_wavelet(paragon(8), IMAGE, BANK, 2)
        sched = Scheduler(machine_template("paragon", protocol="pvm"))
        sched.submit(wavelet_spec(8))
        (result,) = sched.run()
        assert result.outcome.pyramid is not None
        assert (
            result.outcome.pyramid.approximation
            == solo.pyramid.approximation
        ).all()


class TestAccounting:
    def test_queue_wait_and_turnaround_sum(self, sched):
        for _ in range(3):
            sched.submit(workload_spec(64))
        results = sched.run()
        for result in results:
            assert result.turnaround_s == pytest.approx(
                result.queue_wait_s + result.service_s
            )
        expected_wait = sum(r.queue_wait_s for r in results)
        assert sched.total_queue_wait_s() == pytest.approx(expected_wait)
        assert expected_wait > 0.0

    def test_makespan_is_last_finish(self, sched):
        sched.submit(workload_spec(32))
        sched.submit(workload_spec(16))
        results = sched.run()
        assert sched.makespan_s() == pytest.approx(
            max(r.finish_s for r in results)
        )

    def test_full_machine_back_to_back_utilization(self, sched):
        sched.submit(workload_spec(64))
        sched.submit(workload_spec(64))
        sched.run()
        assert sched.utilization() == pytest.approx(1.0)

    def test_service_includes_crashed_attempts(self):
        from repro.machines.faults import FaultPlan

        solo = run_spmd_wavelet(paragon(4), IMAGE, BANK, 2)
        plan = FaultPlan.sampled(7, 4, 0.2, t_horizon=solo.run.elapsed_s)
        spec = JobSpec(
            program="wavelet",
            params={"image": IMAGE, "bank": BANK, "levels": 2},
            options=RunOptions(
                nranks=4, faults=plan, checkpoint_interval=1
            ),
        )
        sched = Scheduler(machine_template("paragon", protocol="pvm"))
        sched.submit(spec)
        (result,) = sched.run()
        assert result.execution.restarts >= 1
        assert result.service_s == pytest.approx(
            result.execution.total_virtual_s
        )
        assert result.service_s > result.run.elapsed_s
