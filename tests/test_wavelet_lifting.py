"""Unit tests for the lifting factorization and its parallel wiring."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.machines import paragon
from repro.machines.simd import MasParMachine, maspar_mp2
from repro.wavelet import (
    analyze_axis,
    daubechies_filter,
    dwt_1d,
    filter_bank_for_length,
    haar_filter,
    lifting_analyze_axis,
    lifting_analyze_axis_valid,
    lifting_scheme,
    lifting_synthesize_axis,
    lifting_synthesize_axis_valid,
    mallat_decompose_2d,
    mallat_reconstruct_2d,
)
from repro.wavelet.parallel import run_spmd_wavelet, simd_mallat_decompose
from repro.wavelet.parallel.decomposition import (
    analysis_guard_depths,
    synthesis_guard_depths,
)
from repro.wavelet.parallel.spmd_1d import run_spmd_dwt_1d, run_spmd_idwt_1d
from repro.wavelet.parallel.spmd_reconstruct import run_spmd_reconstruct

BANKS = [haar_filter(), daubechies_filter(4), daubechies_filter(8)]


def _pyramid_err(a, b):
    err = np.abs(a.approximation - b.approximation).max()
    for ta, tb in zip(a.details, b.details):
        err = max(
            err,
            np.abs(ta.lh - tb.lh).max(),
            np.abs(ta.hl - tb.hl).max(),
            np.abs(ta.hh - tb.hh).max(),
        )
    return float(err)


class TestFactorization:
    @pytest.mark.parametrize("bank", BANKS, ids=lambda b: b.name)
    def test_scheme_verifies_against_conv(self, bank):
        scheme = lifting_scheme(bank)
        assert scheme.filter_length == bank.length
        assert scheme.verify_error < 5e-8

    def test_haar_is_two_steps(self):
        assert len(lifting_scheme(haar_filter()).steps) == 2

    def test_daub4_is_textbook_three_steps(self):
        scheme = lifting_scheme(daubechies_filter(4))
        assert scheme.step_taps == (1, 2, 1)

    def test_scheme_is_cached(self):
        bank = daubechies_filter(4)
        assert lifting_scheme(bank) is lifting_scheme(bank)

    @pytest.mark.parametrize("bank", BANKS, ids=lambda b: b.name)
    def test_periodized_matches_conv(self, bank):
        rng = np.random.RandomState(0)
        data = rng.standard_normal((6, 64))
        scheme = lifting_scheme(bank)
        approx, detail = lifting_analyze_axis(data, scheme, axis=1)
        assert np.abs(approx - analyze_axis(data, bank.lowpass, 1)).max() < 1e-9
        assert np.abs(detail - analyze_axis(data, bank.highpass, 1)).max() < 1e-9

    @pytest.mark.parametrize("bank", BANKS, ids=lambda b: b.name)
    def test_periodized_round_trip(self, bank):
        rng = np.random.RandomState(1)
        data = rng.standard_normal(128)
        scheme = lifting_scheme(bank)
        approx, detail = lifting_analyze_axis(data, scheme, axis=0)
        back = lifting_synthesize_axis(approx, detail, scheme, axis=0)
        assert np.abs(back - data).max() < 1e-10

    @pytest.mark.parametrize("bank", BANKS, ids=lambda b: b.name)
    def test_valid_mode_matches_periodized(self, bank):
        rng = np.random.RandomState(2)
        n = 64
        data = rng.standard_normal(n)
        scheme = lifting_scheme(bank)
        ref_a, ref_d = lifting_analyze_axis(data, scheme, axis=0)
        front, back = analysis_guard_depths(bank, "lifting")
        ext = np.concatenate([data[n - front :], data, data[:back]])
        a, d = lifting_analyze_axis_valid(ext, scheme, 0, n // 2, front)
        assert np.abs(a - ref_a).max() < 1e-12
        assert np.abs(d - ref_d).max() < 1e-12

        s_front, s_back = synthesis_guard_depths(bank, "lifting")
        half = n // 2
        ext_a = np.concatenate([ref_a[half - s_front :], ref_a, ref_a[:s_back]])
        ext_d = np.concatenate([ref_d[half - s_front :], ref_d, ref_d[:s_back]])
        back_sig = lifting_synthesize_axis_valid(ext_a, ext_d, scheme, 0, n, s_front)
        assert np.abs(back_sig - data).max() < 1e-10

    def test_insufficient_guards_raise(self):
        bank = daubechies_filter(8)
        scheme = lifting_scheme(bank)
        data = np.arange(32, dtype=np.float64)
        with pytest.raises(ConfigurationError):
            lifting_analyze_axis_valid(data, scheme, 0, 16, 0)

    def test_odd_axis_rejected(self):
        scheme = lifting_scheme(haar_filter())
        with pytest.raises(ConfigurationError):
            lifting_analyze_axis(np.zeros(31), scheme, axis=0)


class TestGuardDepths:
    def test_conv_depths_keep_seed_convention(self):
        bank = daubechies_filter(8)
        assert analysis_guard_depths(bank) == (0, bank.length)
        assert synthesis_guard_depths(bank) == (bank.length // 2, 0)

    @pytest.mark.parametrize("bank", BANKS, ids=lambda b: b.name)
    def test_lifting_depths_match_scheme_margins(self, bank):
        scheme = lifting_scheme(bank)
        front, back = analysis_guard_depths(bank, "lifting")
        sfront, sback = scheme.analysis_margins
        assert (front, back) == (sfront, sback + sback % 2)
        assert synthesis_guard_depths(bank, "fused") == scheme.synthesis_margins


class TestSpmdLifting:
    @pytest.mark.parametrize("bank", BANKS, ids=lambda b: b.name)
    @pytest.mark.parametrize("decomposition", ["striped", "block"])
    def test_2d_matches_sequential(self, bank, decomposition):
        rng = np.random.RandomState(3)
        image = rng.standard_normal((64, 64))
        ref = mallat_decompose_2d(image, bank, 2)
        outcome = run_spmd_wavelet(
            paragon(4), image, bank, 2, decomposition=decomposition, kernel="lifting"
        )
        assert _pyramid_err(outcome.pyramid, ref) < 1e-9

    @pytest.mark.parametrize("bank", BANKS, ids=lambda b: b.name)
    def test_1d_matches_sequential(self, bank):
        rng = np.random.RandomState(4)
        signal = rng.standard_normal(256)
        ref_a, ref_d = dwt_1d(signal, bank, 2)
        outcome = run_spmd_dwt_1d(paragon(4), signal, bank, 2, kernel="fused")
        assert np.abs(outcome.approximation - ref_a).max() < 1e-9
        for got, ref in zip(outcome.details, ref_d):
            assert np.abs(got - ref).max() < 1e-9
        _, rec = run_spmd_idwt_1d(paragon(4), ref_a, ref_d, bank, kernel="fused")
        assert np.abs(rec - signal).max() < 1e-9

    @pytest.mark.parametrize("bank", BANKS, ids=lambda b: b.name)
    def test_reconstruct_matches_sequential(self, bank):
        rng = np.random.RandomState(5)
        image = rng.standard_normal((64, 64))
        pyramid = mallat_decompose_2d(image, bank, 2)
        outcome = run_spmd_reconstruct(paragon(4), pyramid, bank, kernel="lifting")
        assert np.abs(outcome.image - image).max() < 1e-9

    def test_unknown_kernel_rejected(self):
        image = np.zeros((16, 16))
        with pytest.raises(ConfigurationError):
            run_spmd_wavelet(paragon(1), image, haar_filter(), 1, kernel="nope")


class TestSimdLifting:
    @pytest.mark.parametrize("bank", BANKS, ids=lambda b: b.name)
    def test_matches_sequential(self, bank):
        rng = np.random.RandomState(6)
        image = rng.standard_normal((32, 32))
        ref = mallat_decompose_2d(image, bank, 2)
        outcome = simd_mallat_decompose(
            MasParMachine(maspar_mp2()), image, bank, 2, algorithm="lifting"
        )
        assert _pyramid_err(outcome.pyramid, ref) < 1e-9
        assert outcome.algorithm == "lifting"

    def test_cheaper_than_systolic_for_long_filters(self):
        rng = np.random.RandomState(7)
        image = rng.standard_normal((32, 32))
        bank = daubechies_filter(8)
        lifting = simd_mallat_decompose(
            MasParMachine(maspar_mp2()), image, bank, 1, algorithm="lifting"
        )
        systolic = simd_mallat_decompose(
            MasParMachine(maspar_mp2()), image, bank, 1, algorithm="systolic"
        )
        assert lifting.elapsed_s < systolic.elapsed_s


class TestSequentialKernels:
    @pytest.mark.parametrize("kernel", ["lifting", "fused"])
    @pytest.mark.parametrize("length", [2, 4, 8])
    def test_pyramid_round_trip(self, kernel, length):
        rng = np.random.RandomState(8)
        image = rng.standard_normal((64, 64))
        bank = filter_bank_for_length(length)
        pyramid = mallat_decompose_2d(image, bank, 3, kernel=kernel)
        ref = mallat_decompose_2d(image, bank, 3)
        assert _pyramid_err(pyramid, ref) < 1e-9
        back = mallat_reconstruct_2d(pyramid, bank, kernel=kernel)
        assert np.abs(back - image).max() < 1e-10
