"""Tests for wavelet texture features and benchmark-suite composition."""

import numpy as np
import pytest

from repro.data import checkerboard, landsat_like_scene
from repro.errors import ConfigurationError, TraceError
from repro.wavelet import (
    daubechies_filter,
    mallat_decompose_2d,
    orientation_dominance,
    signature_distance,
    subband_energies,
    texture_signature,
)
from repro.workload import (
    ParallelWorkload,
    coverage_radius,
    nas_suite,
    oracle_schedule,
    redundant_pairs,
    select_representatives,
    similarity,
)


@pytest.fixture(scope="module")
def scene():
    return landsat_like_scene((128, 128))


def stripes(axis: int, period: float = 8.0, side: int = 128) -> np.ndarray:
    wave = np.sin(np.arange(side) * 2 * np.pi / period) * 100.0
    img = np.tile(wave[:, None], (1, side))
    return img if axis == 0 else img.T


class TestSubbandEnergies:
    def test_keys_cover_all_levels(self, scene):
        pyramid = mallat_decompose_2d(scene, daubechies_filter(4), 3)
        energies = subband_energies(pyramid)
        assert set(energies) == {
            "ll", "lh1", "hl1", "hh1", "lh2", "hl2", "hh2", "lh3", "hl3", "hh3",
        }
        assert all(v >= 0 for v in energies.values())

    def test_smooth_scene_energy_decays_with_level(self, scene):
        """Natural-scene detail energy grows toward coarse scales
        (1/f statistics) — the finest band is the weakest."""
        pyramid = mallat_decompose_2d(scene, daubechies_filter(4), 3)
        energies = subband_energies(pyramid)
        assert energies["hh1"] < energies["hh3"]


class TestTextureSignature:
    def test_deterministic_and_self_distance_zero(self, scene):
        a = texture_signature(scene)
        b = texture_signature(scene)
        np.testing.assert_array_equal(a, b)
        assert signature_distance(a, b) == 0.0

    def test_length(self, scene):
        assert texture_signature(scene, levels=3).shape == (1 + 3 * 3,)

    def test_discriminates_texture_classes(self, scene):
        smooth = texture_signature(scene)
        busy = texture_signature(checkerboard((128, 128), period=1))
        striped = texture_signature(stripes(0))
        assert signature_distance(smooth, busy) > 0.3
        assert signature_distance(busy, striped) > 0.3

    def test_contrast_scaling_is_mild_under_log(self, scene):
        base = texture_signature(scene)
        scaled = texture_signature(scene * 2.0)
        assert signature_distance(base, scaled) < 0.35

    def test_shape_mismatch_raises(self, scene):
        with pytest.raises(ConfigurationError):
            signature_distance(np.ones(4), np.ones(5))


class TestOrientationDominance:
    def test_horizontal_stripes(self):
        assert orientation_dominance(stripes(0)) == "horizontal"

    def test_vertical_stripes(self):
        assert orientation_dominance(stripes(1)) == "vertical"

    def test_fine_checkerboard_is_diagonal(self):
        assert orientation_dominance(checkerboard((128, 128), period=1)) == "diagonal"

    def test_natural_scene_isotropic(self, scene):
        assert orientation_dominance(scene) == "isotropic"

    def test_constant_image_isotropic(self):
        assert orientation_dominance(np.full((64, 64), 9.0)) == "isotropic"


class TestSuiteComposition:
    @pytest.fixture(scope="class")
    def workloads(self):
        return [oracle_schedule(t).workload for t in nas_suite(0.4)]

    def test_redundant_pairs_sorted_and_thresholded(self, workloads):
        pairs = redundant_pairs(workloads, threshold=0.5)
        distances = [d for _, _, d in pairs]
        assert distances == sorted(distances)
        assert all(d < 0.5 for d in distances)

    def test_known_redundancy_detected(self, workloads):
        """buk & cgm are the suite's closest pair family (Table 8)."""
        pairs = redundant_pairs(workloads, threshold=0.5)
        indexed = {(i, j) for i, j, _ in pairs}
        assert (2, 4) in indexed or (4, 2) in indexed  # cgm=2, buk=4

    def test_bad_threshold_raises(self, workloads):
        with pytest.raises(TraceError):
            redundant_pairs(workloads, threshold=0.0)

    def test_select_representatives_count_and_uniqueness(self, workloads):
        chosen = select_representatives(workloads, 4)
        assert len(chosen) == len(set(chosen)) == 4

    def test_selection_spreads_out(self, workloads):
        """The selected subset's minimum pairwise distance beats a
        same-size prefix of the suite."""
        chosen = select_representatives(workloads, 4)

        def min_pairwise(indices):
            return min(
                similarity(workloads[a], workloads[b])
                for a in indices
                for b in indices
                if a < b
            )

        assert min_pairwise(chosen) >= min_pairwise([0, 1, 2, 3])

    def test_select_all_and_one(self, workloads):
        assert len(select_representatives(workloads, len(workloads))) == len(workloads)
        assert len(select_representatives(workloads, 1)) == 1

    def test_bad_k_raises(self, workloads):
        with pytest.raises(TraceError):
            select_representatives(workloads, 0)
        with pytest.raises(TraceError):
            select_representatives(workloads, 99)

    def test_coverage_radius_zero_when_suite_contains_targets(self, workloads):
        assert coverage_radius(workloads, workloads) == pytest.approx(0.0)

    def test_coverage_radius_grows_for_disjoint_target(self, workloads):
        outlier = ParallelWorkload.from_counts(
            "fp-monster", [(0, 0, 500, 0, 0)], [10]
        )
        assert coverage_radius(workloads, [outlier]) > 0.5

    def test_empty_raises(self, workloads):
        with pytest.raises(TraceError):
            coverage_radius([], workloads)
