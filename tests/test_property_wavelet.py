"""Property-based tests for the wavelet core (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.wavelet import (
    analyze_axis,
    daubechies_filter,
    dwt_1d,
    filter_bank_for_length,
    idwt_1d,
    mallat_decompose_2d,
    mallat_reconstruct_2d,
    synthesize_axis,
)

filter_lengths = st.sampled_from([2, 4, 8])


def signals(min_pow=4, max_pow=7):
    return hnp.arrays(
        dtype=np.float64,
        shape=st.integers(min_pow, max_pow).map(lambda p: 2**p),
        elements=st.floats(-1e6, 1e6, allow_nan=False, width=64),
    )


def images(side_pows=(4, 5)):
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(
            st.sampled_from([2**p for p in side_pows]),
            st.sampled_from([2**p for p in side_pows]),
        ),
        elements=st.floats(-1e4, 1e4, allow_nan=False, width=64),
    )


class TestOneDimensionalProperties:
    @given(signal=signals(), length=filter_lengths)
    @settings(max_examples=40, deadline=None)
    def test_perfect_reconstruction(self, signal, length):
        bank = filter_bank_for_length(length)
        approx, details = dwt_1d(signal, bank, levels=1)
        reconstructed = idwt_1d(approx, details, bank)
        scale = max(1.0, np.abs(signal).max())
        assert np.abs(reconstructed - signal).max() < 1e-9 * scale

    @given(signal=signals(), length=filter_lengths)
    @settings(max_examples=40, deadline=None)
    def test_energy_conservation(self, signal, length):
        bank = filter_bank_for_length(length)
        approx, details = dwt_1d(signal, bank, levels=1)
        decomposed = (approx**2).sum() + sum((d**2).sum() for d in details)
        original = (signal**2).sum()
        assert decomposed == pytest.approx(original, rel=1e-9, abs=1e-9)

    @given(signal=signals(), length=filter_lengths)
    @settings(max_examples=40, deadline=None)
    def test_linearity(self, signal, length):
        bank = filter_bank_for_length(length)
        double, _ = dwt_1d(2.0 * signal, bank, levels=1)
        single, _ = dwt_1d(signal, bank, levels=1)
        assert np.abs(double - 2.0 * single).max() < 1e-9 * max(
            1.0, np.abs(single).max()
        )

    @given(
        signal=signals(),
        length=filter_lengths,
        shift=st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_even_shift_covariance(self, signal, length, shift):
        """Shifting the input by 2k circularly shifts every subband by k
        (the decimated transform is covariant to even shifts only)."""
        bank = filter_bank_for_length(length)
        base_a, base_d = dwt_1d(signal, bank, levels=1)
        shifted = np.roll(signal, 2 * shift)
        shift_a, shift_d = dwt_1d(shifted, bank, levels=1)
        scale = max(1.0, np.abs(base_a).max())
        assert np.abs(shift_a - np.roll(base_a, shift)).max() < 1e-9 * scale
        assert np.abs(shift_d[0] - np.roll(base_d[0], shift)).max() < 1e-9 * max(
            1.0, np.abs(base_d[0]).max()
        )

    @given(signal=signals(min_pow=5), length=filter_lengths)
    @settings(max_examples=30, deadline=None)
    def test_adjoint_identity(self, signal, length):
        """synthesize(analyze(x)) over both channels is the identity
        (the two-channel filter bank is a perfect-reconstruction pair)."""
        bank = filter_bank_for_length(length)
        low = analyze_axis(signal, bank.lowpass, 0)
        high = analyze_axis(signal, bank.highpass, 0)
        back = synthesize_axis(low, bank.lowpass, 0) + synthesize_axis(
            high, bank.highpass, 0
        )
        assert np.abs(back - signal).max() < 1e-9 * max(1.0, np.abs(signal).max())


class TestTwoDimensionalProperties:
    @given(image=images(), length=filter_lengths, levels=st.integers(1, 2))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip(self, image, length, levels):
        bank = filter_bank_for_length(length)
        pyramid = mallat_decompose_2d(image, bank, levels=levels)
        reconstructed = mallat_reconstruct_2d(pyramid, bank)
        assert np.abs(reconstructed - image).max() < 1e-8 * max(
            1.0, np.abs(image).max()
        )

    @given(image=images(), length=filter_lengths)
    @settings(max_examples=25, deadline=None)
    def test_transpose_commutes(self, image, length):
        """Decomposing the transpose swaps the LH and HL subbands."""
        bank = filter_bank_for_length(length)
        direct = mallat_decompose_2d(image, bank, 1)
        transposed = mallat_decompose_2d(image.T, bank, 1)
        np.testing.assert_allclose(
            transposed.approximation, direct.approximation.T, atol=1e-8
        )
        np.testing.assert_allclose(
            transposed.details[0].lh, direct.details[0].hl.T, atol=1e-8
        )

    @given(image=images(), length=filter_lengths)
    @settings(max_examples=25, deadline=None)
    def test_critical_sampling(self, image, length):
        bank = filter_bank_for_length(length)
        pyramid = mallat_decompose_2d(image, bank, 1)
        assert pyramid.coefficient_count() == image.size

    @given(
        image=images(),
        constant=st.floats(-1e3, 1e3, allow_nan=False),
        length=filter_lengths,
    )
    @settings(max_examples=25, deadline=None)
    def test_constant_offset_only_moves_ll(self, image, constant, length):
        """Adding a constant leaves every detail band untouched (the
        high-pass filter sums to zero)."""
        bank = filter_bank_for_length(length)
        base = mallat_decompose_2d(image, bank, 1)
        offset = mallat_decompose_2d(image + constant, bank, 1)
        tol = 1e-8 * max(1.0, np.abs(image).max() + abs(constant))
        assert np.abs(offset.details[0].hh - base.details[0].hh).max() < tol
        assert np.abs(offset.details[0].lh - base.details[0].lh).max() < tol
        assert np.abs(offset.details[0].hl - base.details[0].hl).max() < tol
