"""Tests for the orthonormal filter banks."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.wavelet import (
    SUPPORTED_LENGTHS,
    FilterBank,
    daubechies_filter,
    filter_bank_for_length,
    haar_filter,
    quadrature_mirror,
)


class TestQuadratureMirror:
    def test_haar_mirror(self):
        low = np.array([1.0, 1.0]) / np.sqrt(2)
        high = quadrature_mirror(low)
        np.testing.assert_allclose(high, [1.0 / np.sqrt(2), -1.0 / np.sqrt(2)])

    def test_mirror_sums_to_zero(self):
        for length in SUPPORTED_LENGTHS:
            bank = filter_bank_for_length(length)
            assert abs(bank.highpass.sum()) < 1e-10

    def test_mirror_is_orthogonal_to_lowpass(self):
        for length in SUPPORTED_LENGTHS:
            bank = filter_bank_for_length(length)
            assert abs(bank.lowpass @ bank.highpass) < 1e-10


class TestFilterBankConstruction:
    def test_supported_lengths(self):
        assert SUPPORTED_LENGTHS == (2, 4, 8)

    @pytest.mark.parametrize("length", [2, 4, 8])
    def test_orthonormality(self, length):
        assert filter_bank_for_length(length).is_orthonormal()

    @pytest.mark.parametrize("length", [2, 4, 8])
    def test_lowpass_sums_to_sqrt2(self, length):
        bank = filter_bank_for_length(length)
        assert bank.lowpass.sum() == pytest.approx(np.sqrt(2.0), abs=1e-10)

    def test_haar_equals_length_2(self):
        np.testing.assert_allclose(
            haar_filter().lowpass, filter_bank_for_length(2).lowpass
        )

    def test_names(self):
        assert haar_filter().name == "haar"
        assert daubechies_filter(8).name == "daub8"

    def test_length_property(self):
        assert daubechies_filter(4).length == 4

    def test_unsupported_length_raises(self):
        with pytest.raises(ConfigurationError):
            daubechies_filter(7)  # odd lengths have no orthonormal bank

    def test_mismatched_pair_raises(self):
        with pytest.raises(ConfigurationError):
            FilterBank(np.ones(4), np.ones(2))

    def test_odd_length_raises(self):
        with pytest.raises(ConfigurationError):
            FilterBank(np.ones(3), np.ones(3))

    def test_2d_filter_raises(self):
        with pytest.raises(ConfigurationError):
            FilterBank(np.ones((2, 2)), np.ones((2, 2)))

    def test_non_orthonormal_detected(self):
        bank = FilterBank(np.array([1.0, 1.0]), np.array([1.0, -1.0]))
        assert not bank.is_orthonormal()  # not unit norm
