"""Tests for the PIC field pipeline: grid, deposit, Poisson, gather."""

import numpy as np
import pytest

from repro.data import uniform_cube
from repro.errors import ConfigurationError
from repro.pic import (
    Grid3D,
    cic_weights,
    deposit_cic,
    electric_field,
    gather_field,
    poisson_spectrum_multiplier,
    solve_poisson,
)


@pytest.fixture(scope="module")
def grid():
    return Grid3D(8)


class TestGrid:
    def test_spacing(self):
        assert Grid3D(16, extent=2.0).spacing == pytest.approx(0.125)

    def test_wrap_positions(self, grid):
        wrapped = grid.wrap_positions(np.array([[1.25, -0.25, 0.5]]))
        np.testing.assert_allclose(wrapped, [[0.25, 0.75, 0.5]])

    def test_bad_m_raises(self):
        with pytest.raises(ConfigurationError):
            Grid3D(1)

    def test_bad_extent_raises(self):
        with pytest.raises(ConfigurationError):
            Grid3D(8, extent=0.0)

    def test_laplacian_eigenvalues_nonpositive(self, grid):
        eigenvalues = grid.laplacian_eigenvalues()
        assert eigenvalues.max() <= 1e-12
        assert eigenvalues[0, 0, 0] == pytest.approx(0.0)

    def test_fd_laplacian_of_constant_is_zero(self, grid):
        np.testing.assert_allclose(grid.fd_laplacian(np.full((8, 8, 8), 3.0)), 0.0)

    def test_fd_gradient_of_linear_mode(self, grid):
        # A single Fourier mode's central difference has known amplitude.
        x = np.arange(8) * grid.spacing
        field = np.sin(2 * np.pi * x)[:, None, None] * np.ones((1, 8, 8))
        gradient = grid.fd_gradient(field)
        expected_amp = np.sin(2 * np.pi * grid.spacing) / grid.spacing
        assert np.abs(gradient[0]).max() == pytest.approx(expected_amp, rel=1e-9)
        np.testing.assert_allclose(gradient[1], 0.0, atol=1e-12)


class TestDeposit:
    def test_charge_conservation(self, grid):
        ps = uniform_cube(500, seed=0)
        rho = deposit_cic(grid, ps.positions, ps.masses)
        assert rho.sum() * grid.cell_volume() == pytest.approx(ps.masses.sum())

    def test_particle_at_grid_point_deposits_locally(self, grid):
        pos = np.array([[2 * grid.spacing, 3 * grid.spacing, 4 * grid.spacing]])
        rho = deposit_cic(grid, pos, np.array([1.0]))
        assert rho[2, 3, 4] * grid.cell_volume() == pytest.approx(1.0)
        assert np.count_nonzero(rho) == 1

    def test_midpoint_particle_splits_evenly(self, grid):
        pos = np.array([[1.5, 1.5, 1.5]]) * grid.spacing
        rho = deposit_cic(grid, pos, np.array([1.0]))
        nonzero = rho[rho != 0]
        assert nonzero.size == 8
        np.testing.assert_allclose(nonzero * grid.cell_volume(), 0.125)

    def test_wraparound_deposit(self, grid):
        # A particle in the last cell shares charge with index 0 planes.
        pos = np.array([[grid.extent - grid.spacing / 2, 0.0, 0.0]])
        rho = deposit_cic(grid, pos, np.array([1.0]))
        assert rho[0, 0, 0] > 0
        assert rho[grid.m - 1, 0, 0] > 0

    def test_weights_shapes(self, grid):
        base, frac = cic_weights(grid, np.random.default_rng(0).random((10, 3)))
        assert base.shape == (10, 3) and frac.shape == (10, 3)
        assert (0 <= base).all() and (base < grid.m).all()
        assert (0 <= frac).all() and (frac < 1).all()

    def test_bad_positions_raise(self, grid):
        with pytest.raises(ConfigurationError):
            cic_weights(grid, np.zeros((5, 2)))

    def test_mismatched_charges_raise(self, grid):
        with pytest.raises(ConfigurationError):
            deposit_cic(grid, np.zeros((5, 3)), np.ones(4))


class TestPoisson:
    def test_solution_inverts_fd_laplacian(self, grid):
        rng = np.random.default_rng(1)
        rho = rng.standard_normal((8, 8, 8))
        phi = solve_poisson(grid, rho)
        np.testing.assert_allclose(
            grid.fd_laplacian(phi), -(rho - rho.mean()), atol=1e-10
        )

    def test_mean_mode_removed(self, grid):
        phi = solve_poisson(grid, np.full((8, 8, 8), 5.0))
        np.testing.assert_allclose(phi, 0.0, atol=1e-12)

    def test_solution_has_zero_mean(self, grid):
        rng = np.random.default_rng(2)
        phi = solve_poisson(grid, rng.standard_normal((8, 8, 8)))
        assert abs(phi.mean()) < 1e-12

    def test_point_charge_symmetry(self, grid):
        rho = grid.zeros()
        rho[4, 4, 4] = 1.0
        phi = solve_poisson(grid, rho)
        # Symmetric neighbors of the charge see equal potential.
        assert phi[3, 4, 4] == pytest.approx(phi[5, 4, 4])
        assert phi[4, 3, 4] == pytest.approx(phi[4, 5, 4])

    def test_multiplier_zero_at_dc(self, grid):
        assert poisson_spectrum_multiplier(grid)[0, 0, 0] == 0.0

    def test_wrong_shape_raises(self, grid):
        with pytest.raises(ConfigurationError):
            solve_poisson(grid, np.zeros((4, 4, 4)))


class TestGather:
    def test_gather_at_grid_points_is_exact(self, grid):
        rng = np.random.default_rng(3)
        field = rng.standard_normal((3, 8, 8, 8))
        idx = np.array([[1, 2, 3], [0, 7, 4]])
        pos = idx * grid.spacing
        values = gather_field(grid, field, pos)
        for p, (i, j, k) in enumerate(idx):
            np.testing.assert_allclose(values[p], field[:, i, j, k], atol=1e-12)

    def test_gather_interpolates_linear_field(self, grid):
        # E_x = x is reproduced exactly by trilinear interpolation between
        # grid points (within a cell, away from the wrap seam).
        x = np.arange(8)[:, None, None] * grid.spacing * np.ones((1, 8, 8))
        field = np.stack([x, np.zeros_like(x), np.zeros_like(x)])
        pos = np.array([[0.4, 0.3, 0.2]]) * grid.extent
        value = gather_field(grid, field, pos)
        assert value[0, 0] == pytest.approx(0.4 * grid.extent, rel=1e-9)

    def test_no_self_force(self, grid):
        """Matched CIC scatter/gather: a single particle exerts no force
        on itself."""
        pos = np.array([[0.37, 0.52, 0.61]])
        rho = deposit_cic(grid, pos, np.array([-1.0]))
        phi = solve_poisson(grid, rho)
        efield = electric_field(grid, phi)
        force = gather_field(grid, efield, pos)
        # The symmetric discretization cancels the self-term to near zero
        # relative to typical field magnitudes.
        assert np.abs(force).max() < 1e-6 * np.abs(efield).max()

    def test_wrong_field_shape_raises(self, grid):
        with pytest.raises(ConfigurationError):
            gather_field(grid, np.zeros((2, 8, 8, 8)), np.zeros((1, 3)))
