"""Tests for the discrete-event SPMD engine."""

import numpy as np
import pytest

from repro.errors import (
    CommunicationError,
    ConfigurationError,
    DeadlockError,
)
from repro.machines import ANY_SOURCE, Engine, Machine, paragon, payload_nbytes, workstation
from repro.machines.cpu import CpuModel
from repro.machines.network import ContentionNetwork, FullyConnected


def ideal_machine(nranks, **overrides):
    """A friction-light machine for semantics-focused tests."""
    kwargs = dict(sw_send_overhead_s=1e-6, sw_recv_overhead_s=1e-6, copy_bytes_per_s=1e9)
    kwargs.update(overrides)
    return Machine(
        name="ideal",
        cpu=CpuModel(flops_per_s=1e9, intops_per_s=1e9, memops_per_s=1e9),
        network=ContentionNetwork(
            topology=FullyConnected(nranks), latency_s=1e-6, per_hop_s=0.0, bytes_per_s=1e9
        ),
        placement=list(range(nranks)),
        **kwargs,
    )


class TestPayloadNbytes:
    def test_array(self):
        assert payload_nbytes(np.zeros(10, dtype=np.float64)) == 80

    def test_scalar(self):
        assert payload_nbytes(3) == 8
        assert payload_nbytes(3.5) == 8

    def test_none(self):
        assert payload_nbytes(None) == 0

    def test_containers(self):
        assert payload_nbytes([np.zeros(2), np.zeros(2)]) == 2 * (16 + 8)

    def test_string_and_bytes(self):
        assert payload_nbytes(b"abcd") == 4
        assert payload_nbytes("abcd") == 4

    def test_dict(self):
        assert payload_nbytes({"a": 1.0}) > 8


class TestBasicMessaging:
    def test_send_recv_value(self):
        def prog(ctx):
            if ctx.rank == 0:
                yield ctx.send(1, np.arange(4.0))
                return None
            data = yield ctx.recv(0)
            return float(data.sum())

        result = Engine(ideal_machine(2)).run(prog)
        assert result.results[1] == 6.0

    def test_payload_copied_at_send(self):
        def prog(ctx):
            if ctx.rank == 0:
                data = np.zeros(4)
                yield ctx.send(1, data)
                data[:] = 99.0  # mutate after send: receiver must not see it
                return None
            received = yield ctx.recv(0)
            return float(received.sum())

        result = Engine(ideal_machine(2)).run(prog)
        assert result.results[1] == 0.0

    def test_fifo_per_sender_tag(self):
        def prog(ctx):
            if ctx.rank == 0:
                for i in range(5):
                    yield ctx.send(1, i, tag=7)
                return None
            got = []
            for _ in range(5):
                got.append((yield ctx.recv(0, tag=7)))
            return got

        result = Engine(ideal_machine(2)).run(prog)
        assert result.results[1] == [0, 1, 2, 3, 4]

    def test_tag_filtering(self):
        def prog(ctx):
            if ctx.rank == 0:
                yield ctx.send(1, "low", tag=1)
                yield ctx.send(1, "high", tag=2)
                return None
            high = yield ctx.recv(0, tag=2)
            low = yield ctx.recv(0, tag=1)
            return (high, low)

        result = Engine(ideal_machine(2)).run(prog)
        assert result.results[1] == ("high", "low")

    def test_any_source(self):
        def prog(ctx):
            if ctx.rank in (0, 1):
                yield ctx.send(2, ctx.rank)
                return None
            a = yield ctx.recv(ANY_SOURCE)
            b = yield ctx.recv(ANY_SOURCE)
            return sorted([a, b])

        result = Engine(ideal_machine(3)).run(prog)
        assert result.results[2] == [0, 1]

    def test_self_send(self):
        def prog(ctx):
            yield ctx.send(ctx.rank, 42)
            got = yield ctx.recv(ctx.rank)
            return got

        result = Engine(ideal_machine(1)).run(prog)
        assert result.results[0] == 42

    def test_bad_destination_raises(self):
        def prog(ctx):
            yield ctx.send(5, 1)

        with pytest.raises(CommunicationError):
            Engine(ideal_machine(2)).run(prog)

    def test_user_tag_negative_raises(self):
        def prog(ctx):
            yield ctx.send(0, 1, tag=-3)

        with pytest.raises(CommunicationError):
            Engine(ideal_machine(1)).run(prog)


class TestDeadlock:
    def test_mutual_recv_deadlocks(self):
        def prog(ctx):
            other = 1 - ctx.rank
            _ = yield ctx.recv(other)

        with pytest.raises(DeadlockError) as exc:
            Engine(ideal_machine(2)).run(prog)
        assert 0 in exc.value.waiting and 1 in exc.value.waiting

    def test_missing_message_deadlocks(self):
        def prog(ctx):
            if ctx.rank == 1:
                _ = yield ctx.recv(0, tag=9)

        with pytest.raises(DeadlockError):
            Engine(ideal_machine(2)).run(prog)


class TestTimingSemantics:
    def test_compute_advances_clock(self):
        def prog(ctx):
            yield ctx.compute(flops=1e9)
            return None

        result = Engine(ideal_machine(1)).run(prog)
        assert result.elapsed_s == pytest.approx(1.0)

    def test_elapse_kind_routing(self):
        def prog(ctx):
            yield ctx.elapse(0.5, kind="work")
            yield ctx.elapse(0.25, kind="redundancy")
            return None

        result = Engine(ideal_machine(1)).run(prog)
        budget = result.budgets[0]
        assert budget.work_s == pytest.approx(0.5)
        assert budget.redundancy_s == pytest.approx(0.25)

    def test_elapse_bad_kind_raises(self):
        def prog(ctx):
            yield ctx.elapse(0.5, kind="overhead")

        with pytest.raises(ConfigurationError):
            Engine(ideal_machine(1)).run(prog)

    def test_blocked_recv_counts_as_comm(self):
        def prog(ctx):
            if ctx.rank == 0:
                yield ctx.compute(flops=1e9)  # receiver blocks ~1 virtual sec
                yield ctx.send(1, 1)
                return None
            _ = yield ctx.recv(0)
            return None

        result = Engine(ideal_machine(2)).run(prog)
        assert result.budgets[1].comm_s == pytest.approx(1.0, rel=0.01)

    def test_imbalance_assigned_to_early_finishers(self):
        def prog(ctx):
            yield ctx.compute(flops=1e9 * (1 + ctx.rank))
            return None

        result = Engine(ideal_machine(2)).run(prog)
        assert result.budgets[0].imbalance_s == pytest.approx(1.0)
        assert result.budgets[1].imbalance_s == pytest.approx(0.0)

    def test_redundant_compute_budget(self):
        def prog(ctx):
            yield ctx.compute(flops=1e9, redundant=True)
            return None

        result = Engine(ideal_machine(1)).run(prog)
        assert result.budgets[0].redundancy_s == pytest.approx(1.0)
        assert result.budgets[0].work_s == 0.0

    def test_paging_slows_compute(self):
        def prog(ctx):
            yield ctx.set_resident_memory(2 * ctx.machine.cpu.memory_bytes)
            yield ctx.compute(flops=1e9)
            return None

        machine = ideal_machine(1)
        result = Engine(machine).run(prog)
        assert result.elapsed_s > 1.0

    def test_budget_fractions_sum_to_one(self):
        def prog(ctx):
            yield ctx.compute(flops=1e8 * (1 + ctx.rank))
            if ctx.rank == 0:
                yield ctx.send(1, np.zeros(100))
            else:
                _ = yield ctx.recv(0)
            return None

        result = Engine(ideal_machine(2)).run(prog)
        for budget in result.budgets:
            assert sum(budget.fractions().values()) == pytest.approx(1.0)


class TestRunResult:
    def test_results_ordered_by_rank(self):
        def prog(ctx):
            yield ctx.compute(flops=1)
            return ctx.rank * 10

        result = Engine(ideal_machine(4)).run(prog)
        assert result.results == [0, 10, 20, 30]

    def test_mean_and_max_comm(self):
        def prog(ctx):
            if ctx.rank == 0:
                yield ctx.send(1, np.zeros(1000))
            elif ctx.rank == 1:
                _ = yield ctx.recv(0)
            yield ctx.compute(flops=1)
            return None

        result = Engine(ideal_machine(3)).run(prog)
        assert result.max_comm_s() >= result.mean_comm_s() >= 0.0

    def test_non_generator_program_raises(self):
        def prog(ctx):
            return 42

        with pytest.raises(ConfigurationError):
            Engine(ideal_machine(1)).run(prog)

    def test_program_args_forwarded(self):
        def prog(ctx, base, scale=1):
            yield ctx.compute(flops=1)
            return base + scale * ctx.rank

        result = Engine(ideal_machine(3)).run(prog, 100, scale=2)
        assert result.results == [100, 102, 104]


class TestMachineValidation:
    def test_duplicate_placement_raises(self):
        with pytest.raises(ConfigurationError):
            Machine(
                name="bad",
                cpu=CpuModel(1e9, 1e9, 1e9),
                network=ContentionNetwork(topology=FullyConnected(2)),
                placement=[0, 0],
            )

    def test_out_of_range_placement_raises(self):
        with pytest.raises(ConfigurationError):
            Machine(
                name="bad",
                cpu=CpuModel(1e9, 1e9, 1e9),
                network=ContentionNetwork(topology=FullyConnected(2)),
                placement=[0, 5],
            )

    def test_spec_factories(self):
        assert paragon(8).nranks == 8
        assert workstation().nranks == 1
        with pytest.raises(ConfigurationError):
            paragon(65)
        with pytest.raises(ConfigurationError):
            paragon(4, placement="zigzag")
