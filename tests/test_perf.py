"""Tests for the perf metrics and report rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.machines import Engine, Machine
from repro.machines.cpu import CpuModel
from repro.machines.network import ContentionNetwork, FullyConnected
from repro.perf import (
    ScalingCurve,
    ScalingPoint,
    format_budget,
    format_speedup_series,
    format_table,
    linear_extrapolate,
)


class TestScalingCurve:
    def test_speedup_relative_to_p1(self):
        curve = ScalingCurve(
            "test",
            [ScalingPoint(1, 8.0), ScalingPoint(2, 4.0), ScalingPoint(4, 2.5)],
        )
        speedups = dict(curve.speedup())
        assert speedups[1] == pytest.approx(1.0)
        assert speedups[2] == pytest.approx(2.0)
        assert speedups[4] == pytest.approx(3.2)

    def test_efficiency(self):
        curve = ScalingCurve("t", [ScalingPoint(1, 4.0), ScalingPoint(4, 2.0)])
        eff = dict(curve.efficiency())
        assert eff[4] == pytest.approx(0.5)

    def test_explicit_serial_reference(self):
        curve = ScalingCurve("t", [ScalingPoint(8, 1.0)], serial_s=6.0)
        assert dict(curve.speedup())[8] == pytest.approx(6.0)

    def test_points_sorted(self):
        curve = ScalingCurve(
            "t", [ScalingPoint(4, 1.0), ScalingPoint(1, 3.0), ScalingPoint(2, 2.0)]
        )
        assert [p.nranks for p in curve.points] == [1, 2, 4]

    def test_missing_reference_raises(self):
        with pytest.raises(ConfigurationError):
            ScalingCurve("t", [ScalingPoint(4, 1.0)])

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            ScalingCurve("t", [])


class TestExtrapolation:
    def test_linear_fit(self):
        # time = 2 * size + 1
        assert linear_extrapolate([1, 2, 3], [3, 5, 7], 10) == pytest.approx(21.0)

    def test_paper_style_projection(self):
        """Appendix B Table 1: project 1M-particle time from 256K/512K."""
        projected = linear_extrapolate(
            [262144, 524288], [13.35, 24.41], 1048576
        )
        assert projected == pytest.approx(45.93, abs=1.0)

    def test_too_few_points_raise(self):
        with pytest.raises(ConfigurationError):
            linear_extrapolate([1], [2], 3)


class TestFormatting:
    def test_table_contains_cells(self):
        text = format_table("Title", ["a", "b"], [[1, 2.5], ["x", 0.001]])
        assert "Title" in text
        assert "2.5" in text
        assert "x" in text

    def test_speedup_series(self):
        text = format_speedup_series("Fig", {"snake": [(2, 1.9), (4, 3.4)]})
        assert "snake" in text and "P=4" in text

    def test_budget_render(self):
        machine = Machine(
            name="m",
            cpu=CpuModel(1e9, 1e9, 1e9),
            network=ContentionNetwork(topology=FullyConnected(2)),
            placement=[0, 1],
        )

        def prog(ctx):
            yield ctx.compute(flops=1e6 * (1 + ctx.rank))
            return None

        run = Engine(machine).run(prog)
        text = format_budget("Budget", run)
        assert "work" in text and "imbalance" in text and "%" in text


class TestFormatProfile:
    def test_renders_and_scales(self):
        from repro.perf import format_profile

        text = format_profile("profile", [0, 1, 2, 4, 8])
        assert "profile" in text and "peak=8" in text
        assert "|" in text

    def test_resamples_long_series(self):
        from repro.perf import format_profile

        text = format_profile("p", list(range(1000)), width=32)
        body = text.splitlines()[1]
        assert len(body.strip().strip("|").split("peak")[0]) <= 40

    def test_empty_raises(self):
        from repro.perf import format_profile

        with pytest.raises(ValueError):
            format_profile("p", [])

    def test_constant_zero_series(self):
        from repro.perf import format_profile

        text = format_profile("p", [0.0, 0.0, 0.0])
        assert "peak=1" in text  # guarded peak
