"""The ``collective=`` knob end to end: RunOptions plumbing, registry
validation through :class:`ConfigurationError`, and the service-mix
rewrite behind ``serve --collective``."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime import JobSpec, RunOptions, launch
from repro.service.workloads import JobTemplate, default_mix


def wavelet_spec(collective):
    from repro.data import landsat_like_scene
    from repro.wavelet import filter_bank_for_length

    return JobSpec(
        program="wavelet",
        params={
            "image": landsat_like_scene((32, 32)),
            "bank": filter_bank_for_length(4),
            "levels": 1,
        },
        options=RunOptions(machine="paragon", nranks=4, collective=collective),
    )


class TestRunOptionsCollective:
    def test_default_is_rdouble(self):
        assert RunOptions().collective == "rdouble"

    def test_unsupported_program_rejected(self):
        # The wavelet filter program has no global reduction; the knob
        # must be rejected, not silently ignored.
        with pytest.raises(ConfigurationError, match="does not support collective"):
            launch(wavelet_spec("rabenseifner"))

    def test_unknown_collective_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown collective"):
            launch(wavelet_spec("butterfly"))

    def test_supporting_program_runs_under_both_schedules(self):
        runs = {}
        for collective in ("rdouble", "rabenseifner"):
            spec = JobTemplate(
                name=f"knob-{collective}",
                program="workload",
                nranks=4,
                scale=0.05,
                collective=collective,
            ).build_spec(machine="paragon")
            runs[collective] = launch(spec)
        # Same work, different wire schedule: results agree, virtual
        # time is allowed to differ.
        assert runs["rdouble"].total_virtual_s > 0
        assert runs["rabenseifner"].total_virtual_s > 0


class TestMixWithCollective:
    def test_replaces_only_supporting_templates(self):
        mix = default_mix().with_collective("rabenseifner")
        # workload templates carry a global reduction -> rewritten.
        assert mix.templates["mix-analytics"].collective == "rabenseifner"
        assert mix.templates["fusion-merge"].collective == "rabenseifner"
        # wavelet templates have none -> left on the default so their
        # validation still passes.
        assert mix.templates["dwt-small"].collective == "rdouble"
        assert mix.templates["dwt-medium"].collective == "rdouble"

    def test_original_mix_untouched(self):
        mix = default_mix()
        mix.with_collective("rabenseifner")
        assert all(t.collective == "rdouble" for t in mix.templates.values())

    def test_unknown_name_raises_eagerly(self):
        with pytest.raises(ConfigurationError, match="unknown collective"):
            default_mix().with_collective("bruck")

    def test_rewritten_template_spec_carries_knob(self):
        mix = default_mix().with_collective("rabenseifner")
        spec = mix.templates["mix-analytics"].build_spec()
        assert spec.options.collective == "rabenseifner"
