"""Property-based tests for the extension modules (registration,
features, machine fit, suite composition, trace I/O)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import landsat_like_scene
from repro.wavelet import (
    phase_correlation,
    register_translation,
    signature_distance,
    texture_signature,
)
from repro.workload import (
    INSTRUCTION_TYPES,
    ParallelWorkload,
    Trace,
    coverage_radius,
    load_trace,
    oracle_schedule,
    save_trace,
    select_representatives,
    sustained_rate,
    typed_list_schedule,
)


@pytest.fixture(scope="module")
def scene():
    return landsat_like_scene((64, 64))


class TestRegistrationProperties:
    @given(dy=st.integers(-30, 30), dx=st.integers(-30, 30))
    @settings(max_examples=25, deadline=None)
    def test_phase_correlation_inverts_roll(self, scene, dy, dx):
        target = np.roll(scene, (-dy, -dx), axis=(0, 1))
        assert phase_correlation(scene, target) == (dy, dx)

    @given(dy=st.integers(-20, 20), dx=st.integers(-20, 20))
    @settings(max_examples=15, deadline=None)
    def test_register_translation_inverts_roll(self, scene, dy, dx):
        target = np.roll(scene, (-dy, -dx), axis=(0, 1))
        result = register_translation(scene, target)
        assert result.shift == (dy, dx)

    @given(dy=st.integers(-10, 10), dx=st.integers(-10, 10))
    @settings(max_examples=15, deadline=None)
    def test_antisymmetry(self, scene, dy, dx):
        """Registering in the other direction negates the shift (modulo
        the circular representative)."""
        target = np.roll(scene, (-dy, -dx), axis=(0, 1))
        forward = register_translation(scene, target).shift
        backward = register_translation(target, scene).shift
        assert (forward[0] + backward[0]) % 64 == 0
        assert (forward[1] + backward[1]) % 64 == 0


class TestSignatureProperties:
    @given(scale=st.floats(0.25, 4.0), shift_rows=st.integers(0, 32))
    @settings(max_examples=20, deadline=None)
    def test_signature_translation_invariant(self, scene, scale, shift_rows):
        """Circular translation leaves subband energies unchanged only
        for even shifts of the full pyramid depth; energies are still
        nearly invariant for arbitrary shifts of natural imagery."""
        base = texture_signature(scene, levels=2)
        shifted = texture_signature(np.roll(scene, shift_rows, axis=0), levels=2)
        assert signature_distance(base, shifted) < 0.1

    @given(noise=st.floats(0.0, 0.02))
    @settings(max_examples=20, deadline=None)
    def test_signature_stable_under_small_noise(self, scene, noise):
        rng = np.random.default_rng(0)
        noisy = scene + rng.standard_normal(scene.shape) * noise * scene.std()
        assert signature_distance(
            texture_signature(scene), texture_signature(noisy)
        ) < 0.25


class TestTypedScheduleProperties:
    @given(
        n=st.integers(1, 60),
        units=st.lists(st.integers(1, 5), min_size=5, max_size=5),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_per_type_capacity_never_exceeded(self, n, units, seed):
        rng = np.random.default_rng(seed)
        trace = Trace("random")
        for i in range(n):
            deps = (int(rng.integers(0, i)),) if i and rng.random() < 0.4 else ()
            trace.append(INSTRUCTION_TYPES[int(rng.integers(0, 5))], deps)
        result = typed_list_schedule(trace, units)
        for column, limit in enumerate(units):
            assert result.workload.levels[:, column].max() <= limit
        assert result.workload.total_operations == n

    @given(n=st.integers(2, 40), seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_more_units_never_slower(self, n, seed):
        rng = np.random.default_rng(seed)
        trace = Trace("random")
        for i in range(n):
            deps = (int(rng.integers(0, i)),) if i and rng.random() < 0.4 else ()
            trace.append(INSTRUCTION_TYPES[int(rng.integers(0, 3))], deps)
        narrow = sustained_rate(trace, [1] * 5)
        wide = sustained_rate(trace, [8] * 5)
        assert wide >= narrow - 1e-12


class TestSuiteProperties:
    @given(k=st.integers(1, 6), seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_representatives_shrink_coverage(self, k, seed):
        rng = np.random.default_rng(seed)
        workloads = [
            ParallelWorkload.from_counts(
                f"w{i}", [tuple(rng.integers(0, 9, size=5) + (i == j))
                          for j in range(2)]
            )
            for i in range(6)
        ]
        chosen = select_representatives(workloads, k)
        suite = [workloads[i] for i in chosen]
        radius = coverage_radius(suite, workloads)
        assert 0.0 <= radius <= 1.0
        if k == len(workloads):
            assert radius == pytest.approx(0.0)


class TestTraceIOProperties:
    @given(n=st.integers(1, 60), seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_random_traces_roundtrip(self, tmp_path_factory, n, seed):
        rng = np.random.default_rng(seed)
        trace = Trace(f"rand{seed}")
        for i in range(n):
            ndeps = int(rng.integers(0, min(i, 3) + 1))
            deps = tuple(
                int(d) for d in rng.choice(i, size=ndeps, replace=False)
            ) if ndeps else ()
            trace.append(INSTRUCTION_TYPES[int(rng.integers(0, 5))], deps)
        path = tmp_path_factory.mktemp("io") / "trace.npz"
        save_trace(path, trace)
        loaded = load_trace(path)
        assert loaded.types == trace.types
        assert loaded.deps == trace.deps
        assert (
            oracle_schedule(loaded).critical_path
            == oracle_schedule(trace).critical_path
        )
