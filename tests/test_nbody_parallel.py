"""Tests for the parallel N-body programs against the sequential scheme."""

import numpy as np
import pytest

from repro.data import plummer_sphere
from repro.errors import ConfigurationError
from repro.machines import paragon, t3d
from repro.nbody import build_tree, run_parallel_nbody, tree_forces


@pytest.fixture(scope="module")
def cluster():
    return plummer_sphere(192, dim=2, seed=9)


def sequential_reference(particles, steps, dt=0.01, theta=0.6, softening=1e-3):
    """The same semi-implicit Euler scheme the parallel code uses."""
    pos = particles.positions.copy()
    vel = particles.velocities.copy()
    for _ in range(steps):
        tree = build_tree(pos, particles.masses)
        acc = tree_forces(
            tree, pos, particles.masses, theta=theta, softening=softening
        ).accelerations
        vel = vel + acc * dt
        pos = pos + vel * dt
    return pos, vel


class TestManagerWorker:
    @pytest.mark.parametrize("nranks", [1, 2, 4, 8])
    def test_matches_sequential(self, cluster, nranks):
        expected_pos, expected_vel = sequential_reference(cluster, 2)
        out = run_parallel_nbody(paragon(nranks), cluster.copy(), steps=2)
        np.testing.assert_allclose(out.particles.positions, expected_pos, atol=1e-9)
        np.testing.assert_allclose(out.particles.velocities, expected_vel, atol=1e-9)

    def test_interactions_recorded(self, cluster):
        out = run_parallel_nbody(paragon(4), cluster.copy(), steps=3)
        assert len(out.interactions_per_step) == 3
        assert all(i > cluster.n for i in out.interactions_per_step)

    def test_orb_partition_variant(self, cluster):
        out = run_parallel_nbody(paragon(4), cluster.copy(), steps=1, partition="orb")
        expected_pos, _ = sequential_reference(cluster, 1)
        np.testing.assert_allclose(out.particles.positions, expected_pos, atol=1e-9)

    def test_manager_comm_grows_with_ranks(self, cluster):
        """The centralized tree broadcast is the scaling bottleneck the
        paper attributes the manager-worker imbalance to."""
        small = run_parallel_nbody(paragon(2), cluster.copy(), steps=1)
        large = run_parallel_nbody(paragon(8), cluster.copy(), steps=1)
        assert large.run.bytes_sent > small.run.bytes_sent

    def test_t3d_faster_than_paragon(self, cluster):
        """Appendix B Tables 1-2: the integer-heavy N-body runs much
        faster on the Alpha."""
        paragon_run = run_parallel_nbody(paragon(4), cluster.copy(), steps=1)
        t3d_run = run_parallel_nbody(t3d(4), cluster.copy(), steps=1)
        assert t3d_run.run.elapsed_s < paragon_run.run.elapsed_s / 3

    def test_unknown_model_raises(self, cluster):
        with pytest.raises(ConfigurationError):
            run_parallel_nbody(paragon(2), cluster.copy(), steps=1, model="peer2peer")

    def test_unknown_partition_raises(self, cluster):
        with pytest.raises(ConfigurationError):
            run_parallel_nbody(paragon(2), cluster.copy(), steps=1, partition="hilbert")


class TestReplicated:
    @pytest.mark.parametrize("nranks", [1, 2, 4])
    def test_matches_sequential(self, cluster, nranks):
        expected_pos, expected_vel = sequential_reference(cluster, 2)
        out = run_parallel_nbody(
            paragon(nranks), cluster.copy(), steps=2, model="replicated"
        )
        np.testing.assert_allclose(out.particles.positions, expected_pos, atol=1e-9)
        np.testing.assert_allclose(out.particles.velocities, expected_vel, atol=1e-9)

    def test_replicated_trades_comm_for_redundancy(self, cluster):
        """Appendix B §5.3: duplication reduces communication at the price
        of redundancy overhead."""
        mw = run_parallel_nbody(paragon(4), cluster.copy(), steps=2)
        rep = run_parallel_nbody(
            paragon(4), cluster.copy(), steps=2, model="replicated"
        )
        assert rep.run.mean_budget().redundancy_s > mw.run.mean_budget().redundancy_s
        assert rep.run.bytes_sent < mw.run.bytes_sent


class TestLeapfrogIntegrator:
    @pytest.mark.parametrize("nranks", [1, 2, 4])
    def test_matches_sequential_kdk_simulation(self, cluster, nranks):
        """The leapfrog option reproduces NBodySimulation bit-for-bit —
        the strongest cross-check between the parallel and sequential
        stacks."""
        from repro.nbody import NBodySimulation

        sequential = NBodySimulation(cluster.copy(), dt=0.005)
        sequential.run(3)
        out = run_parallel_nbody(
            paragon(nranks), cluster.copy(), steps=3, dt=0.005,
            integrator="leapfrog",
        )
        np.testing.assert_allclose(
            out.particles.positions, sequential.particles.positions, atol=1e-9
        )
        np.testing.assert_allclose(
            out.particles.velocities, sequential.particles.velocities, atol=1e-9
        )

    def test_leapfrog_conserves_energy_better_than_euler(self, cluster):
        """The symplectic KDK scheme drifts less over many steps."""
        from repro.nbody import direct_forces

        def total_energy(particles):
            potential = direct_forces(
                particles.positions, particles.masses, softening=1e-3
            ).potential
            return particles.kinetic_energy() + potential

        initial = total_energy(cluster)
        drifts = {}
        for integrator in ("euler", "leapfrog"):
            out = run_parallel_nbody(
                paragon(2), cluster.copy(), steps=20, dt=0.01,
                integrator=integrator,
            )
            drifts[integrator] = abs(total_energy(out.particles) - initial)
        assert drifts["leapfrog"] <= drifts["euler"] * 1.5

    def test_unknown_integrator_raises(self, cluster):
        with pytest.raises(ConfigurationError):
            run_parallel_nbody(
                paragon(2), cluster.copy(), steps=1, integrator="rk4"
            )

    def test_costs_feed_costzones_each_round(self, cluster):
        out = run_parallel_nbody(
            paragon(4), cluster.copy(), steps=2, integrator="leapfrog"
        )
        assert len(out.interactions_per_step) == 2
        assert all(i > cluster.n for i in out.interactions_per_step)
