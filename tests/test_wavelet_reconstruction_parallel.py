"""Tests for the parallel wavelet reconstruction (Figure 2's reverse
process on both machine families), including the full SPMD
decompose-then-reconstruct pipeline."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DecompositionError
from repro.machines import paragon
from repro.machines.simd import MasParMachine, maspar_mp2
from repro.wavelet import (
    daubechies_filter,
    filter_bank_for_length,
    mallat_decompose_2d,
)
from repro.wavelet.conv import synthesize_axis, synthesize_axis_valid
from repro.wavelet.parallel import (
    run_spmd_reconstruct,
    run_spmd_wavelet,
    simd_mallat_decompose,
    simd_mallat_reconstruct,
)


@pytest.fixture(scope="module")
def image():
    return np.random.default_rng(21).random((128, 64)) * 255


class TestSynthesizeAxisValid:
    def test_matches_periodized_with_wrap_guard(self):
        rng = np.random.default_rng(0)
        data = rng.random(16)
        taps = rng.random(4)
        periodized = synthesize_axis(data, taps, 0)
        lead = 2
        extended = np.concatenate([data[-lead:], data])
        valid = synthesize_axis_valid(extended, taps, 0, out_len=32, lead=lead)
        np.testing.assert_allclose(valid, periodized, atol=1e-12)

    def test_partial_output_window(self):
        rng = np.random.default_rng(1)
        data = rng.random(16)
        taps = rng.random(4)
        periodized = synthesize_axis(data, taps, 0)
        lead = 2
        extended = np.concatenate([data[2 - lead : 2], data[2:10]])
        valid = synthesize_axis_valid(extended, taps, 0, out_len=10, lead=lead)
        np.testing.assert_allclose(valid, periodized[4:14], atol=1e-12)

    def test_insufficient_guard_raises(self):
        with pytest.raises(ConfigurationError):
            synthesize_axis_valid(np.ones(8), np.ones(8), 0, out_len=4, lead=1)

    def test_too_many_outputs_raise(self):
        with pytest.raises(ConfigurationError):
            synthesize_axis_valid(np.ones(8), np.ones(2), 0, out_len=17, lead=1)

    def test_negative_out_len_raises(self):
        with pytest.raises(ConfigurationError):
            synthesize_axis_valid(np.ones(8), np.ones(2), 0, out_len=-1, lead=1)


class TestSpmdReconstruct:
    @pytest.mark.parametrize("nranks", [1, 2, 4, 8])
    @pytest.mark.parametrize("length,levels", [(8, 1), (4, 2), (2, 4)])
    def test_matches_original(self, image, nranks, length, levels):
        bank = filter_bank_for_length(length)
        pyramid = mallat_decompose_2d(image, bank, levels)
        outcome = run_spmd_reconstruct(paragon(nranks), pyramid, bank)
        np.testing.assert_allclose(outcome.image, image, atol=1e-8)

    def test_full_spmd_pipeline(self, image):
        """Decompose and reconstruct both on the simulated machine."""
        bank = daubechies_filter(4)
        decomposed = run_spmd_wavelet(paragon(4), image, bank, 2)
        reconstructed = run_spmd_reconstruct(paragon(4), decomposed.pyramid, bank)
        np.testing.assert_allclose(reconstructed.image, image, atol=1e-8)

    def test_reconstruction_charges_work_and_comm(self, image):
        bank = daubechies_filter(4)
        pyramid = mallat_decompose_2d(image, bank, 2)
        outcome = run_spmd_reconstruct(paragon(4), pyramid, bank)
        budget = outcome.run.mean_budget()
        assert budget.work_s > 0
        assert budget.comm_s > 0

    def test_stripe_too_small_raises(self, image):
        bank = daubechies_filter(8)
        pyramid = mallat_decompose_2d(image, bank, 3)
        # 128 rows / 16 ranks at level 3 = 1-row stripes < the 4-row guard.
        with pytest.raises(DecompositionError):
            run_spmd_reconstruct(paragon(16), pyramid, bank)

    def test_reconstruct_cost_comparable_to_decompose(self, image):
        """Synthesis and analysis do the same arithmetic volume."""
        bank = daubechies_filter(4)
        decomposed = run_spmd_wavelet(paragon(4), image, bank, 2)
        reconstructed = run_spmd_reconstruct(paragon(4), decomposed.pyramid, bank)
        ratio = (
            reconstructed.run.mean_budget().work_s
            / decomposed.run.mean_budget().work_s
        )
        assert 0.5 < ratio < 2.0


class TestSimdReconstruct:
    @pytest.mark.parametrize("length,levels", [(8, 1), (4, 2), (2, 4)])
    def test_matches_original(self, image, length, levels):
        bank = filter_bank_for_length(length)
        pyramid = mallat_decompose_2d(image, bank, levels)
        machine = MasParMachine(maspar_mp2(pe_side=32))
        reconstructed, stats, elapsed = simd_mallat_reconstruct(machine, pyramid, bank)
        np.testing.assert_allclose(reconstructed, image, atol=1e-8)
        assert elapsed > 0

    def test_uses_router_for_upsampling(self, image):
        bank = daubechies_filter(4)
        pyramid = mallat_decompose_2d(image, bank, 1)
        machine = MasParMachine(maspar_mp2(pe_side=32))
        _, stats, _ = simd_mallat_reconstruct(machine, pyramid, bank)
        assert stats.router_cycles > 0

    def test_simd_roundtrip_on_machine(self, image):
        """Decompose and reconstruct entirely on the SIMD model."""
        bank = daubechies_filter(8)
        machine = MasParMachine(maspar_mp2(pe_side=32))
        forward = simd_mallat_decompose(machine, image, bank, 1)
        reconstructed, _, _ = simd_mallat_reconstruct(machine, forward.pyramid, bank)
        np.testing.assert_allclose(reconstructed, image, atol=1e-8)
