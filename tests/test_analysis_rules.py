"""Every lint rule caught on a fixture with a planted violation, plus
suppression and baseline mechanics.

Fixtures are in-memory sources (``lint_sources``), each planting exactly
the violation under test; assertions check rule id *and* line so a rule
that fires on the wrong site fails.  Planted tag values sit in the 7000s
so they can never collide with the central registry's real allocations.
"""

import textwrap

import pytest

from repro.analysis import ALL_RULES, lint_sources, load_baseline, write_baseline
from repro.analysis.linter import LintConfig
from repro.analysis.rules import Finding, parse_suppressions


def lint(sources, **config_kwargs):
    config = LintConfig(**config_kwargs) if config_kwargs else None
    return lint_sources({k: textwrap.dedent(v) for k, v in sources.items()}, config)


def hits(report, rule_id):
    return [f for f in report.findings if f.rule_id == rule_id]


class TestCommRules:
    def test_tag_collision_across_modules(self):
        report = lint(
            {
                "fix.alpha": """\
                    TAG = 7001

                    def prog(ctx):
                        yield ctx.send(1, 0, tag=TAG)
                    """,
                "fix.beta": """\
                    TAG = 7001

                    def prog(ctx):
                        data = yield ctx.recv(0, tag=TAG)
                        return data
                    """,
            }
        )
        found = hits(report, "COMM-TAG-COLLISION")
        assert {f.module for f in found} == {"fix.alpha", "fix.beta"}
        assert all("7001" in f.message for f in found)
        assert report.exit_code == 1

    def test_tag_collision_with_central_registry(self):
        # Value 2 is owned by the registry (wavelet.spmd.row_guard).
        report = lint(
            {
                "fix.rogue": """\
                    TAG = 2

                    def prog(ctx):
                        yield ctx.send(1, 0, tag=TAG)
                        got = yield ctx.recv(1, tag=TAG)
                        return got
                    """,
            }
        )
        found = hits(report, "COMM-TAG-COLLISION")
        assert len(found) == 1
        assert found[0].line == 4  # anchored to the first offending call site
        assert "wavelet.spmd.row_guard" in found[0].message

    def test_no_collision_when_value_comes_from_registry(self):
        report = lint(
            {
                "fix.good": """\
                    from repro.machines import tags

                    TAG = tags.WAVELET_ROW_GUARD

                    def prog(ctx):
                        yield ctx.send(1, 0, tag=TAG)
                        got = yield ctx.recv(1, tag=TAG)
                        return got
                    """,
            }
        )
        assert hits(report, "COMM-TAG-COLLISION") == []

    def test_orphan_sent_never_received(self):
        report = lint(
            {
                "fix.orphan": """\
                    TAG = 7100

                    def prog(ctx):
                        yield ctx.send(1, 0, tag=TAG)
                    """,
            }
        )
        found = hits(report, "COMM-TAG-ORPHAN")
        assert len(found) == 1
        assert found[0].line == 4
        assert "never received" in found[0].message

    def test_orphan_received_never_sent(self):
        report = lint(
            {
                "fix.orphan": """\
                    TAG = 7200

                    def prog(ctx):
                        got = yield ctx.recv(0, tag=TAG)
                        return got
                    """,
            }
        )
        found = hits(report, "COMM-TAG-ORPHAN")
        assert len(found) == 1
        assert found[0].line == 4
        assert "never sent" in found[0].message

    def test_paired_tag_is_not_orphan(self):
        report = lint(
            {
                "fix.pair": """\
                    TAG = 7300

                    def prog(ctx):
                        if ctx.rank == 0:
                            yield ctx.send(1, 0, tag=TAG)
                        else:
                            got = yield ctx.recv(0, tag=TAG)
                            return got
                    """,
            }
        )
        assert hits(report, "COMM-TAG-ORPHAN") == []

    def test_wildcard_recv_explicit_any_source(self):
        report = lint(
            {
                "fix.wild": """\
                    from repro.machines import ANY_SOURCE

                    TAG = 7400

                    def prog(ctx):
                        if ctx.rank == 0:
                            got = yield ctx.recv(ANY_SOURCE, tag=TAG)
                            return got
                        yield ctx.send(0, ctx.rank, tag=TAG)
                    """,
            }
        )
        found = hits(report, "COMM-WILDCARD-RECV")
        assert len(found) == 1
        assert found[0].line == 7
        assert "ANY_SOURCE" in found[0].message
        assert found[0].severity == "warning"
        assert report.exit_code == 1

    def test_wildcard_recv_by_omission(self):
        report = lint(
            {
                "fix.wild": """\
                    def prog(ctx):
                        got = yield ctx.recv()
                        return got
                    """,
            }
        )
        found = hits(report, "COMM-WILDCARD-RECV")
        assert len(found) == 1
        assert found[0].line == 2
        assert "ANY_SOURCE" in found[0].message and "ANY_TAG" in found[0].message

    def test_explicit_recv_is_not_wildcard(self):
        report = lint(
            {
                "fix.exact": """\
                    TAG = 7500

                    def prog(ctx):
                        if ctx.rank == 0:
                            got = yield ctx.recv(1, tag=TAG)
                            return got
                        yield ctx.send(0, 1, tag=TAG)
                    """,
            }
        )
        assert hits(report, "COMM-WILDCARD-RECV") == []

    def test_recv_without_timeout_in_raw_fault_module(self):
        sources = {
            "fix.transport": """\
                TAG = 7600

                def prog(ctx):
                    if ctx.rank == 0:
                        got = yield ctx.recv(1, tag=TAG)
                        return got
                    yield ctx.send(0, 1, tag=TAG)
                """,
        }
        report = lint(sources, raw_fault_modules=("fix.transport",))
        found = hits(report, "COMM-RECV-NO-TIMEOUT")
        assert len(found) == 1
        assert found[0].line == 5
        # The same module is clean when not declared fault-reachable.
        assert hits(lint(sources), "COMM-RECV-NO-TIMEOUT") == []

    def test_recv_with_timeout_passes_raw_fault_check(self):
        report = lint(
            {
                "fix.transport": """\
                    TAG = 7700

                    def prog(ctx):
                        if ctx.rank == 0:
                            got = yield ctx.recv(1, tag=TAG, timeout_s=0.5)
                            return got
                        yield ctx.send(0, 1, tag=TAG)
                    """,
            },
            raw_fault_modules=("fix.transport",),
        )
        assert hits(report, "COMM-RECV-NO-TIMEOUT") == []

    def test_raw_tag_literal_at_call_site(self):
        report = lint(
            {
                "fix.literal": """\
                    def prog(ctx):
                        if ctx.rank == 0:
                            yield ctx.send(1, 0, tag=7800)
                        else:
                            got = yield ctx.recv(0, tag=7800)
                            return got
                    """,
            }
        )
        found = hits(report, "COMM-TAG-LITERAL")
        assert {f.line for f in found} == {3, 5}


class TestDeterminismRules:
    def test_wall_clock_call(self):
        report = lint(
            {
                "fix.clock": """\
                    import time

                    def stamp():
                        return time.time()
                    """,
            }
        )
        found = hits(report, "DET-WALL-CLOCK")
        assert len(found) == 1
        assert found[0].line == 4

    def test_wall_clock_from_import(self):
        report = lint(
            {
                "fix.clock": """\
                    from time import perf_counter

                    def stamp():
                        return perf_counter()
                    """,
            }
        )
        assert [f.line for f in hits(report, "DET-WALL-CLOCK")] == [4]

    def test_unseeded_numpy_global_draw(self):
        report = lint(
            {
                "fix.rng": """\
                    import numpy as np

                    def noise(n):
                        return np.random.rand(n)
                    """,
            }
        )
        found = hits(report, "DET-UNSEEDED-RNG")
        assert len(found) == 1
        assert found[0].line == 4

    def test_unseeded_default_rng_constructor(self):
        report = lint(
            {
                "fix.rng": """\
                    import numpy as np

                    def make():
                        return np.random.default_rng()
                    """,
            }
        )
        assert [f.line for f in hits(report, "DET-UNSEEDED-RNG")] == [4]

    def test_seeded_rng_is_clean(self):
        report = lint(
            {
                "fix.rng": """\
                    import numpy as np

                    def make(seed):
                        rng = np.random.default_rng(seed)
                        return rng.random(4)
                    """,
            }
        )
        assert hits(report, "DET-UNSEEDED-RNG") == []

    def test_set_iteration(self):
        report = lint(
            {
                "fix.sets": """\
                    def collect(xs):
                        pending = set(xs)
                        out = []
                        for item in pending:
                            out.append(item)
                        return out
                    """,
            }
        )
        found = hits(report, "DET-SET-ITERATION")
        assert len(found) == 1
        assert found[0].line == 4

    def test_sorted_set_iteration_is_clean(self):
        report = lint(
            {
                "fix.sets": """\
                    def collect(xs):
                        pending = set(xs)
                        return [item for item in sorted(pending)]

                    def loop(xs):
                        for item in sorted(set(xs)):
                            pass
                    """,
            }
        )
        assert hits(report, "DET-SET-ITERATION") == []

    def test_dict_iteration_only_in_strict_modules(self):
        source = """\
            def walk(d):
                for key, value in d.items():
                    pass
            """
        strict = lint({"fix.strict.mod": source}, strict_modules=("fix.strict",))
        relaxed = lint({"fix.app.mod": source}, strict_modules=("fix.strict",))
        assert [f.line for f in hits(strict, "DET-DICT-ITERATION")] == [2]
        assert hits(relaxed, "DET-DICT-ITERATION") == []

    def test_sorted_dict_iteration_is_clean_in_strict_module(self):
        report = lint(
            {
                "fix.strict.mod": """\
                    def walk(d):
                        for key, value in sorted(d.items()):
                            pass
                    """,
            },
            strict_modules=("fix.strict",),
        )
        assert hits(report, "DET-DICT-ITERATION") == []


class TestChargingRule:
    def test_uncharged_kernel_before_send(self):
        report = lint(
            {
                "fix.charge": """\
                    from repro.wavelet.kernels import analyze_axis

                    TAG = 7900

                    def prog(ctx, block):
                        block = analyze_axis(block, 0)
                        yield ctx.send(1, block, tag=TAG)
                        got = yield ctx.recv(1, tag=TAG)
                        return got
                    """,
            }
        )
        found = hits(report, "CHG-UNCHARGED-KERNEL")
        assert len(found) == 1
        assert found[0].line == 6
        assert "analyze_axis" in found[0].message

    def test_uncharged_kernel_at_end_of_body(self):
        report = lint(
            {
                "fix.charge": """\
                    import numpy as np

                    def prog(ctx, a, b):
                        yield ctx.compute(flops=1.0)
                        return np.matmul(a, b)
                    """,
            }
        )
        found = hits(report, "CHG-UNCHARGED-KERNEL")
        assert len(found) == 1
        assert found[0].line == 5
        assert "end of program body" in found[0].message

    def test_charged_kernel_is_clean(self):
        report = lint(
            {
                "fix.charge": """\
                    from repro.wavelet.kernels import analyze_axis

                    TAG = 7910

                    def prog(ctx, block):
                        block = analyze_axis(block, 0)
                        yield ctx.compute(flops=2.0 * block.size)
                        yield ctx.send(1, block, tag=TAG)
                        got = yield ctx.recv(1, tag=TAG)
                        return got
                    """,
            }
        )
        assert hits(report, "CHG-UNCHARGED-KERNEL") == []

    def test_kernel_pending_across_loop_back_edge(self):
        # The kernel at the bottom of the loop meets the recv at the top
        # on the next iteration: only the two-pass dataflow sees it.
        report = lint(
            {
                "fix.charge": """\
                    from repro.wavelet.kernels import analyze_axis

                    TAG = 7920

                    def prog(ctx, block, steps):
                        for _ in range(steps):
                            got = yield ctx.recv(0, tag=TAG)
                            block = analyze_axis(got, 0)
                        yield ctx.compute(flops=1.0)
                        return block
                    """,
            }
        )
        found = hits(report, "CHG-UNCHARGED-KERNEL")
        assert len(found) == 1
        assert found[0].line == 8

    def test_branch_local_charge_covers_only_its_branch(self):
        report = lint(
            {
                "fix.charge": """\
                    from repro.wavelet.kernels import analyze_axis

                    TAG = 7930

                    def prog(ctx, block, fast):
                        if fast:
                            block = analyze_axis(block, 0)
                            yield ctx.compute(flops=1.0)
                        else:
                            block = analyze_axis(block, 1)
                        yield ctx.send(1, block, tag=TAG)
                        got = yield ctx.recv(1, tag=TAG)
                        return got
                    """,
            }
        )
        found = hits(report, "CHG-UNCHARGED-KERNEL")
        assert len(found) == 1
        assert found[0].line == 10

    def test_non_program_function_is_ignored(self):
        report = lint(
            {
                "fix.charge": """\
                    import numpy as np

                    def pure_helper(a, b):
                        return np.matmul(a, b)
                    """,
            }
        )
        assert hits(report, "CHG-UNCHARGED-KERNEL") == []

    def test_yield_from_unknown_helper_clears_pending(self):
        report = lint(
            {
                "fix.charge": """\
                    from repro.wavelet.kernels import analyze_axis

                    def prog(ctx, block):
                        block = analyze_axis(block, 0)
                        yield from _charge_helper(ctx, block)
                        return block
                    """,
            }
        )
        assert hits(report, "CHG-UNCHARGED-KERNEL") == []


class TestSuppressionsAndBaseline:
    def test_inline_suppression_waives_finding(self):
        report = lint(
            {
                "fix.clock": """\
                    import time

                    def stamp():
                        return time.time()  # lint: disable=DET-WALL-CLOCK
                    """,
            }
        )
        assert hits(report, "DET-WALL-CLOCK") == []
        assert [f.rule_id for f in report.suppressed] == ["DET-WALL-CLOCK"]
        assert report.exit_code == 0

    def test_suppression_is_rule_specific(self):
        report = lint(
            {
                "fix.clock": """\
                    import time

                    def stamp():
                        return time.time()  # lint: disable=COMM-TAG-ORPHAN
                    """,
            }
        )
        assert [f.line for f in hits(report, "DET-WALL-CLOCK")] == [4]

    def test_disable_all(self):
        suppressions = parse_suppressions("x = 1  # lint: disable=all\n")
        assert suppressions == {1: {"all"}}
        report = lint(
            {
                "fix.clock": """\
                    import time

                    def stamp():
                        return time.time()  # lint: disable=all
                    """,
            }
        )
        assert report.findings == []

    def test_baseline_roundtrip_waives_exact_counts(self, tmp_path):
        findings = [
            Finding("DET-WALL-CLOCK", "fix.clock", "<memory>", 4, "m"),
            Finding("DET-WALL-CLOCK", "fix.clock", "<memory>", 9, "m"),
        ]
        path = str(tmp_path / "baseline.json")
        doc = write_baseline(path, findings)
        assert doc["schema"] == "repro.lint.baseline/v1"
        baseline = load_baseline(path)
        assert baseline.total == 2

        source = {
            "fix.clock": """\
                import time

                def stamp():
                    return time.time()
                """,
        }
        clean = lint(source, baseline=baseline)
        assert clean.findings == [] and len(clean.baselined) == 1
        # A *third* occurrence would exceed the allowance of 2.
        tripled = {
            "fix.clock": textwrap.dedent(source["fix.clock"])
            + "\n\ndef more():\n    return (time.time(), time.time())\n"
        }
        over = lint_sources(tripled, LintConfig(baseline=baseline))
        assert len(over.findings) == 1 and len(over.baselined) == 2

    def test_bad_baseline_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "something/else"}')
        with pytest.raises(ValueError, match="not a repro lint baseline"):
            load_baseline(str(path))


class TestRuleCatalogue:
    def test_every_rule_has_severity_and_hint(self):
        expected = {
            "COMM-TAG-COLLISION",
            "COMM-TAG-ORPHAN",
            "COMM-WILDCARD-RECV",
            "COMM-RECV-NO-TIMEOUT",
            "COMM-TAG-LITERAL",
            "DET-WALL-CLOCK",
            "DET-UNSEEDED-RNG",
            "DET-SET-ITERATION",
            "DET-DICT-ITERATION",
            "CHG-UNCHARGED-KERNEL",
        }
        assert expected <= set(ALL_RULES)
        for rule in ALL_RULES.values():
            assert rule.severity in ("error", "warning")
            assert rule.summary and rule.fix_hint
