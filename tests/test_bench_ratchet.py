"""Tests for the benchmark speedup ratchet."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.perf.ratchet import (
    check_ratchet,
    compare_bench,
    format_ratchet,
    load_bench,
)


def doc_with(speedups):
    """A minimal bench document: {(kernel, size, filter, levels): speedup}."""
    results = []
    cases = sorted({key[1:] for key in speedups})
    for size, filter_length, levels in cases:
        results.append(
            {
                "kernel": "conv",
                "size": size,
                "filter_length": filter_length,
                "levels": levels,
                "speedup_vs_conv": 1.0,
            }
        )
    for (kernel, size, filter_length, levels), speedup in sorted(speedups.items()):
        results.append(
            {
                "kernel": kernel,
                "size": size,
                "filter_length": filter_length,
                "levels": levels,
                "speedup_vs_conv": speedup,
            }
        )
    return {"results": results}


BASE = doc_with(
    {
        ("fused", 256, 4, 2): 2.0,
        ("fused", 512, 4, 2): 2.2,
        ("lifting", 256, 4, 2): 1.8,
        ("lifting", 512, 4, 2): 1.9,
    }
)


class TestCompare:
    def test_identical_docs_pass(self):
        report = compare_bench(BASE, BASE, tolerance=0.25)
        assert report["ok"]
        for entry in report["kernels"]:
            assert entry["ratio"] == pytest.approx(1.0)
            assert entry["cases"] == 2

    def test_within_tolerance_passes(self):
        current = doc_with(
            {
                ("fused", 256, 4, 2): 1.7,
                ("fused", 512, 4, 2): 1.9,
                ("lifting", 256, 4, 2): 1.8,
                ("lifting", 512, 4, 2): 1.9,
            }
        )
        assert compare_bench(current, BASE, tolerance=0.25)["ok"]

    def test_regression_fails(self):
        current = doc_with(
            {
                ("fused", 256, 4, 2): 1.0,
                ("fused", 512, 4, 2): 1.1,
                ("lifting", 256, 4, 2): 1.8,
                ("lifting", 512, 4, 2): 1.9,
            }
        )
        report = compare_bench(current, BASE, tolerance=0.25)
        assert not report["ok"]
        flagged = {e["kernel"]: e["regressed"] for e in report["kernels"]}
        assert flagged == {"fused": True, "lifting": False}
        assert "REGRESSED" in format_ratchet(report)

    def test_improvement_always_passes(self):
        current = doc_with(
            {
                ("fused", 256, 4, 2): 5.0,
                ("fused", 512, 4, 2): 5.0,
                ("lifting", 256, 4, 2): 5.0,
                ("lifting", 512, 4, 2): 5.0,
            }
        )
        assert compare_bench(current, BASE, tolerance=0.25)["ok"]

    def test_comparison_uses_only_shared_cases(self):
        # Current run covers a subset of the baseline (a --quick run
        # ratcheting against a committed full sweep).
        current = doc_with(
            {("fused", 256, 4, 2): 2.0, ("lifting", 256, 4, 2): 1.8}
        )
        report = compare_bench(current, BASE, tolerance=0.25)
        assert report["ok"]
        assert all(e["cases"] == 1 for e in report["kernels"])

    def test_disjoint_cases_skip_not_fail(self):
        current = doc_with({("fused", 1024, 8, 1): 0.1})
        report = compare_bench(current, BASE, tolerance=0.25)
        fused = next(e for e in report["kernels"] if e["kernel"] == "fused")
        assert fused["cases"] == 0 and not fused["regressed"]
        assert report["ok"]
        assert "skipped" in format_ratchet(report)

    def test_tolerance_validated(self):
        with pytest.raises(ConfigurationError):
            compare_bench(BASE, BASE, tolerance=1.5)


class TestLoad:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(BASE))
        assert check_ratchet(BASE, str(path))["ok"]

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_bench(str(tmp_path / "absent.json"))

    def test_malformed_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{\"nope\": 1}")
        with pytest.raises(ConfigurationError):
            load_bench(str(path))


class TestCommittedBaseline:
    def test_repo_baseline_is_loadable_and_self_consistent(self):
        # The committed artifact must always ratchet cleanly against
        # itself — guards against hand-edits breaking the schema.
        from pathlib import Path

        baseline = Path(__file__).resolve().parent.parent / "BENCH_wavelet.json"
        doc = load_bench(str(baseline))
        report = compare_bench(doc, doc)
        assert report["ok"]
        kernels = {e["kernel"] for e in report["kernels"]}
        assert kernels == {"lifting", "fused", "single-loop"}

    def test_repo_baseline_carries_a_history_trajectory(self):
        # Per-PR trajectory entries back the ratchet's high-water mark;
        # the full document must satisfy the bench schema validator.
        from pathlib import Path

        from repro.perf.bench import validate_bench_document

        baseline = Path(__file__).resolve().parent.parent / "BENCH_wavelet.json"
        doc = load_bench(str(baseline))
        validate_bench_document(doc)
        history = doc.get("history")
        assert history, "committed baseline must carry a perf trajectory"
        assert all(entry["pr"] for entry in history)
        assert any("single-loop" in entry["speedups"] for entry in history)


class TestHistory:
    def test_baseline_history_raises_the_bar(self):
        # The snapshot pins 2.0/2.2 but a past PR committed 4.0: the
        # merged baseline is the per-case max, so a current run matching
        # only the snapshot regresses.
        baseline = doc_with(
            {
                ("fused", 256, 4, 2): 2.0,
                ("fused", 512, 4, 2): 2.2,
            }
        )
        baseline["history"] = [
            {
                "pr": "PR-1",
                "speedups": {"fused": {"256/4/2": 4.0, "512/4/2": 4.4}},
            }
        ]
        current = doc_with(
            {
                ("fused", 256, 4, 2): 2.0,
                ("fused", 512, 4, 2): 2.2,
            }
        )
        report = compare_bench(current, baseline, tolerance=0.25)
        assert not report["ok"]
        fused = next(e for e in report["kernels"] if e["kernel"] == "fused")
        assert fused["baseline"] == pytest.approx((4.0 * 4.4) ** 0.5)

    def test_history_never_lowers_the_bar(self):
        # A slow history entry is dominated by the snapshot's max.
        baseline = doc_with({("fused", 256, 4, 2): 2.0})
        baseline["history"] = [
            {"pr": "PR-1", "speedups": {"fused": {"256/4/2": 0.5}}}
        ]
        current = doc_with({("fused", 256, 4, 2): 2.0})
        report = compare_bench(current, baseline, tolerance=0.25)
        assert report["ok"]
        fused = next(e for e in report["kernels"] if e["kernel"] == "fused")
        assert fused["baseline"] == pytest.approx(2.0)

    def test_record_history_carries_prior_and_replaces_same_pr(self):
        from repro.perf.bench import history_entry, record_history, run_bench

        doc = run_bench(
            [__import__("repro.perf.bench", fromlist=["BenchCase"]).BenchCase(32, 2, 1)],
            warmup=0,
            repeats=1,
            trim=0,
            seed=0,
        )
        prior = {
            "history": [
                {"pr": "PR-1", "speedups": {"fused": {"32/2/1": 1.5}}},
                {"pr": "PR-2", "speedups": {"fused": {"32/2/1": 1.6}}},
            ]
        }
        record_history(doc, "PR-2", prior)
        prs = [entry["pr"] for entry in doc["history"]]
        assert prs == ["PR-1", "PR-2"]
        assert doc["history"][-1] == history_entry(doc, "PR-2")

    def test_malformed_history_rejected(self):
        from repro.perf.bench import validate_bench_document, run_bench, BenchCase

        doc = run_bench([BenchCase(32, 2, 1)], warmup=0, repeats=1, trim=0, seed=0)
        for bad in (
            {"pr": "", "speedups": {"fused": {"32/2/1": 1.5}}},
            {"pr": "PR-1", "speedups": {"conv": {"32/2/1": 1.0}}},
            {"pr": "PR-1", "speedups": {"winograd": {"32/2/1": 1.5}}},
            {"pr": "PR-1", "speedups": {"fused": {"32x2x1": 1.5}}},
            {"pr": "PR-1", "speedups": {"fused": {"32/2/1": -1.0}}},
            {"pr": "PR-1"},
        ):
            doc["history"] = [bad]
            with pytest.raises(ConfigurationError):
                validate_bench_document(doc)


def engine_doc(speedups):
    """A minimal engine-schema document: {(group, nranks): speedup},
    group being "placement/workload".  Each indexed row gets a matching
    zero-speedup linear baseline row, which the aggregation must skip."""
    results = []
    for (group, nranks), speedup in sorted(speedups.items()):
        placement, workload = group.split("/")
        for matcher, value in (("indexed", speedup), ("linear", 0.0)):
            results.append(
                {
                    "nranks": nranks,
                    "placement": placement,
                    "workload": workload,
                    "matcher": matcher,
                    "speedup_vs_linear": value,
                }
            )
    return {"schema": "repro.bench.engine/v1", "results": results}


ENGINE_BASE = engine_doc(
    {
        ("snake/collect", 64): 2.0,
        ("snake/collect", 1024): 9.0,
        ("snake/wavelet", 64): 1.0,
        ("snake/wavelet", 1024): 1.1,
    }
)


class TestEngineRatchet:
    def test_identical_docs_pass(self):
        report = compare_bench(ENGINE_BASE, ENGINE_BASE, tolerance=0.25)
        assert report["ok"]
        groups = {e["kernel"]: e["cases"] for e in report["kernels"]}
        assert groups == {"snake/collect": 2, "snake/wavelet": 2}

    def test_collect_regression_fails(self):
        current = engine_doc(
            {
                ("snake/collect", 64): 1.0,
                ("snake/collect", 1024): 2.0,
                ("snake/wavelet", 64): 1.0,
                ("snake/wavelet", 1024): 1.1,
            }
        )
        report = compare_bench(current, ENGINE_BASE, tolerance=0.25)
        assert not report["ok"]
        flagged = {e["kernel"]: e["regressed"] for e in report["kernels"]}
        assert flagged == {"snake/collect": True, "snake/wavelet": False}

    def test_capped_baseline_rows_are_skipped(self):
        # A --quick current run only covers 64 ranks; the 1024-rank pins
        # in the baseline must not count against it.
        current = engine_doc(
            {("snake/collect", 64): 2.0, ("snake/wavelet", 64): 1.0}
        )
        report = compare_bench(current, ENGINE_BASE, tolerance=0.25)
        assert report["ok"]
        assert all(e["cases"] == 1 for e in report["kernels"])

    def test_zero_speedup_rows_never_aggregate(self):
        # Rows without a measured baseline (speedup 0.0) carry no pin.
        current = engine_doc({("snake/collect", 4096): 0.0})
        report = compare_bench(current, current, tolerance=0.25)
        assert report["ok"] and report["kernels"] == []

    def test_cross_schema_comparison_rejected(self):
        with pytest.raises(ConfigurationError, match="schemas"):
            compare_bench(ENGINE_BASE, BASE)
        with pytest.raises(ConfigurationError, match="schemas"):
            compare_bench(BASE, ENGINE_BASE)

    def test_committed_engine_baseline_if_present(self):
        from pathlib import Path

        baseline = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
        if not baseline.exists():
            pytest.skip("no committed engine baseline")
        doc = load_bench(str(baseline))
        report = compare_bench(doc, doc)
        assert report["ok"]
        # The acceptance bar: the committed sweep must pin at least a 5x
        # fan-in (collect) speedup at 1024 ranks.
        rows = {
            (r["placement"], r["workload"], r["nranks"]): r["speedup_vs_linear"]
            for r in doc["results"]
            if r["matcher"] == "indexed"
        }
        assert rows[("snake", "collect", 1024)] >= 5.0
