"""Tests for the workload characterization subsystem (Appendix C)."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.workload import (
    INSTRUCTION_TYPES,
    Instruction,
    ParallelWorkload,
    Trace,
    centroid,
    dense_size,
    frobenius_similarity,
    list_schedule,
    nas_suite,
    oracle_schedule,
    parallelism_matrix,
    similarity,
    similarity_matrix,
    smoothability,
    toy_workloads,
)


def chain_trace(n=6, itype="intops"):
    trace = Trace("chain")
    prev = None
    for _ in range(n):
        prev = trace.append(itype, (prev,) if prev is not None else ())
    return trace


def wide_trace(width=8, itype="fpops"):
    trace = Trace("wide")
    for _ in range(width):
        trace.append(itype)
    return trace


class TestTrace:
    def test_append_returns_index(self):
        trace = Trace()
        assert trace.append("intops") == 0
        assert trace.append("memops", (0,)) == 1

    def test_unknown_type_raises(self):
        with pytest.raises(TraceError):
            Trace().append("vectorops")

    def test_forward_dependency_raises(self):
        trace = Trace()
        trace.append("intops")
        with pytest.raises(TraceError):
            trace.append("intops", (5,))

    def test_type_mix(self):
        trace = Trace()
        trace.append("intops")
        trace.append("intops")
        trace.append("fpops")
        trace.append("memops")
        mix = trace.type_mix()
        assert mix[INSTRUCTION_TYPES.index("intops")] == pytest.approx(0.5)

    def test_instruction_validation(self):
        with pytest.raises(TraceError):
            Instruction("bogus")


class TestOracleSchedule:
    def test_chain_has_unit_parallelism(self):
        result = oracle_schedule(chain_trace(6))
        assert result.critical_path == 6
        assert result.workload.average_parallelism == pytest.approx(1.0)

    def test_independent_ops_pack_into_one_cycle(self):
        result = oracle_schedule(wide_trace(8))
        assert result.critical_path == 1
        assert result.workload.average_parallelism == pytest.approx(8.0)

    def test_diamond_dependency(self):
        trace = Trace()
        a = trace.append("intops")
        b = trace.append("fpops", (a,))
        c = trace.append("memops", (a,))
        trace.append("intops", (b, c))
        result = oracle_schedule(trace)
        assert result.critical_path == 3
        # Cycle 2 holds both b and c.
        assert result.workload.parallelism_profile()[1] == 2

    def test_type_counts_preserved(self):
        trace = chain_trace(4, "memops")
        workload = oracle_schedule(trace).workload
        assert workload.levels[:, INSTRUCTION_TYPES.index("memops")].sum() == 4
        assert workload.total_operations == 4

    def test_empty_trace_raises(self):
        with pytest.raises(TraceError):
            oracle_schedule(Trace())


class TestListSchedule:
    def test_capacity_limits_width(self):
        result = list_schedule(wide_trace(8), capacity=2)
        assert result.critical_path == 4
        assert result.workload.parallelism_profile().max() <= 2

    def test_unlimited_capacity_matches_oracle(self):
        trace = chain_trace(5)
        assert (
            list_schedule(trace, capacity=1e9).critical_path
            == oracle_schedule(trace).critical_path
        )

    def test_average_delay_positive_when_constrained(self):
        result = list_schedule(wide_trace(8), capacity=2)
        assert result.average_delay > 0

    def test_respects_dependencies(self):
        trace = Trace()
        a = trace.append("intops")
        trace.append("intops", (a,))
        result = list_schedule(trace, capacity=10)
        assert result.critical_path == 2

    def test_bad_capacity_raises(self):
        with pytest.raises(TraceError):
            list_schedule(chain_trace(2), capacity=0)


class TestParallelWorkload:
    def test_from_counts_with_repeats(self):
        wl = ParallelWorkload.from_counts("w", [(1, 2, 0)], [3])
        assert wl.cycles == 3
        assert wl.total_operations == 9

    def test_zero_padding(self):
        wl = ParallelWorkload.from_counts("w", [(1, 1)])
        assert wl.levels.shape == (1, len(INSTRUCTION_TYPES))

    def test_centroid_is_mean(self):
        wl = ParallelWorkload.from_counts("w", [(2, 0, 0), (0, 2, 0)])
        np.testing.assert_allclose(wl.centroid()[:3], [1.0, 1.0, 0.0])

    def test_bad_repeats_raise(self):
        with pytest.raises(TraceError):
            ParallelWorkload.from_counts("w", [(1,)], [0])
        with pytest.raises(TraceError):
            ParallelWorkload.from_counts("w", [(1,)], [1, 2])

    def test_empty_raises(self):
        with pytest.raises(TraceError):
            ParallelWorkload("w", np.zeros((0, 5)))


class TestSimilarity:
    def test_identical_workloads_score_zero(self):
        wl = ParallelWorkload.from_counts("w", [(1, 2, 3)], [4])
        assert similarity(wl, wl) == pytest.approx(0.0)

    def test_orthogonal_workloads_score_one(self):
        a = ParallelWorkload.from_counts("a", [(5, 0, 0)])
        b = ParallelWorkload.from_counts("b", [(0, 7, 0)])
        assert similarity(a, b) == pytest.approx(1.0)

    def test_symmetry(self):
        toys = toy_workloads()
        assert similarity(toys[0], toys[2]) == pytest.approx(
            similarity(toys[2], toys[0])
        )

    def test_range(self):
        toys = toy_workloads()
        matrix = similarity_matrix(toys)
        assert (matrix >= 0).all() and (matrix <= 1.0 + 1e-12).all()
        np.testing.assert_allclose(np.diag(matrix), 0.0)

    def test_all_zero_comparison_raises(self):
        z = ParallelWorkload.from_counts("z", [(0, 0, 0)])
        with pytest.raises(TraceError):
            similarity(z, z)

    def test_paper_toy_values(self):
        """The readable entries of Appendix C Table 4."""
        toys = toy_workloads()
        assert similarity(toys[0], toys[1]) == pytest.approx(0.45318, abs=5e-4)
        assert similarity(toys[0], toys[2]) == pytest.approx(0.8425, abs=5e-3)
        assert similarity(toys[0], toys[3]) == pytest.approx(0.8751, abs=5e-3)

    def test_wl5_similar_to_wl1_in_vector_space_only(self):
        """The paper's central contrast: WL1 & WL5 behave almost the same
        (low vector-space distance) yet share no identical parallel
        instructions (parallelism-matrix distance stays high)."""
        toys = toy_workloads()
        assert similarity(toys[0], toys[4]) < 0.2
        assert frobenius_similarity(toys[0], toys[4]) > 0.5


class TestParallelismMatrix:
    def test_histogram_fractions_sum_to_one(self):
        wl = toy_workloads()[0]
        histogram = parallelism_matrix(wl)
        assert sum(histogram.values()) == pytest.approx(1.0)

    def test_identical_workloads_distance_zero(self):
        wl = toy_workloads()[1]
        assert frobenius_similarity(wl, wl) == pytest.approx(0.0)

    def test_paper_wl1_wl2_value(self):
        toys = toy_workloads()
        assert frobenius_similarity(toys[0], toys[1]) == pytest.approx(0.424, abs=2e-3)

    def test_insensitive_to_similar_but_unequal_rows(self):
        """The baseline's failure mode: scaling every row leaves zero
        overlap, so the distance saturates even though the workloads are
        near-proportional."""
        a = ParallelWorkload.from_counts("a", [(2, 2, 0)], [4])
        b = ParallelWorkload.from_counts("b", [(3, 3, 0)], [4])
        assert frobenius_similarity(a, b) == pytest.approx(1.0)
        assert similarity(a, b) < 0.4

    def test_dense_size_is_product_of_maxima(self):
        wl = ParallelWorkload.from_counts("w", [(3, 1, 0), (1, 2, 0)])
        assert dense_size(wl) == 4 * 3 * 1 * 1 * 1


class TestSmoothability:
    def test_flat_profile_is_perfectly_smoothable(self):
        trace = Trace("flat")
        prev_level = [trace.append("intops") for _ in range(4)]
        for _ in range(5):
            prev_level = [trace.append("intops", (p,)) for p in prev_level]
        result = smoothability(trace)
        assert result.smoothability == pytest.approx(1.0)

    def test_bursty_profile_scores_below_one(self):
        trace = Trace("bursty")
        head = trace.append("intops")
        chain = head
        for _ in range(10):
            chain = trace.append("intops", (chain,))
        for _ in range(30):  # a final wide burst
            trace.append("fpops", (chain,))
        result = smoothability(trace)
        assert result.smoothability < 0.9

    def test_result_fields_consistent(self):
        result = smoothability(chain_trace(8))
        assert result.cpl_limited >= result.cpl_unlimited
        assert 0 < result.smoothability <= 1.0


class TestNasSuite:
    @pytest.fixture(scope="class")
    def suite(self):
        return nas_suite(0.5)

    def test_eight_kernels(self, suite):
        assert [t.name for t in suite] == [
            "embar", "mgrid", "cgm", "fftpde", "buk", "applu", "appsp", "appbt",
        ]

    def test_parallelism_ordering(self, suite):
        """Table 7's magnitude ladder: buk and cgm narrow, the CFD codes
        wide, appsp the widest."""
        par = {
            t.name: oracle_schedule(t).workload.average_parallelism for t in suite
        }
        assert par["buk"] < par["cgm"] < par["embar"]
        assert par["applu"] < par["appsp"]
        assert par["appbt"] < par["appsp"]
        assert par["appsp"] == max(par.values())

    def test_buk_is_integer_dominated(self, suite):
        buk = next(t for t in suite if t.name == "buk")
        mix = buk.type_mix()
        assert mix[INSTRUCTION_TYPES.index("intops")] > 0.5

    def test_mgrid_is_smoothest(self, suite):
        values = {t.name: smoothability(t).smoothability for t in suite}
        assert values["mgrid"] == max(values.values())
        assert values["mgrid"] > 0.9

    def test_similar_pairs_match_paper_qualitatively(self, suite):
        """Table 8's headline pairs: buk-cgm similar, cgm-fftpde nearly
        orthogonal in magnitude."""
        workloads = {t.name: oracle_schedule(t).workload for t in suite}
        assert similarity(workloads["buk"], workloads["cgm"]) < 0.55
        assert similarity(workloads["cgm"], workloads["fftpde"]) > 0.85

    def test_deterministic(self):
        a = nas_suite(0.3)
        b = nas_suite(0.3)
        assert all(x.types == y.types for x, y in zip(a, b))
