"""Property-based tests for the machine simulator and collectives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines import Engine, Machine, allgather, allreduce, bcast, gssum_naive, reduce
from repro.machines.cpu import CpuModel
from repro.machines.network import ContentionNetwork, FullyConnected, Mesh2D, Torus3D
from repro.machines.specs import snake_placement


def ideal_machine(nranks):
    return Machine(
        name="ideal",
        cpu=CpuModel(1e9, 1e9, 1e9),
        network=ContentionNetwork(
            topology=FullyConnected(nranks), latency_s=1e-6, per_hop_s=0, bytes_per_s=1e9
        ),
        placement=list(range(nranks)),
        sw_send_overhead_s=1e-6,
        sw_recv_overhead_s=1e-6,
        copy_bytes_per_s=1e9,
    )


class TestCollectiveProperties:
    @given(
        nranks=st.integers(1, 12),
        values=st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=12, max_size=12),
    )
    @settings(max_examples=30, deadline=None)
    def test_allreduce_equals_serial_sum(self, nranks, values):
        local = values[:nranks]

        def prog(ctx):
            total = yield from allreduce(ctx, local[ctx.rank])
            return total

        results = Engine(ideal_machine(nranks)).run(prog).results
        # Pairwise summation order differs from serial, so compare with a
        # floating-point tolerance.
        expected = sum(local)
        for r in results:
            assert r == pytest.approx(expected, rel=1e-9, abs=1e-6)

    @given(nranks=st.integers(1, 10), root=st.data())
    @settings(max_examples=30, deadline=None)
    def test_bcast_delivers_everywhere(self, nranks, root):
        chosen = root.draw(st.integers(0, nranks - 1))

        def prog(ctx):
            payload = ("data", ctx.rank) if ctx.rank == chosen else None
            return (yield from bcast(ctx, payload, root=chosen))

        results = Engine(ideal_machine(nranks)).run(prog).results
        assert results == [("data", chosen)] * nranks

    @given(nranks=st.integers(1, 10))
    @settings(max_examples=20, deadline=None)
    def test_allgather_order(self, nranks):
        def prog(ctx):
            return (yield from allgather(ctx, ctx.rank * 3))

        results = Engine(ideal_machine(nranks)).run(prog).results
        for r in results:
            assert r == [i * 3 for i in range(nranks)]

    @given(nranks=st.integers(2, 10))
    @settings(max_examples=20, deadline=None)
    def test_gssum_matches_allreduce(self, nranks):
        def prog(ctx):
            a = yield from allreduce(ctx, float(ctx.rank + 1))
            b = yield from gssum_naive(ctx, float(ctx.rank + 1))
            return a, b

        for a, b in Engine(ideal_machine(nranks)).run(prog).results:
            assert a == pytest.approx(b)

    @given(nranks=st.integers(1, 10))
    @settings(max_examples=20, deadline=None)
    def test_reduce_max(self, nranks):
        def prog(ctx):
            return (yield from reduce(ctx, (ctx.rank * 7) % 5, op=max))

        results = Engine(ideal_machine(nranks)).run(prog).results
        assert results[0] == max((r * 7) % 5 for r in range(nranks))


class TestNetworkProperties:
    @given(
        width=st.integers(2, 8),
        height=st.integers(2, 8),
        pair=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_mesh_route_length_is_manhattan(self, width, height, pair):
        mesh = Mesh2D(width, height)
        src = pair.draw(st.integers(0, mesh.num_nodes - 1))
        dst = pair.draw(st.integers(0, mesh.num_nodes - 1))
        sx, sy = mesh.coord(src)
        dx, dy = mesh.coord(dst)
        assert mesh.hops(src, dst) == abs(sx - dx) + abs(sy - dy)

    @given(
        dims=st.tuples(st.integers(2, 5), st.integers(2, 5), st.integers(2, 5)),
        pair=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_torus_route_within_half_extents(self, dims, pair):
        torus = Torus3D(*dims)
        src = pair.draw(st.integers(0, torus.num_nodes - 1))
        dst = pair.draw(st.integers(0, torus.num_nodes - 1))
        bound = sum(d // 2 for d in dims)
        assert torus.hops(src, dst) <= bound

    @given(
        nbytes=st.integers(0, 10**7),
        start=st.floats(0, 10, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_transfer_monotone_in_time(self, nbytes, start):
        net = ContentionNetwork(topology=Mesh2D(4, 4))
        done = net.transfer(0, 5, nbytes, start)
        assert done >= start

    @given(nranks=st.integers(1, 64))
    @settings(max_examples=30, deadline=None)
    def test_snake_placement_adjacent(self, nranks):
        """Consecutive ranks are always at physical distance one."""
        mesh = Mesh2D(4, 16)
        nodes = snake_placement(nranks)
        for a, b in zip(nodes, nodes[1:]):
            assert mesh.hops(a, b) == 1


class TestEngineProperties:
    @given(
        nranks=st.integers(1, 8),
        flops=st.lists(st.floats(1, 1e7), min_size=8, max_size=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_elapsed_is_max_finish_time(self, nranks, flops):
        def prog(ctx):
            yield ctx.compute(flops=flops[ctx.rank])
            return None

        result = Engine(ideal_machine(nranks)).run(prog)
        assert result.elapsed_s == pytest.approx(max(result.finish_times))
        # Imbalance + finish time is constant across ranks.
        for budget, finish in zip(result.budgets, result.finish_times):
            assert finish + budget.imbalance_s == pytest.approx(result.elapsed_s)

    @given(nranks=st.integers(2, 8), n_msgs=st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_message_conservation(self, nranks, n_msgs):
        """Every sent message is received exactly once."""

        def prog(ctx):
            nxt = (ctx.rank + 1) % ctx.nranks
            prev = (ctx.rank - 1) % ctx.nranks
            got = []
            for i in range(n_msgs):
                yield ctx.send(nxt, (ctx.rank, i))
                got.append((yield ctx.recv(prev)))
            return got

        result = Engine(ideal_machine(nranks)).run(prog)
        for rank, got in enumerate(result.results):
            prev = (rank - 1) % nranks
            assert got == [(prev, i) for i in range(n_msgs)]
        assert result.messages_sent == nranks * n_msgs
