"""Tier-1 checks for the kernel benchmark harness and its JSON schema."""

import copy
import json

import pytest

from repro.cli import build_parser
from repro.errors import ConfigurationError
from repro.perf.bench import (
    BENCH_SCHEMA,
    BenchCase,
    default_cases,
    quick_cases,
    run_bench,
    validate_bench_document,
    write_bench_json,
)

TINY = [BenchCase(32, 2, 1), BenchCase(32, 4, 2)]


@pytest.fixture(scope="module")
def tiny_doc():
    return run_bench(TINY, warmup=0, repeats=2, trim=0, seed=0)


def test_default_cases_cover_the_acceptance_point():
    cases = default_cases()
    assert BenchCase(512, 4, 3) in cases
    assert {c.filter_length for c in cases} == {2, 4, 8}
    assert min(c.levels for c in cases) == 1
    assert max(c.levels for c in cases) == 4
    assert {c.size for c in cases} == {256, 512, 1024}


def test_quick_cases_are_small_but_complete():
    cases = quick_cases()
    assert all(c.size <= 256 for c in cases)
    assert {c.filter_length for c in cases} == {2, 4, 8}


def test_run_bench_produces_valid_document(tiny_doc):
    assert tiny_doc["schema"] == BENCH_SCHEMA
    validate_bench_document(tiny_doc)  # no raise
    kernels = {r["kernel"] for r in tiny_doc["results"]}
    assert kernels == {"conv", "lifting", "fused", "single-loop"}
    # Every case has one row per kernel.
    assert len(tiny_doc["results"]) == len(TINY) * 4


def test_conv_rows_are_exact_reference(tiny_doc):
    for row in tiny_doc["results"]:
        if row["kernel"] == "conv":
            assert row["speedup_vs_conv"] == 1.0
            assert row["max_abs_vs_conv"] == 0.0


def test_numeric_budgets_hold(tiny_doc):
    for row in tiny_doc["results"]:
        assert row["max_abs_vs_conv"] <= 1e-9
        assert row["round_trip_error"] <= 1e-10


def test_json_round_trip(tiny_doc, tmp_path):
    path = tmp_path / "BENCH_wavelet.json"
    write_bench_json(str(path), tiny_doc)
    loaded = json.loads(path.read_text())
    validate_bench_document(loaded)
    assert loaded == json.loads(json.dumps(tiny_doc))


def test_bench_requires_conv_reference():
    with pytest.raises(ConfigurationError):
        run_bench(TINY, kernels=["lifting"], warmup=0, repeats=1)


@pytest.mark.parametrize(
    "mutate",
    [
        lambda d: d.update(schema="repro.bench.wavelet/v0"),
        lambda d: d.pop("config"),
        lambda d: d.update(results=[]),
        lambda d: d["results"][0].pop("ns_per_op"),
        lambda d: d["results"][0].update(kernel="winograd"),
        lambda d: d["results"][0].update(ns_per_op=-1.0),
        lambda d: d["results"][0].update(ns_per_op="fast"),
        lambda d: d["results"][0].update(max_abs_vs_conv=1e-3),
        lambda d: d["results"][0].update(round_trip_error=1e-3),
        lambda d: d.update(
            results=[r for r in d["results"] if r["kernel"] != "conv"]
        ),
    ],
    ids=[
        "wrong-schema",
        "no-config",
        "no-results",
        "missing-field",
        "unknown-kernel",
        "negative-timing",
        "non-numeric-timing",
        "subband-deviation",
        "round-trip-deviation",
        "missing-conv-row",
    ],
)
def test_validator_rejects_corruption(tiny_doc, mutate):
    doc = copy.deepcopy(tiny_doc)
    mutate(doc)
    with pytest.raises(ConfigurationError):
        validate_bench_document(doc)


def test_cli_parser_has_bench_command():
    args = build_parser().parse_args(
        ["bench", "--quick", "--repeats", "2", "--out", "B.json"]
    )
    assert args.command == "bench"
    assert args.quick and args.repeats == 2 and args.out == "B.json"
