"""Tests for the coarse-grain SPMD and fine-grain SIMD parallel wavelet
decompositions: both must reproduce the sequential transform exactly."""

import numpy as np
import pytest

from repro.errors import DecompositionError
from repro.machines import paragon
from repro.machines.simd import MasParMachine, maspar_mp2
from repro.wavelet import daubechies_filter, filter_bank_for_length, mallat_decompose_2d
from repro.wavelet.parallel import (
    BlockDecomposition,
    StripeDecomposition,
    factor_grid,
    run_spmd_wavelet,
    simd_mallat_decompose,
)


@pytest.fixture(scope="module")
def image():
    # 128 rows so 8 ranks can carry 4 levels (128 = 8 ranks * 2^4); the
    # rectangular shape also exercises non-square handling.
    return np.random.default_rng(11).random((128, 64)) * 255


def assert_pyramids_equal(a, b, atol=1e-10):
    np.testing.assert_allclose(a.approximation, b.approximation, atol=atol)
    assert a.levels == b.levels
    for ta, tb in zip(a.details, b.details):
        np.testing.assert_allclose(ta.lh, tb.lh, atol=atol)
        np.testing.assert_allclose(ta.hl, tb.hl, atol=atol)
        np.testing.assert_allclose(ta.hh, tb.hh, atol=atol)


class TestStripeDecomposition:
    def test_row_ranges_partition(self):
        decomp = StripeDecomposition(64, 64, 4, 2)
        ranges = [decomp.row_range(r) for r in range(4)]
        assert ranges[0] == (0, 16)
        assert ranges[-1] == (48, 64)

    def test_rows_halve_per_level(self):
        decomp = StripeDecomposition(64, 64, 4, 2)
        assert decomp.local_rows(0) == 16
        assert decomp.local_rows(1) == 8

    def test_neighbors_wrap(self):
        decomp = StripeDecomposition(64, 64, 4, 1)
        assert decomp.south_neighbor(3) == 0
        assert decomp.north_neighbor(0) == 3

    def test_indivisible_raises(self):
        with pytest.raises(DecompositionError):
            StripeDecomposition(100, 64, 3, 2)

    def test_bad_rank_raises(self):
        with pytest.raises(DecompositionError):
            StripeDecomposition(64, 64, 4, 1).row_range(4)


class TestBlockDecomposition:
    def test_factor_grid_square(self):
        assert factor_grid(16) == (4, 4)
        assert factor_grid(8) == (2, 4)
        assert factor_grid(7) == (1, 7)

    def test_block_ranges(self):
        decomp = BlockDecomposition(64, 64, 2, 2, 1)
        (r0, r1), (c0, c1) = decomp.block_ranges(3)
        assert (r0, r1, c0, c1) == (32, 64, 32, 64)

    def test_neighbors(self):
        decomp = BlockDecomposition(64, 64, 2, 2, 1)
        assert decomp.east_neighbor(0) == 1
        assert decomp.east_neighbor(1) == 0  # wraps within the grid row
        assert decomp.south_neighbor(0) == 2
        assert decomp.north_neighbor(0) == 2  # wraps

    def test_indivisible_raises(self):
        with pytest.raises(DecompositionError):
            BlockDecomposition(64, 64, 3, 2, 2)


class TestSpmdStriped:
    @pytest.mark.parametrize("nranks", [1, 2, 4, 8])
    @pytest.mark.parametrize("length,levels", [(8, 1), (4, 2), (2, 4)])
    def test_matches_sequential(self, image, nranks, length, levels):
        bank = filter_bank_for_length(length)
        reference = mallat_decompose_2d(image, bank, levels)
        outcome = run_spmd_wavelet(paragon(nranks), image, bank, levels)
        assert_pyramids_equal(outcome.pyramid, reference)

    def test_naive_placement_also_correct(self, image):
        bank = daubechies_filter(4)
        reference = mallat_decompose_2d(image, bank, 2)
        outcome = run_spmd_wavelet(paragon(8, "naive"), image, bank, 2)
        assert_pyramids_equal(outcome.pyramid, reference)

    def test_without_staging_faster(self, image):
        bank = daubechies_filter(4)
        staged = run_spmd_wavelet(paragon(8), image, bank, 2)
        bare = run_spmd_wavelet(
            paragon(8), image, bank, 2, distribute=False, collect=False
        )
        assert bare.run.elapsed_s < staged.run.elapsed_s
        assert bare.pyramid is None

    def test_stripe_too_small_raises(self, image):
        bank = daubechies_filter(8)
        # 128 rows / 32 ranks = 4-row stripes < the 8-tap filter at level 1.
        with pytest.raises(DecompositionError):
            run_spmd_wavelet(paragon(32), image, bank, 1)

    def test_unknown_decomposition_raises(self, image):
        with pytest.raises(DecompositionError):
            run_spmd_wavelet(paragon(2), image, daubechies_filter(4), 1, decomposition="spiral")

    def test_more_ranks_less_work_each(self, image):
        bank = daubechies_filter(4)
        r2 = run_spmd_wavelet(paragon(2), image, bank, 1).run
        r8 = run_spmd_wavelet(paragon(8), image, bank, 1).run
        assert r8.budgets[0].work_s < r2.budgets[0].work_s

    def test_comm_grows_with_levels(self, image):
        """Section 5's observation: deeper decompositions communicate more."""
        bank = daubechies_filter(2)
        one = run_spmd_wavelet(
            paragon(8), image, bank, 1, distribute=False, collect=False
        ).run.mean_comm_s()
        four = run_spmd_wavelet(
            paragon(8), image, bank, 4, distribute=False, collect=False
        ).run.mean_comm_s()
        assert four > one


class TestSpmdBlock:
    @pytest.mark.parametrize("nranks", [1, 2, 4])
    def test_matches_sequential(self, image, nranks):
        bank = daubechies_filter(4)
        reference = mallat_decompose_2d(image, bank, 2)
        outcome = run_spmd_wavelet(
            paragon(nranks), image, bank, 2, decomposition="block"
        )
        assert_pyramids_equal(outcome.pyramid, reference)

    def test_block_sends_more_messages_than_striped(self, image):
        """Figure 3's point: block needs two guard exchanges per level."""
        bank = daubechies_filter(2)
        striped = run_spmd_wavelet(
            paragon(4), image, bank, 2, distribute=False, collect=False
        ).run.messages_sent
        block = run_spmd_wavelet(
            paragon(4),
            image,
            bank,
            2,
            decomposition="block",
            distribute=False,
            collect=False,
        ).run.messages_sent
        assert block > striped


class TestSimdAlgorithms:
    @pytest.mark.parametrize("algorithm", ["systolic", "dilution"])
    @pytest.mark.parametrize("length,levels", [(8, 1), (4, 2), (2, 4)])
    def test_matches_sequential(self, image, algorithm, length, levels):
        bank = filter_bank_for_length(length)
        reference = mallat_decompose_2d(image, bank, levels)
        machine = MasParMachine(maspar_mp2(pe_side=32))
        outcome = simd_mallat_decompose(machine, image, bank, levels, algorithm=algorithm)
        assert_pyramids_equal(outcome.pyramid, reference, atol=1e-9)

    def test_dilution_avoids_router(self, image):
        machine = MasParMachine(maspar_mp2(pe_side=32))
        outcome = simd_mallat_decompose(
            machine, image, daubechies_filter(4), 2, algorithm="dilution"
        )
        assert outcome.stats.router_cycles == 0.0

    def test_systolic_uses_router(self, image):
        machine = MasParMachine(maspar_mp2(pe_side=32))
        outcome = simd_mallat_decompose(
            machine, image, daubechies_filter(4), 2, algorithm="systolic"
        )
        assert outcome.stats.router_cycles > 0.0

    def test_hierarchical_beats_cut_and_stack(self, image):
        """The virtualization comparison of [Chan95]: hierarchical locality
        wins when the image over-subscribes the PE array."""
        bank = daubechies_filter(8)
        hier = simd_mallat_decompose(
            MasParMachine(maspar_mp2(pe_side=16), "hierarchical"), image, bank, 1
        )
        stack = simd_mallat_decompose(
            MasParMachine(maspar_mp2(pe_side=16), "cut_and_stack"), image, bank, 1
        )
        assert hier.elapsed_s < stack.elapsed_s

    def test_unknown_algorithm_raises(self, image):
        machine = MasParMachine(maspar_mp2(pe_side=32))
        with pytest.raises(Exception):
            simd_mallat_decompose(machine, image, daubechies_filter(4), 1, algorithm="wavefront")

    def test_counters_reset_between_runs(self, image):
        machine = MasParMachine(maspar_mp2(pe_side=32))
        first = simd_mallat_decompose(machine, image, daubechies_filter(4), 1)
        second = simd_mallat_decompose(machine, image, daubechies_filter(4), 1)
        assert first.elapsed_s == pytest.approx(second.elapsed_s)
