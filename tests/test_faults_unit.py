"""Unit tests for the fault-injection subsystem: plans, engine semantics
(timeouts, self-sends, reliable transport), the stop-and-wait program
protocol, and the checkpoint/restart recovery driver."""

import numpy as np
import pytest

from repro.errors import (
    CommunicationError,
    ConfigurationError,
    RankCrashError,
    RecvTimeoutError,
    TransportError,
)
from repro.machines import Engine, paragon, workstation
from repro.machines.faults import (
    CorruptedPayload,
    FaultConfig,
    FaultPlan,
    MessageFate,
    payload_equal,
    reliable_recv,
    reliable_send,
    run_with_recovery,
)
from repro.machines.faults.transport import drain


def machine4():
    return paragon(4, protocol="nx")


# --------------------------------------------------------------------------
# FaultConfig / FaultPlan
# --------------------------------------------------------------------------


class TestFaultConfig:
    @pytest.mark.parametrize("field", ["drop_rate", "duplicate_rate", "corrupt_rate", "delay_rate"])
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_rates_validated(self, field, bad):
        with pytest.raises(ConfigurationError):
            FaultConfig(**{field: bad})

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(max_delay_s=-1e-3)

    def test_retransmit_params_validated(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(rto_s=0.0)
        with pytest.raises(ConfigurationError):
            FaultConfig(backoff=0.5)
        with pytest.raises(ConfigurationError):
            FaultConfig(max_retries=0)

    def test_bad_windows_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(crashes=((0, -1.0),))
        with pytest.raises(ConfigurationError):
            FaultConfig(stragglers=((0, 0.5, 0.0, 1.0),))  # factor < 1
        with pytest.raises(ConfigurationError):
            FaultConfig(stragglers=((0, 2.0, 1.0, 0.5),))  # t1 < t0
        with pytest.raises(ConfigurationError):
            FaultConfig(link_slowdowns=((0, 1, 0.9, 0.0, 1.0),))


class TestFaultPlan:
    def test_fate_is_deterministic(self):
        plan = FaultPlan(7, FaultConfig(drop_rate=0.3, duplicate_rate=0.2, corrupt_rate=0.1))
        fates = [plan.message_fate(i, a) for i in range(50) for a in range(3)]
        again = [plan.message_fate(i, a) for i in range(50) for a in range(3)]
        assert fates == again

    def test_attempts_reroll_fate(self):
        plan = FaultPlan(3, FaultConfig(drop_rate=0.5))
        fates = {plan.message_fate(11, a).delivered for a in range(32)}
        assert fates == {True, False}  # some attempt survives, some doesn't

    def test_rates_empirically_honoured(self):
        plan = FaultPlan(123, FaultConfig(drop_rate=0.35))
        dropped = sum(not plan.message_fate(i).delivered for i in range(4000))
        assert 0.30 < dropped / 4000 < 0.40

    def test_zero_config_is_faultless(self):
        plan = FaultPlan(9)
        assert plan.message_fate(0) == MessageFate()
        assert plan.crash_time(0) is None
        assert plan.straggler_factor(2, 0.5) == 1.0
        assert plan.link_factor(0, 1, 0.5) == 1.0
        assert not plan.has_link_slowdowns

    def test_without_crash_removes_only_that_rank(self):
        plan = FaultPlan(1, FaultConfig(crashes=((0, 0.5), (2, 0.7))))
        repaired = plan.without_crash(0)
        assert repaired.crash_time(0) is None
        assert repaired.crash_time(2) == 0.7
        assert plan.crash_time(0) == 0.5  # original untouched

    def test_straggler_and_link_windows(self):
        cfg = FaultConfig(
            stragglers=((1, 3.0, 0.2, 0.6),),
            link_slowdowns=((0, 2, 2.0, 0.1, 0.4),),
        )
        plan = FaultPlan(0, cfg)
        assert plan.straggler_factor(1, 0.3) == 3.0
        assert plan.straggler_factor(1, 0.7) == 1.0
        assert plan.straggler_factor(0, 0.3) == 1.0
        assert plan.link_factor(2, 0, 0.2) == 2.0  # undirected
        assert plan.link_factor(0, 2, 0.5) == 1.0

    def test_sampled_scales_with_rate(self):
        calm = FaultPlan.sampled(0, 8, 0.0, t_horizon=1.0)
        wild = FaultPlan.sampled(0, 8, 0.4, t_horizon=1.0)
        assert calm.config.drop_rate == 0.0
        assert not calm.crash_schedule
        assert wild.config.drop_rate == pytest.approx(0.2)
        for _rank, t in wild.crash_schedule.items():
            assert 0.15 <= t <= 0.85

    def test_sampled_without_horizon_has_no_crashes(self):
        plan = FaultPlan.sampled(0, 8, 0.4)
        assert not plan.crash_schedule
        assert not plan.config.stragglers

    def test_sampled_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.sampled(0, 8, 1.5)


# --------------------------------------------------------------------------
# Recv timeouts
# --------------------------------------------------------------------------


class TestRecvTimeout:
    def test_timeout_fires_instead_of_deadlock(self):
        def prog(ctx):
            if ctx.rank == 0:
                try:
                    yield ctx.recv(1, tag=5, timeout_s=0.01)
                except RecvTimeoutError as exc:
                    return ("timed out", exc.rank, exc.src, exc.tag, exc.timeout_s)
                return "received"
            return None

        run = Engine(paragon(2, protocol="nx")).run(prog)
        assert run.results[0] == ("timed out", 0, 1, 5, 0.01)
        assert run.elapsed_s >= 0.01

    def test_timeout_is_a_timeouterror_and_communicationerror(self):
        assert issubclass(RecvTimeoutError, TimeoutError)
        assert issubclass(RecvTimeoutError, CommunicationError)

    def test_message_in_time_beats_timeout(self):
        def prog(ctx):
            if ctx.rank == 0:
                yield ctx.send(1, 42)
                return None
            value = yield ctx.recv(0, timeout_s=10.0)
            return value

        run = Engine(paragon(2, protocol="nx")).run(prog)
        assert run.results[1] == 42

    def test_late_message_stays_queued_for_next_recv(self):
        def prog(ctx):
            if ctx.rank == 0:
                yield ctx.compute(flops=5e7)  # send lands after the deadline
                yield ctx.send(1, "late")
                return None
            outcomes = []
            try:
                yield ctx.recv(0, timeout_s=1e-5)
                outcomes.append("in time")
            except RecvTimeoutError:
                outcomes.append("timeout")
            value = yield ctx.recv(0)  # untimed recv picks the message up
            outcomes.append(value)
            return outcomes

        run = Engine(paragon(2, protocol="nx")).run(prog)
        assert run.results[1] == ["timeout", "late"]

    def test_nonpositive_timeout_rejected(self):
        def prog(ctx):
            yield ctx.recv(timeout_s=0.0)

        with pytest.raises(CommunicationError):
            Engine(workstation()).run(prog)


# --------------------------------------------------------------------------
# Self-sends (pinned semantics: local channel, value copy, never faulted)
# --------------------------------------------------------------------------


class TestSelfSend:
    def test_self_send_round_trip(self):
        def prog(ctx):
            yield ctx.send(ctx.rank, np.arange(3.0), tag=7)
            data = yield ctx.recv(ctx.rank, tag=7)
            return float(data.sum())

        run = Engine(workstation()).run(prog)
        assert run.results[0] == 3.0

    def test_self_send_copies_payload(self):
        def prog(ctx):
            data = np.zeros(4)
            yield ctx.send(ctx.rank, data)
            data[:] = 99.0
            received = yield ctx.recv(ctx.rank)
            return float(received.sum())

        run = Engine(workstation()).run(prog)
        assert run.results[0] == 0.0

    def test_self_sends_are_fifo(self):
        def prog(ctx):
            yield ctx.send(ctx.rank, "first")
            yield ctx.send(ctx.rank, "second")
            a = yield ctx.recv(ctx.rank)
            b = yield ctx.recv(ctx.rank)
            return [a, b]

        run = Engine(workstation()).run(prog)
        assert run.results[0] == ["first", "second"]

    def test_self_sends_exempt_from_faults(self):
        # Raw channel dropping/corrupting every wire message: a self-send
        # still arrives intact because it never touches the wire.
        plan = FaultPlan(0, FaultConfig(drop_rate=1.0, corrupt_rate=1.0, reliable=False))

        def prog(ctx):
            yield ctx.send(ctx.rank, "precious")
            value = yield ctx.recv(ctx.rank)
            return value

        run = Engine(workstation(), faults=plan).run(prog)
        assert run.results[0] == "precious"
        assert run.fault_stats["dropped"] == 0


# --------------------------------------------------------------------------
# Engine-level reliable transport + raw mode
# --------------------------------------------------------------------------


def _ring_program(ctx):
    right = (ctx.rank + 1) % ctx.nranks
    left = (ctx.rank - 1) % ctx.nranks
    total = float(ctx.rank)
    token = np.full(8, float(ctx.rank))
    for _ in range(ctx.nranks - 1):
        yield ctx.compute(flops=1e6)
        yield ctx.send(right, token)
        token = yield ctx.recv(left)
        total += float(token[0])
    return total


class TestEngineReliableTransport:
    def test_lossy_run_matches_fault_free_values(self):
        reference = Engine(machine4()).run(_ring_program)
        plan = FaultPlan(5, FaultConfig(drop_rate=0.4, duplicate_rate=0.2, corrupt_rate=0.2))
        lossy = Engine(machine4(), faults=plan).run(_ring_program)
        assert lossy.results == reference.results
        assert lossy.fault_stats["retransmits"] > 0
        assert lossy.elapsed_s > reference.elapsed_s

    def test_duplicates_charged_but_invisible(self):
        plan = FaultPlan(2, FaultConfig(duplicate_rate=0.9))
        run = Engine(machine4(), faults=plan).run(_ring_program)
        assert run.results == Engine(machine4()).run(_ring_program).results
        assert run.fault_stats["duplicates"] > 0

    def test_retry_exhaustion_raises_transport_error(self):
        # An always-dropping channel defeats even the reliable transport.
        plan = FaultPlan(0, FaultConfig(drop_rate=1.0, max_retries=3))

        def prog(ctx):
            if ctx.rank == 0:
                yield ctx.send(1, "doomed")
                return None
            value = yield ctx.recv(0, timeout_s=5.0)
            return value

        with pytest.raises(TransportError):
            Engine(paragon(2, protocol="nx"), faults=plan).run(prog)

    def test_raw_mode_drops_are_real(self):
        plan = FaultPlan(0, FaultConfig(drop_rate=1.0, reliable=False))

        def prog(ctx):
            if ctx.rank == 0:
                yield ctx.send(1, "vanishes")
                return None
            try:
                yield ctx.recv(0, timeout_s=0.01)
            except RecvTimeoutError:
                return "nothing arrived"
            return "arrived"

        run = Engine(paragon(2, protocol="nx"), faults=plan).run(prog)
        assert run.results[1] == "nothing arrived"
        assert run.fault_stats["dropped"] == 1

    def test_raw_mode_corruption_delivers_sentinel(self):
        plan = FaultPlan(0, FaultConfig(corrupt_rate=1.0, reliable=False))

        def prog(ctx):
            if ctx.rank == 0:
                yield ctx.send(1, np.arange(16.0))
                return None
            value = yield ctx.recv(0)
            return value

        run = Engine(paragon(2, protocol="nx"), faults=plan).run(prog)
        sentinel = run.results[1]
        assert isinstance(sentinel, CorruptedPayload)
        assert sentinel.nbytes == 128

    def test_straggler_slows_elapsed(self):
        baseline = Engine(machine4()).run(_ring_program)
        plan = FaultPlan(
            0, FaultConfig(stragglers=((1, 10.0, 0.0, baseline.elapsed_s * 10),))
        )
        slow = Engine(machine4(), faults=plan).run(_ring_program)
        assert slow.results == baseline.results
        assert slow.elapsed_s > baseline.elapsed_s

    def test_link_slowdown_slows_elapsed(self):
        baseline = Engine(machine4()).run(_ring_program)
        plan = FaultPlan(
            0,
            FaultConfig(link_slowdowns=((0, 1, 50.0, 0.0, baseline.elapsed_s * 10),)),
        )
        slow = Engine(machine4(), faults=plan).run(_ring_program)
        assert slow.results == baseline.results
        assert slow.elapsed_s > baseline.elapsed_s


# --------------------------------------------------------------------------
# Program-level stop-and-wait protocol over the raw channel
# --------------------------------------------------------------------------


def _stream_program(ctx, values):
    if ctx.rank == 0:
        for v in values:
            yield from reliable_send(ctx, 1, v)
        return None
    got = []
    for _ in values:
        payload = yield from reliable_recv(ctx, 0)
        got.append(payload)
    # Two-generals tail: keep re-acking retransmissions of the final
    # message until the sender has gone quiet.
    yield from drain(ctx, 0, quiet_s=1.0)
    return got


class TestStopAndWaitTransport:
    def test_round_trip_on_clean_channel(self):
        run = Engine(paragon(2, protocol="nx")).run(_stream_program, list(range(5)))
        assert run.results[1] == list(range(5))

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_stream_survives_hostile_channel(self, seed):
        cfg = FaultConfig(
            drop_rate=0.35, duplicate_rate=0.25, corrupt_rate=0.2, reliable=False
        )
        run = Engine(paragon(2, protocol="nx"), faults=FaultPlan(seed, cfg)).run(
            _stream_program, ["alpha", "beta", {"k": 3}, (1, 2.5)]
        )
        assert run.results[1] == ["alpha", "beta", {"k": 3}, (1, 2.5)]

    def test_sender_gives_up_deterministically(self):
        cfg = FaultConfig(drop_rate=1.0, reliable=False)

        def prog(ctx):
            if ctx.rank == 0:
                try:
                    yield from reliable_send(ctx, 1, "x", max_retries=4)
                except TransportError:
                    return "gave up"
                return "delivered"
            try:
                yield from reliable_recv(ctx, 0, timeout_s=5.0)
            except RecvTimeoutError:
                return "starved"
            return "fed"

        run = Engine(paragon(2, protocol="nx"), faults=FaultPlan(0, cfg)).run(prog)
        assert run.results == ["gave up", "starved"]

    def test_any_source_rejected(self):
        def prog(ctx):
            if ctx.rank == 0:
                yield from reliable_recv(ctx, -1)
            yield ctx.compute(flops=1.0)

        with pytest.raises(CommunicationError):
            Engine(paragon(2, protocol="nx")).run(prog)

    def test_out_of_range_tag_rejected(self):
        def prog(ctx):
            yield from reliable_send(ctx, 0, "x", tag=10**9)

        with pytest.raises(CommunicationError):
            Engine(workstation()).run(prog)


# --------------------------------------------------------------------------
# Checkpoint/restart recovery
# --------------------------------------------------------------------------


def _counting_program(ctx, steps, checkpoint_interval=0, restore=None):
    if restore is not None:
        start, acc = restore[ctx.rank]
    else:
        start, acc = 0, 0.0
    right = (ctx.rank + 1) % ctx.nranks
    left = (ctx.rank - 1) % ctx.nranks
    for step in range(start, steps):
        yield ctx.compute(flops=1e6)
        yield ctx.send(right, float(ctx.rank + step))
        value = yield ctx.recv(left)
        acc += value
        if checkpoint_interval and (step + 1) % checkpoint_interval == 0:
            yield ctx.checkpoint((step + 1, acc))
    return acc


class TestRecovery:
    def test_crash_aborts_with_committed_checkpoint(self):
        reference = Engine(machine4()).run(_counting_program, 6, 2)
        plan = FaultPlan(0, FaultConfig(crashes=((2, reference.elapsed_s * 0.6),)))
        with pytest.raises(RankCrashError) as info:
            Engine(machine4(), faults=plan).run(_counting_program, 6, 2)
        crash = info.value
        assert crash.rank == 2
        assert crash.checkpoint_index >= 0
        assert len(crash.checkpoint_states) == 4
        step, _acc = crash.checkpoint_states[0]
        assert step == 2 * (crash.checkpoint_index + 1)

    def test_recovery_reproduces_fault_free_results(self):
        reference = Engine(machine4()).run(_counting_program, 6, 2)
        plan = FaultPlan(0, FaultConfig(crashes=((2, reference.elapsed_s * 0.6),)))
        outcome = run_with_recovery(
            machine4(), _counting_program, 6, 2, faults=plan
        )
        assert outcome.run.results == reference.results
        assert outcome.restarts == 1
        assert outcome.attempts == 2
        assert outcome.total_virtual_s > outcome.run.elapsed_s
        assert outcome.plan.crash_time(2) is None

    def test_recovery_without_checkpoints_restarts_from_scratch(self):
        reference = Engine(machine4()).run(_counting_program, 4)
        plan = FaultPlan(0, FaultConfig(crashes=((1, reference.elapsed_s * 0.5),)))
        outcome = run_with_recovery(machine4(), _counting_program, 4, faults=plan)
        assert outcome.run.results == reference.results
        assert outcome.restarts == 1
        assert outcome.run.fault_stats["checkpoints"] == 0

    def test_restart_budget_exhaustion_reraises(self):
        reference = Engine(machine4()).run(_counting_program, 4)
        plan = FaultPlan(0, FaultConfig(crashes=((1, reference.elapsed_s * 0.5),)))
        with pytest.raises(RankCrashError):
            run_with_recovery(
                machine4(), _counting_program, 4, faults=plan, max_restarts=0
            )

    def test_multiple_crashes_each_repaired(self):
        reference = Engine(machine4()).run(_counting_program, 6, 2)
        t = reference.elapsed_s
        plan = FaultPlan(0, FaultConfig(crashes=((1, t * 0.3), (3, t * 0.7))))
        outcome = run_with_recovery(machine4(), _counting_program, 6, 2, faults=plan)
        assert outcome.run.results == reference.results
        assert outcome.restarts == 2
        assert sorted(c.rank for c in outcome.crashes) == [1, 3]

    def test_negative_restart_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            run_with_recovery(machine4(), _counting_program, 2, max_restarts=-1)


class TestPayloadEqual:
    def test_arrays_bitwise(self):
        a = np.arange(4.0)
        assert payload_equal(a, a.copy())
        assert not payload_equal(a, a + 1e-16)
        assert not payload_equal(a, a.astype(np.float32))
        assert not payload_equal(a, a.reshape(2, 2))
        assert not payload_equal(a, list(a))

    def test_nested_containers(self):
        x = {"a": [np.zeros(2), (1, 2.5)], "b": None}
        y = {"a": [np.zeros(2), (1, 2.5)], "b": None}
        assert payload_equal(x, y)
        y["a"][1] = (1, 2.6)
        assert not payload_equal(x, y)

    def test_scalars_and_lengths(self):
        assert payload_equal(3, 3.0)
        assert not payload_equal([1, 2], [1, 2, 3])
        assert not payload_equal({"a": 1}, {"b": 1})
