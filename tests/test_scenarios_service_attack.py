"""Shed/backlog attacks on the service loop (``repro.scenarios.service_attack``).

The hostile tenant is the service-level twin of the engine adversaries:
maximally plausible traffic, far too much of it.  These tests pin the
three-sweep story — clean / attacked / defended — and the admission
defense's typed ``rate-limit`` sheds, all in virtual time, all replay
deterministic.
"""

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    ATTACK_SWEEP_SCHEMA,
    ATTACKER_TENANT,
    attacked_sweep,
    hostile_mix,
)
from repro.service import (
    AdmissionController,
    FixedOracle,
    JobTemplate,
    Mix,
    PoissonProcess,
    Service,
    ServiceConfig,
    TenantProfile,
    estimate_capacity_rate,
    validate_loadsweep,
)


def duo_mix() -> Mix:
    """Two legitimate tenants; the small template is the flood target."""
    return Mix(
        name="duo",
        tenants=(
            TenantProfile(name="alice", weight=2.0, work=(("small", 1.0),)),
            TenantProfile(name="bob", weight=1.0, work=(("big", 1.0),)),
        ),
        templates={
            "small": JobTemplate(name="small", nranks=2, batchable=True),
            "big": JobTemplate(name="big", nranks=8),
        },
    )


ORACLE = FixedOracle({"small": 0.25, "big": 1.0})


class TestHostileMix:
    def test_attacker_floods_smallest_batchable_template(self):
        flooded = hostile_mix(duo_mix(), weight=4.0)
        assert flooded.name == "duo+attack"
        attacker = flooded.tenants[-1]
        assert attacker.name == ATTACKER_TENANT
        assert attacker.weight == 4.0
        assert attacker.work == (("small", 1.0),)
        # Legitimate tenants are untouched.
        assert flooded.tenants[:-1] == duo_mix().tenants

    def test_explicit_work_override(self):
        flooded = hostile_mix(duo_mix(), work="big")
        assert flooded.tenants[-1].work == (("big", 1.0),)

    def test_rejects_bad_configs(self):
        with pytest.raises(ConfigurationError, match="weight"):
            hostile_mix(duo_mix(), weight=0.0)
        with pytest.raises(ConfigurationError, match="no template"):
            hostile_mix(duo_mix(), work="no-such-template")
        with pytest.raises(ConfigurationError, match="already has an attacker"):
            hostile_mix(hostile_mix(duo_mix()))


class TestDefendedService:
    def test_rate_limit_sheds_only_the_attacker(self):
        # One service run, hostile mix, admission defense: the flood is
        # turned away with typed rate-limit rejections while legitimate
        # tenants sail through untouched.
        flooded = hostile_mix(duo_mix(), weight=4.0)
        capacity = estimate_capacity_rate(duo_mix(), ORACLE, 16)
        service = Service(
            16,
            flooded,
            PoissonProcess(seed=0, rate_s=2.0 * capacity),
            ORACLE,
            admission=AdmissionController(
                tenant_rate_limits={ATTACKER_TENANT: 0.1 * capacity}
            ),
            config=ServiceConfig(horizon_s=20.0),
            seed=0,
        )
        snapshot = service.run().snapshot
        reasons = snapshot["jobs"]["shed_reasons"]
        assert reasons.get("rate-limit", 0) > 0
        by_tenant = {entry["tenant"]: entry for entry in snapshot["per_tenant"]}
        assert by_tenant[ATTACKER_TENANT]["shed"] > 0
        assert by_tenant["alice"]["shed"] == 0
        assert by_tenant["bob"]["shed"] == 0


class TestAttackedSweep:
    @pytest.fixture(scope="class")
    def doc(self):
        return attacked_sweep(
            16,
            duo_mix(),
            ORACLE,
            multipliers=(0.5, 1.0, 2.0, 4.0),
            horizon_s=20.0,
            seed=0,
        )

    def test_schema_and_sweep_documents(self, doc):
        assert doc["schema"] == ATTACK_SWEEP_SCHEMA
        for name in ("clean", "attacked", "defended"):
            validate_loadsweep(doc["sweeps"][name])
        attack = doc["attack"]
        assert attack["tenant"] == ATTACKER_TENANT
        assert attack["defense_rate_s"] == pytest.approx(
            0.1 * attack["clean_capacity_rate_s"]
        )

    def test_all_sweeps_offer_the_same_absolute_rates(self, doc):
        # The comparability contract: hostile multipliers are rescaled
        # by the capacity ratio, so every sweep's absolute req/s grid is
        # identical and the knees compare in one unit.
        grids = {
            name: [p["rate_s"] for p in doc["sweeps"][name]["points"]]
            for name in ("clean", "attacked", "defended")
        }
        assert grids["attacked"] == pytest.approx(grids["clean"])
        assert grids["defended"] == pytest.approx(grids["clean"])

    def test_attack_degrades_latency_and_defense_recovers_it(self, doc):
        # Same absolute offered load, but under attack most of it is the
        # flood: the knee's tail latency degrades, and the admission
        # defense brings it back down by shedding the attacker.
        assert doc["clean"]["knee_detected"]
        assert doc["attacked"]["knee_detected"]
        assert (
            doc["attacked"]["knee_p99_turnaround_s"]
            > doc["clean"]["knee_p99_turnaround_s"]
        )
        assert (
            doc["defended"]["knee_p99_turnaround_s"]
            < doc["attacked"]["knee_p99_turnaround_s"]
        )

    def test_defense_sheds_where_clean_never_does(self, doc):
        assert doc["clean"]["worst_shed_rate"] == 0.0
        assert doc["defended"]["worst_shed_rate"] > 0.0
        # Shed work means fewer completions than offered — the flood is
        # turned away, not served.
        assert doc["defended"]["completed"] < doc["defended"]["offered"]

    def test_replay_determinism(self, doc):
        again = attacked_sweep(
            16,
            duo_mix(),
            ORACLE,
            multipliers=(0.5, 1.0, 2.0, 4.0),
            horizon_s=20.0,
            seed=0,
        )
        assert again == doc
