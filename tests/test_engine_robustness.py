"""Failure-injection and robustness tests for the discrete-event engine:
programs that misbehave must fail loudly and diagnosably, never hang or
corrupt state."""

import numpy as np
import pytest

from repro.errors import (
    CommunicationError,
    ConfigurationError,
    DeadlockError,
    SimulationError,
)
from repro.machines import ANY_SOURCE, Engine, Machine, barrier, bcast
from repro.machines.cpu import CpuModel
from repro.machines.network import ContentionNetwork, FullyConnected


def ideal_machine(nranks):
    return Machine(
        name="ideal",
        cpu=CpuModel(1e9, 1e9, 1e9),
        network=ContentionNetwork(
            topology=FullyConnected(nranks), latency_s=1e-6, per_hop_s=0, bytes_per_s=1e9
        ),
        placement=list(range(nranks)),
        sw_send_overhead_s=1e-6,
        sw_recv_overhead_s=1e-6,
        copy_bytes_per_s=1e9,
    )


class TestDeadlockDiagnostics:
    def test_ring_of_recvs_reports_every_rank(self):
        def prog(ctx):
            _ = yield ctx.recv((ctx.rank + 1) % ctx.nranks)

        with pytest.raises(DeadlockError) as err:
            Engine(ideal_machine(4)).run(prog)
        assert set(err.value.waiting) == {0, 1, 2, 3}

    def test_partial_deadlock_names_only_blocked_ranks(self):
        def prog(ctx):
            if ctx.rank == 2:
                _ = yield ctx.recv(0, tag=77)  # never sent
            else:
                yield ctx.compute(flops=1)
            return None

        with pytest.raises(DeadlockError) as err:
            Engine(ideal_machine(3)).run(prog)
        assert set(err.value.waiting) == {2}

    def test_mismatched_collective_order_deadlocks(self):
        """Rank 1 skips a broadcast the others join: SPMD violation."""

        def prog(ctx):
            if ctx.rank != 1:
                _ = yield from bcast(ctx, "x" if ctx.rank == 0 else None, root=0)
            return None

        with pytest.raises(DeadlockError):
            Engine(ideal_machine(4)).run(prog)

    def test_message_to_wrong_tag_deadlocks_not_misdelivers(self):
        def prog(ctx):
            if ctx.rank == 0:
                yield ctx.send(1, "payload", tag=5)
            else:
                _ = yield ctx.recv(0, tag=6)

        with pytest.raises(DeadlockError):
            Engine(ideal_machine(2)).run(prog)


class TestProgramErrors:
    def test_user_exception_propagates(self):
        def prog(ctx):
            yield ctx.compute(flops=1)
            raise ValueError("domain fault on rank %d" % ctx.rank)

        with pytest.raises(ValueError, match="domain fault"):
            Engine(ideal_machine(2)).run(prog)

    def test_yielding_garbage_is_a_simulation_error(self):
        def prog(ctx):
            yield "not an op"

        with pytest.raises(SimulationError):
            Engine(ideal_machine(1)).run(prog)

    def test_yielding_none_is_a_simulation_error(self):
        def prog(ctx):
            yield None

        with pytest.raises(SimulationError):
            Engine(ideal_machine(1)).run(prog)

    def test_negative_rank_recv_rejected(self):
        def prog(ctx):
            _ = yield ctx.recv(-7)

        with pytest.raises(CommunicationError):
            Engine(ideal_machine(2)).run(prog)

    def test_any_source_is_allowed(self):
        def prog(ctx):
            if ctx.rank == 0:
                yield ctx.send(1, 42)
                return None
            return (yield ctx.recv(ANY_SOURCE))

        assert Engine(ideal_machine(2)).run(prog).results[1] == 42


class TestEngineReuse:
    def test_engine_is_reusable_after_failure(self):
        engine = Engine(ideal_machine(2))

        def deadlocking(ctx):
            _ = yield ctx.recv(1 - ctx.rank)

        with pytest.raises(DeadlockError):
            engine.run(deadlocking)

        def healthy(ctx):
            yield from barrier(ctx)
            return ctx.rank

        assert engine.run(healthy).results == [0, 1]

    def test_network_counters_reset_between_runs(self):
        engine = Engine(ideal_machine(2))

        def prog(ctx):
            if ctx.rank == 0:
                yield ctx.send(1, np.zeros(10))
            else:
                _ = yield ctx.recv(0)
            return None

        first = engine.run(prog)
        second = engine.run(prog)
        assert first.messages_sent == second.messages_sent == 1
        assert first.bytes_sent == second.bytes_sent

    def test_runs_are_deterministic(self):
        engine = Engine(ideal_machine(5))

        def prog(ctx):
            total = yield from bcast(ctx, ctx.nranks if ctx.rank == 0 else None)
            yield ctx.compute(flops=1e5 * (ctx.rank + 1))
            return total

        a = engine.run(prog)
        b = engine.run(prog)
        assert a.elapsed_s == b.elapsed_s
        assert a.finish_times == b.finish_times


class TestStressShapes:
    def test_many_ranks_many_messages(self):
        """A 32-rank all-pairs exchange completes and conserves counts."""
        nranks = 32

        def prog(ctx):
            for dst in range(ctx.nranks):
                if dst != ctx.rank:
                    yield ctx.send(dst, (ctx.rank, dst), tag=3)
            received = 0
            for src in range(ctx.nranks):
                if src != ctx.rank:
                    payload = yield ctx.recv(src, tag=3)
                    assert payload == (src, ctx.rank)
                    received += 1
            return received

        result = Engine(ideal_machine(nranks)).run(prog)
        assert result.results == [nranks - 1] * nranks
        assert result.messages_sent == nranks * (nranks - 1)

    def test_zero_byte_messages(self):
        def prog(ctx):
            if ctx.rank == 0:
                yield ctx.send(1, None)
            else:
                payload = yield ctx.recv(0)
                assert payload is None
            return None

        Engine(ideal_machine(2)).run(prog)

    def test_deeply_interleaved_tags(self):
        """Messages on many tags between one pair stay correctly sorted."""

        def prog(ctx):
            if ctx.rank == 0:
                for tag in range(20):
                    yield ctx.send(1, tag * 100, tag=tag)
                return None
            values = []
            for tag in reversed(range(20)):
                values.append((yield ctx.recv(0, tag=tag)))
            return values

        result = Engine(ideal_machine(2)).run(prog)
        assert result.results[1] == [tag * 100 for tag in reversed(range(20))]
