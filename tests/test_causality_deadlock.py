"""Tests for the deadlock diagnostician and the recv tag-validation fix."""

import pytest

from repro.errors import CausalityError, CommunicationError, DeadlockError
from repro.machines import ANY_SOURCE, ANY_TAG, Engine, Machine
from repro.machines.cpu import CpuModel
from repro.machines.causality import diagnose_deadlock, wait_for_edges
from repro.machines.network import ContentionNetwork, FullyConnected


def ideal_machine(nranks):
    return Machine(
        name="ideal",
        cpu=CpuModel(1e9, 1e9, 1e9),
        network=ContentionNetwork(
            topology=FullyConnected(nranks), latency_s=1e-6, per_hop_s=0, bytes_per_s=1e9
        ),
        placement=list(range(nranks)),
        sw_send_overhead_s=1e-6,
        sw_recv_overhead_s=1e-6,
        copy_bytes_per_s=1e9,
    )


class TestCyclicDeadlock:
    def test_diagnosis_names_exact_cycle(self):
        """Every rank receives from its left neighbour before anyone
        sends: the classic all-ranks circular wait."""

        def prog(ctx):
            left = (ctx.rank - 1) % ctx.nranks
            _ = yield ctx.recv(left, tag=1)
            yield ctx.send((ctx.rank + 1) % ctx.nranks, "x", tag=1)
            return None

        with pytest.raises(DeadlockError) as excinfo:
            Engine(ideal_machine(3)).run(prog)
        report = diagnose_deadlock(excinfo.value)
        assert report.is_cycle
        assert report.cycle == (0, 2, 1)  # 0 waits on 2 waits on 1 waits on 0
        assert set(report.posted) == {0, 1, 2}
        assert report.edges == {0: (2,), 1: (0,), 2: (1,)}
        text = report.describe()
        assert "wait-for cycle: 0 -> 2 -> 1 -> 0" in text
        assert "rank 0 blocked in recv(src=2, tag=1)" in text

    def test_two_rank_mutual_wait(self):
        def prog(ctx):
            other = 1 - ctx.rank
            _ = yield ctx.recv(other, tag=0)
            yield ctx.send(other, "never", tag=0)
            return None

        with pytest.raises(DeadlockError) as excinfo:
            Engine(ideal_machine(2)).run(prog)
        report = diagnose_deadlock(excinfo.value)
        assert report.cycle == (0, 1)

    def test_accepts_raw_waiting_dict(self):
        report = diagnose_deadlock({0: (1, 5), 1: (0, 5)})
        assert report.is_cycle and report.cycle == (0, 1)
        assert report.posted[0].describe() == "recv(src=1, tag=5)"


class TestStarvation:
    def test_waiting_on_finished_rank_is_not_a_cycle(self):
        """Rank 1 waits for a message rank 0 never sends; rank 0 simply
        finishes.  Deadlock, but no circular wait."""

        def prog(ctx):
            if ctx.rank == 1:
                _ = yield ctx.recv(0, tag=7)
            else:
                yield ctx.compute(flops=10.0)
            return None

        with pytest.raises(DeadlockError) as excinfo:
            Engine(ideal_machine(2)).run(prog)
        report = diagnose_deadlock(excinfo.value)
        assert not report.is_cycle
        assert report.edges == {1: ()}
        assert "starvation" in report.describe()

    def test_any_source_waits_on_all_other_stuck_ranks(self):
        edges = wait_for_edges(
            {0: (ANY_SOURCE, ANY_TAG), 1: (2, 0), 2: (1, 0)}
        )
        assert edges[0] == (1, 2)
        assert edges == {0: (1, 2), 1: (2,), 2: (1,)}
        report = diagnose_deadlock(
            {0: (ANY_SOURCE, ANY_TAG), 1: (2, 0), 2: (1, 0)}
        )
        assert report.cycle == (1, 2)
        assert report.posted[0].describe() == "recv(src=ANY_SOURCE, tag=ANY_TAG)"

    def test_empty_waiting_rejected(self):
        with pytest.raises(CausalityError):
            diagnose_deadlock({})

    def test_uninterpretable_op_rejected(self):
        with pytest.raises(CausalityError):
            diagnose_deadlock({0: "garbage"})


class TestRecvTagValidation:
    """Satellite fix: a negative non-wildcard tag used to park the recv
    forever (nothing is ever sent with a negative tag); now it raises."""

    def test_negative_tag_raises_immediately(self):
        def prog(ctx):
            if ctx.rank == 0:
                yield ctx.send(1, "x", tag=1)
            else:
                _ = yield ctx.recv(0, tag=-7)
            return None

        with pytest.raises(CommunicationError, match="tag"):
            Engine(ideal_machine(2)).run(prog)

    def test_any_tag_still_accepted(self):
        def prog(ctx):
            if ctx.rank == 0:
                yield ctx.send(1, "x", tag=3)
                return None
            got = yield ctx.recv(0, tag=ANY_TAG)
            return got

        run = Engine(ideal_machine(2)).run(prog)
        assert run.results[1] == "x"
