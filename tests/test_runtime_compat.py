"""Back-compat pins for the runtime-layer refactor.

The legacy drivers (``run_spmd_wavelet``, ``run_parallel_nbody``,
``run_parallel_pic``, ``run_with_recovery``) became thin wrappers over
:mod:`repro.runtime`.  The sha256 digests below were captured from the
pre-refactor drivers on identical inputs; a digest mismatch means the
refactor changed an observable result byte and must be treated as a
regression, not re-pinned.
"""

import pytest

from tests._digest_util import digest, run_result_digest
from repro.data import landsat_like_scene, plummer_sphere, uniform_cube
from repro.errors import ConfigurationError
from repro.machines import paragon, t3d
from repro.machines.faults import FaultPlan, run_with_recovery
from repro.nbody import run_parallel_nbody
from repro.pic import Grid3D, run_parallel_pic
from repro.runtime import JobSpec, RunOptions, execute, launch, program_names
from repro.wavelet import filter_bank_for_length
from repro.wavelet.parallel import run_spmd_wavelet
from repro.wavelet.parallel.decomposition import StripeDecomposition
from repro.wavelet.parallel.spmd import striped_wavelet_program

WAVELET_STRIPED = "d3be181e785b0743fc27ab1091bd36bc87441920eb4833b50367d0a138168033"
WAVELET_STRIPED_PYR = "6ba270725d67d6b761be546ea01930b77b07d56aef0f3a890ed3ec73e2de8324"
WAVELET_BLOCK_LIFTING = (
    "d38fecd691d7643d3e8620fbc06236fa894cab3e4e955cfa2e363c32954906ba"
)
NBODY_MW = "ab2f4ace55a6717c129a89269e31413d0032d484a379b80cc3378f4138f3d490"
PIC = "15d467737f8c8e9bebb29cf4317a18a583d18a47d48970c7d7bb03f52b8de2df"
RECOVERY = "a420a99f28b0fc3a8e3aa188562fe06d05afadcbbf8e6f24e0c62b4cbb378fcf"


@pytest.fixture(scope="module")
def image():
    return landsat_like_scene((64, 64))


@pytest.fixture(scope="module")
def bank():
    return filter_bank_for_length(4)


class TestDriverDigests:
    def test_wavelet_striped(self, image, bank):
        outcome = run_spmd_wavelet(paragon(8), image, bank, 2)
        assert run_result_digest(outcome.run) == WAVELET_STRIPED
        pyr = outcome.pyramid
        assert (
            digest(
                {
                    "a": pyr.approximation,
                    "d": [(t.lh, t.hl, t.hh) for t in pyr.details],
                }
            )
            == WAVELET_STRIPED_PYR
        )

    def test_wavelet_block_lifting(self, image, bank):
        outcome = run_spmd_wavelet(
            paragon(8), image, bank, 2, decomposition="block", kernel="lifting"
        )
        assert run_result_digest(outcome.run) == WAVELET_BLOCK_LIFTING

    def test_nbody_manager_worker(self):
        particles = plummer_sphere(96, dim=2, seed=3)
        outcome = run_parallel_nbody(paragon(4), particles, steps=2)
        assert run_result_digest(outcome.run) == NBODY_MW

    def test_pic(self):
        particles = uniform_cube(256, thermal_speed=0.05, seed=1)
        outcome = run_parallel_pic(
            t3d(4), Grid3D(8), particles, steps=2, collect=False
        )
        assert run_result_digest(outcome.run) == PIC

    def test_recovery(self, image, bank):
        reference = run_spmd_wavelet(paragon(8), image, bank, 2)
        plan = FaultPlan.sampled(7, 4, 0.2, t_horizon=reference.run.elapsed_s)
        outcome = run_with_recovery(
            paragon(4),
            striped_wavelet_program,
            image,
            bank,
            2,
            StripeDecomposition(64, 64, 4, 2),
            faults=plan,
            checkpoint_interval=1,
        )
        assert run_result_digest(outcome.run) == RECOVERY
        assert outcome.restarts == 1
        assert outcome.total_virtual_s == pytest.approx(
            0.047310696407658615, rel=0, abs=0
        )


class TestJobSpecEquivalence:
    """A JobSpec through execute/launch equals the legacy wrapper call."""

    def test_execute_matches_wrapper(self, image, bank):
        spec = JobSpec(
            program="wavelet",
            params={"image": image, "bank": bank, "levels": 2},
        )
        execution = execute(paragon(8), spec)
        assert run_result_digest(execution.run) == WAVELET_STRIPED

    def test_launch_resolves_named_machine(self, image, bank):
        spec = JobSpec(
            program="wavelet",
            params={"image": image, "bank": bank, "levels": 2},
            options=RunOptions(machine="paragon", nranks=8),
        )
        assert run_result_digest(launch(spec).run) == WAVELET_STRIPED


class TestRegistryValidation:
    def test_builtins_registered(self):
        assert set(program_names()) >= {"wavelet", "nbody", "pic", "workload"}

    def test_unknown_program_rejected(self):
        with pytest.raises(ConfigurationError):
            launch(JobSpec(program="fft", options=RunOptions(machine="workstation")))

    def test_kernel_rejected_off_wavelet(self):
        particles = plummer_sphere(16, dim=2, seed=0)
        spec = JobSpec(
            program="nbody",
            params={"particles": particles, "steps": 1},
            options=RunOptions(machine="paragon", nranks=2, kernel="lifting"),
        )
        with pytest.raises(ConfigurationError):
            launch(spec)

    def test_checkpointing_rejected_off_striped(self, image, bank):
        spec = JobSpec(
            program="wavelet",
            params={"image": image, "bank": bank, "levels": 1},
            options=RunOptions(
                machine="paragon",
                nranks=4,
                decomposition="block",
                checkpoint_interval=1,
            ),
        )
        with pytest.raises(ConfigurationError):
            launch(spec)

    def test_unset_machine_rejected(self, image, bank):
        spec = JobSpec(
            program="wavelet", params={"image": image, "bank": bank, "levels": 1}
        )
        with pytest.raises(ConfigurationError):
            launch(spec)
