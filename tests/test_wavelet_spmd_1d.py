"""Tests for the striped 1-D parallel transform."""

import numpy as np
import pytest

from repro.errors import DecompositionError
from repro.machines import paragon
from repro.wavelet import dwt_1d, filter_bank_for_length, idwt_1d
from repro.wavelet.parallel import run_spmd_dwt_1d


@pytest.fixture(scope="module")
def signal():
    return np.random.default_rng(33).random(512) * 2 - 1


class TestSpmd1d:
    @pytest.mark.parametrize("nranks", [1, 2, 4, 8])
    @pytest.mark.parametrize("length,levels", [(8, 1), (4, 2), (2, 4)])
    def test_matches_sequential(self, signal, nranks, length, levels):
        bank = filter_bank_for_length(length)
        ref_approx, ref_details = dwt_1d(signal, bank, levels)
        out = run_spmd_dwt_1d(paragon(nranks), signal, bank, levels)
        np.testing.assert_allclose(out.approximation, ref_approx, atol=1e-12)
        for mine, ref in zip(out.details, ref_details):
            np.testing.assert_allclose(mine, ref, atol=1e-12)

    def test_roundtrip_through_sequential_inverse(self, signal):
        bank = filter_bank_for_length(4)
        out = run_spmd_dwt_1d(paragon(4), signal, bank, 2)
        reconstructed = idwt_1d(out.approximation, out.details, bank)
        np.testing.assert_allclose(reconstructed, signal, atol=1e-10)

    def test_comm_grows_with_levels(self, signal):
        bank = filter_bank_for_length(2)
        one = run_spmd_dwt_1d(
            paragon(8), signal, bank, 1, distribute=False
        ).run.messages_sent
        four = run_spmd_dwt_1d(
            paragon(8), signal, bank, 4, distribute=False
        ).run.messages_sent
        assert four > one

    def test_indivisible_length_raises(self, signal):
        bank = filter_bank_for_length(2)
        with pytest.raises(DecompositionError):
            run_spmd_dwt_1d(paragon(3), signal[:500], bank, 2)

    def test_segment_shorter_than_filter_raises(self, signal):
        bank = filter_bank_for_length(8)
        # 512 / 32 = 16 -> level 2 segments are 8... level 3 segments 4 < 8.
        with pytest.raises(DecompositionError):
            run_spmd_dwt_1d(paragon(32), signal, bank, 3)

    def test_budget_has_work_and_comm(self, signal):
        bank = filter_bank_for_length(4)
        out = run_spmd_dwt_1d(paragon(8), signal, bank, 2)
        budget = out.run.mean_budget()
        assert budget.work_s > 0
        assert budget.comm_s > 0


class TestSpmd1dReconstruction:
    @pytest.mark.parametrize("nranks", [1, 2, 4, 8])
    @pytest.mark.parametrize("length,levels", [(8, 1), (4, 2), (2, 4)])
    def test_roundtrip_exact(self, signal, nranks, length, levels):
        from repro.wavelet.parallel import run_spmd_idwt_1d

        bank = filter_bank_for_length(length)
        approx, details = dwt_1d(signal, bank, levels)
        _, reconstructed = run_spmd_idwt_1d(paragon(nranks), approx, details, bank)
        np.testing.assert_allclose(reconstructed, signal, atol=1e-10)

    def test_full_parallel_pipeline(self, signal):
        """Decompose and reconstruct both on the simulated machine."""
        from repro.wavelet.parallel import run_spmd_idwt_1d

        bank = filter_bank_for_length(4)
        forward = run_spmd_dwt_1d(paragon(4), signal, bank, 2)
        _, reconstructed = run_spmd_idwt_1d(
            paragon(4), forward.approximation, forward.details, bank
        )
        np.testing.assert_allclose(reconstructed, signal, atol=1e-10)

    def test_too_many_ranks_raise(self, signal):
        from repro.wavelet.parallel import run_spmd_idwt_1d

        bank = filter_bank_for_length(8)
        approx, details = dwt_1d(signal, bank, 3)
        # 64-sample approximation over 32 ranks -> 2-sample segments < guard 4.
        with pytest.raises(DecompositionError):
            run_spmd_idwt_1d(paragon(32), approx, details, bank)
