"""Tests for the Chrome trace-event export and the ``trace`` CLI."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.errors import CausalityError
from repro.machines import Engine, Machine, paragon
from repro.machines.cpu import CpuModel
from repro.machines.causality import chrome_trace, write_chrome_trace
from repro.machines.network import ContentionNetwork, FullyConnected
from repro.wavelet import filter_bank_for_length
from repro.wavelet.parallel.decomposition import StripeDecomposition
from repro.wavelet.parallel.spmd import striped_wavelet_program


def ideal_machine(nranks):
    return Machine(
        name="ideal",
        cpu=CpuModel(1e9, 1e9, 1e9),
        network=ContentionNetwork(
            topology=FullyConnected(nranks), latency_s=1e-6, per_hop_s=0, bytes_per_s=1e9
        ),
        placement=list(range(nranks)),
        sw_send_overhead_s=1e-6,
        sw_recv_overhead_s=1e-6,
        copy_bytes_per_s=1e9,
    )


def ring_prog(ctx):
    yield ctx.compute(flops=1e6)
    yield ctx.send((ctx.rank + 1) % ctx.nranks, np.ones(32), tag=2)
    _ = yield ctx.recv((ctx.rank - 1) % ctx.nranks, tag=2)
    return None


def wavelet_run(nranks=4, size=64):
    image = np.random.default_rng(1).normal(size=(size, size))
    bank = filter_bank_for_length(4)
    decomp = StripeDecomposition(size, size, nranks, 1)
    return Engine(paragon(nranks), record_trace=True).run(
        striped_wavelet_program, image, bank, 1, decomp
    )


class TestChromeTrace:
    def test_document_shape(self):
        run = Engine(ideal_machine(3), record_trace=True).run(ring_prog)
        doc = chrome_trace(run, machine_name="test-machine")
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {"process_name", "thread_name"} <= {m["name"] for m in meta}
        assert meta[0]["args"]["name"] == "test-machine"
        # One row (tid) per rank.
        assert {m["tid"] for m in meta if m["name"] == "thread_name"} == {0, 1, 2}

    def test_complete_events_cover_trace(self):
        run = Engine(ideal_machine(3), record_trace=True).run(ring_prog)
        doc = chrome_trace(run)
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == len(run.trace)
        for x in xs:
            assert x["dur"] > 0
            assert x["ts"] >= 0
            assert x["name"] in ("compute", "send", "recv", "redundant")

    def test_flow_arrows_pair_up(self):
        run = Engine(ideal_machine(4), record_trace=True).run(ring_prog)
        doc = chrome_trace(run)
        starts = {e["id"] for e in doc["traceEvents"] if e["ph"] == "s"}
        finishes = {e["id"] for e in doc["traceEvents"] if e["ph"] == "f"}
        assert starts == finishes
        assert len(starts) == run.messages_sent

    def test_json_roundtrip_via_file(self, tmp_path):
        run = wavelet_run()
        out = tmp_path / "trace.json"
        doc = write_chrome_trace(out, run)
        loaded = json.loads(out.read_text())
        assert loaded == json.loads(json.dumps(doc))
        assert loaded["traceEvents"]

    def test_untraced_run_rejected(self):
        run = Engine(ideal_machine(2)).run(ring_prog)
        with pytest.raises(CausalityError):
            chrome_trace(run)


class TestTraceCli:
    def test_parser_defaults_match_a_f5(self):
        args = build_parser().parse_args(["trace"])
        assert args.program == "wavelet"
        assert args.size == 512 and args.filter_length == 8
        assert args.procs == 16 and args.placement == "snake"

    def test_wavelet_trace_reports_race_free_and_slack(self, capsys):
        assert main(
            ["trace", "--size", "64", "--filter", "4", "--procs", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "0 hazards" in out
        assert "causal lower bound" in out
        assert "slack" in out

    def test_wavelet_trace_writes_loadable_json(self, tmp_path, capsys):
        out_file = tmp_path / "wavelet.json"
        assert main(
            [
                "trace", "--size", "64", "--filter", "4", "--procs", "4",
                "--out", str(out_file),
            ]
        ) == 0
        doc = json.loads(out_file.read_text())
        assert doc["traceEvents"]
        assert "wrote" in capsys.readouterr().out

    def test_nbody_trace_runs(self, capsys):
        assert main(
            [
                "trace", "--program", "nbody", "--bodies", "96",
                "--procs", "2", "--steps", "1",
            ]
        ) == 0
        assert "0 hazards" in capsys.readouterr().out

    def test_pic_trace_runs(self, capsys):
        assert main(
            [
                "trace", "--program", "pic", "--particles", "256",
                "--grid", "8", "--procs", "2", "--steps", "1",
            ]
        ) == 0
        assert "0 hazards" in capsys.readouterr().out

    def test_naive_placement_accepted(self, capsys):
        assert main(
            [
                "trace", "--size", "64", "--filter", "4", "--procs", "4",
                "--placement", "naive",
            ]
        ) == 0
        assert "critical path" in capsys.readouterr().out
