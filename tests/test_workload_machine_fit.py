"""Tests for the typed-scheduling machine-fit analysis."""

import pytest

from repro.errors import TraceError
from repro.workload import (
    INSTRUCTION_TYPES,
    Trace,
    oracle_schedule,
    required_units,
    sustained_rate,
    typed_list_schedule,
)
from repro.workload.kernels import buk, embar


def wide_mixed_trace(width=12):
    trace = Trace("mixed")
    for i in range(width):
        trace.append("intops")
        trace.append("fpops")
    return trace


class TestTypedListSchedule:
    def test_per_type_limits_respected(self):
        trace = wide_mixed_trace(12)
        result = typed_list_schedule(trace, {"intops": 3, "memops": 1, "fpops": 2,
                                             "controlops": 1, "branchops": 1})
        int_col = INSTRUCTION_TYPES.index("intops")
        fp_col = INSTRUCTION_TYPES.index("fpops")
        assert result.workload.levels[:, int_col].max() <= 3
        assert result.workload.levels[:, fp_col].max() <= 2

    def test_unconstrained_matches_oracle(self):
        trace = wide_mixed_trace(8)
        generous = {t: 1000 for t in INSTRUCTION_TYPES}
        assert (
            typed_list_schedule(trace, generous).critical_path
            == oracle_schedule(trace).critical_path
        )

    def test_one_unit_serializes_each_type(self):
        trace = wide_mixed_trace(6)
        result = typed_list_schedule(trace, {t: 1 for t in INSTRUCTION_TYPES})
        # 6 int + 6 fp, different types can share a cycle: CPL = 6.
        assert result.critical_path == 6

    def test_sequence_units_accepted(self):
        trace = wide_mixed_trace(4)
        result = typed_list_schedule(trace, [2, 1, 2, 1, 1])
        assert result.critical_path == 2

    def test_dependencies_respected(self):
        trace = Trace()
        a = trace.append("intops")
        trace.append("intops", (a,))
        result = typed_list_schedule(trace, {t: 100 for t in INSTRUCTION_TYPES})
        assert result.critical_path == 2

    def test_bad_units_raise(self):
        trace = wide_mixed_trace(2)
        with pytest.raises(TraceError):
            typed_list_schedule(trace, {"vectorops": 2})
        with pytest.raises(TraceError):
            typed_list_schedule(trace, {t: 0 for t in INSTRUCTION_TYPES})
        with pytest.raises(TraceError):
            typed_list_schedule(trace, [1, 2, 3])

    def test_empty_trace_raises(self):
        with pytest.raises(TraceError):
            typed_list_schedule(Trace(), {t: 1 for t in INSTRUCTION_TYPES})


class TestMachineFit:
    def test_required_units_ceil_of_centroid(self):
        trace = wide_mixed_trace(10)
        workload = oracle_schedule(trace).workload
        units = required_units(workload)
        assert units["intops"] == 10
        assert units["memops"] == 1  # floor of one unit even when unused

    def test_headroom_scales(self):
        trace = wide_mixed_trace(10)
        workload = oracle_schedule(trace).workload
        assert required_units(workload, headroom=2.0)["intops"] == 20

    def test_bad_headroom_raises(self):
        workload = oracle_schedule(wide_mixed_trace(2)).workload
        with pytest.raises(TraceError):
            required_units(workload, headroom=0.0)

    def test_centroid_provisioning_sustains_near_oracle_rate(self):
        """The paper's claim: units == centroid sustain close to peak for
        a smooth workload."""
        trace = embar(chains=60)
        schedule = oracle_schedule(trace)
        units = required_units(schedule.workload)
        achieved = sustained_rate(trace, units)
        assert achieved > 0.55 * schedule.average_parallelism

    def test_starving_the_dominant_unit_hurts(self):
        trace = buk(n=200)
        workload = oracle_schedule(trace).workload
        units = required_units(workload)
        baseline = sustained_rate(trace, units)
        starved = dict(units)
        starved["intops"] = max(1, units["intops"] // 4)
        assert sustained_rate(trace, starved) < 0.8 * baseline

    def test_starving_a_rare_unit_is_free(self):
        trace = buk(n=200)  # essentially no FP ops
        workload = oracle_schedule(trace).workload
        units = required_units(workload)
        baseline = sustained_rate(trace, units)
        starved = dict(units)
        starved["fpops"] = 1
        assert sustained_rate(trace, starved) == pytest.approx(baseline, rel=0.05)
