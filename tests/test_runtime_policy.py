"""Queue-policy tests: FIFO extraction, fair-share tags, priorities."""

from dataclasses import dataclass

import pytest

from repro.errors import ConfigurationError
from repro.runtime.policy import FifoBackfill, WeightedFairShare, make_policy


@dataclass
class FakeJob:
    job_id: int
    tenant: str = "t"
    priority: int = 0
    partition_size: int = 4
    submit_s: float = 0.0
    cost: float = 4.0


class TestFifoBackfill:
    def test_orders_by_job_id(self):
        jobs = [FakeJob(2), FakeJob(0), FakeJob(1)]
        assert [j.job_id for j in FifoBackfill().order(jobs, 0.0)] == [0, 1, 2]

    def test_name(self):
        assert FifoBackfill().name == "fifo"


class TestWeightedFairShare:
    def test_heavier_tenant_ranks_first_at_equal_backlog(self):
        policy = WeightedFairShare({"heavy": 4.0, "light": 1.0})
        a = FakeJob(0, tenant="light")
        b = FakeJob(1, tenant="heavy")
        policy.on_submit(a, 0.0)
        policy.on_submit(b, 0.0)
        # Both have start tag 0; id breaks the tie. Submit a second round:
        # light's finish tag advanced 4x further than heavy's.
        c = FakeJob(2, tenant="light")
        d = FakeJob(3, tenant="heavy")
        policy.on_submit(c, 0.0)
        policy.on_submit(d, 0.0)
        ranked = [j.job_id for j in policy.order([c, d], 0.0)]
        assert ranked == [3, 2]

    def test_priority_dominates_tags(self):
        policy = WeightedFairShare()
        urgent = FakeJob(5, tenant="a", priority=3)
        backlogged = FakeJob(1, tenant="b")
        policy.on_submit(backlogged, 0.0)
        policy.on_submit(urgent, 0.0)
        ranked = [j.job_id for j in policy.order([backlogged, urgent], 0.0)]
        assert ranked == [5, 1]

    def test_heavy_backlog_cannot_starve_light_tenant(self):
        policy = WeightedFairShare({"heavy": 1.0, "light": 1.0})
        burst = [FakeJob(i, tenant="heavy") for i in range(10)]
        for job in burst:
            policy.on_submit(job, 0.0)
        late = FakeJob(10, tenant="light")
        policy.on_submit(late, 0.0)
        # The light tenant's single job outranks most of the burst: its
        # start tag is the global vtime (0), the burst's tags stack up.
        ranked = [j.job_id for j in policy.order(burst + [late], 0.0)]
        assert ranked.index(10) <= 1

    def test_replay_identical(self):
        def run():
            policy = WeightedFairShare({"a": 2.0, "b": 1.0})
            jobs = [
                FakeJob(i, tenant=("a" if i % 3 else "b"), cost=1.0 + i % 4)
                for i in range(12)
            ]
            for job in jobs:
                policy.on_submit(job, float(i := job.job_id))
            return [j.job_id for j in policy.order(jobs, 12.0)]

        assert run() == run()

    def test_idle_tenant_reenters_at_current_vtime(self):
        policy = WeightedFairShare()
        early = FakeJob(0, tenant="busy", cost=100.0)
        policy.on_submit(early, 0.0)
        policy.on_start(early, 0.0)
        # busy tenant racks up tag debt; a fresh tenant arriving later
        # starts at the global vtime, not at 0 relative advantage.
        policy.on_submit(FakeJob(1, tenant="busy"), 0.0)
        policy.on_start(FakeJob(1, tenant="busy", cost=100.0), 0.0)
        newcomer = FakeJob(2, tenant="fresh")
        policy.on_submit(newcomer, 50.0)
        assert policy._tags[2] == policy._vtime

    def test_weight_validation(self):
        with pytest.raises(ConfigurationError):
            WeightedFairShare({"t": 0.0})
        with pytest.raises(ConfigurationError):
            WeightedFairShare(default_weight=-1.0)


class TestMakePolicy:
    def test_builds_both(self):
        assert make_policy("fifo").name == "fifo"
        fair = make_policy("fair", weights={"t": 2.0})
        assert fair.name == "fair" and fair.weights == {"t": 2.0}

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_policy("lottery")


class TestSchedulerIntegration:
    def test_scheduler_accepts_fair_policy(self):
        from repro.runtime import JobSpec, RunOptions, Scheduler, machine_template
        from repro.workload import nas_suite

        trace = nas_suite(0.1)[0]
        sched = Scheduler(
            machine_template("paragon"),
            policy=WeightedFairShare({"a": 2.0, "b": 1.0}),
        )
        for i, tenant in enumerate(("a", "b", "a", "b")):
            sched.submit(
                JobSpec(
                    program="workload",
                    params={"trace": trace},
                    options=RunOptions(nranks=32),
                    name=f"job{i}",
                    tenant=tenant,
                )
            )
        results = sched.run()
        assert len(results) == 4
        assert all(r.turnaround_s > 0.0 for r in results)
