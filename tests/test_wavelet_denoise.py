"""Tests for wavelet shrinkage denoising."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.wavelet import (
    daubechies_filter,
    denoise_1d,
    estimate_noise_sigma,
    soft_threshold,
)


def noisy_signal(n=1024, noise=0.3, seed=0):
    rng = np.random.default_rng(seed)
    t = np.linspace(0, 1, n, endpoint=False)
    clean = np.sin(2 * np.pi * 5 * t) + 0.5 * np.sign(np.sin(2 * np.pi * 2 * t))
    return clean, clean + rng.standard_normal(n) * noise


class TestSoftThreshold:
    def test_shrinks_toward_zero(self):
        out = soft_threshold(np.array([3.0, -3.0, 0.5, -0.5]), 1.0)
        np.testing.assert_allclose(out, [2.0, -2.0, 0.0, 0.0])

    def test_zero_threshold_is_identity(self):
        data = np.array([1.0, -2.0, 0.3])
        np.testing.assert_array_equal(soft_threshold(data, 0.0), data)

    def test_negative_threshold_raises(self):
        with pytest.raises(ConfigurationError):
            soft_threshold(np.ones(3), -1.0)

    def test_continuity_at_threshold(self):
        # Soft rule is continuous: values at +-threshold map to zero.
        out = soft_threshold(np.array([1.0, -1.0]), 1.0)
        np.testing.assert_allclose(out, [0.0, 0.0])


class TestNoiseEstimate:
    def test_recovers_gaussian_sigma(self):
        rng = np.random.default_rng(1)
        noise = rng.standard_normal(8192) * 0.7
        assert estimate_noise_sigma(noise) == pytest.approx(0.7, rel=0.1)

    def test_robust_to_sparse_outliers(self):
        rng = np.random.default_rng(2)
        noise = rng.standard_normal(8192) * 0.5
        noise[::100] += 50.0  # 1% gross outliers
        assert estimate_noise_sigma(noise) == pytest.approx(0.5, rel=0.15)

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            estimate_noise_sigma(np.array([]))


class TestDenoise1d:
    def test_improves_mse(self):
        clean, noisy = noisy_signal()
        denoised = denoise_1d(noisy)
        assert ((denoised - clean) ** 2).mean() < 0.4 * ((noisy - clean) ** 2).mean()

    def test_clean_signal_nearly_unchanged(self):
        clean, _ = noisy_signal(noise=0.0)
        denoised = denoise_1d(clean, threshold=0.0)
        np.testing.assert_allclose(denoised, clean, atol=1e-9)

    def test_explicit_threshold_and_bank(self):
        clean, noisy = noisy_signal()
        denoised = denoise_1d(
            noisy, bank=daubechies_filter(4), levels=3, threshold=0.5
        )
        assert denoised.shape == noisy.shape

    def test_huge_threshold_flattens_details(self):
        clean, noisy = noisy_signal()
        flattened = denoise_1d(noisy, levels=2, threshold=1e9)
        # Only the level-2 approximation survives: much smoother.
        assert np.abs(np.diff(flattened)).mean() < np.abs(np.diff(noisy)).mean() / 2

    def test_2d_input_raises(self):
        with pytest.raises(ConfigurationError):
            denoise_1d(np.ones((4, 4)))

    def test_bad_levels_raise(self):
        with pytest.raises(ConfigurationError):
            denoise_1d(np.ones(64), levels=99)


class TestDenoise2d:
    def test_improves_mse_on_noisy_scene(self):
        from repro.data import landsat_like_scene
        from repro.wavelet import denoise_2d

        rng = np.random.default_rng(3)
        clean = landsat_like_scene((128, 128))
        noisy = clean + rng.standard_normal(clean.shape) * clean.std()
        denoised = denoise_2d(noisy)
        assert ((denoised - clean) ** 2).mean() < 0.5 * ((noisy - clean) ** 2).mean()

    def test_zero_threshold_is_identity(self):
        from repro.data import landsat_like_scene
        from repro.wavelet import denoise_2d

        clean = landsat_like_scene((64, 64))
        np.testing.assert_allclose(denoise_2d(clean, threshold=0.0), clean, atol=1e-8)

    def test_bad_input_raises(self):
        from repro.wavelet import denoise_2d

        with pytest.raises(ConfigurationError):
            denoise_2d(np.ones(64))
        with pytest.raises(ConfigurationError):
            denoise_2d(np.ones((64, 64)), levels=99)
