"""Tests for force evaluation, partitioning, and integration."""

import numpy as np
import pytest

from repro.data import plummer_sphere, uniform_disk
from repro.errors import ConfigurationError
from repro.nbody import (
    NBodySimulation,
    build_tree,
    costzones_partition,
    direct_forces,
    force_op_cost,
    leapfrog_step,
    orb_partition,
    partition_balance,
    tree_forces,
)


@pytest.fixture(scope="module")
def cluster():
    return plummer_sphere(400, dim=2, seed=3)


class TestDirectForces:
    def test_two_body_attraction(self):
        pos = np.array([[0.0, 0.0], [1.0, 0.0]])
        masses = np.array([1.0, 1.0])
        result = direct_forces(pos, masses, softening=0.0)
        # Unit masses at distance 1: |a| = 1 toward the other body.
        np.testing.assert_allclose(result.accelerations[0], [1.0, 0.0], atol=1e-12)
        np.testing.assert_allclose(result.accelerations[1], [-1.0, 0.0], atol=1e-12)

    def test_momentum_conservation(self, cluster):
        result = direct_forces(cluster.positions, cluster.masses)
        total_force = (cluster.masses[:, None] * result.accelerations).sum(axis=0)
        np.testing.assert_allclose(total_force, 0.0, atol=1e-10)

    def test_potential_negative(self, cluster):
        assert direct_forces(cluster.positions, cluster.masses).potential < 0

    def test_interaction_count(self, cluster):
        result = direct_forces(cluster.positions, cluster.masses)
        assert result.total_interactions == cluster.n * (cluster.n - 1)


class TestTreeForces:
    def test_accuracy_improves_with_smaller_theta(self, cluster):
        tree = build_tree(cluster.positions, cluster.masses)
        exact = direct_forces(cluster.positions, cluster.masses).accelerations
        errors = []
        for theta in (1.2, 0.6, 0.3):
            approx = tree_forces(
                tree, cluster.positions, cluster.masses, theta=theta
            ).accelerations
            errors.append(
                np.median(
                    np.linalg.norm(approx - exact, axis=1)
                    / np.linalg.norm(exact, axis=1)
                )
            )
        assert errors[0] > errors[1] > errors[2]
        assert errors[2] < 0.01

    def test_cost_decreases_with_larger_theta(self, cluster):
        tree = build_tree(cluster.positions, cluster.masses)
        small = tree_forces(tree, cluster.positions, cluster.masses, theta=0.3)
        large = tree_forces(tree, cluster.positions, cluster.masses, theta=1.2)
        assert large.total_interactions < small.total_interactions

    def test_subquadratic_interactions(self, cluster):
        tree = build_tree(cluster.positions, cluster.masses)
        result = tree_forces(tree, cluster.positions, cluster.masses, theta=0.6)
        assert result.total_interactions < 0.6 * cluster.n * (cluster.n - 1)

    def test_targets_subset_matches_full(self, cluster):
        tree = build_tree(cluster.positions, cluster.masses)
        full = tree_forces(tree, cluster.positions, cluster.masses, theta=0.6)
        subset = np.arange(50, 120)
        part = tree_forces(
            tree, cluster.positions, cluster.masses, theta=0.6, targets=subset
        )
        np.testing.assert_allclose(
            part.accelerations, full.accelerations[subset], atol=1e-12
        )
        np.testing.assert_array_equal(part.interactions, full.interactions[subset])

    def test_bad_theta_raises(self, cluster):
        tree = build_tree(cluster.positions, cluster.masses)
        with pytest.raises(ConfigurationError):
            tree_forces(tree, cluster.positions, cluster.masses, theta=0.0)

    def test_op_cost_scales_with_interactions(self):
        assert force_op_cost(2000).total() == pytest.approx(2 * force_op_cost(1000).total())


class TestPartitioning:
    def test_costzones_covers_all_particles(self, cluster):
        tree = build_tree(cluster.positions, cluster.masses)
        zones = costzones_partition(tree, np.ones(cluster.n), 5)
        combined = np.sort(np.concatenate(zones))
        np.testing.assert_array_equal(combined, np.arange(cluster.n))

    def test_costzones_balances_nonuniform_costs(self, cluster):
        tree = build_tree(cluster.positions, cluster.masses)
        rng = np.random.default_rng(0)
        costs = rng.exponential(1.0, cluster.n)
        zones = costzones_partition(tree, costs, 4)
        assert partition_balance(zones, costs) < 1.3

    def test_costzones_zones_contiguous_in_tree_order(self, cluster):
        tree = build_tree(cluster.positions, cluster.masses)
        zones = costzones_partition(tree, np.ones(cluster.n), 3)
        rank_of = np.empty(cluster.n, dtype=int)
        for r, z in enumerate(zones):
            rank_of[z] = r
        in_order = rank_of[tree.order]
        assert (np.diff(in_order) >= 0).all()

    def test_costzones_single_rank(self, cluster):
        tree = build_tree(cluster.positions, cluster.masses)
        zones = costzones_partition(tree, np.ones(cluster.n), 1)
        assert len(zones) == 1 and zones[0].size == cluster.n

    def test_costzones_bad_args(self, cluster):
        tree = build_tree(cluster.positions, cluster.masses)
        with pytest.raises(ConfigurationError):
            costzones_partition(tree, np.ones(cluster.n), 0)
        with pytest.raises(ConfigurationError):
            costzones_partition(tree, np.ones(3), 2)

    def test_orb_covers_all(self, cluster):
        zones = orb_partition(cluster.positions, np.ones(cluster.n), 8)
        combined = np.sort(np.concatenate(zones))
        np.testing.assert_array_equal(combined, np.arange(cluster.n))

    def test_orb_requires_power_of_two(self, cluster):
        with pytest.raises(ConfigurationError):
            orb_partition(cluster.positions, np.ones(cluster.n), 6)

    def test_orb_balance(self, cluster):
        costs = np.ones(cluster.n)
        zones = orb_partition(cluster.positions, costs, 4)
        assert partition_balance(zones, costs) < 1.2


class TestIntegration:
    def test_leapfrog_energy_drift_bounded(self):
        """Leapfrog on a soft two-body orbit conserves energy to O(dt^2)."""
        pos = np.array([[0.5, 0.0], [-0.5, 0.0]])
        vel = np.array([[0.0, 0.35], [0.0, -0.35]])
        masses = np.array([0.5, 0.5])
        softening = 0.05

        def forces(p):
            return direct_forces(p, masses, softening=softening).accelerations

        def energy(p, v):
            kinetic = 0.5 * (masses * (v**2).sum(axis=1)).sum()
            return kinetic + direct_forces(p, masses, softening=softening).potential

        initial = energy(pos, vel)
        acc = forces(pos)
        for _ in range(200):
            pos, vel, acc = leapfrog_step(pos, vel, acc, 0.01, forces)
        assert abs(energy(pos, vel) - initial) < 5e-4 * abs(initial)

    def test_leapfrog_reversibility(self):
        pos = np.array([[0.5, 0.1], [-0.5, -0.1]])
        vel = np.array([[0.0, 0.3], [0.0, -0.3]])
        masses = np.array([0.5, 0.5])

        def forces(p):
            return direct_forces(p, masses, softening=0.05).accelerations

        acc = forces(pos)
        p1, v1, a1 = leapfrog_step(pos, vel, acc, 0.02, forces)
        # Reverse: negate velocities and step again.
        p2, v2, _ = leapfrog_step(p1, -v1, a1, 0.02, forces)
        np.testing.assert_allclose(p2, pos, atol=1e-12)

    def test_bad_dt_raises(self):
        with pytest.raises(ConfigurationError):
            leapfrog_step(np.zeros((1, 2)), np.zeros((1, 2)), np.zeros((1, 2)), 0.0, lambda p: p)


class TestSimulation:
    def test_runs_and_records_history(self):
        sim = NBodySimulation(uniform_disk(100, seed=2), dt=0.01)
        stats = sim.run(3)
        assert len(stats) == 3 == len(sim.history)
        assert stats[0].total_interactions > 0
        assert stats[-1].step == 3

    def test_momentum_drift_small(self):
        # The Barnes-Hut monopole approximation is not pairwise-symmetric,
        # so momentum is conserved only to the force-approximation level.
        ps = uniform_disk(150, seed=3)
        sim = NBodySimulation(ps, dt=0.005, theta=0.4)
        before = ps.momentum()
        sim.run(5)
        typical = float(np.abs(ps.velocities).sum() / ps.n)
        drift = float(np.abs(ps.momentum() - before).max())
        assert drift < 0.05 * max(typical, 1e-12)

    def test_energy_roughly_conserved(self):
        sim = NBodySimulation(plummer_sphere(150, dim=2, seed=4), dt=0.002, theta=0.3)
        initial = sim.energy()
        sim.run(10)
        assert abs(sim.energy() - initial) < 0.05 * abs(initial)

    def test_bad_dt_raises(self):
        with pytest.raises(ConfigurationError):
            NBodySimulation(uniform_disk(10), dt=-1.0)


class TestQuadrupole:
    @pytest.mark.parametrize("dim", [2, 3])
    def test_quadrupole_beats_monopole_at_equal_theta(self, dim):
        """The paper's '(perhaps with quadrupole and higher moments)'
        refinement: higher-order moments cut the far-field error at the
        same opening angle."""
        ps = plummer_sphere(400, dim=dim, seed=8)
        exact = direct_forces(ps.positions, ps.masses).accelerations

        def median_error(multipole):
            tree = build_tree(ps.positions, ps.masses, multipole=multipole)
            approx = tree_forces(tree, ps.positions, ps.masses, theta=0.8)
            return np.median(
                np.linalg.norm(approx.accelerations - exact, axis=1)
                / np.linalg.norm(exact, axis=1)
            )

        assert median_error("quadrupole") < 0.5 * median_error("monopole")

    def test_quadrupole_same_interaction_count(self):
        """The acceptance test is unchanged: only accuracy improves."""
        ps = plummer_sphere(300, dim=2, seed=9)
        mono = build_tree(ps.positions, ps.masses, multipole="monopole")
        quad = build_tree(ps.positions, ps.masses, multipole="quadrupole")
        a = tree_forces(mono, ps.positions, ps.masses, theta=0.7)
        b = tree_forces(quad, ps.positions, ps.masses, theta=0.7)
        assert a.total_interactions == b.total_interactions

    def test_quadrupole_tensors_traceless(self):
        ps = plummer_sphere(200, dim=3, seed=10)
        tree = build_tree(ps.positions, ps.masses, multipole="quadrupole")
        traces = np.trace(tree.quadrupole, axis1=1, axis2=2)
        np.testing.assert_allclose(traces, 0.0, atol=1e-9)

    def test_single_body_cell_has_zero_quadrupole(self):
        pos = np.array([[0.25, 0.25], [0.75, 0.75]])
        tree = build_tree(pos, np.ones(2), multipole="quadrupole")
        for cell in range(tree.ncells):
            if tree.is_leaf(cell) and tree.leaf_count[cell] == 1:
                np.testing.assert_allclose(tree.quadrupole[cell], 0.0, atol=1e-12)

    def test_monopole_tree_has_no_quadrupole(self):
        ps = plummer_sphere(100, dim=2, seed=11)
        tree = build_tree(ps.positions, ps.masses)
        assert tree.quadrupole is None

    def test_unknown_multipole_raises(self):
        ps = plummer_sphere(10, dim=2, seed=12)
        with pytest.raises(ConfigurationError):
            build_tree(ps.positions, ps.masses, multipole="octupole")

    def test_parallel_run_with_quadrupole_matches_sequential(self):
        """The quadrupole tree ships through the manager-worker leapfrog
        path and matches the sequential quadrupole simulation."""
        from repro.machines import paragon
        from repro.nbody import NBodySimulation, run_parallel_nbody

        ps = plummer_sphere(160, dim=2, seed=13)
        seq = NBodySimulation(ps.copy(), dt=0.005, multipole="quadrupole")
        seq.run(2)
        out = run_parallel_nbody(
            paragon(4, protocol="nx"), ps.copy(), steps=2, dt=0.005,
            integrator="leapfrog", multipole="quadrupole",
        )
        np.testing.assert_allclose(
            out.particles.positions, seq.particles.positions, atol=1e-9
        )
