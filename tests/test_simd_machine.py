"""Tests for the MasPar SIMD machine model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.machines.simd import (
    CutAndStack,
    Hierarchical,
    MasParMachine,
    MasParSpec,
    maspar_mp1,
    maspar_mp2,
)


class TestSpec:
    def test_num_pes(self):
        assert maspar_mp2().num_pes == 16384
        assert maspar_mp2(pe_side=64).num_pes == 4096

    def test_seconds_conversion(self):
        spec = maspar_mp2()
        assert spec.seconds(spec.clock_hz) == pytest.approx(1.0)

    def test_mp1_arithmetic_slower(self):
        assert maspar_mp1().c_mac > maspar_mp2().c_mac

    def test_mp1_network_costs_match_mp2(self):
        assert maspar_mp1().c_xnet_hop == maspar_mp2().c_xnet_hop

    def test_bad_pe_side_raises(self):
        with pytest.raises(ConfigurationError):
            MasParSpec(name="bad", pe_side=0)

    def test_bad_clock_raises(self):
        with pytest.raises(ConfigurationError):
            MasParSpec(name="bad", clock_hz=0)


class TestVirtualizationCosts:
    def test_layers_floor_at_one(self):
        virt = Hierarchical(maspar_mp2())
        assert virt.layers(10) == 1

    def test_layers_scale_with_elements(self):
        virt = Hierarchical(maspar_mp2())
        assert virt.layers(16384 * 16) == 16

    def test_hierarchical_short_shift_cheaper_than_cut_and_stack(self):
        """The locality result: within-subimage shifts stay in PE memory."""
        spec = maspar_mp2()
        hier = Hierarchical(spec)
        stack = CutAndStack(spec)
        elements = spec.num_pes * 16  # 4x4 subimages
        assert hier.shift_cycles(elements, 1) < stack.shift_cycles(elements, 1)

    def test_hierarchical_cost_grows_with_distance(self):
        virt = Hierarchical(maspar_mp2())
        elements = maspar_mp2().num_pes * 16
        costs = [virt.shift_cycles(elements, d) for d in (1, 2, 4, 8)]
        assert costs == sorted(costs)
        assert costs[-1] > costs[0]

    def test_zero_distance_is_free(self):
        spec = maspar_mp2()
        assert Hierarchical(spec).shift_cycles(100, 0) == 0.0
        assert CutAndStack(spec).shift_cycles(100, 0) == 0.0

    def test_router_serializes_per_cluster(self):
        spec = maspar_mp2()
        virt = Hierarchical(spec)
        small = virt.router_cycles(spec.num_pes)
        large = virt.router_cycles(spec.num_pes * 4)
        assert large > small
        assert large - spec.c_router_setup == pytest.approx(
            4 * (small - spec.c_router_setup)
        )


class TestMachineOps:
    def test_broadcast_returns_scalar_and_charges(self):
        machine = MasParMachine(maspar_mp2())
        value = machine.broadcast(3.25)
        assert value == 3.25
        assert machine.stats.broadcast_cycles > 0

    def test_mac_is_in_place(self):
        machine = MasParMachine(maspar_mp2())
        acc = np.zeros((4, 4))
        data = np.ones((4, 4))
        machine.mac(acc, data, 2.0)
        np.testing.assert_allclose(acc, 2.0)
        assert machine.stats.mac_cycles > 0

    def test_mac_shape_mismatch_raises(self):
        machine = MasParMachine(maspar_mp2())
        with pytest.raises(ConfigurationError):
            machine.mac(np.zeros((2, 2)), np.zeros((3, 3)), 1.0)

    def test_shift_is_toroidal_left(self):
        machine = MasParMachine(maspar_mp2())
        data = np.arange(4.0)[None, :]
        shifted = machine.shift(data, 1, axis=1)
        np.testing.assert_allclose(shifted[0], [1, 2, 3, 0])

    def test_router_decimate_keeps_even(self):
        machine = MasParMachine(maspar_mp2())
        data = np.arange(8.0)[None, :]
        out = machine.router_decimate(data, axis=1)
        np.testing.assert_allclose(out[0], [0, 2, 4, 6])
        assert machine.stats.router_cycles > 0

    def test_reset_clears_counters(self):
        machine = MasParMachine(maspar_mp2())
        machine.broadcast(1.0)
        machine.reset()
        assert machine.stats.total_cycles == 0

    def test_elapsed_seconds(self):
        machine = MasParMachine(maspar_mp2())
        machine.broadcast(1.0)
        assert machine.elapsed_s == pytest.approx(
            maspar_mp2().c_bcast / maspar_mp2().clock_hz
        )

    def test_unknown_virtualization_raises(self):
        with pytest.raises(ConfigurationError):
            MasParMachine(maspar_mp2(), virtualization="diagonal")

    def test_stats_fractions(self):
        machine = MasParMachine(maspar_mp2())
        machine.broadcast(1.0)
        fractions = machine.stats.fractions()
        assert fractions["broadcast"] == pytest.approx(1.0)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_stats_fractions_empty(self):
        assert sum(SimdStatsEmpty().fractions().values()) == 0.0


def SimdStatsEmpty():
    from repro.machines.simd import SimdStats

    return SimdStats()
