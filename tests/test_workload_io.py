"""Tests for trace/workload persistence."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.workload import (
    ParallelWorkload,
    Trace,
    load_trace,
    load_workload,
    oracle_schedule,
    save_trace,
    save_workload,
    similarity,
)
from repro.workload.kernels import cgm


class TestTraceRoundtrip:
    def test_roundtrip_preserves_structure(self, tmp_path):
        original = cgm(rows=8)
        path = tmp_path / "trace.npz"
        save_trace(path, original)
        loaded = load_trace(path)
        assert loaded.name == original.name
        assert loaded.types == original.types
        assert loaded.deps == original.deps

    def test_roundtrip_preserves_schedule(self, tmp_path):
        original = cgm(rows=6)
        path = tmp_path / "trace.npz"
        save_trace(path, original)
        loaded = load_trace(path)
        a = oracle_schedule(original)
        b = oracle_schedule(loaded)
        assert a.critical_path == b.critical_path
        np.testing.assert_array_equal(a.workload.levels, b.workload.levels)

    def test_empty_deps_ok(self, tmp_path):
        trace = Trace("flat")
        for _ in range(5):
            trace.append("intops")
        path = tmp_path / "flat.npz"
        save_trace(path, trace)
        assert load_trace(path).deps == [()] * 5

    def test_corrupt_format_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez_compressed(
            path,
            format=np.int64(99),
            name=np.array("x"),
            types=np.zeros(1, dtype=np.int16),
            dep_offsets=np.zeros(2, dtype=np.int64),
            dep_targets=np.zeros(0, dtype=np.int64),
        )
        with pytest.raises(TraceError):
            load_trace(path)


class TestWorkloadRoundtrip:
    def test_roundtrip(self, tmp_path):
        workload = oracle_schedule(cgm(rows=6)).workload
        path = tmp_path / "wl.npz"
        save_workload(path, workload)
        loaded = load_workload(path)
        assert loaded.name == workload.name
        np.testing.assert_array_equal(loaded.levels, workload.levels)
        assert similarity(loaded, workload) == pytest.approx(0.0)

    def test_corrupt_format_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez_compressed(
            path, format=np.int64(42), name=np.array("x"), levels=np.ones((1, 5))
        )
        with pytest.raises(TraceError):
            load_workload(path)
