"""Tests for the synthetic data generators."""

import numpy as np
import pytest

from repro.data import (
    ParticleSet,
    checkerboard,
    impulse_image,
    landsat_like_scene,
    plummer_sphere,
    two_galaxies,
    uniform_cube,
    uniform_disk,
)
from repro.errors import ConfigurationError


class TestLandsatScene:
    def test_shape_and_range(self):
        scene = landsat_like_scene((128, 128))
        assert scene.shape == (128, 128)
        assert scene.min() >= 0.0
        assert scene.max() <= 255.0

    def test_deterministic(self):
        a = landsat_like_scene((64, 64), seed=3)
        b = landsat_like_scene((64, 64), seed=3)
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_output(self):
        a = landsat_like_scene((64, 64), seed=1)
        b = landsat_like_scene((64, 64), seed=2)
        assert np.abs(a - b).max() > 1.0

    def test_spatially_correlated(self):
        """Neighboring pixels must correlate far more than white noise."""
        scene = landsat_like_scene((256, 256))
        flat = scene - scene.mean()
        autocorr = (flat[:, :-1] * flat[:, 1:]).mean() / flat.var()
        assert autocorr > 0.8

    def test_tiny_shape_raises(self):
        with pytest.raises(ConfigurationError):
            landsat_like_scene((1, 10))

    def test_checkerboard_period(self):
        board = checkerboard((8, 8), period=2)
        assert board[0, 0] != board[0, 2]
        assert board[0, 0] == board[0, 4]

    def test_checkerboard_bad_period(self):
        with pytest.raises(ConfigurationError):
            checkerboard(period=0)

    def test_impulse_default_center(self):
        img = impulse_image((8, 8))
        assert img[4, 4] == 1.0
        assert img.sum() == 1.0

    def test_impulse_explicit_position(self):
        img = impulse_image((8, 8), at=(1, 2))
        assert img[1, 2] == 1.0


class TestParticleSet:
    def test_basic_properties(self):
        ps = uniform_cube(100, seed=0)
        assert ps.n == 100
        assert ps.dim == 3
        assert ps.total_mass == pytest.approx(1.0)

    def test_validation_velocity_shape(self):
        with pytest.raises(ConfigurationError):
            ParticleSet(np.zeros((4, 2)), np.zeros((3, 2)), np.ones(4))

    def test_validation_mass_shape(self):
        with pytest.raises(ConfigurationError):
            ParticleSet(np.zeros((4, 2)), np.zeros((4, 2)), np.ones(3))

    def test_subset(self):
        ps = uniform_cube(10, seed=0)
        sub = ps.subset(np.array([0, 5]))
        assert sub.n == 2
        np.testing.assert_array_equal(sub.positions[1], ps.positions[5])

    def test_copy_is_independent(self):
        ps = uniform_cube(10, seed=0)
        cp = ps.copy()
        cp.positions[0, 0] = 99.0
        assert ps.positions[0, 0] != 99.0

    def test_momentum_of_cold_start_is_zero(self):
        ps = uniform_cube(50, seed=0)
        np.testing.assert_allclose(ps.momentum(), 0.0)

    def test_kinetic_energy_nonnegative(self):
        ps = plummer_sphere(200, seed=0)
        assert ps.kinetic_energy() >= 0.0


class TestGenerators:
    def test_uniform_cube_in_bounds(self):
        ps = uniform_cube(500, extent=2.0, seed=1)
        assert ps.positions.min() >= 0.0
        assert ps.positions.max() < 2.0

    def test_uniform_cube_2d(self):
        assert uniform_cube(10, dim=2).dim == 2

    def test_uniform_cube_bad_dim(self):
        with pytest.raises(ConfigurationError):
            uniform_cube(10, dim=4)

    def test_uniform_disk_radius(self):
        ps = uniform_disk(500, radius=3.0, seed=1)
        radii = np.linalg.norm(ps.positions, axis=1)
        assert radii.max() <= 3.0

    def test_plummer_centrally_concentrated(self):
        """Plummer has strong density contrast: the median radius is well
        inside the maximum (the tree-code-friendly regime of Appendix B)."""
        ps = plummer_sphere(2000, seed=2)
        radii = np.linalg.norm(ps.positions, axis=1)
        assert np.median(radii) < 0.25 * radii.max()

    def test_plummer_virial_velocities_bounded(self):
        ps = plummer_sphere(1000, seed=3)
        speeds = np.linalg.norm(ps.velocities, axis=1)
        v_esc_center = np.sqrt(2.0)
        assert speeds.max() <= v_esc_center + 1e-9

    def test_plummer_cold(self):
        ps = plummer_sphere(100, virial=False, seed=4)
        assert ps.kinetic_energy() == 0.0

    def test_two_galaxies_total(self):
        ps = two_galaxies(1000, seed=5)
        assert ps.n == 1000
        assert ps.total_mass == pytest.approx(1.0)

    def test_two_galaxies_separated(self):
        ps = two_galaxies(1000, separation=6.0, seed=6)
        x = ps.positions[:, 0]
        # Two clusters around +-3.
        assert (x < -1).sum() > 300
        assert (x > 1).sum() > 300

    def test_two_galaxies_mass_ratio(self):
        ps = two_galaxies(300, mass_ratio=2.0, seed=7)
        assert ps.n == 300

    def test_bad_mass_ratio_raises(self):
        with pytest.raises(ConfigurationError):
            two_galaxies(10, mass_ratio=-1)

    def test_zero_particles_raise(self):
        with pytest.raises(ConfigurationError):
            uniform_cube(0)
