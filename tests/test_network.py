"""Tests for topologies, routing, and the contention model."""

import random

import pytest

from repro.errors import CommunicationError, ConfigurationError
from repro.machines.network import ContentionNetwork, FullyConnected, Mesh2D, Torus3D


class TestMesh2D:
    def test_coords_row_major(self):
        mesh = Mesh2D(4, 2)
        assert mesh.coord(0) == (0, 0)
        assert mesh.coord(3) == (3, 0)
        assert mesh.coord(4) == (0, 1)

    def test_node_at_inverse_of_coord(self):
        mesh = Mesh2D(4, 16)
        for node in (0, 5, 17, 63):
            assert mesh.node_at(*mesh.coord(node)) == node

    def test_route_is_x_then_y(self):
        mesh = Mesh2D(4, 4)
        # (0,0) -> (2,2): two X channels along row 0, then two Y channels.
        route = mesh.route(0, mesh.node_at(2, 2))
        assert route[0] == ((0, 0), (1, 0))
        assert route[1] == ((1, 0), (2, 0))
        assert route[2] == ((2, 0), (2, 1))
        assert route[3] == ((2, 1), (2, 2))

    def test_hop_count_is_manhattan(self):
        mesh = Mesh2D(4, 16)
        assert mesh.hops(0, mesh.node_at(3, 5)) == 3 + 5

    def test_self_route_empty(self):
        assert Mesh2D(4, 4).route(5, 5) == []

    def test_channels_undirected(self):
        mesh = Mesh2D(4, 1)
        forward = mesh.route(0, 3)
        backward = mesh.route(3, 0)
        assert set(forward) == set(backward)

    def test_torus_wraps_short_way(self):
        mesh = Mesh2D(8, 1, torus=True)
        assert mesh.hops(0, 7) == 1

    def test_bad_dims_raise(self):
        with pytest.raises(ConfigurationError):
            Mesh2D(0, 4)

    def test_bad_node_raises(self):
        with pytest.raises(CommunicationError):
            Mesh2D(2, 2).coord(4)

    def test_row_crossing_shares_channels_with_in_row_traffic(self):
        """The Section 5.1 conflict: a message from the row end to the next
        row's start traverses the same physical channels as in-row
        neighbor traffic."""
        mesh = Mesh2D(4, 16)
        crossing = set(mesh.route(mesh.node_at(0, 1), mesh.node_at(3, 0)))
        in_row = set(mesh.route(mesh.node_at(1, 1), mesh.node_at(0, 1)))
        assert crossing & in_row


class TestTorus3D:
    def test_coord_roundtrip(self):
        torus = Torus3D(8, 4, 8)
        assert torus.coord(0) == (0, 0, 0)
        assert torus.coord(8) == (0, 1, 0)
        assert torus.coord(32) == (0, 0, 1)

    def test_wraparound_distance(self):
        torus = Torus3D(8, 4, 8)
        # x: 0 -> 7 is one hop through the wrap link.
        assert torus.hops(0, 7) == 1

    def test_dimension_order(self):
        torus = Torus3D(4, 4, 4)
        route = torus.route(0, 21)  # (1,1,1)
        assert len(route) == 3

    def test_bad_dims_raise(self):
        with pytest.raises(ConfigurationError):
            Torus3D(0, 1, 1)


class TestFullyConnected:
    def test_single_hop(self):
        assert FullyConnected(4).hops(0, 3) == 1

    def test_self_route(self):
        assert FullyConnected(4).route(2, 2) == []

    def test_bad_count_raises(self):
        with pytest.raises(ConfigurationError):
            FullyConnected(0)


class TestContentionNetwork:
    def make(self, **kw):
        defaults = dict(
            topology=Mesh2D(4, 4),
            latency_s=1e-4,
            per_hop_s=1e-6,
            bytes_per_s=1e7,
        )
        defaults.update(kw)
        return ContentionNetwork(**defaults)

    def test_transfer_time_formula(self):
        net = self.make()
        t = net.transfer(0, 1, 10000, 0.0)
        assert t == pytest.approx(1e-4 + 1e-6 + 1e-3)

    def test_local_transfer_skips_network(self):
        net = self.make()
        t = net.transfer(2, 2, 4_000_000, 0.0)
        assert t == pytest.approx(0.01)  # local 400 MB/s only

    def test_contention_serializes_shared_channel(self):
        net = self.make()
        t1 = net.transfer(0, 1, 10000, 0.0)
        t2 = net.transfer(0, 1, 10000, 0.0)  # same channel, same instant
        assert t2 >= t1 + 1e-3  # waits out the first transfer

    def test_disjoint_channels_run_concurrently(self):
        net = self.make()
        t1 = net.transfer(0, 1, 10000, 0.0)
        t2 = net.transfer(2, 3, 10000, 0.0)
        assert t2 == pytest.approx(t1)

    def test_opposing_direction_also_contends(self):
        """Channels are undirected half-duplex: traffic both ways shares."""
        net = self.make()
        t1 = net.transfer(0, 1, 10000, 0.0)
        t2 = net.transfer(1, 0, 10000, 0.0)
        assert t2 >= t1 + 1e-3

    def test_counters(self):
        net = self.make()
        net.transfer(0, 1, 500, 0.0)
        net.transfer(1, 2, 700, 0.0)
        assert net.messages_sent == 2
        assert net.bytes_sent == 1200

    def test_reset(self):
        net = self.make()
        net.transfer(0, 1, 500, 0.0)
        net.reset()
        assert net.messages_sent == 0
        t = net.transfer(0, 1, 500, 0.0)
        assert t < 2e-4 + 1e-3

    def test_negative_size_raises(self):
        with pytest.raises(CommunicationError):
            self.make().transfer(0, 1, -1, 0.0)

    def test_contention_accumulator(self):
        net = self.make()
        net.transfer(0, 1, 10000, 0.0)
        net.transfer(0, 1, 10000, 0.0)
        assert net.total_contention_s > 0.0


class TestRouteCache:
    def test_route_cached_matches_route(self):
        mesh = Mesh2D(4, 4)
        for src, dst in [(0, 15), (3, 12), (5, 5), (0, 1), (15, 0)]:
            assert mesh.route_cached(src, dst) == tuple(mesh.route(src, dst))

    def test_hit_miss_counters(self):
        mesh = Mesh2D(4, 4)
        mesh.route_cached(0, 5)
        assert (mesh.route_cache_hits, mesh.route_cache_misses) == (0, 1)
        mesh.route_cached(0, 5)
        assert (mesh.route_cache_hits, mesh.route_cache_misses) == (1, 1)
        # Direction matters: the reverse pair is its own cache entry.
        mesh.route_cached(5, 0)
        assert (mesh.route_cache_hits, mesh.route_cache_misses) == (1, 2)

    def test_stats_report(self):
        torus = Torus3D(2, 2, 2)
        torus.route_cached(0, 7)
        torus.route_cached(0, 7)
        assert torus.route_cache_stats() == (1, 1)

    def test_reset_route_cache_stats(self):
        mesh = Mesh2D(4, 4)
        mesh.route_cached(1, 2)
        mesh.route_cached(1, 2)
        mesh.reset_route_cache_stats()
        assert mesh.route_cache_stats() == (0, 0)
        # The cached routes themselves survive the stats reset.
        assert mesh.route_cached(1, 2) == tuple(mesh.route(1, 2))

    def test_fully_connected_cached(self):
        fc = FullyConnected(4)
        assert fc.route_cached(1, 3) == tuple(fc.route(1, 3))
        assert fc.route_cached(2, 2) == ()


class TestPathCachedTransfer:
    """The vectorized path-cache fast path must be bitwise-equivalent to
    the retained per-channel dict walk (``use_path_cache=False``)."""

    def make_pair(self, topology_factory):
        kw = dict(latency_s=1e-4, per_hop_s=1e-6, bytes_per_s=1e7)
        cached = ContentionNetwork(topology=topology_factory(), **kw)
        reference = ContentionNetwork(
            topology=topology_factory(), use_path_cache=False, **kw
        )
        return cached, reference

    def test_bitwise_equivalent_to_uncached_reference(self):
        cached, reference = self.make_pair(lambda: Mesh2D(4, 4))
        rng = random.Random(1996)
        clock = 0.0
        for _ in range(500):
            src = rng.randrange(16)
            dst = rng.randrange(16)
            nbytes = rng.randrange(0, 50_000)
            clock += rng.random() * 1e-4
            got = cached.transfer(src, dst, nbytes, clock)
            want = reference.transfer(src, dst, nbytes, clock)
            assert got == want
        assert cached.total_contention_s == reference.total_contention_s
        assert cached.bytes_sent == reference.bytes_sent

    def test_long_path_vectorized_equivalent(self):
        # Mesh2D(20, 1): 19 hops end to end, past the vectorization
        # threshold, so repeat transfers run the ndarray fast path.
        cached, reference = self.make_pair(lambda: Mesh2D(20, 1))
        for _ in range(4):
            got = cached.transfer(0, 19, 10_000, 0.0)
            want = reference.transfer(0, 19, 10_000, 0.0)
            assert got == want
        assert cached.total_contention_s == reference.total_contention_s

    def test_path_cache_hits_start_on_third_use(self):
        # First sighting routes transiently (no retained state), the
        # second caches the path, the third is the first cache hit.
        cached, _ = self.make_pair(lambda: Mesh2D(4, 4))
        cached.transfer(0, 5, 100, 0.0)
        assert (cached.path_cache_hits, cached.path_cache_misses) == (0, 1)
        cached.transfer(0, 5, 100, 1.0)
        assert (cached.path_cache_hits, cached.path_cache_misses) == (0, 2)
        cached.transfer(0, 5, 100, 2.0)
        assert (cached.path_cache_hits, cached.path_cache_misses) == (1, 2)

    def test_reset_clears_contention_but_keeps_warm_paths(self):
        cached, _ = self.make_pair(lambda: Mesh2D(4, 4))
        first = cached.transfer(0, 5, 10_000, 0.0)
        for clock in (1.0, 2.0):
            cached.transfer(0, 5, 10_000, clock)
        cached.reset()
        assert cached.path_cache_hits == 0
        assert cached.total_contention_s == 0.0
        # Channel free times are cleared, so the first post-reset
        # transfer costs exactly what a cold one did; the warmed path is
        # reused immediately.
        assert cached.transfer(0, 5, 10_000, 0.0) == first
        assert cached.path_cache_hits == 1

    def test_self_send_bypasses_path_cache(self):
        cached, _ = self.make_pair(lambda: Mesh2D(4, 4))
        cached.transfer(3, 3, 1000, 0.0)
        assert (cached.path_cache_hits, cached.path_cache_misses) == (0, 0)
