"""Tests for the kernel plan/executor split (``repro.wavelet.plan``).

The plan layer owns spec parsing, the scheme/traversal/boundary/buffer
axes, uniform minimum-size validation, guard depths, and the per-pass
cost model; ``repro.wavelet.kernels`` executors are thin configurations
of plans served fresh from factories.
"""

import pytest

from repro.errors import ConfigurationError
from repro.wavelet import (
    ConvKernel,
    FusedKernel,
    KERNEL_NAMES,
    LiftingKernel,
    SingleLoopKernel,
    daubechies_filter,
    get_kernel,
    haar_filter,
    lifting_scheme,
)
from repro.wavelet.plan import (
    BOUNDARIES,
    BufferPolicy,
    KernelPlan,
    SCHEMES,
    TRAVERSALS,
    parse_kernel_spec,
)

BANKS = [haar_filter(), daubechies_filter(4), daubechies_filter(8)]


class TestParse:
    def test_registered_names(self):
        assert KERNEL_NAMES == ("conv", "lifting", "fused", "single-loop")

    def test_conv_plan_shape(self):
        plan = parse_kernel_spec("conv")
        assert plan.scheme == "conv"
        assert plan.traversal == "separable"
        assert plan.boundary == "periodized"
        assert plan.buffer.kind == "full-intermediate"

    def test_lifting_plan_shape(self):
        plan = parse_kernel_spec("lifting")
        assert plan.scheme == "lifting"
        assert plan.traversal == "separable"
        assert plan.buffer.kind == "full-intermediate"

    def test_fused_plan_shape(self):
        plan = parse_kernel_spec("fused")
        assert plan.scheme == "lifting"
        assert plan.traversal == "strip-fused"
        assert plan.buffer == BufferPolicy("strip", block_rows=32)

    def test_fused_parameterized(self):
        plan = parse_kernel_spec("fused:16")
        assert plan.base == "fused"
        assert plan.name == "fused:16"
        assert plan.buffer.block_rows == 16

    def test_single_loop_plan_shape(self):
        plan = parse_kernel_spec("single-loop")
        assert plan.scheme == "lifting"
        assert plan.traversal == "single-loop"
        assert plan.buffer.kind == "lane"

    def test_axes_are_closed_vocabularies(self):
        assert set(SCHEMES) == {"conv", "lifting"}
        assert set(TRAVERSALS) == {"separable", "strip-fused", "single-loop"}
        assert set(BOUNDARIES) == {"periodized", "valid-margins"}

    @pytest.mark.parametrize(
        "spec",
        ["winograd", "", "conv:2", "lifting:4", "single-loop:8",
         "fused:", "fused:x", "fused:0", "fused:-1", "fused:1.5"],
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            parse_kernel_spec(spec)

    def test_non_string_spec_rejected(self):
        with pytest.raises(ConfigurationError, match="must be a string"):
            parse_kernel_spec(16)

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ConfigurationError, match="single-loop"):
            parse_kernel_spec("winograd")

    def test_conv_scheme_rejects_other_traversals(self):
        with pytest.raises(ConfigurationError, match="separable"):
            KernelPlan(
                name="x", scheme="conv", traversal="single-loop",
                boundary="periodized", buffer=BufferPolicy("lane"),
            )

    def test_strip_policy_requires_block_rows(self):
        with pytest.raises(ConfigurationError):
            BufferPolicy("strip", block_rows=0)


class TestRegistry:
    def test_factories_return_fresh_instances(self):
        # A singleton would leak per-instance state between callers.
        a = get_kernel("fused")
        b = get_kernel("fused")
        assert a is not b
        assert type(a) is FusedKernel

    def test_instances_pass_through(self):
        kernel = FusedKernel(block_rows=8)
        assert get_kernel(kernel) is kernel

    def test_spec_reaches_executor_configuration(self):
        assert get_kernel("fused:16").block_rows == 16
        assert get_kernel("fused").block_rows == 32

    def test_every_name_resolves_to_its_class(self):
        classes = {
            "conv": ConvKernel,
            "lifting": LiftingKernel,
            "fused": FusedKernel,
            "single-loop": SingleLoopKernel,
        }
        for name, cls in classes.items():
            kernel = get_kernel(name)
            assert type(kernel) is cls
            assert kernel.plan.base == name

    def test_malformed_spec_surfaces_through_get_kernel(self):
        with pytest.raises(ConfigurationError):
            get_kernel("fused:zero")


class TestMinSize:
    @pytest.mark.parametrize("name", ["conv", "lifting", "fused", "single-loop"])
    def test_min_size_guard_is_uniform_and_actionable(self, name):
        import numpy as np

        bank = daubechies_filter(8)
        plan = parse_kernel_spec(name)
        need = plan.min_side(bank)
        small = np.zeros((need - 2 + (need % 2), 32))
        with pytest.raises(ConfigurationError, match="minimum image is"):
            get_kernel(name).forward_step_2d(small, bank)

    def test_odd_dimensions_rejected(self):
        import numpy as np

        bank = haar_filter()
        with pytest.raises(ConfigurationError, match="even"):
            get_kernel("single-loop").forward_step_2d(np.zeros((7, 8)), bank)

    def test_conv_min_side_is_filter_length(self):
        for bank in BANKS:
            assert parse_kernel_spec("conv").min_side(bank) == bank.length

    def test_lifting_family_shares_effective_length(self):
        for bank in BANKS:
            need = lifting_scheme(bank).filter_length
            for name in ("lifting", "fused", "single-loop"):
                assert parse_kernel_spec(name).min_side(bank) == need


class TestGuardDepths:
    def test_conv_guards(self):
        for bank in BANKS:
            assert parse_kernel_spec("conv").analysis_guard_depths(bank) == (
                0,
                bank.length,
            )

    def test_lifting_family_guards_agree_and_preserve_parity(self):
        for bank in BANKS:
            depths = {
                name: parse_kernel_spec(name).analysis_guard_depths(bank)
                for name in ("lifting", "fused", "single-loop")
            }
            assert len(set(depths.values())) == 1
            front, back = depths["single-loop"]
            assert front % 2 == 0 and back % 2 == 0


class TestCostModel:
    @pytest.mark.parametrize("bank", BANKS, ids=lambda b: b.name)
    def test_separable_traversals_charge_two_passes(self, bank):
        for name in ("conv", "lifting", "fused"):
            passes = parse_kernel_spec(name).level_passes(64, 96, bank)
            assert len(passes) == 2

    @pytest.mark.parametrize("bank", BANKS, ids=lambda b: b.name)
    def test_single_loop_charges_one_sweep(self, bank):
        from repro.wavelet import single_loop_sweep_cost

        plan = parse_kernel_spec("single-loop")
        passes = plan.level_passes(64, 96, bank)
        assert len(passes) == 1
        taps = lifting_scheme(bank).step_taps
        assert passes[0] == single_loop_sweep_cost(64, 96, taps)

    @pytest.mark.parametrize("bank", BANKS, ids=lambda b: b.name)
    def test_level_cost_sums_passes(self, bank):
        for name in KERNEL_NAMES:
            plan = parse_kernel_spec(name)
            total = plan.level_cost(64, 96, bank)
            summed = sum(
                (op for op in plan.level_passes(64, 96, bank)), start=type(total)()
            )
            assert total == summed

    @pytest.mark.parametrize("bank", BANKS, ids=lambda b: b.name)
    def test_single_loop_strictly_cheaper_than_separable_lifting(self, bank):
        sweep = parse_kernel_spec("single-loop").level_cost(64, 64, bank)
        separable = parse_kernel_spec("lifting").level_cost(64, 64, bank)
        assert sweep.flops < separable.flops
        assert sweep.memops < separable.memops

    def test_kernel_cost_methods_delegate_to_plan(self):
        bank = daubechies_filter(4)
        for name in KERNEL_NAMES:
            kernel = get_kernel(name)
            assert kernel.level_cost(32, 32, bank) == kernel.plan.level_cost(
                32, 32, bank
            )

    def test_level_passes_rejects_odd_input(self):
        with pytest.raises(ConfigurationError):
            parse_kernel_spec("lifting").level_passes(33, 32, haar_filter())
