"""Tests for the engine rank-scaling benchmark harness and the scaled
machine specs it sweeps (``scaled_mesh`` / ``scaled_torus``)."""

import copy

import pytest

from repro.errors import ConfigurationError
from repro.machines.specs import scaled_mesh, scaled_torus
from repro.perf.engine_bench import (
    DEFAULT_RANKS,
    DEFAULT_WORKLOADS,
    ENGINE_BENCH_SCHEMA,
    format_engine_bench,
    run_engine_case,
    run_engine_sweep,
    validate_engine_bench_document,
)


class TestScaledMesh:
    def test_near_square_power_of_two_width(self):
        machine = scaled_mesh(1024)
        topo = machine.network.topology
        assert (topo.width, topo.height) == (32, 32)
        assert machine.name == "bigmesh-1024p-snake"

    def test_non_square_counts_round_up(self):
        machine = scaled_mesh(96, "naive")
        topo = machine.network.topology
        assert (topo.width, topo.height) == (16, 6)
        assert machine.placement == list(range(96))

    def test_snake_reverses_odd_rows(self):
        assert scaled_mesh(8).placement == [0, 1, 2, 3, 7, 6, 5, 4]

    def test_bad_nranks_raises(self):
        with pytest.raises(ConfigurationError):
            scaled_mesh(0)

    def test_unknown_placement_raises(self):
        with pytest.raises(ConfigurationError):
            scaled_mesh(16, "hilbert")


class TestScaledTorus:
    def test_smallest_power_of_two_cube(self):
        machine = scaled_torus(1000)
        topo = machine.network.topology
        assert (topo.nx, topo.ny, topo.nz) == (16, 16, 16)
        assert machine.name == "bigtorus-1000p"

    def test_small_counts_fit_small_cubes(self):
        topo = scaled_torus(8).network.topology
        assert (topo.nx, topo.ny, topo.nz) == (2, 2, 2)

    def test_bad_nranks_raises(self):
        with pytest.raises(ConfigurationError):
            scaled_torus(0)


class TestEngineBenchCase:
    def test_collect_row_shape(self):
        row = run_engine_case(4, "snake", workload="collect", rounds=1)
        assert row["nranks"] == 4
        assert row["workload"] == "collect"
        assert row["matcher"] == "indexed"
        assert row["events"] > 0 and row["host_s"] > 0 and row["virtual_s"] > 0
        assert row["speedup_vs_linear"] == 0.0  # a lone case has no baseline

    def test_wavelet_matchers_agree_bitwise(self):
        rows = {
            matcher: run_engine_case(
                4, "naive", workload="wavelet", matcher=matcher, rounds=1
            )
            for matcher in ("indexed", "linear")
        }
        assert rows["indexed"]["virtual_s"] == rows["linear"]["virtual_s"]
        assert rows["indexed"]["checksum"] == rows["linear"]["checksum"]

    def test_unknown_workload_raises(self):
        with pytest.raises(ConfigurationError, match="workload"):
            run_engine_case(4, workload="alltoall")

    def test_bad_rounds_raises(self):
        with pytest.raises(ConfigurationError):
            run_engine_case(4, rounds=0)


@pytest.fixture(scope="module")
def small_sweep():
    return run_engine_sweep([2, 4], ("snake",), ("collect",), rounds=1)


class TestEngineBenchSweep:
    def test_defaults(self):
        assert DEFAULT_RANKS == (64, 256, 1024, 4096)
        assert DEFAULT_WORKLOADS == ("wavelet", "collect")

    def test_small_sweep_round_trip(self, small_sweep):
        validate_engine_bench_document(small_sweep)
        assert small_sweep["schema"] == ENGINE_BENCH_SCHEMA
        rows = small_sweep["results"]
        assert len(rows) == 4  # 2 rank counts x (indexed + linear baseline)
        indexed = [r for r in rows if r["matcher"] == "indexed"]
        assert all(r["speedup_vs_linear"] > 0 for r in indexed)

    def test_format_table(self, small_sweep):
        text = format_engine_bench(small_sweep)
        assert "ranks" in text and "collect" in text and "indexed" in text

    def test_baseline_cap_skips_linear(self):
        doc = run_engine_sweep(
            [2, 4], ("snake",), ("collect",), rounds=1, baseline_max_ranks=2
        )
        matchers = {(r["nranks"], r["matcher"]) for r in doc["results"]}
        assert (2, "linear") in matchers
        assert (4, "linear") not in matchers
        capped = [r for r in doc["results"] if r["nranks"] == 4][0]
        assert capped["speedup_vs_linear"] == 0.0
        validate_engine_bench_document(doc)


class TestValidateEngineBench:
    def test_rejects_non_dict(self):
        with pytest.raises(ConfigurationError):
            validate_engine_bench_document([])

    def test_rejects_wrong_schema(self, small_sweep):
        doc = copy.deepcopy(small_sweep)
        doc["schema"] = "repro.bench.wavelet/v1"
        with pytest.raises(ConfigurationError, match="schema"):
            validate_engine_bench_document(doc)

    def test_rejects_missing_field(self, small_sweep):
        doc = copy.deepcopy(small_sweep)
        del doc["results"][0]["events_per_s"]
        with pytest.raises(ConfigurationError, match="fields"):
            validate_engine_bench_document(doc)

    def test_rejects_unknown_workload(self, small_sweep):
        doc = copy.deepcopy(small_sweep)
        doc["results"][0]["workload"] = "gemm"
        with pytest.raises(ConfigurationError, match="workload"):
            validate_engine_bench_document(doc)

    def test_rejects_non_positive_timing(self, small_sweep):
        doc = copy.deepcopy(small_sweep)
        doc["results"][0]["host_s"] = 0.0
        with pytest.raises(ConfigurationError, match="timing"):
            validate_engine_bench_document(doc)

    def test_rejects_matcher_divergence(self, small_sweep):
        doc = copy.deepcopy(small_sweep)
        linear = [r for r in doc["results"] if r["matcher"] == "linear"][0]
        linear["virtual_s"] += 1.0
        with pytest.raises(ConfigurationError, match="bitwise"):
            validate_engine_bench_document(doc)

    def test_rejects_empty_results(self, small_sweep):
        doc = copy.deepcopy(small_sweep)
        doc["results"] = []
        with pytest.raises(ConfigurationError, match="no results"):
            validate_engine_bench_document(doc)
