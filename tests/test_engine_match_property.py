"""Differential tests of the indexed mailbox matcher against the
retained linear reference.

The indexed matcher (exact-key lookup plus lazily-invalidated wildcard
heaps) must pop the *identical* entry in the *identical* order as the
linear scan for every interleaving of sends and receives — the
``(arrive, (src, tag))`` tie-break is part of the engine's determinism
contract and every digest pin depends on it.  The property test drives
both matchers through random interleavings at the data-structure level;
the engine-level test checks full runs agree bitwise.  Also here: the
vclock-gating satellite (untraced runs carry no O(P) clock state) and
the ``engine_stats`` surface.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines import Engine, Machine
from repro.machines.cpu import CpuModel
from repro.machines.engine import ANY_SOURCE, ANY_TAG, _RankState, _RecvOp
from repro.machines.network import ContentionNetwork, FullyConnected


def ideal_machine(nranks):
    return Machine(
        name="ideal",
        cpu=CpuModel(1e9, 1e9, 1e9),
        network=ContentionNetwork(
            topology=FullyConnected(nranks), latency_s=1e-6, per_hop_s=0, bytes_per_s=1e9
        ),
        placement=list(range(nranks)),
        sw_send_overhead_s=1e-6,
        sw_recv_overhead_s=1e-6,
        copy_bytes_per_s=1e9,
    )


N_SRC = 4
N_TAG = 3

# One mailbox interleaving step: a message arriving on channel
# (src, tag) at some (clamped-monotone) time, or a receive of one of the
# four shapes — exact, wild-source, wild-tag, fully wild — optionally
# with a timed-receive deadline.
_send_step = st.tuples(
    st.just("send"),
    st.integers(0, N_SRC - 1),
    st.integers(0, N_TAG - 1),
    st.integers(0, 20),
)
_recv_step = st.tuples(
    st.just("recv"),
    st.integers(-1, N_SRC - 1),  # -1 -> ANY_SOURCE
    st.integers(-1, N_TAG - 1),  # -1 -> ANY_TAG
    st.one_of(st.none(), st.integers(0, 25)),  # timed-receive deadline
)
_interleavings = st.lists(st.one_of(_send_step, _recv_step), min_size=1, max_size=60)


class TestMatcherDifferential:
    @given(steps=_interleavings)
    @settings(max_examples=200, deadline=None)
    def test_indexed_pops_identical_entries_in_identical_order(self, steps):
        machine = ideal_machine(2)
        indexed = Engine(machine, matcher="indexed")
        linear = Engine(machine, matcher="linear")
        st_indexed = _RankState(0, None)
        st_linear = _RankState(0, None)
        floors = {}
        serial = 0
        for kind, a, b, c in steps:
            if kind == "send":
                key = (a, b)
                # Per-channel arrivals are monotone non-decreasing (the
                # engine's FIFO non-overtaking invariant); clamp to it.
                arrive = float(max(floors.get(key, 0), c))
                floors[key] = arrive
                payload = ("msg", serial)
                serial += 1
                indexed._enqueue(st_indexed, key, arrive, payload, None)
                linear._enqueue(st_linear, key, arrive, payload, None)
            else:
                op = _RecvOp(
                    src=a if a >= 0 else ANY_SOURCE,
                    tag=b if b >= 0 else ANY_TAG,
                )
                before = None if c is None else float(c)
                got = indexed._match(st_indexed, op, before)
                want = linear._match(st_linear, op, before)
                assert got == want
        # Whatever was never matched must agree too.
        left_indexed = {k: q for k, q in st_indexed.mailbox.items() if q}
        left_linear = {k: q for k, q in st_linear.mailbox.items() if q}
        assert left_indexed == left_linear

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_full_runs_agree_bitwise(self, data):
        """A fan-in with wildcard receives produces identical results,
        finish times, and event counts under both matchers."""
        nranks = data.draw(st.integers(2, 6), label="nranks")
        # Each sender sends one message per tag, in its own drawn order
        # and with its own compute skew, so arrival order varies.
        orders = [
            data.draw(st.permutations(list(range(N_TAG))), label=f"order{s}")
            for s in range(1, nranks)
        ]
        skews = [
            data.draw(st.integers(0, 5), label=f"skew{s}")
            for s in range(1, nranks)
        ]
        # Root receives by tag in a drawn multiset order, then drains
        # the tail with fully-wild receives (always satisfiable).
        tag_multiset = [t for t in range(N_TAG) for _ in range(nranks - 1)]
        recv_tags = data.draw(st.permutations(tag_multiset), label="recv_tags")
        n_wild = data.draw(st.integers(0, len(recv_tags)), label="n_wild")
        plan = recv_tags[: len(recv_tags) - n_wild]

        def prog(ctx):
            if ctx.rank == 0:
                got = []
                for tag in plan:
                    got.append((yield ctx.recv(tag=tag)))
                for _ in range(n_wild):
                    got.append((yield ctx.recv()))
                return got
            yield ctx.compute(flops=1e5 * skews[ctx.rank - 1])
            for tag in orders[ctx.rank - 1]:
                yield ctx.send(0, (ctx.rank, tag), tag=tag)
            return None

        runs = {
            matcher: Engine(ideal_machine(nranks), matcher=matcher).run(prog)
            for matcher in ("indexed", "linear")
        }
        a, b = runs["indexed"], runs["linear"]
        assert a.results == b.results
        assert a.elapsed_s == b.elapsed_s
        assert a.finish_times == b.finish_times
        assert a.engine_stats["events"] == b.engine_stats["events"]


class TestVclockGating:
    def run_collecting_states(self, monkeypatch, **engine_kw):
        states = []
        original = _RankState.__init__

        def spy(self, rank, gen, nranks=0):
            original(self, rank, gen, nranks)
            states.append(self)

        monkeypatch.setattr(_RankState, "__init__", spy)

        def prog(ctx):
            if ctx.rank == 0:
                return (yield ctx.recv(1, tag=7))
            yield ctx.send(0, "ping", tag=7)
            return None

        run = Engine(ideal_machine(2), **engine_kw).run(prog)
        return run, states

    def test_untraced_runs_carry_no_vector_clocks(self, monkeypatch):
        run, states = self.run_collecting_states(monkeypatch)
        assert len(states) == 2
        assert all(state.vc is None for state in states)
        assert run.trace is None

    def test_traced_runs_do(self, monkeypatch):
        run, states = self.run_collecting_states(monkeypatch, record_trace=True)
        assert all(isinstance(state.vc, list) and len(state.vc) == 2 for state in states)
        assert any(event.vclock for event in run.trace)


class TestEngineStats:
    def fan_in(self, matcher):
        def prog(ctx):
            if ctx.rank == 0:
                got = []
                for _ in range(ctx.nranks - 1):
                    got.append((yield ctx.recv()))
                return sorted(got)
            yield ctx.send(0, ctx.rank, tag=3)
            return None

        return Engine(ideal_machine(4), matcher=matcher).run(prog)

    def test_stats_surface(self):
        stats = self.fan_in("indexed").engine_stats
        assert stats["matcher"] == "indexed"
        assert stats["events"] > 0
        assert stats["wildcard_matches"] == 3
        assert stats["wildcard_backfills"] >= 0
        for key in (
            "route_cache_hits",
            "route_cache_misses",
            "path_cache_hits",
            "path_cache_misses",
        ):
            assert stats[key] >= 0

    def test_linear_matcher_reported(self):
        stats = self.fan_in("linear").engine_stats
        assert stats["matcher"] == "linear"
        assert stats["wildcard_matches"] == 0  # counter is index-path only

    def test_unknown_matcher_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            Engine(ideal_machine(2), matcher="quadratic")
