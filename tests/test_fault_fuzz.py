"""Schedule/fault fuzzing harness: the certification suite for the fault
-injection subsystem.

For every app (striped wavelet, manager-worker N-body, worker-worker PIC)
and a grid of ``(seed, fault_rate)`` scenarios sampled through
``FaultPlan.sampled`` — message drops/duplicates/corruption/delays,
stragglers, and fail-stop crashes recovered via checkpoint/restart — the
harness asserts the three guarantees the subsystem makes:

1. **Value transparency**: the recovered run's results are *bitwise*
   identical to the fault-free reference (faults move time, never data).
2. **Replay determinism**: re-running the same scenario reproduces
   byte-identical traces, budgets, and fault statistics.
3. **Causal cleanliness**: the race detector certifies the recovered
   schedule as interleaving-independent.

Scenarios are seeded, so this is a regression suite, not a flaky chaos
monkey; the grid covers ~50 scenarios per app.
"""

import pickle

import pytest

from repro.errors import RankCrashError
from repro.machines import Engine, paragon
from repro.machines.causality import certify_deterministic
from repro.machines.faults import FaultPlan, payload_equal, run_with_recovery

SEEDS = range(10)
RATES = [0.0, 0.05, 0.12, 0.25, 0.4]
NRANKS = 4
CHECKPOINT_INTERVAL = 1


def _machine():
    return paragon(NRANKS, protocol="nx")


def _wavelet_app():
    from repro.data import landsat_like_scene
    from repro.wavelet import filter_bank_for_length
    from repro.wavelet.parallel.decomposition import StripeDecomposition
    from repro.wavelet.parallel.spmd import striped_wavelet_program

    image = landsat_like_scene((64, 64))
    bank = filter_bank_for_length(4)
    decomp = StripeDecomposition(64, 64, NRANKS, 2)
    return striped_wavelet_program, (image, bank, 2, decomp), {}


def _nbody_app():
    from repro.data import plummer_sphere
    from repro.nbody.parallel import manager_worker_program

    particles = plummer_sphere(48, dim=2, seed=0)
    return manager_worker_program, (particles, 2), {}


def _pic_app():
    from repro.data import uniform_cube
    from repro.pic import Grid3D
    from repro.pic.parallel import pic_program

    particles = uniform_cube(96, thermal_speed=0.05, seed=0)
    return pic_program, (Grid3D(8), particles, 2), {"collect": False}


_APPS = {"wavelet": _wavelet_app, "nbody": _nbody_app, "pic": _pic_app}
_cache: dict = {}


def _app(name):
    """(program, args, kwargs, fault-free reference RunResult), cached."""
    if name not in _cache:
        program, args, kwargs = _APPS[name]()
        # The reference checkpoints at the same cadence as the fuzzed runs
        # so elapsed-time comparisons are apples-to-apples.
        kwargs = dict(kwargs, checkpoint_interval=CHECKPOINT_INTERVAL)
        reference = Engine(_machine()).run(program, *args, **kwargs)
        _cache[name] = (program, args, kwargs, reference)
    return _cache[name]


def _recover(name, seed, rate, *, record_trace=False):
    program, args, kwargs, reference = _app(name)
    plan = FaultPlan.sampled(seed, NRANKS, rate, t_horizon=reference.elapsed_s)
    outcome = run_with_recovery(
        _machine(),
        program,
        *args,
        faults=plan,
        record_trace=record_trace,
        **kwargs,
    )
    return reference, plan, outcome


@pytest.mark.parametrize("app", sorted(_APPS))
@pytest.mark.parametrize("rate", RATES)
@pytest.mark.parametrize("seed", SEEDS)
def test_fuzzed_runs_reproduce_fault_free_results(app, seed, rate):
    reference, plan, outcome = _recover(app, seed, rate)
    assert payload_equal(outcome.run.results, reference.results), (
        f"{app} seed={seed} rate={rate}: recovered results diverged"
    )
    # Every injected crash was either survived-by-restart or never reached
    # (the rank finished before its crash instant).
    assert outcome.restarts <= len(plan.crash_schedule)
    if rate == 0.0:
        assert outcome.restarts == 0
        assert outcome.run.elapsed_s == reference.elapsed_s
        assert outcome.run.fault_stats["retransmits"] == 0
    elif outcome.restarts == 0:
        # Without a restart the run covers the same work as the reference.
        # Faults add time *almost* monotonically — a perturbed schedule can
        # shave a sliver off network contention — so allow a 1% tolerance.
        assert outcome.run.elapsed_s >= reference.elapsed_s * 0.99
    # A restarted final attempt resumes from a mid-run checkpoint and can
    # legitimately be shorter than the reference; the aborted attempts'
    # time is carried in total_virtual_s instead.
    assert outcome.total_virtual_s >= outcome.run.elapsed_s


@pytest.mark.parametrize("app", sorted(_APPS))
@pytest.mark.parametrize("seed,rate", [(0, 0.12), (1, 0.4), (2, 0.25)])
def test_fuzzed_scenarios_replay_byte_identically(app, seed, rate):
    def snapshot():
        _reference, _plan, outcome = _recover(app, seed, rate, record_trace=True)
        run = outcome.run
        return pickle.dumps(
            (
                run.elapsed_s,
                run.results,
                run.budgets,
                run.finish_times,
                run.fault_stats,
                run.trace,
                outcome.restarts,
                [(c.rank, c.at_s, c.checkpoint_index) for c in outcome.crashes],
            ),
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    assert snapshot() == snapshot()


@pytest.mark.parametrize("app", sorted(_APPS))
@pytest.mark.parametrize("seed,rate", [(0, 0.4), (3, 0.25), (7, 0.4)])
def test_recovered_runs_certify_race_free(app, seed, rate):
    _reference, _plan, outcome = _recover(app, seed, rate, record_trace=True)
    report = certify_deterministic(outcome.run.trace)
    assert report.deterministic, [race.describe() for race in report.races]


@pytest.mark.parametrize("app", sorted(_APPS))
def test_crashes_without_restart_budget_propagate(app):
    """A scenario with a crash must fail loudly when recovery is off."""
    program, args, kwargs, reference = _app(app)
    for seed in SEEDS:
        plan = FaultPlan.sampled(seed, NRANKS, 0.4, t_horizon=reference.elapsed_s)
        crashed = {
            rank: t
            for rank, t in plan.crash_schedule.items()
            if t < reference.elapsed_s
        }
        if not crashed:
            continue
        with pytest.raises(RankCrashError):
            Engine(_machine(), faults=plan).run(program, *args, **kwargs)
        return
    pytest.fail("no sampled scenario crashed below the horizon")
