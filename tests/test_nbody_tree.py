"""Tests for Barnes-Hut tree construction."""

import numpy as np
import pytest

from repro.data import plummer_sphere, uniform_cube
from repro.errors import ConfigurationError
from repro.nbody import build_tree


@pytest.fixture(scope="module")
def cluster():
    return plummer_sphere(300, dim=2, seed=1)


class TestConstruction:
    def test_root_encloses_all_bodies(self, cluster):
        """Paper property 1."""
        tree = build_tree(cluster.positions, cluster.masses)
        lo = tree.center[0] - tree.half_width[0]
        hi = tree.center[0] + tree.half_width[0]
        assert (cluster.positions >= lo).all()
        assert (cluster.positions <= hi).all()

    def test_leaf_capacity_respected(self, cluster):
        """Paper property 2: no terminal cell over capacity."""
        for capacity in (1, 4):
            tree = build_tree(cluster.positions, cluster.masses, leaf_capacity=capacity)
            leaf_mask = tree.leaf_start >= 0
            assert tree.leaf_count[leaf_mask].max() <= capacity

    def test_every_body_in_exactly_one_leaf(self, cluster):
        tree = build_tree(cluster.positions, cluster.masses)
        assert sorted(tree.order.tolist()) == list(range(cluster.n))

    def test_order_covers_leaves(self, cluster):
        tree = build_tree(cluster.positions, cluster.masses)
        total = int(tree.leaf_count[tree.leaf_start >= 0].sum())
        assert total == cluster.n

    def test_internal_cells_have_children(self, cluster):
        tree = build_tree(cluster.positions, cluster.masses)
        for cell in range(tree.ncells):
            if not tree.is_leaf(cell):
                assert (tree.children[cell] >= 0).any()

    def test_root_mass_is_total(self, cluster):
        tree = build_tree(cluster.positions, cluster.masses)
        assert tree.mass[0] == pytest.approx(cluster.total_mass)

    def test_root_com_is_global_com(self, cluster):
        tree = build_tree(cluster.positions, cluster.masses)
        np.testing.assert_allclose(tree.com[0], cluster.center_of_mass(), atol=1e-12)

    def test_child_masses_sum_to_parent(self, cluster):
        tree = build_tree(cluster.positions, cluster.masses)
        for cell in range(tree.ncells):
            if not tree.is_leaf(cell):
                child_mass = sum(
                    tree.mass[c] for c in tree.children[cell] if c >= 0
                )
                assert child_mass == pytest.approx(tree.mass[cell])

    def test_children_geometry_nested(self, cluster):
        tree = build_tree(cluster.positions, cluster.masses)
        for cell in range(tree.ncells):
            for child in tree.children[cell]:
                if child >= 0:
                    assert tree.half_width[child] == pytest.approx(
                        tree.half_width[cell] / 2
                    )

    def test_leaf_capacity_reduces_cells(self, cluster):
        fine = build_tree(cluster.positions, cluster.masses, leaf_capacity=1)
        coarse = build_tree(cluster.positions, cluster.masses, leaf_capacity=8)
        assert coarse.ncells < fine.ncells

    def test_3d_octree(self):
        ps = uniform_cube(200, dim=3, seed=0)
        tree = build_tree(ps.positions, ps.masses)
        assert tree.dim == 3
        assert tree.children.shape[1] == 8
        assert tree.mass[0] == pytest.approx(1.0)

    def test_single_body(self):
        tree = build_tree(np.array([[0.5, 0.5]]), np.array([2.0]))
        assert tree.ncells == 1
        assert tree.is_leaf(0)
        assert tree.mass[0] == 2.0

    def test_coincident_bodies_respect_capacity_fallback(self):
        # Two bodies at the same point cannot be separated; capacity 2 holds them.
        pos = np.zeros((2, 2))
        tree = build_tree(pos, np.ones(2), leaf_capacity=2)
        assert tree.ncells == 1

    def test_depth_positive(self, cluster):
        tree = build_tree(cluster.positions, cluster.masses)
        assert tree.depth() >= 1

    def test_serialization_roundtrip(self, cluster):
        from repro.nbody import BarnesHutTree

        tree = build_tree(cluster.positions, cluster.masses)
        rebuilt = BarnesHutTree.from_arrays(tree.dim, tree.arrays())
        np.testing.assert_array_equal(rebuilt.com, tree.com)
        assert rebuilt.serialized_nbytes() == tree.serialized_nbytes()

    def test_bad_inputs_raise(self):
        with pytest.raises(ConfigurationError):
            build_tree(np.zeros((3, 4)), np.ones(3))
        with pytest.raises(ConfigurationError):
            build_tree(np.zeros((3, 2)), np.ones(4))
        with pytest.raises(ConfigurationError):
            build_tree(np.zeros((0, 2)), np.ones(0))
        with pytest.raises(ConfigurationError):
            build_tree(np.zeros((3, 2)), np.ones(3), leaf_capacity=0)
