"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_wavelet_defaults(self):
        args = build_parser().parse_args(["wavelet"])
        assert args.size == 512 and args.filter_length == 8 and args.levels == 1

    def test_invalid_filter_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["wavelet", "--filter", "6"])

    def test_invalid_machine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nbody", "--machine", "cray1"])


class TestCommands:
    def test_wavelet_runs(self, capsys):
        assert main(["wavelet", "--size", "64", "--procs", "4", "--levels", "1"]) == 0
        out = capsys.readouterr().out
        assert "virtual time" in out and "performance budget" in out

    def test_wavelet_maspar(self, capsys):
        assert main(["wavelet", "--size", "64", "--machine", "maspar"]) == 0
        assert "images/second" in capsys.readouterr().out

    def test_wavelet_timeline(self, capsys):
        assert main(
            ["wavelet", "--size", "64", "--procs", "4", "--timeline"]
        ) == 0
        out = capsys.readouterr().out
        assert "legend" in out and "r0" in out

    def test_nbody_runs(self, capsys):
        assert main(
            ["nbody", "--bodies", "128", "--procs", "2", "--steps", "1"]
        ) == 0
        assert "interactions/step" in capsys.readouterr().out

    def test_pic_runs(self, capsys):
        assert main(
            [
                "pic", "--particles", "512", "--grid", "8",
                "--procs", "2", "--steps", "1",
            ]
        ) == 0
        assert "adaptive dt" in capsys.readouterr().out

    def test_pic_gssum(self, capsys):
        assert main(
            [
                "pic", "--particles", "256", "--grid", "8",
                "--procs", "2", "--steps", "1", "--global-sum", "gssum",
            ]
        ) == 0

    def test_workload_runs(self, capsys):
        assert main(["workload", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "smooth" in out and "similarity" in out

    def test_nbody_t3d(self, capsys):
        assert main(
            ["nbody", "--bodies", "128", "--procs", "2", "--steps", "1",
             "--machine", "t3d"]
        ) == 0
