"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_wavelet_defaults(self):
        args = build_parser().parse_args(["wavelet"])
        assert args.size == 512 and args.filter_length == 8 and args.levels == 1

    def test_invalid_filter_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["wavelet", "--filter", "6"])

    def test_invalid_machine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nbody", "--machine", "cray1"])


class TestCommands:
    def test_wavelet_runs(self, capsys):
        assert main(["wavelet", "--size", "64", "--procs", "4", "--levels", "1"]) == 0
        out = capsys.readouterr().out
        assert "virtual time" in out and "performance budget" in out

    def test_wavelet_maspar(self, capsys):
        assert main(["wavelet", "--size", "64", "--machine", "maspar"]) == 0
        assert "images/second" in capsys.readouterr().out

    def test_wavelet_timeline(self, capsys):
        assert main(
            ["wavelet", "--size", "64", "--procs", "4", "--timeline"]
        ) == 0
        out = capsys.readouterr().out
        assert "legend" in out and "r0" in out

    def test_nbody_runs(self, capsys):
        assert main(
            ["nbody", "--bodies", "128", "--procs", "2", "--steps", "1"]
        ) == 0
        assert "interactions/step" in capsys.readouterr().out

    def test_pic_runs(self, capsys):
        assert main(
            [
                "pic", "--particles", "512", "--grid", "8",
                "--procs", "2", "--steps", "1",
            ]
        ) == 0
        assert "adaptive dt" in capsys.readouterr().out

    def test_pic_gssum(self, capsys):
        assert main(
            [
                "pic", "--particles", "256", "--grid", "8",
                "--procs", "2", "--steps", "1", "--global-sum", "gssum",
            ]
        ) == 0

    def test_workload_runs(self, capsys):
        assert main(["workload", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "smooth" in out and "similarity" in out

    def test_nbody_t3d(self, capsys):
        assert main(
            ["nbody", "--bodies", "128", "--procs", "2", "--steps", "1",
             "--machine", "t3d"]
        ) == 0


class TestScheduleCommand:
    def test_default_two_jobs(self, capsys):
        assert main(["schedule"]) == 0
        out = capsys.readouterr().out
        assert "space-shared" in out and "makespan" in out

    def test_seeded_arrival_staggering(self, capsys):
        assert main(
            [
                "schedule", "--job", "workload:8", "--arrival", "poisson:2.0",
                "--seed", "7", "--count", "4",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "staggering 4 submission(s)" in out
        assert "poisson(rate=2/s, seed=7)" in out
        assert "workload#3" in out

    def test_arrival_replay_is_deterministic(self, capsys):
        argv = [
            "schedule", "--job", "workload:8", "--arrival", "poisson:3.0",
            "--seed", "5", "--count", "3",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_fair_policy_accepted(self, capsys):
        assert main(
            ["schedule", "--job", "workload:8", "--job", "workload:8",
             "--policy", "fair"]
        ) == 0
        assert "space-shared" in capsys.readouterr().out

    def test_bad_arrival_spec_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["schedule", "--arrival", "weibull:2.0"])


class TestServeCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.mix == "default" and args.policy == "fair"
        assert args.load == 0.7 and not args.sweep

    def test_single_run_human(self, capsys):
        assert main(
            ["serve", "--horizon", "5", "--seed", "1", "--load", "0.5"]
        ) == 0
        out = capsys.readouterr().out
        assert "service on" in out
        assert "latency (virtual seconds)" in out
        assert "per-tenant" in out and "utilization" in out

    def test_single_run_json_is_schema_valid(self, capsys):
        import json

        from repro.service import validate_snapshot

        assert main(
            ["serve", "--horizon", "5", "--seed", "1", "--format", "json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        validate_snapshot(doc)
        assert doc["config"]["seed"] == 1

    def test_admission_flags_shed(self, capsys):
        assert main(
            [
                "serve", "--horizon", "5", "--seed", "1", "--load", "2.0",
                "--queue-limit", "4",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "queue-full" in out

    def test_sweep_writes_valid_report(self, tmp_path, capsys):
        import json

        from repro.service import validate_loadsweep

        out_path = tmp_path / "sweep.json"
        assert main(
            [
                "serve", "--sweep", "--horizon", "5", "--seed", "2",
                "--sweep-loads", "0.25,0.5,1.0,1.5,2.0",
                "--out", str(out_path),
            ]
        ) == 0
        text = capsys.readouterr().out
        assert "offered-load sweep" in text
        assert "knee" in text or "no saturation knee" in text
        doc = json.loads(out_path.read_text())
        validate_loadsweep(doc)
        assert len(doc["points"]) == 5

    def test_fifo_policy_accepted(self, capsys):
        assert main(
            ["serve", "--horizon", "5", "--policy", "fifo"]
        ) == 0
        assert "policy=fifo" in capsys.readouterr().out


class TestBenchRatchetFlag:
    def test_ratchet_pass_and_fail(self, tmp_path, capsys):
        import json

        from repro.perf.bench import BenchCase, run_bench

        doc = run_bench([BenchCase(32, 2, 1)], warmup=0, repeats=2, trim=0, seed=0)
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(doc))
        from repro.cli import _bench_ratchet

        class Args:
            ratchet = str(baseline)
            ratchet_tolerance = 0.25

        assert _bench_ratchet(Args, doc) == 0
        assert "ratchet passed" in capsys.readouterr().out

        inflated = json.loads(json.dumps(doc))
        for row in inflated["results"]:
            if row["kernel"] != "conv":
                row["speedup_vs_conv"] *= 10.0
        baseline.write_text(json.dumps(inflated))
        assert _bench_ratchet(Args, doc) == 1
        assert "REGRESSED" in capsys.readouterr().out
