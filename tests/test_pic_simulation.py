"""Tests for the PIC push, sequential driver, and parallel program."""

import numpy as np
import pytest

from repro.data import uniform_cube
from repro.errors import ConfigurationError
from repro.machines import paragon
from repro.pic import (
    Grid3D,
    PicSimulation,
    adaptive_dt,
    particle_share,
    push_particles,
    run_parallel_pic,
    slab_bounds,
)


@pytest.fixture(scope="module")
def grid():
    return Grid3D(8)


class TestPush:
    def test_adaptive_dt_caps_displacement(self, grid):
        velocities = np.array([[4.0, 0.0, 0.0]])
        dt = adaptive_dt(grid, velocities, dt_max=1.0, max_cell_fraction=0.5)
        assert dt * 4.0 <= 0.5 * grid.spacing + 1e-12

    def test_adaptive_dt_cold_particles_use_max(self, grid):
        assert adaptive_dt(grid, np.zeros((5, 3)), dt_max=0.25) == 0.25

    def test_adaptive_dt_bad_args(self, grid):
        with pytest.raises(ConfigurationError):
            adaptive_dt(grid, np.zeros((1, 3)), dt_max=0.0)
        with pytest.raises(ConfigurationError):
            adaptive_dt(grid, np.zeros((1, 3)), dt_max=1.0, max_cell_fraction=2.0)

    def test_push_wraps_positions(self, grid):
        pos = np.array([[0.99, 0.5, 0.5]])
        vel = np.array([[1.0, 0.0, 0.0]])
        new_pos, _ = push_particles(
            grid, pos, vel, np.zeros((1, 3)), np.ones(1), dt=0.05
        )
        assert 0.0 <= new_pos[0, 0] < grid.extent

    def test_push_updates_velocity_first(self, grid):
        pos = np.zeros((1, 3)) + 0.5
        vel = np.zeros((1, 3))
        forces = np.array([[1.0, 0.0, 0.0]])
        new_pos, new_vel = push_particles(grid, pos, vel, forces, np.ones(1), dt=0.1)
        assert new_vel[0, 0] == pytest.approx(0.1)
        assert new_pos[0, 0] == pytest.approx(0.5 + 0.01)  # moved by v_new * dt


class TestSequentialSimulation:
    def test_runs_and_tracks_diagnostics(self, grid):
        sim = PicSimulation(grid, uniform_cube(300, thermal_speed=0.05, seed=0))
        stats = sim.run(3)
        assert len(stats) == 3
        assert all(s.dt > 0 for s in stats)
        assert all(s.field_energy >= 0 for s in stats)

    def test_total_charge_constant(self, grid):
        sim = PicSimulation(grid, uniform_cube(200, thermal_speed=0.05, seed=1))
        charges = [s.total_charge for s in sim.run(4)]
        np.testing.assert_allclose(charges, charges[0], rtol=1e-10)

    def test_cold_uniform_plasma_stays_quiet(self, grid):
        """A cold, near-uniform plasma has tiny fields and should not blow
        up: kinetic energy stays near zero."""
        sim = PicSimulation(grid, uniform_cube(2000, thermal_speed=0.0, seed=2))
        stats = sim.run(5)
        assert stats[-1].kinetic_energy < 1e-3

    def test_requires_3d_particles(self, grid):
        with pytest.raises(ConfigurationError):
            PicSimulation(grid, uniform_cube(10, dim=2))

    def test_bad_dt_max(self, grid):
        with pytest.raises(ConfigurationError):
            PicSimulation(grid, uniform_cube(10), dt_max=0.0)


class TestHelpers:
    def test_particle_share_covers_all(self):
        slices = [particle_share(103, 4, r) for r in range(4)]
        covered = []
        for s in slices:
            covered.extend(range(s.start, s.stop))
        assert covered == list(range(103))

    def test_slab_bounds(self):
        assert slab_bounds(8, 4, 2) == (4, 6)
        with pytest.raises(ConfigurationError):
            slab_bounds(8, 3, 0)


class TestParallelPic:
    @pytest.mark.parametrize("nranks", [1, 2, 4])
    def test_matches_sequential(self, grid, nranks):
        ps = uniform_cube(256, thermal_speed=0.05, seed=3)
        seq = PicSimulation(grid, ps.copy(), dt_max=0.01)
        seq.run(2)
        out = run_parallel_pic(paragon(nranks), grid, ps.copy(), steps=2, dt_max=0.01)
        np.testing.assert_allclose(
            out.particles.positions, seq.particles.positions, atol=1e-9
        )
        np.testing.assert_allclose(
            out.particles.velocities, seq.particles.velocities, atol=1e-9
        )

    def test_gssum_variant_matches(self, grid):
        ps = uniform_cube(128, thermal_speed=0.05, seed=4)
        prefix = run_parallel_pic(paragon(4), grid, ps.copy(), steps=1, global_sum="prefix")
        naive = run_parallel_pic(paragon(4), grid, ps.copy(), steps=1, global_sum="gssum")
        np.testing.assert_allclose(
            prefix.particles.positions, naive.particles.positions, atol=1e-9
        )

    def test_gssum_sends_more_messages(self, grid):
        """The Appendix B finding behind the custom global sum."""
        ps = uniform_cube(128, thermal_speed=0.05, seed=5)
        prefix = run_parallel_pic(paragon(8), grid, ps.copy(), steps=1)
        naive = run_parallel_pic(paragon(8), grid, ps.copy(), steps=1, global_sum="gssum")
        assert naive.run.messages_sent > prefix.run.messages_sent

    def test_replicated_poisson_matches(self, grid):
        ps = uniform_cube(128, thermal_speed=0.05, seed=6)
        slab = run_parallel_pic(paragon(4), grid, ps.copy(), steps=1, poisson="slab")
        replicated = run_parallel_pic(
            paragon(4), grid, ps.copy(), steps=1, poisson="replicated"
        )
        np.testing.assert_allclose(
            slab.particles.positions, replicated.particles.positions, atol=1e-8
        )

    def test_replicated_poisson_books_redundancy(self, grid):
        ps = uniform_cube(128, thermal_speed=0.05, seed=7)
        out = run_parallel_pic(
            paragon(4), grid, ps.copy(), steps=1, poisson="replicated"
        )
        assert out.run.mean_budget().redundancy_s > 0

    def test_adaptive_dt_agrees_across_ranks(self, grid):
        ps = uniform_cube(256, thermal_speed=0.3, seed=8)
        out = run_parallel_pic(paragon(4), grid, ps.copy(), steps=3, dt_max=0.5)
        seq = PicSimulation(grid, ps.copy(), dt_max=0.5)
        seq_stats = seq.run(3)
        np.testing.assert_allclose(out.dts, [s.dt for s in seq_stats], rtol=1e-12)

    def test_bad_options_raise(self, grid):
        ps = uniform_cube(64, seed=9)
        with pytest.raises(ConfigurationError):
            run_parallel_pic(paragon(2), grid, ps, steps=1, global_sum="tree99")
        with pytest.raises(ConfigurationError):
            run_parallel_pic(paragon(2), grid, ps, steps=1, poisson="multigrid")


class TestSlabFallback:
    def test_non_divisible_rank_count_falls_back_to_replicated(self, grid):
        """grid.m=8 over 3 ranks cannot slab-decompose; the program falls
        back to the replicated solve and stays numerically exact."""
        ps = uniform_cube(192, thermal_speed=0.05, seed=21)
        seq = PicSimulation(grid, ps.copy(), dt_max=0.01)
        seq.run(2)
        out = run_parallel_pic(paragon(3), grid, ps.copy(), steps=2, dt_max=0.01)
        np.testing.assert_allclose(
            out.particles.positions, seq.particles.positions, atol=1e-9
        )
        # The fallback books duplication redundancy, as the replicated
        # solve must.
        assert out.run.mean_budget().redundancy_s > 0

    def test_uneven_particle_shares_handled(self, grid):
        ps = uniform_cube(203, thermal_speed=0.05, seed=22)  # 203 % 4 != 0
        seq = PicSimulation(grid, ps.copy(), dt_max=0.01)
        seq.run(1)
        out = run_parallel_pic(paragon(4), grid, ps.copy(), steps=1, dt_max=0.01)
        assert out.particles.n == 203
        np.testing.assert_allclose(
            out.particles.positions, seq.particles.positions, atol=1e-9
        )

    def test_single_rank_no_comm_paths(self, grid):
        ps = uniform_cube(64, seed=23)
        out = run_parallel_pic(paragon(1), grid, ps.copy(), steps=1)
        assert out.run.messages_sent <= 2  # only the trivial self-gather
