"""Tests for engine event tracing and the timeline renderer."""

import numpy as np
import pytest

from repro.machines import Engine, Machine
from repro.machines.cpu import CpuModel
from repro.machines.engine import TraceEvent
from repro.machines.network import ContentionNetwork, FullyConnected
from repro.perf import format_timeline


def ideal_machine(nranks):
    return Machine(
        name="ideal",
        cpu=CpuModel(1e9, 1e9, 1e9),
        network=ContentionNetwork(
            topology=FullyConnected(nranks), latency_s=1e-6, per_hop_s=0, bytes_per_s=1e9
        ),
        placement=list(range(nranks)),
        sw_send_overhead_s=1e-6,
        sw_recv_overhead_s=1e-6,
        copy_bytes_per_s=1e9,
    )


def two_rank_prog(ctx):
    yield ctx.compute(flops=1e6)
    if ctx.rank == 0:
        yield ctx.send(1, np.zeros(100))
    else:
        _ = yield ctx.recv(0)
    yield ctx.compute(intops=1e5, redundant=True)
    return None


class TestTracing:
    def test_disabled_by_default(self):
        run = Engine(ideal_machine(2)).run(two_rank_prog)
        assert run.trace is None

    def test_records_all_event_kinds(self):
        run = Engine(ideal_machine(2), record_trace=True).run(two_rank_prog)
        kinds = {e.kind for e in run.trace}
        assert kinds == {"compute", "send", "recv", "redundancy"}

    def test_intervals_ordered_and_within_run(self):
        run = Engine(ideal_machine(2), record_trace=True).run(two_rank_prog)
        for event in run.trace:
            assert 0.0 <= event.start_s <= event.end_s <= run.elapsed_s + 1e-12

    def test_send_event_carries_peer_and_size(self):
        run = Engine(ideal_machine(2), record_trace=True).run(two_rank_prog)
        sends = [e for e in run.trace if e.kind == "send"]
        assert sends == [
            TraceEvent(
                rank=0,
                kind="send",
                start_s=sends[0].start_s,
                end_s=sends[0].end_s,
                peer=1,
                nbytes=800,
            )
        ]

    def test_recv_event_matches_sender(self):
        run = Engine(ideal_machine(2), record_trace=True).run(two_rank_prog)
        recvs = [e for e in run.trace if e.kind == "recv"]
        assert len(recvs) == 1
        assert recvs[0].rank == 1 and recvs[0].peer == 0

    def test_per_rank_events_do_not_overlap(self):
        run = Engine(ideal_machine(2), record_trace=True).run(two_rank_prog)
        for rank in range(2):
            events = sorted(
                (e for e in run.trace if e.rank == rank), key=lambda e: e.start_s
            )
            for a, b in zip(events, events[1:]):
                assert a.end_s <= b.start_s + 1e-12

    def test_trace_reset_between_runs(self):
        engine = Engine(ideal_machine(2), record_trace=True)
        first = engine.run(two_rank_prog)
        second = engine.run(two_rank_prog)
        assert len(first.trace) == len(second.trace)


class TestTimelineRender:
    def test_renders_rows_per_rank(self):
        run = Engine(ideal_machine(3), record_trace=True).run(_simple)
        text = format_timeline("title", run, width=40)
        assert "title" in text
        assert text.count("|") == 2 * 3  # two bars per rank row
        assert "#" in text

    def test_untraced_run_raises(self):
        run = Engine(ideal_machine(2)).run(two_rank_prog)
        with pytest.raises(ValueError):
            format_timeline("t", run)


def _simple(ctx):
    yield ctx.compute(flops=1e6 * (1 + ctx.rank))
    return None
