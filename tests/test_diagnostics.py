"""Tests for the N-body and PIC diagnostics modules."""

import numpy as np
import pytest

from repro.data import plummer_sphere, uniform_cube, uniform_disk
from repro.errors import ConfigurationError
from repro.nbody import (
    build_tree,
    interaction_histogram,
    radial_profile,
    tree_forces,
    tree_statistics,
    virial_ratio,
)
from repro.pic import (
    Grid3D,
    PicSimulation,
    density_mode_spectrum,
    energy_history,
    estimate_plasma_frequency,
    velocity_moments,
)


@pytest.fixture(scope="module")
def cluster():
    return plummer_sphere(1000, dim=2, seed=5)


class TestTreeStatistics:
    def test_counts_consistent(self, cluster):
        tree = build_tree(cluster.positions, cluster.masses)
        stats = tree_statistics(tree)
        assert stats.cells == stats.leaves + stats.internal
        assert stats.depth == tree.depth()
        assert stats.broadcast_bytes == tree.serialized_nbytes()

    def test_leaf_occupancy_respects_capacity(self, cluster):
        tree = build_tree(cluster.positions, cluster.masses, leaf_capacity=4)
        stats = tree_statistics(tree)
        assert stats.max_leaf_occupancy <= 4
        assert 1.0 <= stats.mean_leaf_occupancy <= 4.0

    def test_cells_per_body_order_one(self, cluster):
        tree = build_tree(cluster.positions, cluster.masses)
        assert 1.0 < tree_statistics(tree).cells_per_body < 4.0


class TestInteractionHistogram:
    def test_bins_cover_all_particles(self, cluster):
        tree = build_tree(cluster.positions, cluster.masses)
        interactions = tree_forces(
            tree, cluster.positions, cluster.masses
        ).interactions
        edges, counts = interaction_histogram(interactions, bins=8)
        assert counts.sum() == cluster.n
        assert len(edges) == 9

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            interaction_histogram(np.array([]))


class TestRadialProfile:
    def test_plummer_density_decreases(self, cluster):
        radii, density = radial_profile(cluster, bins=12)
        assert density[0] > density[-1]
        assert (radii[:-1] < radii[1:]).all()

    def test_uniform_disk_roughly_flat_core(self):
        disk = uniform_disk(4000, seed=1)
        _, density = radial_profile(disk, bins=6)
        # Inner bins of a uniform disk agree within sampling noise.
        inner = density[:4]
        assert inner.max() / inner.min() < 1.6

    def test_bad_bins_raise(self, cluster):
        with pytest.raises(ConfigurationError):
            radial_profile(cluster, bins=0)


class TestVirialRatio:
    def test_virialized_plummer_near_one_3d(self):
        # The Plummer distribution-function sampling is exact in 3-D.
        cluster3 = plummer_sphere(1000, dim=3, seed=5)
        assert virial_ratio(cluster3, softening=0.01) == pytest.approx(1.0, abs=0.1)

    def test_2d_plummer_is_bound_and_warm(self, cluster):
        # The 2-D variant reuses the 3-D speeds heuristically: bound and
        # near equilibrium, but not exactly virialized.
        assert 0.5 < virial_ratio(cluster, softening=0.01) < 1.2

    def test_cold_system_is_zero(self):
        cold = plummer_sphere(300, dim=2, virial=False, seed=6)
        assert virial_ratio(cold, softening=0.01) == pytest.approx(0.0, abs=1e-12)


def perturbed_plasma(n, seed=3, amplitude=0.08):
    particles = uniform_cube(n, thermal_speed=0.0, seed=seed)
    x = particles.positions[:, 0]
    particles.positions[:, 0] = np.mod(
        x + amplitude / (2 * np.pi) * np.sin(2 * np.pi * x), 1.0
    )
    return particles


class TestEnergyHistory:
    def test_series_lengths(self):
        sim = PicSimulation(Grid3D(8), perturbed_plasma(1024), dt_max=0.05)
        history = energy_history(sim.run(5))
        assert history.times.shape == history.field.shape == (5,)
        assert (history.total == history.field + history.kinetic).all()

    def test_total_energy_roughly_conserved(self):
        sim = PicSimulation(Grid3D(8), perturbed_plasma(4096), dt_max=0.05)
        history = energy_history(sim.run(40))
        assert history.max_drift() < 0.2

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            energy_history([])


class TestPlasmaFrequency:
    def test_estimate_near_unity(self):
        # Unit box / unit charge-mass plasma: omega_p = 1 up to grid
        # dispersion and spectral resolution.
        sim = PicSimulation(Grid3D(8), perturbed_plasma(4096), dt_max=0.1)
        history = energy_history(sim.run(160))
        omega = estimate_plasma_frequency(history)
        assert 0.6 < omega < 1.3

    def test_too_few_samples_raise(self):
        sim = PicSimulation(Grid3D(8), perturbed_plasma(256), dt_max=0.05)
        history = energy_history(sim.run(4))
        with pytest.raises(ConfigurationError):
            estimate_plasma_frequency(history)


class TestVelocityAndDensityDiagnostics:
    def test_velocity_moments(self):
        particles = uniform_cube(2000, thermal_speed=0.2, seed=7)
        particles.velocities[:, 0] += 0.5
        moments = velocity_moments(particles)
        assert moments["drift"][0] == pytest.approx(0.5, abs=0.02)
        assert moments["thermal"][1] == pytest.approx(0.2, abs=0.02)
        assert moments["rms_speed"] > 0.5

    def test_density_spectrum_sees_seeded_mode(self):
        grid = Grid3D(16)
        particles = perturbed_plasma(32768, amplitude=0.15)
        spectrum = density_mode_spectrum(grid, particles, axis=0, modes=4)
        # Mode 1 dominates the seeded sinusoidal perturbation.
        assert spectrum[0] > 4 * spectrum[1:].max()

    def test_uniform_plasma_has_flat_spectrum(self):
        grid = Grid3D(16)
        particles = uniform_cube(16384, seed=8)
        spectrum = density_mode_spectrum(grid, particles, axis=0, modes=4)
        assert spectrum.max() < 0.05

    def test_bad_args_raise(self):
        grid = Grid3D(8)
        particles = uniform_cube(100, seed=9)
        with pytest.raises(ConfigurationError):
            density_mode_spectrum(grid, particles, axis=5)
        with pytest.raises(ConfigurationError):
            density_mode_spectrum(grid, particles, modes=0)
