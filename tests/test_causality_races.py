"""Tests for the wildcard-receive race detector over synthetic programs
and all three SPMD applications."""

import numpy as np

from repro.data import plummer_sphere, uniform_cube
from repro.machines import ANY_SOURCE, Engine, Machine, paragon
from repro.machines.cpu import CpuModel
from repro.machines.causality import (
    HappensBeforeGraph,
    certify_deterministic,
    find_wildcard_races,
)
from repro.machines.network import ContentionNetwork, FullyConnected
from repro.nbody.parallel import manager_worker_program
from repro.pic import Grid3D
from repro.pic.parallel import pic_program
from repro.wavelet import filter_bank_for_length
from repro.wavelet.parallel.decomposition import StripeDecomposition
from repro.wavelet.parallel.spmd import striped_wavelet_program


def ideal_machine(nranks):
    return Machine(
        name="ideal",
        cpu=CpuModel(1e9, 1e9, 1e9),
        network=ContentionNetwork(
            topology=FullyConnected(nranks), latency_s=1e-6, per_hop_s=0, bytes_per_s=1e9
        ),
        placement=list(range(nranks)),
        sw_send_overhead_s=1e-6,
        sw_recv_overhead_s=1e-6,
        copy_bytes_per_s=1e9,
    )


def traced(nranks, prog, *args, **kwargs):
    return Engine(ideal_machine(nranks), record_trace=True).run(prog, *args, **kwargs)


class TestPositiveDetection:
    def test_two_concurrent_senders_race(self):
        """The canonical hazard: both workers send, manager takes ANY."""

        def prog(ctx):
            if ctx.rank == 0:
                first = yield ctx.recv(ANY_SOURCE, tag=3)
                second = yield ctx.recv(ANY_SOURCE, tag=3)
                return (first, second)
            yield ctx.compute(flops=1e5 * ctx.rank)
            yield ctx.send(0, ctx.rank, tag=3)
            return None

        run = traced(3, prog)
        races = find_wildcard_races(run.trace)
        assert races, "two concurrent matching sends must be a hazard"
        report = certify_deterministic(run.trace)
        assert not report.deterministic
        assert report.wildcard_recvs == 2
        # The hazard is attributed to the *first* wildcard receive (the
        # frontier race); conditioned on its outcome the second receive
        # has no remaining choice.
        assert len(races) == 1
        race = races[0]
        assert race.rank == 0
        assert race.posted_src == ANY_SOURCE
        assert len(race.alternatives) == 1
        alt = run.trace[race.alternatives[0]]
        matched = run.trace[race.matched_send]
        assert {alt.rank, matched.rank} == {1, 2}
        assert "ANY_SOURCE" in race.describe()

    def test_wildcard_src_and_tag_race_across_sources(self):
        def prog(ctx):
            if ctx.rank == 0:
                got = yield ctx.recv(ANY_SOURCE)  # ANY_SOURCE + ANY_TAG
                return got
            yield ctx.send(0, ctx.rank, tag=ctx.rank)
            return None

        run = traced(3, prog)
        races = find_wildcard_races(run.trace)
        assert len(races) == 1
        assert races[0].posted_src == ANY_SOURCE
        assert "ANY_TAG" in races[0].describe()

    def test_tag_filter_excludes_non_matching_sends(self):
        def prog(ctx):
            if ctx.rank == 0:
                got = yield ctx.recv(ANY_SOURCE, tag=5)
                return got
            if ctx.rank == 1:
                yield ctx.send(0, "match", tag=5)
            else:
                yield ctx.send(0, "other-tag", tag=6)
            return None

        run = traced(3, prog)
        # Rank 2's tag-6 send can never match the tag-5 wildcard recv.
        assert find_wildcard_races(run.trace) == []


class TestNegativeDetection:
    def test_causally_ordered_second_send_is_no_race(self):
        """A send that requires the recv's completion cannot race it."""

        def prog(ctx):
            if ctx.rank == 0:
                first = yield ctx.recv(ANY_SOURCE, tag=9)
                yield ctx.send(2, "go", tag=1)  # unblock rank 2 only now
                second = yield ctx.recv(ANY_SOURCE, tag=9)
                return (first, second)
            if ctx.rank == 1:
                yield ctx.send(0, "early", tag=9)
            else:
                _ = yield ctx.recv(0, tag=1)
                yield ctx.send(0, "late", tag=9)
            return None

        run = traced(3, prog)
        assert find_wildcard_races(run.trace) == []
        report = certify_deterministic(run.trace)
        assert report.deterministic and report.wildcard_recvs == 2

    def test_single_source_any_tag_is_deterministic(self):
        """FIFO non-overtaking: a later send from the same source can
        never beat an earlier one, so single-source ANY_TAG is safe."""

        def prog(ctx):
            if ctx.rank == 0:
                yield ctx.send(1, "a", tag=1)
                yield ctx.send(1, "b", tag=2)
            elif ctx.rank == 1:
                first = yield ctx.recv(0)  # ANY_TAG
                second = yield ctx.recv(0)
                return (first, second)
            return None

        run = traced(2, prog)
        assert find_wildcard_races(run.trace) == []
        report = certify_deterministic(run.trace)
        assert report.deterministic and report.wildcard_recvs == 2

    def test_explicit_recvs_never_race(self):
        def prog(ctx):
            right = (ctx.rank + 1) % ctx.nranks
            left = (ctx.rank - 1) % ctx.nranks
            yield ctx.send(right, ctx.rank, tag=1)
            _ = yield ctx.recv(left, tag=1)
            return None

        run = traced(4, prog)
        report = certify_deterministic(run.trace)
        assert report.wildcard_recvs == 0 and report.deterministic


class TestApplicationCertification:
    """The paper's three parallel programs are interleaving-independent."""

    def test_wavelet_spmd_deterministic(self):
        image = np.random.default_rng(0).normal(size=(128, 128))
        bank = filter_bank_for_length(8)
        decomp = StripeDecomposition(128, 128, 8, 1)
        run = Engine(paragon(8), record_trace=True).run(
            striped_wavelet_program, image, bank, 1, decomp
        )
        report = certify_deterministic(run.trace)
        assert report.wildcard_recvs == 0 and report.deterministic

    def test_nbody_manager_worker_deterministic(self):
        particles = plummer_sphere(96, dim=2, seed=0)
        run = Engine(paragon(4, protocol="nx"), record_trace=True).run(
            manager_worker_program, particles, 1
        )
        report = certify_deterministic(run.trace)
        assert report.wildcard_recvs == 0 and report.deterministic

    def test_pic_deterministic(self):
        particles = uniform_cube(256, thermal_speed=0.05, seed=0)
        run = Engine(paragon(4, protocol="nx"), record_trace=True).run(
            pic_program, Grid3D(8), particles, 1, collect=False
        )
        report = certify_deterministic(run.trace)
        assert report.wildcard_recvs == 0 and report.deterministic

    def test_accepts_prebuilt_graph(self):
        image = np.random.default_rng(0).normal(size=(64, 64))
        bank = filter_bank_for_length(2)
        decomp = StripeDecomposition(64, 64, 4, 1)
        run = Engine(paragon(4), record_trace=True).run(
            striped_wavelet_program, image, bank, 1, decomp
        )
        graph = HappensBeforeGraph(run.trace)
        assert certify_deterministic(graph).deterministic
        assert find_wildcard_races(graph) == []
