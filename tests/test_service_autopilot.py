"""Autopilot tests: capacity estimate, knee detection, loadsweep schema."""

import pytest

from repro.errors import ConfigurationError
from repro.service import (
    LOADSWEEP_SCHEMA,
    FixedOracle,
    JobTemplate,
    Mix,
    TenantProfile,
    detect_knee,
    estimate_capacity_rate,
    run_load_sweep,
    validate_loadsweep,
)


def flat_mix() -> Mix:
    """One tenant, one 4-node template — capacity math is closed-form."""
    return Mix(
        name="flat",
        tenants=(TenantProfile(name="solo", work=(("job", 1.0),)),),
        templates={"job": JobTemplate(name="job", nranks=4)},
    )


ORACLE = FixedOracle({"job": 0.5})


class TestCapacityEstimate:
    def test_closed_form(self):
        # Each arrival demands 4 nodes x 0.5 s = 2 node-seconds; 16 nodes
        # supply 16 node-seconds/s => 8 requests/s.
        assert estimate_capacity_rate(flat_mix(), ORACLE, 16) == pytest.approx(8.0)

    def test_scales_with_machine(self):
        assert estimate_capacity_rate(flat_mix(), ORACLE, 32) == pytest.approx(16.0)


class TestDetectKnee:
    def test_hockey_stick_finds_the_bend(self):
        loads = [0.25, 0.5, 1.0, 2.0, 4.0]
        turnarounds = [0.5, 0.5, 0.6, 4.0, 12.0]
        knee = detect_knee(loads, turnarounds, [False] * 5)
        assert knee["detected"] and knee["method"] == "kneedle-chord"
        # The chord construction flags the last point before the curve
        # shoots up — the highest still-flat load, not the blown-up one.
        assert knee["offered_load"] == 1.0

    def test_flat_curve_no_knee(self):
        loads = [0.25, 0.5, 1.0, 2.0]
        knee = detect_knee(loads, [0.5, 0.5, 0.5, 0.5], [False] * 4)
        assert not knee["detected"] and knee["method"] == "none"

    def test_backlog_divergence_fallback(self):
        loads = [0.5, 1.0, 2.0]
        # Linear curve (no curvature) but the last point went unstable.
        knee = detect_knee(loads, [1.0, 2.0, 4.0], [False, False, True])
        assert knee["detected"] and knee["method"] == "backlog-divergence"
        assert knee["offered_load"] == 2.0

    def test_instability_clamps_a_later_curvature_knee(self):
        loads = [0.25, 0.5, 1.0, 2.0, 4.0]
        turnarounds = [0.5, 0.5, 0.6, 4.0, 12.0]
        knee = detect_knee(loads, turnarounds, [False, True, False, False, False])
        assert knee["method"] == "backlog-divergence"
        assert knee["offered_load"] == 0.5

    def test_parallel_lists_enforced(self):
        with pytest.raises(ConfigurationError):
            detect_knee([1.0, 2.0], [0.5], [False])


class TestRunLoadSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_load_sweep(
            16,
            flat_mix(),
            ORACLE,
            multipliers=(0.25, 0.5, 1.0, 2.0, 4.0),
            seed=5,
            horizon_s=30.0,
        )

    def test_schema_and_validation(self, sweep):
        assert sweep["schema"] == LOADSWEEP_SCHEMA
        validate_loadsweep(sweep)  # no raise
        assert len(sweep["points"]) == 5

    def test_turnaround_grows_with_load(self, sweep):
        p99s = [p["p99_turnaround_s"] for p in sweep["points"]]
        assert p99s[-1] > 3.0 * p99s[0]

    def test_overload_points_flagged_unstable(self, sweep):
        assert not sweep["points"][0]["unstable"]
        assert sweep["points"][-1]["unstable"]

    def test_knee_detected_inside_the_grid(self, sweep):
        knee = sweep["knee"]
        assert knee["detected"]
        assert 0.25 < knee["offered_load"] <= 4.0
        assert knee["rate_s"] == pytest.approx(
            knee["offered_load"] * sweep["config"]["capacity_rate_s"]
        )

    def test_replay_identical(self, sweep):
        again = run_load_sweep(
            16,
            flat_mix(),
            ORACLE,
            multipliers=(0.25, 0.5, 1.0, 2.0, 4.0),
            seed=5,
            horizon_s=30.0,
        )
        assert again == sweep

    def test_grid_validation(self):
        with pytest.raises(ConfigurationError):
            run_load_sweep(16, flat_mix(), ORACLE, multipliers=(1.0,))
        with pytest.raises(ConfigurationError):
            run_load_sweep(16, flat_mix(), ORACLE, multipliers=(2.0, 1.0))


class TestValidateLoadsweep:
    def test_rejects_wrong_schema(self, ):
        with pytest.raises(ConfigurationError):
            validate_loadsweep({"schema": "bogus", "points": [], "config": {}})

    def test_rejects_descending_points(self):
        doc = run_load_sweep(
            16, flat_mix(), ORACLE, multipliers=(0.5, 1.0), horizon_s=10.0
        )
        doc["points"] = list(reversed(doc["points"]))
        doc["knee"]["index"] = 0
        doc["knee"]["offered_load"] = doc["points"][0]["offered_load"]
        with pytest.raises(ConfigurationError):
            validate_loadsweep(doc)

    def test_rejects_knee_point_mismatch(self):
        doc = run_load_sweep(
            16, flat_mix(), ORACLE, multipliers=(0.5, 1.0), horizon_s=10.0
        )
        doc["knee"]["offered_load"] = 99.0
        with pytest.raises(ConfigurationError):
            validate_loadsweep(doc)
