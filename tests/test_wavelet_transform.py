"""Tests for the 1-D and 2-D Mallat transform steps."""

import numpy as np
import pytest

from repro.data import checkerboard
from repro.errors import ConfigurationError
from repro.wavelet import (
    daubechies_filter,
    dwt_1d,
    haar_filter,
    idwt_1d,
    mallat_inverse_step_2d,
    mallat_step_2d,
    max_decomposition_levels,
)


@pytest.fixture
def image():
    return np.random.default_rng(42).random((32, 32)) * 255


class TestMallatStep2D:
    def test_subband_shapes(self, image):
        bands = mallat_step_2d(image, haar_filter())
        assert bands.shape == (16, 16)
        assert bands.ll.shape == bands.lh.shape == bands.hl.shape == bands.hh.shape

    def test_energy_conservation(self, image):
        for length in (2, 4, 8):
            bands = mallat_step_2d(image, daubechies_filter(length))
            assert bands.total_energy() == pytest.approx((image**2).sum(), rel=1e-12)

    def test_constant_image_has_no_detail(self):
        bands = mallat_step_2d(np.full((16, 16), 7.0), daubechies_filter(4))
        assert bands.detail_energy() == pytest.approx(0.0, abs=1e-18)
        np.testing.assert_allclose(bands.ll, np.full((8, 8), 14.0))  # gain 2

    def test_haar_ll_is_block_average(self, image):
        bands = mallat_step_2d(image, haar_filter())
        blocks = image.reshape(16, 2, 16, 2).sum(axis=(1, 3)) / 2.0
        np.testing.assert_allclose(bands.ll, blocks)

    def test_period2_checkerboard_is_pure_hh(self):
        # A period-2 checkerboard alternates every pixel: pure diagonal
        # detail under Haar.
        img = checkerboard((16, 16), period=1)
        bands = mallat_step_2d(img, haar_filter())
        assert np.abs(bands.lh).max() < 1e-10
        assert np.abs(bands.hl).max() < 1e-10
        assert np.abs(bands.hh).max() > 1.0

    def test_inverse_step_roundtrip(self, image):
        for length in (2, 4, 8):
            bank = daubechies_filter(length)
            bands = mallat_step_2d(image, bank)
            rec = mallat_inverse_step_2d(bands, bank)
            np.testing.assert_allclose(rec, image, atol=1e-10)

    def test_non_2d_raises(self):
        with pytest.raises(ConfigurationError):
            mallat_step_2d(np.ones(16), haar_filter())

    def test_separability(self, image):
        """Row-then-column filtering must match the direct 2-D outer-product
        transform (the separability assumption of Section 2)."""
        bank = daubechies_filter(4)
        from repro.wavelet.conv import analyze_axis

        lo_rows = analyze_axis(image, bank.lowpass, axis=1)
        expected_ll = analyze_axis(lo_rows, bank.lowpass, axis=0)
        np.testing.assert_allclose(mallat_step_2d(image, bank).ll, expected_ll)


class TestDwt1D:
    def test_roundtrip_multilevel(self):
        rng = np.random.default_rng(0)
        signal = rng.random(64)
        for length in (2, 4, 8):
            bank = daubechies_filter(length)
            approx, details = dwt_1d(signal, bank, levels=3)
            assert approx.shape == (8,)
            assert [d.shape for d in details] == [(32,), (16,), (8,)]
            np.testing.assert_allclose(idwt_1d(approx, details, bank), signal, atol=1e-10)

    def test_energy_conservation(self):
        signal = np.random.default_rng(1).random(64)
        bank = daubechies_filter(8)
        approx, details = dwt_1d(signal, bank, levels=2)
        energy = (approx**2).sum() + sum((d**2).sum() for d in details)
        assert energy == pytest.approx((signal**2).sum(), rel=1e-12)

    def test_zero_levels_raises(self):
        with pytest.raises(ConfigurationError):
            dwt_1d(np.ones(8), haar_filter(), levels=0)

    def test_2d_input_raises(self):
        with pytest.raises(ConfigurationError):
            dwt_1d(np.ones((4, 4)), haar_filter())

    def test_idwt_shape_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            idwt_1d(np.ones(4), [np.ones(8)], haar_filter())


class TestMaxLevels:
    def test_512_haar(self):
        assert max_decomposition_levels((512, 512), 2) == 9

    def test_512_daub8(self):
        # Stops once the running approximation would drop under 8 samples:
        # 512 -> 256 -> ... -> 8 is seven halvings.
        assert max_decomposition_levels((512, 512), 8) == 7

    def test_rectangular_limited_by_short_axis(self):
        assert max_decomposition_levels((512, 8), 2) == 3

    def test_odd_shape(self):
        assert max_decomposition_levels((7, 8), 2) == 0
