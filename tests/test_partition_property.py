"""Property tests for the buddy partition allocator.

Random interleavings of allocate/release must preserve the buddy
invariants: allocations never overlap, node counts are conserved, every
block is a power-of-two aligned to its size, and releasing everything
coalesces back to one maximal free block.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.errors import ConfigurationError
from repro.machines.network import FullyConnected
from repro.machines.partition import PartitionManager

MACHINE_NODES = 64

# A step is either an allocation of 2^k nodes or a release of the i-th
# oldest live partition (index taken modulo the live count).
steps = st.lists(
    st.one_of(
        st.tuples(st.just("alloc"), st.sampled_from([1, 2, 4, 8, 16, 32])),
        st.tuples(st.just("release"), st.integers(min_value=0, max_value=63)),
    ),
    max_size=60,
)


def drive(manager: PartitionManager, sequence):
    """Apply a step sequence; returns the list of live partitions."""
    live = []
    for action, value in sequence:
        if action == "alloc":
            try:
                live.append(manager.allocate(value))
            except ConfigurationError:
                pass  # full or fragmented: a legal outcome, not a bug
        elif live:
            live.sort(key=lambda p: p.ticket)
            manager.release(live.pop(value % len(live)))
    return live


@settings(max_examples=200, deadline=None)
@given(sequence=steps)
def test_live_partitions_never_overlap(sequence):
    manager = PartitionManager(FullyConnected(MACHINE_NODES))
    live = drive(manager, sequence)
    seen = set()
    for partition in live:
        nodes = set(partition.nodes)
        assert not (nodes & seen), "two live partitions share a node"
        seen |= nodes


@settings(max_examples=200, deadline=None)
@given(sequence=steps)
def test_node_conservation(sequence):
    manager = PartitionManager(FullyConnected(MACHINE_NODES))
    live = drive(manager, sequence)
    allocated = sum(p.size for p in live)
    assert allocated + manager.free_nodes == manager.usable_nodes
    assert manager.allocated_partitions == len(live)


@settings(max_examples=200, deadline=None)
@given(sequence=steps)
def test_blocks_are_aligned_powers_of_two(sequence):
    manager = PartitionManager(FullyConnected(MACHINE_NODES))
    for partition in drive(manager, sequence):
        size = partition.size
        assert size & (size - 1) == 0, "partition size is not a power of two"
        start = partition.nodes[0]
        assert start % size == 0, "buddy block is misaligned"
        assert partition.nodes == tuple(range(start, start + size))


@settings(max_examples=200, deadline=None)
@given(sequence=steps)
def test_full_release_coalesces_to_one_block(sequence):
    manager = PartitionManager(FullyConnected(MACHINE_NODES))
    live = drive(manager, sequence)
    for partition in live:
        manager.release(partition)
    assert manager.free_nodes == manager.usable_nodes
    assert manager.largest_free_block() == manager.usable_nodes
    assert manager.allocated_partitions == 0


@settings(max_examples=50, deadline=None)
@given(
    nodes=st.integers(min_value=1, max_value=200),
    request=st.sampled_from([1, 2, 4, 8]),
)
def test_usable_nodes_is_power_of_two_floor(nodes, request):
    manager = PartitionManager(FullyConnected(nodes))
    usable = manager.usable_nodes
    assert usable & (usable - 1) == 0
    assert usable <= nodes < usable * 2
    if request <= usable:
        partition = manager.allocate(request)
        assert max(partition.nodes) < usable


def test_non_power_of_two_request_rejected():
    manager = PartitionManager(FullyConnected(MACHINE_NODES))
    with pytest.raises(ConfigurationError):
        manager.allocate(3)


def test_double_release_rejected():
    manager = PartitionManager(FullyConnected(MACHINE_NODES))
    partition = manager.allocate(4)
    manager.release(partition)
    with pytest.raises(ConfigurationError):
        manager.release(partition)
