"""Tests for the DWT operation-count cost model."""

import pytest

from repro.errors import ConfigurationError
from repro.wavelet.cost import OpCount, dwt_level_cost, dwt_total_cost, filter_pass_cost


class TestOpCount:
    def test_add(self):
        total = OpCount(1, 2, 3) + OpCount(10, 20, 30)
        assert (total.flops, total.intops, total.memops) == (11, 22, 33)

    def test_scale(self):
        scaled = OpCount(1, 2, 3) * 2
        assert (scaled.flops, scaled.intops, scaled.memops) == (2, 4, 6)
        scaled = 3 * OpCount(1, 0, 0)
        assert scaled.flops == 3

    def test_total(self):
        assert OpCount(1, 2, 3).total() == 6

    def test_default_is_zero(self):
        assert OpCount().total() == 0


class TestFilterPassCost:
    def test_flops_formula(self):
        cost = filter_pass_cost(100, 8)
        assert cost.flops == 100 * 15  # m multiplies + m-1 adds

    def test_memops_formula(self):
        cost = filter_pass_cost(100, 4)
        assert cost.memops == 100 * 5  # m reads + 1 write

    def test_zero_outputs(self):
        assert filter_pass_cost(0, 8).total() == 0

    def test_negative_outputs_raise(self):
        with pytest.raises(ConfigurationError):
            filter_pass_cost(-1, 2)

    def test_zero_filter_raises(self):
        with pytest.raises(ConfigurationError):
            filter_pass_cost(10, 0)


class TestLevelCost:
    def test_level_output_count(self):
        # One level emits 2*r*c filtered samples (row pass r*c, col pass r*c).
        cost = dwt_level_cost(8, 8, 2)
        per_sample = filter_pass_cost(1, 2)
        assert cost.flops == 2 * 64 * per_sample.flops

    def test_odd_shape_raises(self):
        with pytest.raises(ConfigurationError):
            dwt_level_cost(7, 8, 2)


class TestTotalCost:
    def test_single_level_equals_level_cost(self):
        assert dwt_total_cost(16, 16, 4, 1).flops == dwt_level_cost(16, 16, 4).flops

    def test_levels_accumulate_geometrically(self):
        one = dwt_total_cost(16, 16, 2, 1).flops
        two = dwt_total_cost(16, 16, 2, 2).flops
        assert two == one + dwt_level_cost(8, 8, 2).flops
        # Each extra level adds a quarter of the previous level's work.
        assert two < 1.3 * one

    def test_paper_configuration_ordering(self):
        """F8/L1 must out-cost F4/L2 which out-costs F2/L4 — the compute
        ordering behind Table 1's rows."""
        f8l1 = dwt_total_cost(512, 512, 8, 1).total()
        f4l2 = dwt_total_cost(512, 512, 4, 2).total()
        f2l4 = dwt_total_cost(512, 512, 2, 4).total()
        assert f8l1 > f4l2 > f2l4

    def test_zero_levels_raises(self):
        with pytest.raises(ConfigurationError):
            dwt_total_cost(16, 16, 2, 0)
