"""Appendix B Figures 4-6 (Paragon) and 16-18 (T3D): N-body performance
budgets at 1K, 4K, and 32K bodies.

Expected shapes: communication and imbalance shares grow with processor
count (the manager-worker focal point), the overheads amortize as the
problem grows, redundancy stays minimal, and the T3D budgets show a
smaller useful-work share than the Paragon's at equal size ("the ratio of
the useful work is again small as compared to the Paragon due to the
fast processor").
"""

from __future__ import annotations

import pytest

from repro.data import plummer_sphere
from repro.machines import paragon as _paragon
from repro.machines import t3d
from repro.nbody import run_parallel_nbody
from repro.perf import format_budget, format_table

from conftest import scaled

RANK_COUNTS = (2, 8, 32)
SIZES = (1024, 4096, 32768)


def paragon(nranks):
    """Appendix B ran the Paragon codes over NX, not PVM."""
    return _paragon(nranks, protocol="nx")


def _budgets(machine_factory, size):
    particles = plummer_sphere(scaled(size), dim=2, seed=0)
    out = {}
    for nranks in RANK_COUNTS:
        outcome = run_parallel_nbody(machine_factory(nranks), particles.copy(), steps=1)
        out[nranks] = outcome.run
    return out


@pytest.mark.parametrize("machine_name", ["paragon", "t3d"])
def test_nbody_budgets(benchmark, artifact, machine_name):
    factory = {"paragon": paragon, "t3d": t3d}[machine_name]
    figures = {"paragon": "figs4-6", "t3d": "figs16-18"}[machine_name]

    def run():
        return {size: _budgets(factory, size) for size in SIZES}

    budgets = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    sections = []
    for size in SIZES:
        for nranks, run_result in budgets[size].items():
            fractions = run_result.mean_budget().fractions()
            rows.append(
                [
                    f"{size // 1024}K",
                    nranks,
                    f"{fractions['work']:.2f}",
                    f"{fractions['comm']:.2f}",
                    f"{fractions['redundancy']:.3f}",
                    f"{fractions['imbalance']:.2f}",
                ]
            )
        sections.append(
            format_budget(
                f"{size // 1024}K bodies, P=32", budgets[size][32]
            )
        )
    artifact(
        f"appendixB_{figures}_nbody_budget_{machine_name}",
        format_table(
            f"Appendix B {figures}: N-body performance budget ({machine_name})",
            ["size", "P", "work", "comm", "redund", "imbal"],
            rows,
        )
        + "\n\n" + "\n\n".join(sections),
    )

    small = budgets[SIZES[0]]
    large = budgets[SIZES[-1]]
    # The overhead *share* grows with P at fixed size ...
    def overhead_share(run_result):
        fractions = run_result.mean_budget().fractions()
        return fractions["comm"] + fractions["imbalance"]

    assert overhead_share(small[32]) > overhead_share(small[2])
    # ... and amortizes with problem size at fixed P.
    frac_small = small[32].mean_budget().fractions()
    frac_large = large[32].mean_budget().fractions()
    assert frac_large["work"] > frac_small["work"]
    # Redundancy is minimal in all cases (the paper's repeated observation).
    for size in SIZES:
        for nranks in RANK_COUNTS:
            assert budgets[size][nranks].mean_budget().fractions()["redundancy"] < 0.1


def test_t3d_work_share_below_paragon(benchmark, artifact):
    def run():
        out = {}
        particles = plummer_sphere(scaled(4096), dim=2, seed=0)
        for name, factory in [("paragon", paragon), ("t3d", t3d)]:
            outcome = run_parallel_nbody(factory(16), particles.copy(), steps=1)
            out[name] = outcome.run.mean_budget().fractions()["work"]
        return out

    shares = benchmark.pedantic(run, rounds=1, iterations=1)
    artifact(
        "appendixB_nbody_work_share_t3d_vs_paragon",
        f"useful-work share at 4K bodies, P=16: paragon {shares['paragon']:.2f}, "
        f"t3d {shares['t3d']:.2f}",
    )
    assert shares["t3d"] < shares["paragon"]
