"""Appendix A Figures 5-7: Paragon wavelet-decomposition scalability.

Each figure sweeps processor counts for one filter/levels configuration
(F8/L1, F4/L2, F2/L4) and compares the snake-like placement against the
straightforward row-major placement.  Two timed regions are reported:

* **staged** — includes shipping the image from node 0 and collecting the
  subbands (matches the absolute times of Table 1; this is the saturating
  curve shape of the paper's figures), and
* **decomposition-only** — the per-level compute + guard-exchange region,
  where the dimension-routing conflicts of the naive placement are
  isolated from the placement-insensitive staging traffic.

Expected shape (the paper's findings): speedup saturates well below
linear, degrades as decomposition levels increase, and the naive
placement falls behind the snake placement beyond 4 processors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import landsat_like_scene
from repro.machines import paragon
from repro.perf import format_speedup_series
from repro.wavelet import filter_bank_for_length
from repro.wavelet.parallel import run_spmd_wavelet

RANK_COUNTS = (1, 2, 4, 8, 16, 32)
CONFIGS = {"fig5": (8, 1), "fig6": (4, 2), "fig7": (2, 4)}


@pytest.fixture(scope="module")
def image():
    return landsat_like_scene((512, 512))


def _sweep(image, filter_length, levels, staged: bool):
    bank = filter_bank_for_length(filter_length)
    series = {}
    for placement in ("snake", "naive"):
        times = {}
        for nranks in RANK_COUNTS:
            outcome = run_spmd_wavelet(
                paragon(nranks, placement),
                image,
                bank,
                levels,
                distribute=staged,
                collect=staged,
            )
            times[nranks] = outcome.run.elapsed_s
        series[placement] = [(n, times[1] / times[n]) for n in RANK_COUNTS]
    return series


@pytest.mark.parametrize("fig", ["fig5", "fig6", "fig7"])
def test_paragon_scaling(benchmark, artifact, image, fig):
    filter_length, levels = CONFIGS[fig]

    def run():
        return (
            _sweep(image, filter_length, levels, staged=True),
            _sweep(image, filter_length, levels, staged=False),
        )

    staged, bare = benchmark.pedantic(run, rounds=1, iterations=1)

    text = format_speedup_series(
        f"Appendix A {fig.upper()}: Paragon speedup, filter {filter_length}, "
        f"{levels} level(s) [staged region]",
        staged,
    )
    text += "\n" + format_speedup_series(
        "  decomposition-only region (placement contrast)", bare
    )
    artifact(f"appendixA_{fig}_paragon_scaling", text)

    staged_snake = dict(staged["snake"])
    bare_snake = dict(bare["snake"])
    bare_naive = dict(bare["naive"])
    # Speedup must grow but saturate well below linear in the staged region.
    assert staged_snake[32] > staged_snake[4] > 1.0
    assert staged_snake[32] < 16
    # Placement conflict: naive placement loses to snake beyond 4 procs in
    # the decomposition region (Section 5.1's central finding).
    assert bare_naive[32] <= bare_snake[32] + 1e-9
    assert bare_naive[4] == pytest.approx(bare_snake[4], rel=0.02)


def test_speedup_drops_with_levels(benchmark, artifact, image):
    """The cross-figure observation: 'with the increase in communications
    requirements, due to the increase in the levels of decomposition, the
    speedup curve continues to drop'."""

    def run():
        out = {}
        for fig, (filter_length, levels) in CONFIGS.items():
            bank = filter_bank_for_length(filter_length)
            t1 = run_spmd_wavelet(paragon(1), image, bank, levels).run.elapsed_s
            t32 = run_spmd_wavelet(paragon(32), image, bank, levels).run.elapsed_s
            out[f"F{filter_length}/L{levels}"] = t1 / t32
        return out

    speedups = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = "\n".join(f"  {k}: speedup(32) = {v:.2f}" for k, v in speedups.items())
    artifact("appendixA_speedup_vs_levels", "Speedup at 32 procs by config\n" + rows)
    assert speedups["F8/L1"] > speedups["F2/L4"]
