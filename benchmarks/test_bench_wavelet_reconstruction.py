"""Extension bench: parallel wavelet *reconstruction* (Figure 2's reverse
process) on both machine families, and the end-to-end
decompose-plus-reconstruct pipeline the paper's multimedia discussion
implies (real-time processing needs both directions).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import landsat_like_scene
from repro.machines import paragon
from repro.machines.simd import MasParMachine, maspar_mp2
from repro.perf import format_table
from repro.wavelet import daubechies_filter, mallat_decompose_2d
from repro.wavelet.parallel import (
    run_spmd_reconstruct,
    run_spmd_wavelet,
    simd_mallat_decompose,
    simd_mallat_reconstruct,
)


def test_reconstruction_scaling(benchmark, artifact):
    image = landsat_like_scene((512, 512))
    bank = daubechies_filter(8)
    pyramid = mallat_decompose_2d(image, bank, levels=2)

    def run():
        times = {}
        for nranks in (1, 4, 16, 32):
            outcome = run_spmd_reconstruct(paragon(nranks), pyramid, bank)
            assert np.allclose(outcome.image, image, atol=1e-8)
            times[nranks] = outcome.run.elapsed_s
        machine = MasParMachine(maspar_mp2(), "hierarchical")
        _, _, simd_time = simd_mallat_reconstruct(machine, pyramid, bank)
        return times, simd_time

    times, simd_time = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[f"paragon-{n}", t, times[1] / t] for n, t in times.items()]
    rows.append(["maspar-mp2", simd_time, times[1] / simd_time])
    artifact(
        "extension_reconstruction_scaling",
        format_table(
            "Parallel reconstruction, 512x512 daub8 2 levels (verified exact)",
            ["machine", "time_s", "speedup_vs_P1"],
            rows,
        ),
    )
    assert times[32] < times[4] < times[1]
    assert simd_time < times[32]  # the SIMD array still dominates


def test_end_to_end_pipeline(benchmark, artifact):
    """Round trip entirely on the simulated Paragon: decompose (keeping
    data distributed) then reconstruct."""
    image = landsat_like_scene((512, 512))
    bank = daubechies_filter(4)

    def run():
        out = {}
        for nranks in (4, 16):
            forward = run_spmd_wavelet(paragon(nranks), image, bank, 2)
            backward = run_spmd_reconstruct(paragon(nranks), forward.pyramid, bank)
            assert np.allclose(backward.image, image, atol=1e-8)
            out[nranks] = (forward.run.elapsed_s, backward.run.elapsed_s)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [n, fwd, bwd, fwd + bwd] for n, (fwd, bwd) in results.items()
    ]
    artifact(
        "extension_roundtrip_pipeline",
        format_table(
            "Decompose + reconstruct round trip on the Paragon (daub4, 2 levels)",
            ["P", "decompose_s", "reconstruct_s", "total_s"],
            rows,
        ),
    )
    for fwd, bwd in results.values():
        # Analysis and synthesis cost the same arithmetic; total times are
        # within 2x of each other.
        assert 0.5 < bwd / fwd < 2.0
