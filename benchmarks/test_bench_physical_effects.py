"""Appendix B Section 5.4 'physical effects': partition-position-dependent
execution speed.

The paper: "processors that are physically closer to the cooling system
tend to run slower than those that are farther away ... Up to 7%
variability in execution time was observed."  With the cooling-gradient
model enabled, the same 4-node N-body job is timed on partitions at
different cabinet rows, and a 32-node run shows the gradient surfacing as
imbalance overhead.
"""

from __future__ import annotations

import pytest

from repro.data import plummer_sphere
from repro.machines import Engine, Machine, cooling_gradient_factors, paragon
from repro.machines.cpu import CpuModel
from repro.machines.network import ContentionNetwork, Mesh2D
from repro.machines.specs import paragon_cpu
from repro.nbody import run_parallel_nbody
from repro.perf import format_table

from conftest import scaled


def _partition_machine(first_node: int) -> Machine:
    factors = cooling_gradient_factors(variability=0.07)
    return Machine(
        name=f"partition@{first_node}",
        cpu=paragon_cpu(),
        network=ContentionNetwork(
            topology=Mesh2D(4, 16), latency_s=120e-6, per_hop_s=2e-6, bytes_per_s=30e6
        ),
        placement=[first_node + i for i in range(4)],
        sw_send_overhead_s=50e-6,
        sw_recv_overhead_s=50e-6,
        copy_bytes_per_s=100e6,
        speed_factors=factors,
    )


def test_partition_position_variability(benchmark, artifact):
    particles = plummer_sphere(scaled(2048), dim=2, seed=0)

    def run():
        out = {}
        for row, first_node in [(0, 0), (7, 28), (15, 60)]:
            outcome = run_parallel_nbody(
                _partition_machine(first_node), particles.copy(), steps=1
            )
            out[row] = outcome.run.elapsed_s
        return out

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    variability = times[0] / times[15] - 1.0
    artifact(
        "appendixB_sec54_physical_effects",
        format_table(
            "Same 4-node N-body job on partitions at different cabinet rows",
            ["cabinet_row", "time_s", "vs_row15"],
            [[row, t, f"{t / times[15]:.3f}x"] for row, t in times.items()],
        )
        + f"\nobserved variability: {variability:.1%} (paper: up to 7%)",
    )

    # Row 0 (next to the cooling system) is slowest, row 15 fastest.
    assert times[0] > times[7] > times[15]
    assert 0.03 < variability <= 0.08


def test_gradient_creates_imbalance_within_one_job(benchmark, artifact):
    """A 32-rank job spanning 8 cabinet rows picks up imbalance overhead
    purely from the thermal gradient."""
    particles = plummer_sphere(scaled(4096), dim=2, seed=1)

    def run():
        uniform = run_parallel_nbody(
            paragon(32, protocol="nx"), particles.copy(), steps=1
        )
        graded = run_parallel_nbody(
            paragon(32, protocol="nx", cooling_variability=0.07),
            particles.copy(),
            steps=1,
        )
        return uniform.run, graded.run

    uniform, graded = benchmark.pedantic(run, rounds=1, iterations=1)
    artifact(
        "appendixB_sec54_gradient_imbalance",
        f"32-rank N-body imbalance share: uniform "
        f"{uniform.mean_budget().fractions()['imbalance']:.3f}, thermally "
        f"graded {graded.mean_budget().fractions()['imbalance']:.3f}",
    )
    assert (
        graded.mean_budget().imbalance_s > uniform.mean_budget().imbalance_s
    )
    assert graded.elapsed_s > uniform.elapsed_s
