"""Appendix C extension: the centroid as a functional-unit requirement
predictor.

Section 3 claims the centroid "represents the functional units types and
average number of them needed in the target machine in order to sustain a
performance rate close to the machine's peak rate".  For each NAS-like
kernel this benchmark provisions an abstract superscalar at exactly the
centroid and measures the sustained rate against the oracle's, then
perturbs the configuration to show the prediction is tight in the
dominant category and slack in rare ones.
"""

from __future__ import annotations

import pytest

from repro.perf import format_table
from repro.workload import (
    nas_suite,
    oracle_schedule,
    required_units,
    sustained_rate,
)


def test_centroid_predicts_machine_fit(benchmark, artifact):
    def run():
        rows = []
        for trace in nas_suite(0.5):
            schedule = oracle_schedule(trace)
            units = required_units(schedule.workload)
            achieved = sustained_rate(trace, units)
            starved = dict(units)
            starved["intops"] = max(1, units["intops"] // 4)
            degraded = sustained_rate(trace, starved)
            rows.append(
                (
                    trace.name,
                    schedule.average_parallelism,
                    achieved,
                    achieved / schedule.average_parallelism,
                    degraded / achieved,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    artifact(
        "appendixC_machine_fit",
        format_table(
            "Centroid-provisioned machines: sustained ops/cycle vs oracle",
            ["kernel", "oracle_rate", "achieved", "fraction", "int/4_ratio"],
            [
                [name, f"{o:.1f}", f"{a:.1f}", f"{f:.2f}", f"{d:.2f}"]
                for name, o, a, f, d in rows
            ],
        ),
    )

    fractions = {name: f for name, _, _, f, _ in rows}
    degradations = {name: d for name, _, _, _, d in rows}
    # Smooth kernels sustain a large share of their oracle rate on a
    # centroid-sized machine (the smoothability connection).
    assert fractions["mgrid"] > 0.85
    assert fractions["applu"] > 0.8
    # Every kernel sustains a majority of its rate.
    for name, fraction in fractions.items():
        assert fraction > 0.5, name
    # Quartering the dominant (integer) units hurts every kernel.
    for name, degradation in degradations.items():
        assert degradation < 0.95, name
