"""Appendix C Tables 7-9 over the NAS-like synthetic suite:

* Table 7 — per-kernel parallel-instruction centroids,
* Table 8 — the pairwise similarity matrix,
* Table 9 — smoothability, critical paths, and average operation delay.

The synthetic generators preserve the suite's *structure* (operation
mixes, parallelism ladder, dependence topologies) rather than the exact
1995 trace magnitudes; the assertions check the orderings and headline
comparisons the paper draws from each table.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.perf import format_table
from repro.workload import (
    INSTRUCTION_TYPES,
    nas_suite,
    oracle_schedule,
    similarity,
    similarity_matrix,
    smoothability,
)


def test_table7_centroids(benchmark, artifact):
    def run():
        suite = nas_suite()
        return {t.name: oracle_schedule(t).workload for t in suite}

    workloads = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, workload in workloads.items():
        values = workload.centroid()
        rows.append([name] + [f"{v:.2f}" for v in values])
    artifact(
        "appendixC_table7_centroids",
        format_table(
            "Appendix C Table 7: NAS-like workload centroids",
            ["kernel"] + list(INSTRUCTION_TYPES),
            rows,
        ),
    )

    centroids = {name: w.centroid() for name, w in workloads.items()}
    idx = {t: i for i, t in enumerate(INSTRUCTION_TYPES)}
    # Every kernel's dominant category is integer or memory ops (Table 7).
    for name, c in centroids.items():
        assert np.argmax(c) in (idx["intops"], idx["memops"]), name
    # Magnitude ladder (average total width).
    totals = {name: c.sum() for name, c in centroids.items()}
    assert totals["buk"] < totals["cgm"] < totals["embar"]
    assert totals["appsp"] == max(totals.values())
    # fftpde carries visible control-op weight; buk essentially none.
    assert centroids["fftpde"][idx["controlops"]] > centroids["buk"][idx["controlops"]]


def test_table8_similarity_matrix(benchmark, artifact):
    def run():
        suite = nas_suite()
        names = [t.name for t in suite]
        workloads = [oracle_schedule(t).workload for t in suite]
        return names, similarity_matrix(workloads)

    names, matrix = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for i, name in enumerate(names):
        rows.append([name] + [f"{matrix[i, j]:.3f}" for j in range(i + 1)])
    artifact(
        "appendixC_table8_similarity",
        format_table(
            "Appendix C Table 8: pairwise similarity (0=identical)",
            ["kernel"] + names,
            rows,
        ),
    )

    def sim(a, b):
        return matrix[names.index(a), names.index(b)]

    # The paper's headline readings of Table 8:
    # buk & cgm are relatively similar despite different application areas,
    assert sim("buk", "cgm") < 0.55
    # embar & fftpde likewise,
    assert sim("embar", "fftpde") < 0.65
    # while cgm and the wide CFD codes are near-orthogonal in magnitude,
    assert sim("cgm", "appsp") > 0.9
    assert sim("cgm", "fftpde") > 0.85
    # and the suite spans a wide range (non-redundant benchmark design).
    upper = matrix[np.triu_indices(len(names), k=1)]
    assert upper.min() < 0.45 and upper.max() > 0.9


def test_table9_smoothability(benchmark, artifact):
    def run():
        return [smoothability(t) for t in nas_suite()]

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [
            r.name,
            f"{r.smoothability:.4f}",
            r.cpl_unlimited,
            f"{r.average_parallelism:.1f}",
            r.cpl_limited,
            f"{r.average_delay:.1f}",
        ]
        for r in results
    ]
    artifact(
        "appendixC_table9_smoothability",
        format_table(
            "Appendix C Table 9: smoothability and finite-processor effects",
            ["kernel", "smooth", "CPL(inf)", "P_avg", "CPL(P_avg)", "avg_delay"],
            rows,
        ),
    )

    by_name = {r.name: r for r in results}
    # The stencil kernel is the smoothest; every kernel lands in the
    # paper's observed range (~0.6 - 1.0).
    values = {name: r.smoothability for name, r in by_name.items()}
    assert values["mgrid"] == max(values.values())
    assert values["mgrid"] > 0.9
    for name, value in values.items():
        assert 0.5 < value <= 1.0, name
    # Smooth workloads delay operations less than bursty ones.
    assert by_name["mgrid"].average_delay < by_name["buk"].average_delay
    # CPL never shrinks under a finite machine.
    for r in results:
        assert r.cpl_limited >= r.cpl_unlimited
