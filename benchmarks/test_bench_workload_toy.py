"""Appendix C Section 4 / Tables 1-4: the five-workload toy comparison of
the parallelism-matrix technique vs the parallel-instruction vector-space
model.

The readable cells of the source tables are asserted numerically; the
section's two qualitative findings are asserted structurally:

* the parallelism-matrix metric saturates whenever two workloads share no
  identical parallel instruction, and
* the vector-space metric keeps discriminating (WL1 & WL5 score as very
  similar despite having zero identical instructions).
"""

from __future__ import annotations

import pytest

from repro.perf import format_table
from repro.workload import frobenius_similarity, similarity, toy_workloads

PAIRS = [(0, 1), (0, 2), (0, 3), (0, 4), (2, 3)]
PAPER_VECTOR = {(0, 1): 0.45318, (0, 2): 0.8425, (0, 3): 0.8751, (0, 4): 0.1804, (2, 3): 0.65}
PAPER_MATRIX = {(0, 1): 0.424, (0, 2): 0.549, (0, 3): 0.549, (0, 4): 0.549, (2, 3): 0.549}


def test_toy_workload_comparison(benchmark, artifact):
    def run():
        toys = toy_workloads()
        out = {}
        for a, b in PAIRS:
            out[(a, b)] = (
                similarity(toys[a], toys[b]),
                frobenius_similarity(toys[a], toys[b]),
            )
        return out

    measured = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for (a, b), (vector, matrix) in measured.items():
        rows.append(
            [
                f"WL{a + 1} & WL{b + 1}",
                f"{vector:.4f}",
                PAPER_VECTOR[(a, b)],
                f"{matrix:.4f}",
                PAPER_MATRIX[(a, b)],
            ]
        )
    artifact(
        "appendixC_tables1-4_toy_similarity",
        format_table(
            "Appendix C Tables 1-4: similarity, measured vs paper "
            "(0=identical, 1=orthogonal)",
            ["pair", "vector", "paper", "matrix", "paper"],
            rows,
        ),
    )

    # Readable paper cells reproduce numerically.
    assert measured[(0, 1)][0] == pytest.approx(0.45318, abs=5e-4)
    assert measured[(0, 1)][1] == pytest.approx(0.424, abs=2e-3)
    assert measured[(0, 2)][0] == pytest.approx(0.8425, abs=5e-3)
    assert measured[(0, 3)][0] == pytest.approx(0.8751, abs=5e-3)

    # Structural findings.
    vector_wl15, matrix_wl15 = measured[(0, 4)]
    assert vector_wl15 < 0.2  # near-identical centroids
    assert matrix_wl15 > 0.5  # but no identical PIs: matrix stays high
    # The matrix metric cannot separate WL1&WL3 from WL1&WL4 meaningfully
    # more than the vector-space model separates them.
    assert abs(measured[(0, 2)][0] - measured[(0, 3)][0]) < 0.1
