"""N-body design-choice ablations called out in DESIGN.md:

* opening angle theta — the accuracy/cost frontier of the Barnes-Hut
  approximation (force error vs interaction count),
* costzones vs ORB partitioning — load balance achieved at equal rank
  counts (the paper picked costzones for its simplicity at comparable
  balance),
* manager-worker vs replicated worker-worker — the communication /
  redundancy trade of Section 5.3.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import plummer_sphere
from repro.machines import paragon as _paragon
from repro.nbody import (
    build_tree,
    costzones_partition,
    direct_forces,
    orb_partition,
    partition_balance,
    run_parallel_nbody,
    tree_forces,
)
from repro.perf import format_table

from conftest import scaled


def paragon(nranks):
    return _paragon(nranks, protocol="nx")


def test_theta_accuracy_cost_frontier(benchmark, artifact):
    particles = plummer_sphere(scaled(4096), dim=2, seed=0)

    def run():
        tree = build_tree(particles.positions, particles.masses)
        exact = direct_forces(particles.positions, particles.masses).accelerations
        out = []
        for theta in (0.2, 0.4, 0.6, 0.8, 1.2):
            result = tree_forces(
                tree, particles.positions, particles.masses, theta=theta
            )
            errors = np.linalg.norm(
                result.accelerations - exact, axis=1
            ) / np.linalg.norm(exact, axis=1)
            out.append(
                (theta, result.total_interactions / particles.n, float(np.median(errors)))
            )
        return out

    frontier = benchmark.pedantic(run, rounds=1, iterations=1)
    artifact(
        "ablation_nbody_theta",
        format_table(
            "Barnes-Hut theta frontier (median relative force error vs "
            "interactions per body)",
            ["theta", "inter/body", "median_err"],
            [[t, f"{i:.0f}", f"{e:.2e}"] for t, i, e in frontier],
        ),
    )
    thetas, inters, errors = zip(*frontier)
    # Cost decreases and error increases monotonically with theta.
    assert list(inters) == sorted(inters, reverse=True)
    assert list(errors) == sorted(errors)
    assert errors[0] < 3e-3 and inters[-1] < inters[0] / 3


def test_multipole_order_ablation(benchmark, artifact):
    """Monopole vs quadrupole expansions (the paper's 'perhaps with
    quadrupole and higher moments' aside): same acceptance test and
    interaction count, lower error — or equivalently, the same error at a
    much larger theta."""
    particles = plummer_sphere(scaled(4096), dim=2, seed=3)

    def run():
        exact = direct_forces(particles.positions, particles.masses).accelerations
        rows = []
        for multipole in ("monopole", "quadrupole"):
            tree = build_tree(
                particles.positions, particles.masses, multipole=multipole
            )
            for theta in (0.5, 0.8):
                result = tree_forces(
                    tree, particles.positions, particles.masses, theta=theta
                )
                errors = np.linalg.norm(
                    result.accelerations - exact, axis=1
                ) / np.linalg.norm(exact, axis=1)
                rows.append(
                    (
                        multipole,
                        theta,
                        result.total_interactions / particles.n,
                        float(np.median(errors)),
                    )
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    artifact(
        "ablation_nbody_multipole",
        format_table(
            "Multipole order vs accuracy (median relative force error)",
            ["multipole", "theta", "inter/body", "median_err"],
            [[m, t, f"{i:.0f}", f"{e:.2e}"] for m, t, i, e in rows],
        ),
    )
    errors = {(m, t): e for m, t, _, e in rows}
    inters = {(m, t): i for m, t, i, _ in rows}
    for theta in (0.5, 0.8):
        assert errors[("quadrupole", theta)] < 0.5 * errors[("monopole", theta)]
        assert inters[("quadrupole", theta)] == inters[("monopole", theta)]
    # Quadrupole at theta=0.8 rivals monopole at theta=0.5 while doing
    # far fewer interactions: accuracy for free.
    assert errors[("quadrupole", 0.8)] < 2.0 * errors[("monopole", 0.5)]
    assert inters[("quadrupole", 0.8)] < 0.7 * inters[("monopole", 0.5)]


def test_costzones_vs_orb_balance(benchmark, artifact):
    particles = plummer_sphere(scaled(8192), dim=2, seed=1)

    def run():
        tree = build_tree(particles.positions, particles.masses)
        costs = tree_forces(
            tree, particles.positions, particles.masses, theta=0.6
        ).interactions.astype(float)
        rows = []
        for nranks in (4, 8, 16, 32):
            cz = partition_balance(costzones_partition(tree, costs, nranks), costs)
            ob = partition_balance(
                orb_partition(particles.positions, costs, nranks), costs
            )
            rows.append((nranks, cz, ob))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    artifact(
        "ablation_nbody_partition",
        format_table(
            "Load balance (max/mean zone cost; 1.0 = perfect) on a "
            "centrally concentrated cluster",
            ["P", "costzones", "ORB"],
            [[n, f"{c:.3f}", f"{o:.3f}"] for n, c, o in rows],
        ),
    )
    # Costzones balances the previous step's measured costs well at every P
    # (the paper: "divide the workload equally among the processors").
    for _, cz, _ in rows:
        assert cz < 1.35


def test_manager_worker_vs_replicated(benchmark, artifact):
    particles = plummer_sphere(scaled(4096), dim=2, seed=2)

    def run():
        out = {}
        for model in ("manager_worker", "replicated"):
            outcome = run_parallel_nbody(
                paragon(16), particles.copy(), steps=2, model=model
            )
            out[model] = outcome.run
        return out

    runs = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for model, run_result in runs.items():
        budget = run_result.mean_budget()
        rows.append(
            [
                model,
                run_result.elapsed_s,
                run_result.bytes_sent // 1024,
                f"{budget.comm_s:.3f}",
                f"{budget.redundancy_s:.3f}",
            ]
        )
    artifact(
        "ablation_nbody_model",
        format_table(
            "Manager-worker vs replicated worker-worker (P=16, 2 steps)",
            ["model", "time_s", "KB_sent", "comm_s", "redund_s"],
            rows,
        ),
    )
    mw = runs["manager_worker"]
    rep = runs["replicated"]
    # The Section 5.3 trade: replication moves cost from wires to CPUs.
    assert rep.bytes_sent < mw.bytes_sent
    assert rep.mean_budget().redundancy_s > mw.mean_budget().redundancy_s
