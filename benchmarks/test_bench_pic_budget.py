"""Appendix B Figures 11-14 (Paragon) and 22-25 (T3D): PIC performance
budgets for 256K and 2M particles on the 32^3 and 64^3 grids.

Expected shapes (Section 4.2.2): the communication share "grows quickly
with increasing grid size and becomes the dominant activity when the data
size is not large enough"; overhead amortizes from 256K to 2M particles;
redundancy stays small; imbalance is negligibly small; and the T3D
budgets carry smaller useful-work shares than the Paragon's (the PVM
penalty plus the faster processor).
"""

from __future__ import annotations

import pytest

from repro.data import uniform_cube
from repro.machines import paragon as _paragon
from repro.machines import t3d
from repro.perf import format_table
from repro.pic import Grid3D, run_parallel_pic

from conftest import scaled

FIGS = {
    ("paragon", 262144, 32): "fig11",
    ("paragon", 2097152, 32): "fig12",
    ("paragon", 262144, 64): "fig13",
    ("paragon", 2097152, 64): "fig14",
    ("t3d", 262144, 32): "fig22",
    ("t3d", 2097152, 32): "fig23",
    ("t3d", 262144, 64): "fig24",
    ("t3d", 2097152, 64): "fig25",
}
RANK_COUNTS = (4, 16, 32)


def paragon(nranks):
    return _paragon(nranks, protocol="nx")


@pytest.mark.parametrize("machine_name", ["paragon", "t3d"])
def test_pic_budgets(benchmark, artifact, machine_name):
    factory = {"paragon": paragon, "t3d": t3d}[machine_name]

    def run():
        out = {}
        for (name, size, m), figure in FIGS.items():
            if name != machine_name:
                continue
            grid = Grid3D(m)
            particles = uniform_cube(scaled(size), thermal_speed=0.05, seed=0)
            out[figure, size, m] = {
                nranks: run_parallel_pic(
                    factory(nranks), grid, particles.copy(), steps=1, collect=False
                ).run
                for nranks in RANK_COUNTS
            }
        return out

    budgets = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for (figure, size, m), per_rank in sorted(budgets.items()):
        for nranks, run_result in per_rank.items():
            fractions = run_result.mean_budget().fractions()
            rows.append(
                [
                    figure,
                    f"{size // 1024}K",
                    m,
                    nranks,
                    f"{fractions['work']:.2f}",
                    f"{fractions['comm']:.2f}",
                    f"{fractions['redundancy']:.3f}",
                    f"{fractions['imbalance']:.3f}",
                ]
            )
    artifact(
        f"appendixB_pic_budget_{machine_name}",
        format_table(
            f"Appendix B PIC performance budgets ({machine_name})",
            ["figure", "particles", "m", "P", "work", "comm", "redund", "imbal"],
            rows,
        ),
    )

    def comm_seconds(size, m, nranks):
        figure = FIGS[(machine_name, size, m)]
        return budgets[(figure, size, m)][nranks].mean_budget().comm_s

    # Bigger grid -> more communication at equal particles and P ("the
    # large increase in communications" of the m=64 figures).
    assert comm_seconds(262144, 64, 32) > 2.0 * comm_seconds(262144, 32, 32)
    # More particles amortize the overhead (higher work share).
    def work_share(size, m, nranks):
        figure = FIGS[(machine_name, size, m)]
        return budgets[(figure, size, m)][nranks].mean_budget().fractions()["work"]

    assert work_share(2097152, 32, 32) > work_share(262144, 32, 32)
    # Imbalance negligibly small; redundancy modest.
    for key, per_rank in budgets.items():
        for run_result in per_rank.values():
            fractions = run_result.mean_budget().fractions()
            assert fractions["imbalance"] < 0.12
            assert fractions["redundancy"] < 0.1


def test_t3d_work_share_below_paragon(benchmark, artifact):
    """Figures 22-25 'include smaller portions of useful work than ones on
    the Paragon, showing the negative effect of PVM'."""
    grid = Grid3D(32)
    particles = uniform_cube(scaled(262144), thermal_speed=0.05, seed=0)

    def run():
        return {
            name: run_parallel_pic(
                factory(16), grid, particles.copy(), steps=1, collect=False
            )
            .run.mean_budget()
            .fractions()["work"]
            for name, factory in [("paragon", paragon), ("t3d", t3d)]
        }

    shares = benchmark.pedantic(run, rounds=1, iterations=1)
    artifact(
        "appendixB_pic_work_share_t3d_vs_paragon",
        f"PIC useful-work share at 256K-scale, P=16: paragon "
        f"{shares['paragon']:.2f}, t3d {shares['t3d']:.2f}",
    )
    assert shares["t3d"] < shares["paragon"]
