"""Appendix B Figure 9: superlinear speedup from paging.

When speedup is computed against the *measured* uniprocessor time (which
pages once the particle arrays outgrow one node's 32 MB) rather than the
extrapolated non-paging time, speedup "increases suddenly for simulations
that used more than 640K particles".  This experiment always runs at
paper-exact particle counts because the effect depends on absolute
memory footprints.
"""

from __future__ import annotations

import pytest

from repro.data import uniform_cube
from repro.machines import paragon as _paragon
from repro.perf import format_table, linear_extrapolate
from repro.pic import Grid3D, run_parallel_pic

SIZES = (262144, 524288, 655360, 786432, 1048576)
PAGING_ONSET = 640 * 1024


def paragon(nranks):
    return _paragon(nranks, protocol="nx")


def test_fig9_superlinear_speedup(benchmark, artifact):
    grid = Grid3D(32)
    nranks = 8

    def run():
        measured_serial = {}
        parallel = {}
        for n in SIZES:
            particles = uniform_cube(n, thermal_speed=0.05, seed=0)
            measured_serial[n] = run_parallel_pic(
                paragon(1), grid, particles.copy(), steps=1
            ).run.elapsed_s
            parallel[n] = run_parallel_pic(
                paragon(nranks), grid, particles.copy(), steps=1
            ).run.elapsed_s
        small = [n for n in SIZES if n < PAGING_ONSET]
        extrapolated = {
            n: linear_extrapolate(small, [measured_serial[s] for s in small], n)
            for n in SIZES
        }
        return measured_serial, extrapolated, parallel

    measured, extrapolated, parallel = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for n in SIZES:
        rows.append(
            [
                f"{n // 1024}K",
                measured[n],
                extrapolated[n],
                measured[n] / parallel[n],
                extrapolated[n] / parallel[n],
            ]
        )
    artifact(
        "appendixB_fig9_superlinear",
        format_table(
            f"Appendix B Figure 9: P={nranks}, m=32 (paper-exact sizes)",
            ["size", "serial_real_s", "serial_extrap_s", "speedup_real", "speedup_extrap"],
            rows,
        ),
    )

    # Below the paging onset the two speedups agree and stay sublinear;
    # 640K itself is the transition point ("excessive paging was occurring
    # when the uniprocessor measurements were for 640K particles or more"),
    # so the jump is asserted strictly past it.
    for n in SIZES:
        real = measured[n] / parallel[n]
        honest = extrapolated[n] / parallel[n]
        if n < PAGING_ONSET:
            assert real == pytest.approx(honest, rel=0.05)
            assert real < nranks
        elif n > PAGING_ONSET:
            # Past the onset the measured-serial speedup jumps.
            assert real > 1.4 * honest
    # The 1M point is superlinear against the paging uniprocessor.
    assert measured[SIZES[-1]] / parallel[SIZES[-1]] > nranks
    # The honest speedup never is.
    assert extrapolated[SIZES[-1]] / parallel[SIZES[-1]] < nranks
