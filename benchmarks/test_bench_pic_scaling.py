"""Appendix B Figures 7-8 (Paragon) and 19-20 (T3D): PIC scalability.

Speedup vs processor count for several particle counts on the 32^3 and
64^3 grids.  Expected shapes: scalability improves with more particles
(the grid-bound global communication amortizes) and degrades with the
bigger grid ("figure 7 generally exhibits a better speedup factor than
that of 8 ... due to the increase of global communications associated
with the increased size of the grid").
"""

from __future__ import annotations

import pytest

from repro.data import uniform_cube
from repro.machines import paragon as _paragon
from repro.machines import t3d
from repro.perf import format_speedup_series
from repro.pic import Grid3D, run_parallel_pic

from conftest import scaled

RANK_COUNTS = (1, 2, 4, 8, 16, 32)
SIZES = (262144, 1048576, 2097152)


def paragon(nranks):
    """Appendix B's PIC code used the native NX layer."""
    return _paragon(nranks, protocol="nx")


def _sweep(machine_factory, m, sizes=SIZES):
    grid = Grid3D(m)
    series = {}
    for size in sizes:
        n = scaled(size)
        particles = uniform_cube(n, thermal_speed=0.05, seed=0)
        times = {}
        for nranks in RANK_COUNTS:
            outcome = run_parallel_pic(
                machine_factory(nranks), grid, particles.copy(), steps=1
            )
            times[nranks] = outcome.run.elapsed_s
        label = f"{size // 1024}K particles"
        series[label] = [(p, times[1] / times[p]) for p in RANK_COUNTS]
    return series


@pytest.mark.parametrize(
    "machine_name,m,figure",
    [
        ("paragon", 32, "fig7"),
        ("paragon", 64, "fig8"),
        ("t3d", 32, "fig19"),
        ("t3d", 64, "fig20"),
    ],
)
def test_pic_scaling(benchmark, artifact, machine_name, m, figure):
    factory = {"paragon": paragon, "t3d": t3d}[machine_name]
    series = benchmark.pedantic(
        lambda: _sweep(factory, m), rounds=1, iterations=1
    )
    artifact(
        f"appendixB_{figure}_pic_{machine_name}_m{m}",
        format_speedup_series(
            f"Appendix B {figure}: PIC speedup ({machine_name}, {m}^3 grid)", series
        ),
    )
    small = dict(series[f"{SIZES[0] // 1024}K particles"])
    large = dict(series[f"{SIZES[-1] // 1024}K particles"])
    # Speedup grows with P, and bigger simulations amortize comm better.
    assert large[32] > large[8] > large[2] > 1.0
    assert large[32] >= small[32]


@pytest.mark.parametrize("machine_name", ["paragon", "t3d"])
def test_bigger_grid_scales_worse(benchmark, artifact, machine_name):
    """The Figure 7-vs-8 (and 19-vs-20) comparison at fixed particles."""
    factory = {"paragon": paragon, "t3d": t3d}[machine_name]
    n = scaled(1048576)

    def run():
        out = {}
        particles = uniform_cube(n, thermal_speed=0.05, seed=0)
        for m in (32, 64):
            t1 = run_parallel_pic(
                factory(1), Grid3D(m), particles.copy(), steps=1
            ).run.elapsed_s
            t32 = run_parallel_pic(
                factory(32), Grid3D(m), particles.copy(), steps=1
            ).run.elapsed_s
            out[m] = t1 / t32
        return out

    speedups = benchmark.pedantic(run, rounds=1, iterations=1)
    artifact(
        f"appendixB_grid_effect_{machine_name}",
        f"PIC speedup at 32 procs, 1M particles ({machine_name}): "
        f"m=32 -> {speedups[32]:.2f}, m=64 -> {speedups[64]:.2f}",
    )
    assert speedups[32] > speedups[64]
