"""Machine-model characterization: the classic communication
micro-kernels against all three calibrated specs.

Not a paper artifact per se, but JNNIE's micro-performance methodology in
miniature — and the sanity sheet for every calibrated number in
`repro.machines.specs`: PVM costs more than NX per message; the T3D's
torus keeps full bisection bandwidth while the 4-wide Paragon mesh loses
about half under cross-machine stress.
"""

from __future__ import annotations

import pytest

from repro.machines import (
    bisection_exchange,
    paragon,
    ping_pong,
    ring_bandwidth,
    t3d,
)
from repro.perf import format_table


def test_machine_characterization(benchmark, artifact):
    machines = {
        "paragon-pvm": paragon(16, protocol="pvm"),
        "paragon-nx": paragon(16, protocol="nx"),
        "t3d": t3d(16),
    }

    def run():
        out = {}
        for name, machine in machines.items():
            model = ping_pong(machine)
            out[name] = (
                model.alpha_s,
                model.beta_bytes_per_s,
                ring_bandwidth(machine),
                bisection_exchange(machine),
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            name,
            f"{alpha * 1e6:.0f}us",
            f"{beta / 1e6:.1f}MB/s",
            f"{ring / 1e6:.0f}MB/s",
            f"{bisect / 1e6:.0f}MB/s",
        ]
        for name, (alpha, beta, ring, bisect) in results.items()
    ]
    artifact(
        "machine_characterization",
        format_table(
            "Communication micro-kernels over the calibrated machine models",
            ["machine", "alpha", "beta", "ring_bw", "bisection_bw"],
            rows,
        ),
    )

    pvm = results["paragon-pvm"]
    nx = results["paragon-nx"]
    cray = results["t3d"]
    # PVM's per-message cost dwarfs NX's; NX still trails the T3D links.
    assert pvm[0] > 2 * nx[0]
    assert pvm[1] < nx[1] < cray[1]
    # Mesh bisection collapses relative to its ring; torus holds up.
    assert results["paragon-nx"][3] < 0.7 * results["paragon-nx"][2]
    assert cray[3] > 0.6 * cray[2]
