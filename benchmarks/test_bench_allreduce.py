"""Appendix B Section 4.2.2 ablation: vendor-style ``gssum`` vs the
authors' parallel-prefix global sum.

The paper: gssum "works very efficiently for 4- and 8-processor
partitions, but [not] for 16- and 32-processor ones ... To reduce the
communication overhead, we have implemented our own global sum routine
based on parallel-prefix algorithm using many one-to-one communications."
This benchmark times both reductions of a 32^3 grid across processor
counts and checks the crossover.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.machines import Engine
from repro.machines import paragon as _paragon
from repro.machines.api import allreduce, gssum_naive
from repro.perf import format_table

GRID_BYTES_SHAPE = (32, 32, 32)
RANK_COUNTS = (4, 8, 16, 32)


def paragon(nranks):
    return _paragon(nranks, protocol="nx")


def _time_global_sum(nranks: int, method: str) -> float:
    def program(ctx):
        value = np.full(GRID_BYTES_SHAPE, float(ctx.rank))
        if method == "gssum":
            total = yield from gssum_naive(ctx, value)
        else:
            total = yield from allreduce(ctx, value)
        return float(total[0, 0, 0])

    run = Engine(paragon(nranks)).run(program)
    expected = float(sum(range(nranks)))
    assert all(r == pytest.approx(expected) for r in run.results)
    return run.elapsed_s


def test_gssum_vs_prefix(benchmark, artifact):
    def run():
        return {
            method: {n: _time_global_sum(n, method) for n in RANK_COUNTS}
            for method in ("gssum", "prefix")
        }

    times = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [n, times["gssum"][n], times["prefix"][n], times["gssum"][n] / times["prefix"][n]]
        for n in RANK_COUNTS
    ]
    artifact(
        "appendixB_gssum_vs_prefix",
        format_table(
            "Global sum of a 32^3 grid: gssum (many-to-many) vs parallel prefix",
            ["P", "gssum_s", "prefix_s", "ratio"],
            rows,
        ),
    )

    # gssum is tolerable at small P but collapses relative to the prefix
    # sum as P grows (the paper's 8 -> 16 transition).
    assert times["gssum"][4] < 3.0 * times["prefix"][4]
    assert times["gssum"][32] > 3.0 * times["prefix"][32]
    # gssum's cost grows superlinearly with P; prefix logarithmically-ish.
    assert times["gssum"][32] / times["gssum"][4] > 4.0
    assert times["prefix"][32] / times["prefix"][4] < 4.0
