"""Shared infrastructure for the paper-artifact benchmarks.

Every benchmark regenerates one table or figure from the report.  Output
goes two places: printed to the terminal (run with ``-s`` to see it live)
and persisted under ``benchmarks/results/`` so the artifacts survive the
run.

Sizing: paper-exact workloads (2M PIC particles, 32K bodies, ...) take a
while in pure Python, so by default problem sizes are divided by
``REPRO_BENCH_SCALE`` (default 4).  The machine models charge virtual
time, so speedup/efficiency *shapes* are insensitive to this scaling;
only experiments that depend on absolute memory footprints (the paging /
superlinear study) always run at paper sizes.  Set ``REPRO_BENCH_SCALE=1``
to reproduce everything at full scale.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_scale() -> float:
    """The size divisor (1 = paper-exact sizes)."""
    return max(1.0, float(os.environ.get("REPRO_BENCH_SCALE", "4")))


def scaled(size: int) -> int:
    """A problem size divided by the bench scale."""
    return max(1, int(round(size / bench_scale())))


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def artifact(results_dir, request):
    """Callable saving (and echoing) a named artifact's text."""

    def write(name: str, text: str) -> str:
        path = results_dir / f"{name}.txt"
        header = f"[{request.node.name}] scale=1/{bench_scale():g}\n"
        path.write_text(header + text + "\n")
        print(f"\n{text}\n-> saved to {path}")
        return text

    return write
