"""Appendix A Table 1: comparative wavelet decomposition times.

Rows: MasPar MP-2 (16K PEs), Intel Paragon (1 and 32 processors), and the
DEC 5000 workstation; columns F8/L1, F4/L2, F2/L4.  The machine specs are
calibrated so this table lands on the paper's measurements; the benchmark
asserts the calibration and the qualitative ordering (MasPar about two
orders of magnitude over the workstation, Paragon about one).
"""

from __future__ import annotations

import pytest

from repro.data import landsat_like_scene
from repro.machines import paragon, workstation
from repro.machines.simd import MasParMachine, maspar_mp2
from repro.perf import format_table
from repro.wavelet import filter_bank_for_length
from repro.wavelet.parallel import run_spmd_wavelet, simd_mallat_decompose

CONFIGS = [(8, 1), (4, 2), (2, 4)]
PAPER = {
    "maspar": [0.0169, 0.0138, 0.0123],
    "paragon1": [4.227, 3.45, 2.78],
    "paragon32": [0.613, 0.632, 0.6623],
    "dec5000": [5.47, 4.54, 4.11],
}


def test_table1_comparative(benchmark, artifact):
    image = landsat_like_scene((512, 512))

    def run():
        rows = {"maspar": [], "paragon1": [], "paragon32": [], "dec5000": []}
        for filter_length, levels in CONFIGS:
            bank = filter_bank_for_length(filter_length)
            simd = simd_mallat_decompose(
                MasParMachine(maspar_mp2(), "hierarchical"), image, bank, levels
            )
            rows["maspar"].append(simd.elapsed_s)
            rows["paragon1"].append(
                run_spmd_wavelet(paragon(1), image, bank, levels).run.elapsed_s
            )
            rows["paragon32"].append(
                run_spmd_wavelet(paragon(32), image, bank, levels).run.elapsed_s
            )
            rows["dec5000"].append(
                run_spmd_wavelet(workstation(), image, bank, levels).run.elapsed_s
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table_rows = []
    for key, label in [
        ("maspar", "MasPar MP-2 (16K)"),
        ("paragon1", "Paragon 1 proc"),
        ("paragon32", "Paragon 32 proc"),
        ("dec5000", "DEC 5000"),
    ]:
        measured = rows[key]
        paper = PAPER[key]
        table_rows.append(
            [label]
            + [f"{m:.4f} ({p})" for m, p in zip(measured, paper)]
        )
    artifact(
        "appendixA_table1_comparative",
        format_table(
            "Appendix A Table 1: decomposition time, measured (paper), seconds",
            ["machine", "F8/L1", "F4/L2", "F2/L4"],
            table_rows,
        ),
    )

    # Calibration within 25% of every paper cell.
    for key in PAPER:
        for measured, paper in zip(rows[key], PAPER[key]):
            assert measured == pytest.approx(paper, rel=0.25), (key, measured, paper)

    # Qualitative claims of Section 5.3 / the conclusion.
    for i in range(3):
        workstation_time = rows["dec5000"][i]
        assert 50 <= workstation_time / rows["maspar"][i] <= 1000  # ~2 orders
        assert 4 <= workstation_time / rows["paragon32"][i] <= 40  # ~1 order
    # 30+ images per second on the MasPar.
    assert 1.0 / rows["maspar"][0] > 30
