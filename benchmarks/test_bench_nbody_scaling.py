"""Appendix B Figure 3 (Paragon) and Figure 15 (T3D): N-body scalability.

Speedup vs processor count for three problem sizes.  Expected shapes:
near-linear growth that improves with problem size (the broadcast and
manager traffic amortize), and — the Figure 15 observation — the T3D's
faster CPU *lowers* its parallel efficiency at equal P because the
computation/communication ratio shrinks even as absolute times fall.
"""

from __future__ import annotations

import pytest

from repro.data import plummer_sphere
from repro.machines import paragon as _paragon
from repro.machines import t3d
from repro.nbody import run_parallel_nbody
from repro.perf import format_speedup_series

from conftest import scaled

RANK_COUNTS = (1, 2, 4, 8, 16, 32)
SIZES = (1024, 4096, 32768)


def paragon(nranks):
    """Appendix B ran the Paragon codes over NX, not PVM."""
    return _paragon(nranks, protocol="nx")


def _sweep(machine_factory, sizes):
    series = {}
    times = {}
    for size in sizes:
        n = scaled(size)
        particles = plummer_sphere(n, dim=2, seed=0)
        per_rank = {}
        for nranks in RANK_COUNTS:
            outcome = run_parallel_nbody(
                machine_factory(nranks), particles.copy(), steps=1
            )
            per_rank[nranks] = outcome.run.elapsed_s
        label = f"{size // 1024}K bodies"
        series[label] = [(p, per_rank[1] / per_rank[p]) for p in RANK_COUNTS]
        times[label] = per_rank
    return series, times


def test_fig3_paragon_scaling(benchmark, artifact):
    series, _ = benchmark.pedantic(
        lambda: _sweep(paragon, SIZES), rounds=1, iterations=1
    )
    artifact(
        "appendixB_fig3_nbody_paragon",
        format_speedup_series("Appendix B Figure 3: N-body speedup (Paragon)", series),
    )
    small = dict(series["1K bodies"])
    large = dict(series["32K bodies"])
    # Speedup grows with P and larger problems scale better.
    assert large[32] > large[8] > large[2] > 1.0
    assert large[32] > small[32]
    # Large-problem efficiency is healthy (paper: >50% in most cases; at
    # reduced bench scale the comm share is relatively larger, so the gate
    # sits slightly below the paper's figure).
    assert large[32] / 32 > 0.45


def test_fig15_t3d_scaling(benchmark, artifact):
    def run():
        t3d_series, _ = _sweep(t3d, SIZES[:2] + (32768,))
        paragon_series, _ = _sweep(paragon, (4096,))
        return t3d_series, paragon_series

    t3d_series, paragon_series = benchmark.pedantic(run, rounds=1, iterations=1)
    artifact(
        "appendixB_fig15_nbody_t3d",
        format_speedup_series("Appendix B Figure 15: N-body speedup (T3D)", t3d_series),
    )
    # "The smaller communication did not result in better scalability than
    # the Paragon ... the alpha processor is faster for Nbody, which makes
    # the computation/communication ratio smaller."
    t3d_4k = dict(t3d_series["4K bodies"])
    paragon_4k = dict(paragon_series["4K bodies"])
    assert t3d_4k[32] <= paragon_4k[32] + 0.5
    assert t3d_4k[32] > t3d_4k[4] > 1.0
