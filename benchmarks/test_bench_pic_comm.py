"""Appendix B Figure 10 (Paragon) and Figure 21 (T3D): PIC communication
balance — average vs maximum per-rank communication time per iteration.

The paper: "there is not much difference between average and maximum
times spent for communication during each iteration, which indicates that
communication activities are well balanced, due to the worker-worker
model."
"""

from __future__ import annotations

import pytest

from repro.data import uniform_cube
from repro.machines import paragon as _paragon
from repro.machines import t3d
from repro.perf import format_table
from repro.pic import Grid3D, run_parallel_pic

from conftest import scaled

RANK_COUNTS = (4, 8, 16, 32)


def paragon(nranks):
    return _paragon(nranks, protocol="nx")


@pytest.mark.parametrize(
    "machine_name,figure", [("paragon", "fig10"), ("t3d", "fig21")]
)
def test_pic_comm_balance(benchmark, artifact, machine_name, figure):
    factory = {"paragon": paragon, "t3d": t3d}[machine_name]
    grid = Grid3D(32)
    particles = uniform_cube(scaled(1048576), thermal_speed=0.05, seed=0)

    def run():
        out = {}
        for nranks in RANK_COUNTS:
            outcome = run_parallel_pic(
                factory(nranks), grid, particles.copy(), steps=1, collect=False
            )
            out[nranks] = (outcome.run.mean_comm_s(), outcome.run.max_comm_s())
        return out

    comm = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [nranks, avg, peak, peak / avg] for nranks, (avg, peak) in comm.items()
    ]
    artifact(
        f"appendixB_{figure}_pic_comm_{machine_name}",
        format_table(
            f"Appendix B {figure}: PIC comm avg vs max per iteration "
            f"({machine_name}, m=32, 1M-scale particles)",
            ["P", "avg_comm_s", "max_comm_s", "max/avg"],
            rows,
        ),
    )
    # Worker-worker balance: max within 60% of average at every P.
    for nranks, (avg, peak) in comm.items():
        assert peak <= 1.6 * avg, (nranks, avg, peak)
    # Communication grows with P (the global grid exchange).
    assert comm[32][0] > comm[4][0] * 0.5
