"""Appendix B Tables 1-2: serial per-iteration times on the Paragon and
T3D specs for PIC (with the 1M-particle paging blow-up) and N-body.

The PIC rows always run at paper-exact particle counts because the paging
effect depends on absolute memory footprints; the N-body rows scale with
REPRO_BENCH_SCALE (interaction counts are what matters there and the
tables' O(N log N) trend is asserted on measured sizes).
"""

from __future__ import annotations

import pytest

from repro.data import plummer_sphere, uniform_cube
from repro.machines import paragon, t3d
from repro.nbody import run_parallel_nbody
from repro.perf import format_table, linear_extrapolate
from repro.pic import Grid3D, run_parallel_pic

from conftest import scaled

PIC_SIZES = [262144, 524288]
PAPER_PARAGON_PIC_M32 = {262144: 13.35, 524288: 24.41, 1048576: 45.93}
PAPER_PARAGON_PIC_M32_REAL_1M = 249.20
PAPER_T3D_PIC_M32 = {262144: 5.53, 524288: 9.74, 1048576: 18.34}


def _pic_serial(machine_factory, n, m):
    grid = Grid3D(m)
    particles = uniform_cube(n, thermal_speed=0.05, seed=0)
    outcome = run_parallel_pic(machine_factory(1), grid, particles, steps=1)
    return outcome.run.elapsed_s


def test_table1_paragon_pic(benchmark, artifact):
    def run():
        measured = {n: _pic_serial(paragon, n, 32) for n in PIC_SIZES}
        measured[1048576] = _pic_serial(paragon, 1048576, 32)  # pages!
        extrapolated = linear_extrapolate(
            PIC_SIZES, [measured[n] for n in PIC_SIZES], 1048576
        )
        return measured, extrapolated

    measured, extrapolated = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [f"{n // 1024}K", measured[n], PAPER_PARAGON_PIC_M32[n]] for n in PIC_SIZES
    ]
    rows.append(["1M (extrapolated)", extrapolated, PAPER_PARAGON_PIC_M32[1048576]])
    rows.append(["1M (real, paging)", measured[1048576], PAPER_PARAGON_PIC_M32_REAL_1M])
    artifact(
        "appendixB_table1_paragon_pic",
        format_table(
            "Appendix B Table 1 (PIC, m=32, Paragon): seconds/iteration "
            "[measured, paper]",
            ["size", "measured_s", "paper_s"],
            rows,
        ),
    )

    for n in PIC_SIZES:
        assert measured[n] == pytest.approx(PAPER_PARAGON_PIC_M32[n], rel=0.25)
    assert extrapolated == pytest.approx(PAPER_PARAGON_PIC_M32[1048576], rel=0.25)
    # Paging blow-up: the real 1M run is several times the extrapolation.
    assert measured[1048576] > 3.0 * extrapolated
    assert measured[1048576] == pytest.approx(PAPER_PARAGON_PIC_M32_REAL_1M, rel=0.5)


def test_table2_t3d_pic(benchmark, artifact):
    def run():
        return {n: _pic_serial(t3d, n, 32) for n in PIC_SIZES + [1048576]}

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [f"{n // 1024}K", measured[n], PAPER_T3D_PIC_M32[n]]
        for n in PIC_SIZES + [1048576]
    ]
    artifact(
        "appendixB_table2_t3d_pic",
        format_table(
            "Appendix B Table 2 (PIC, m=32, T3D): seconds/iteration "
            "[measured, paper]",
            ["size", "measured_s", "paper_s"],
            rows,
        ),
    )
    for n in PIC_SIZES:
        assert measured[n] == pytest.approx(PAPER_T3D_PIC_M32[n], rel=0.3)
    # No paging regime on the T3D spec: 1M follows the linear trend.
    assert measured[1048576] < 3.0 * measured[524288]


def test_tables_nbody_serial(benchmark, artifact):
    sizes = [scaled(1024), scaled(8192)]
    paper = {1024: (5.77, 0.53), 8192: (53.27, 6.31)}

    def run():
        out = {}
        for n in sizes:
            particles = plummer_sphere(n, dim=2, seed=0)
            out[n] = (
                run_parallel_nbody(paragon(1), particles.copy(), steps=1).run.elapsed_s,
                run_parallel_nbody(t3d(1), particles.copy(), steps=1).run.elapsed_s,
            )
        return out

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[n, p, t, round(p / t, 1)] for n, (p, t) in measured.items()]
    artifact(
        "appendixB_tables_nbody_serial",
        format_table(
            "Appendix B Tables 1-2 (N-body): seconds/iteration at bench scale",
            ["bodies", "paragon_s", "t3d_s", "ratio"],
            rows,
        ),
    )

    small, large = sizes
    # O(N log N): the 8x size costs more than 8x but less than ~14x.
    growth = measured[large][0] / measured[small][0]
    assert 6.0 < growth < 16.0
    # Alpha advantage on the integer-heavy N-body approaches an order of
    # magnitude (Tables 1-2 show 5.77 -> 0.53 at 1K).
    for n in sizes:
        ratio = measured[n][0] / measured[n][1]
        assert 5.0 < ratio < 15.0
    # At paper-exact sizes the calibration matches the table directly.
    if small == 1024:
        assert measured[1024][0] == pytest.approx(paper[1024][0], rel=0.3)
