"""Appendix A Section 4.1 ablations on the MasPar:

* systolic (router decimation) vs systolic-with-dilution (X-net only),
* hierarchical vs cut-and-stack virtualization,
* MP-2 vs MP-1 PE generation.

The paper reports the dilution algorithm avoids the global router and the
hierarchical virtualization "gave the best results since it improves data
locality"; this benchmark regenerates those comparisons with the cycle
breakdown per primitive.
"""

from __future__ import annotations

import pytest

from repro.data import landsat_like_scene
from repro.machines.simd import MasParMachine, maspar_mp1, maspar_mp2
from repro.perf import format_table
from repro.wavelet import daubechies_filter
from repro.wavelet.parallel import simd_mallat_decompose


def test_simd_algorithm_and_virtualization(benchmark, artifact):
    image = landsat_like_scene((512, 512))
    bank = daubechies_filter(8)

    def run():
        out = {}
        for virtualization in ("hierarchical", "cut_and_stack"):
            for algorithm in ("systolic", "dilution"):
                machine = MasParMachine(maspar_mp2(), virtualization)
                result = simd_mallat_decompose(
                    machine, image, bank, levels=3, algorithm=algorithm
                )
                out[(virtualization, algorithm)] = result
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for (virtualization, algorithm), result in results.items():
        fractions = result.stats.fractions()
        rows.append(
            [
                virtualization,
                algorithm,
                result.elapsed_s,
                f"{fractions['mac']:.2f}",
                f"{fractions['shift']:.2f}",
                f"{fractions['router']:.2f}",
            ]
        )
    artifact(
        "appendixA_simd_ablation",
        format_table(
            "MasPar ablation: 512x512, daub8, 3 levels (seconds, cycle shares)",
            ["virtualization", "algorithm", "time_s", "mac", "shift", "router"],
            rows,
        ),
    )

    # Dilution never touches the router; systolic does.
    assert results[("hierarchical", "dilution")].stats.router_cycles == 0
    assert results[("hierarchical", "systolic")].stats.router_cycles > 0
    # Hierarchical locality wins for both algorithms.
    for algorithm in ("systolic", "dilution"):
        assert (
            results[("hierarchical", algorithm)].elapsed_s
            < results[("cut_and_stack", algorithm)].elapsed_s
        )


def test_mp1_vs_mp2(benchmark, artifact):
    """MP-2's 32-bit PEs vs MP-1's 4-bit PEs: arithmetic speedup with
    unchanged network costs."""
    image = landsat_like_scene((256, 256))
    bank = daubechies_filter(4)

    def run():
        out = {}
        for name, spec in [("mp1", maspar_mp1()), ("mp2", maspar_mp2())]:
            machine = MasParMachine(spec, "hierarchical")
            out[name] = simd_mallat_decompose(machine, image, bank, levels=2)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = results["mp1"].elapsed_s / results["mp2"].elapsed_s
    artifact(
        "appendixA_mp1_vs_mp2",
        f"MP-1 time {results['mp1'].elapsed_s:.4f}s vs MP-2 "
        f"{results['mp2'].elapsed_s:.4f}s (ratio {ratio:.1f}x)",
    )
    assert 2.0 < ratio < 10.0


def test_block_vs_striped_decomposition(benchmark, artifact):
    """Appendix A Figure 3: striping halves the guard-exchange transaction
    count relative to block decomposition."""
    from repro.machines import paragon
    from repro.wavelet.parallel import run_spmd_wavelet

    image = landsat_like_scene((512, 512))
    bank = daubechies_filter(4)

    def run():
        out = {}
        for decomposition in ("striped", "block"):
            outcome = run_spmd_wavelet(
                paragon(16),
                image,
                bank,
                2,
                decomposition=decomposition,
                distribute=False,
                collect=False,
            )
            out[decomposition] = outcome.run
        return out

    runs = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name, run.elapsed_s, run.messages_sent, run.bytes_sent]
        for name, run in runs.items()
    ]
    artifact(
        "appendixA_fig3_striped_vs_block",
        format_table(
            "Striped vs block decomposition (16 procs, daub4, 2 levels)",
            ["decomposition", "time_s", "messages", "bytes"],
            rows,
        ),
    )
    assert runs["block"].messages_sent > runs["striped"].messages_sent
