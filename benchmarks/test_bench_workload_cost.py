"""Appendix C Table 5: representation and comparison costs of the two
techniques.

The paper's complexity table: parallelism-matrix representation costs
O(p*t) time and O(n^t) space, comparison O(n^t); the vector-space model
costs O(t) space and O(t) comparison.  This benchmark measures actual
wall time and storage for a growing NAS-like workload and checks the
asymmetry: matrix costs grow with workload size/width while the centroid
stays constant-size.
"""

from __future__ import annotations

import sys
import time

import pytest

from repro.perf import format_table
from repro.workload import (
    centroid,
    dense_size,
    frobenius_similarity,
    nas_suite,
    oracle_schedule,
    parallelism_matrix,
    similarity,
)


def _measure(workload_a, workload_b):
    start = time.perf_counter()
    for _ in range(10):
        similarity(workload_a, workload_b)
    vector_time = (time.perf_counter() - start) / 10

    start = time.perf_counter()
    for _ in range(10):
        frobenius_similarity(workload_a, workload_b)
    matrix_time = (time.perf_counter() - start) / 10

    centroid_bytes = centroid(workload_a).nbytes
    sparse_cells = len(parallelism_matrix(workload_a))
    dense_cells = dense_size(workload_a)
    return vector_time, matrix_time, centroid_bytes, sparse_cells, dense_cells


def test_table5_costs(benchmark, artifact):
    def run():
        out = {}
        for scale in (0.25, 0.5, 1.0):
            suite = nas_suite(scale)
            workloads = [oracle_schedule(t).workload for t in suite]
            out[scale] = _measure(workloads[5], workloads[7])  # applu vs appbt
        return out

    measured = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for scale, (vector_time, matrix_time, centroid_bytes, sparse, dense) in measured.items():
        rows.append(
            [
                scale,
                f"{vector_time * 1e6:.1f}us",
                f"{matrix_time * 1e6:.1f}us",
                centroid_bytes,
                sparse,
                f"{dense:.2e}",
            ]
        )
    artifact(
        "appendixC_table5_costs",
        format_table(
            "Appendix C Table 5: measured comparison cost and storage "
            "(vector space vs parallelism matrix)",
            ["scale", "vector_cmp", "matrix_cmp", "centroid_B", "sparse_cells", "dense_cells"],
            rows,
        ),
    )

    small = measured[0.25]
    large = measured[1.0]
    # Centroid storage is O(t): flat across scales.
    assert small[2] == large[2]
    # Dense matrix cells explode with workload width (O(n^t)).
    assert large[4] > 10 * small[4]
    # The vector comparison is much cheaper than the matrix comparison.
    assert large[0] < large[1]
