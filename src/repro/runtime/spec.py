"""Job and run descriptions for the runtime layer.

Before this layer existed every driver (``run_spmd_wavelet``,
``run_parallel_nbody``, ``run_parallel_pic``, ``run_with_recovery``, the
CLI, ``perf.bench``) hand-rolled its own machine construction and
threaded the same knobs — machine name, rank count, placement, protocol,
tracing, fault plan, checkpoint interval, kernel — through ad-hoc keyword
arguments.  :class:`RunOptions` consolidates those cross-cutting knobs and
:class:`JobSpec` pairs them with a registered program name plus its
program-specific parameters, so one description can be executed directly
(:func:`repro.runtime.launch`) or submitted to a space-sharing
:class:`~repro.runtime.scheduler.Scheduler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.machines.engine import Machine

__all__ = ["RunOptions", "JobSpec", "resolve_machine"]

#: Machine names the runtime can build on demand (``resolve_machine``).
MACHINE_NAMES = ("paragon", "t3d", "workstation")


@dataclass(frozen=True)
class RunOptions:
    """Cross-cutting execution knobs shared by every program.

    Parameters
    ----------
    machine:
        Either a pre-built :class:`~repro.machines.engine.Machine` or one
        of the calibrated spec names (``"paragon"``, ``"t3d"``,
        ``"workstation"``).  ``None`` means the caller supplies the
        machine (driver wrappers, scheduler partitions).
    nranks:
        Rank count when the machine is built from a name.
    placement / protocol:
        Forwarded to the Paragon factory (``"snake"``/``"naive"``;
        ``"pvm"``/``"nx"``).  ``protocol=None`` keeps the factory default.
    kernel:
        Wavelet filtering kernel spec: ``"conv"``, ``"lifting"``,
        ``"fused"`` (or parameterized ``"fused:N"``), or
        ``"single-loop"`` — anything
        :func:`repro.wavelet.plan.parse_kernel_spec` accepts.  Programs
        that do not filter reject non-default values.
    decomposition:
        Wavelet domain decomposition (``"striped"``/``"block"``).
    collective:
        All-reduce schedule for programs that do global reductions
        (``"rdouble"`` recursive doubling, the default, or
        ``"rabenseifner"`` reduce-scatter + allgather); programs without
        a global reduction reject non-default values.
    record_trace:
        Collect :class:`~repro.machines.engine.TraceEvent` records.
    faults:
        A :class:`~repro.machines.faults.FaultPlan` to run under (the
        executor recovers from injected crashes via checkpoint/restart).
    checkpoint_interval:
        Levels/steps between coordinated checkpoints (0 disables).
    max_restarts:
        Restart budget when ``faults`` injects crashes.
    """

    machine: object = None
    nranks: int = 1
    placement: str = "snake"
    protocol: str | None = None
    kernel: str = "conv"
    decomposition: str = "striped"
    collective: str = "rdouble"
    record_trace: bool = False
    faults: object = None
    checkpoint_interval: int = 0
    max_restarts: int = 8

    def with_updates(self, **changes) -> "RunOptions":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True)
class JobSpec:
    """One schedulable job: a registered program plus its inputs.

    ``program`` names a :class:`~repro.runtime.registry.ProgramDef`;
    ``params`` holds that program's own inputs (image, particles, steps,
    ...); ``options`` holds the cross-cutting :class:`RunOptions`;
    ``name`` labels the job in scheduler reports (defaults to the
    program name).

    ``tenant`` and ``priority`` identify the submitting tenant for the
    multi-tenant service layer: the fair-share queue policy
    (:class:`~repro.runtime.policy.WeightedFairShare`) charges the job's
    cost against the tenant's share and ranks strictly by descending
    priority first.  The defaults (anonymous tenant, priority 0) leave
    batch FIFO scheduling untouched.
    """

    program: str
    params: dict = field(default_factory=dict)
    options: RunOptions = field(default_factory=RunOptions)
    name: str = ""
    tenant: str = ""
    priority: int = 0

    @property
    def label(self) -> str:
        """Display name for reports."""
        return self.name or self.program

    def param(self, key, default=None):
        """A program parameter with a default."""
        return self.params.get(key, default)


def resolve_machine(options: RunOptions) -> "Machine":
    """Build (or pass through) the machine an option set describes.

    A :class:`~repro.machines.engine.Machine` instance is returned as-is;
    a name is resolved through the calibrated spec factories with the
    option's ``nranks``/``placement``/``protocol``.
    """
    from repro.machines.engine import Machine

    if isinstance(options.machine, Machine):
        return options.machine
    if options.machine is None:
        raise ConfigurationError(
            "RunOptions.machine is unset; pass a Machine or a spec name "
            f"from {MACHINE_NAMES}"
        )
    name = options.machine
    if name == "paragon":
        from repro.machines.specs import paragon

        kwargs = {"placement": options.placement}
        if options.protocol is not None:
            kwargs["protocol"] = options.protocol
        return paragon(options.nranks, **kwargs)
    if name == "t3d":
        from repro.machines.specs import t3d

        return t3d(options.nranks)
    if name == "workstation":
        from repro.machines.specs import workstation

        return workstation()
    raise ConfigurationError(
        f"unknown machine {name!r}; use a Machine instance or one of {MACHINE_NAMES}"
    )
