"""Space-sharing job scheduler over one simulated machine.

Appendix B's machines were operated exactly this way: "the system is
space-shared into partitions where the numbers of processors are powers
of two".  The :class:`Scheduler` owns one machine's topology, carves
power-of-two partitions out of it with the buddy
:class:`~repro.machines.partition.PartitionManager`, and runs submitted
:class:`~repro.runtime.spec.JobSpec`s over their allocated node subsets —
FIFO order with greedy backfill (a queued job may jump ahead only when
the jobs before it cannot fit in the currently free partitions), queueing
wait charged in virtual time.

Node index space
----------------
The buddy allocator works over *positions in the machine's placement
order* (snake order on the Paragon), not raw node ids.  Every contiguous
power-of-two block of positions is therefore a physically compact
sub-mesh, and a job's ranks are placed on its partition's nodes in the
same order a dedicated machine of that size would use — which is what
makes a partitioned run reproduce a standalone run exactly.

Each job gets its own :class:`~repro.machines.network.ContentionNetwork`
instance over the shared topology: partitions are disjoint, so cross-job
link contention is not modelled (the 1995 schedulers' partition
boundaries had the same goal).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.machines.engine import Machine, RunResult
from repro.machines.network import ContentionNetwork, FullyConnected
from repro.machines.partition import Partition, PartitionManager
from repro.runtime.exec import Execution, execute
from repro.runtime.policy import FifoBackfill, QueuePolicy
from repro.runtime.spec import JobSpec

__all__ = ["MachineTemplate", "machine_template", "JobResult", "Scheduler"]


def _next_power_of_two(n: int) -> int:
    power = 1
    while power < n:
        power *= 2
    return power


class MachineTemplate:
    """A full machine the scheduler carves partitions from.

    Built around a *prototype* :class:`~repro.machines.engine.Machine`
    instantiated at full size: the prototype's placement order defines
    the scheduler's node index space, and per-partition machines reuse
    its CPU model, network parameters, and per-node speed factors with a
    fresh (state-free) contention network per job.
    """

    def __init__(self, prototype: Machine) -> None:
        self.prototype = prototype
        self.node_order = tuple(prototype.placement)
        self.speed_by_node = {
            node: prototype.rank_speed[rank]
            for rank, node in enumerate(self.node_order)
        }

    @property
    def total_nodes(self) -> int:
        """Nodes available to the scheduler (the prototype's rank count)."""
        return len(self.node_order)

    def nodes_for(self, partition: Partition, nranks: int) -> tuple:
        """Topology nodes hosting a job's ranks inside ``partition``."""
        return tuple(self.node_order[pos] for pos in partition.nodes[:nranks])

    def machine_for(self, partition: Partition, nranks: int) -> Machine:
        """A per-job machine over the partition's first ``nranks`` nodes."""
        if nranks > partition.size:
            raise ConfigurationError(
                f"job needs {nranks} ranks but partition has {partition.size} nodes"
            )
        proto = self.prototype
        nodes = self.nodes_for(partition, nranks)
        network = ContentionNetwork(
            topology=proto.network.topology,
            latency_s=proto.network.latency_s,
            per_hop_s=proto.network.per_hop_s,
            bytes_per_s=proto.network.bytes_per_s,
            local_bytes_per_s=proto.network.local_bytes_per_s,
        )
        start = partition.nodes[0]
        return Machine(
            name=f"{proto.name}#p{partition.ticket}@{start}+{partition.size}",
            cpu=proto.cpu,
            network=network,
            placement=list(nodes),
            sw_send_overhead_s=proto.sw_send_overhead_s,
            sw_recv_overhead_s=proto.sw_recv_overhead_s,
            copy_bytes_per_s=proto.copy_bytes_per_s,
            speed_factors=self.speed_by_node,
        )


def machine_template(
    name: str, *, placement: str = "snake", protocol: str | None = None
) -> MachineTemplate:
    """Build the full-size template for a calibrated machine spec.

    ``"paragon"`` is the 64-node JPL mesh, ``"t3d"`` the 256-node torus,
    ``"workstation"`` the single-node baseline.
    """
    if name == "paragon":
        from repro.machines.specs import (
            PARAGON_MESH_HEIGHT,
            PARAGON_MESH_WIDTH,
            paragon,
        )

        kwargs = {"placement": placement}
        if protocol is not None:
            kwargs["protocol"] = protocol
        return MachineTemplate(
            paragon(PARAGON_MESH_WIDTH * PARAGON_MESH_HEIGHT, **kwargs)
        )
    if name == "t3d":
        from repro.machines.specs import t3d

        return MachineTemplate(t3d(256))
    if name == "workstation":
        from repro.machines.specs import workstation

        return MachineTemplate(workstation())
    raise ConfigurationError(
        f"unknown machine template {name!r}; use 'paragon', 't3d', or 'workstation'"
    )


@dataclass(frozen=True)
class JobResult:
    """One finished job: the execution plus its queue/turnaround metrics."""

    job_id: int
    spec: JobSpec
    execution: Execution
    partition_size: int
    nodes: tuple
    submit_s: float
    start_s: float
    finish_s: float

    @property
    def run(self) -> RunResult:
        """The final engine run."""
        return self.execution.run

    @property
    def outcome(self):
        """The assembled program outcome (pyramid, particles, ...)."""
        return self.execution.outcome

    @property
    def queue_wait_s(self) -> float:
        """Virtual time spent queued before the partition was allocated."""
        return self.start_s - self.submit_s

    @property
    def service_s(self) -> float:
        """Virtual time the job occupied its partition (all attempts)."""
        return self.finish_s - self.start_s

    @property
    def turnaround_s(self) -> float:
        """Submit-to-finish virtual time (queue wait + service)."""
        return self.finish_s - self.submit_s


@dataclass
class _QueuedJob:
    job_id: int
    spec: JobSpec
    submit_s: float
    partition_size: int

    @property
    def tenant(self) -> str:
        return self.spec.tenant

    @property
    def priority(self) -> int:
        return self.spec.priority

    @property
    def cost(self) -> float:
        """Node demand the fair-share policy charges (no service estimate
        exists before a batch job has run, so the partition size is the
        cost unit)."""
        return float(self.partition_size)


class Scheduler:
    """FIFO + backfill batch scheduler space-sharing one machine.

    Jobs are submitted as :class:`JobSpec`s (the rank count comes from
    ``spec.options.nranks``, rounded up to the next power of two for the
    partition request) and run when a partition frees up.  Everything is
    deterministic: job ids increase in submission order, scheduling
    points are job completions, ties break on the smaller job id.

    The queue discipline is pluggable: ``policy`` ranks the eligible
    queue at every scheduling point
    (:class:`~repro.runtime.policy.QueuePolicy`); the scheduler walks the
    ranking and starts whatever fits, so any policy backfills around
    blocked jobs.  The default :class:`~repro.runtime.policy.FifoBackfill`
    reproduces the original FIFO + greedy backfill byte-for-byte.

    Example
    -------
    ::

        sched = Scheduler(machine_template("paragon", protocol="nx"))
        sched.submit(spec_a)   # 32 ranks
        sched.submit(spec_b)   # 32 ranks -> runs concurrently
        results = sched.run()
    """

    def __init__(
        self, template: MachineTemplate, *, policy: QueuePolicy | None = None
    ) -> None:
        if isinstance(template, Machine):
            template = MachineTemplate(template)
        self.template = template
        self.policy = policy if policy is not None else FifoBackfill()
        # The buddy allocator runs over placement-order positions; a
        # FullyConnected topology of that size is the cleanest pure
        # index space (the allocator only reads ``num_nodes``).
        self.partitions = PartitionManager(FullyConnected(template.total_nodes))
        self._queue: list = []
        self._results: dict = {}
        self._next_job_id = 0

    @property
    def usable_nodes(self) -> int:
        """Power-of-two node pool the buddy allocator manages."""
        return self.partitions.usable_nodes

    def submit(self, spec: JobSpec, *, submit_s: float = 0.0) -> int:
        """Queue a job; returns its id (FIFO position).

        Raises
        ------
        ConfigurationError
            If the job cannot fit the machine even when idle.
        """
        nranks = spec.options.nranks
        if nranks < 1:
            raise ConfigurationError(f"job needs >= 1 rank, got {nranks}")
        if submit_s < 0.0:
            raise ConfigurationError(f"submit_s must be >= 0, got {submit_s}")
        size = _next_power_of_two(nranks)
        if size > self.partitions.usable_nodes:
            raise ConfigurationError(
                f"job needs a {size}-node partition; machine offers "
                f"{self.partitions.usable_nodes}"
            )
        job_id = self._next_job_id
        self._next_job_id += 1
        job = _QueuedJob(job_id, spec, submit_s, size)
        self._queue.append(job)
        self.policy.on_submit(job, submit_s)
        return job_id

    def run(self) -> list:
        """Drain the queue; returns :class:`JobResult`s in job-id order."""
        running: list = []  # heap of (finish_s, job_id, partition, job)
        now = 0.0
        while self._queue or running:
            self._start_eligible(now, running)
            if running:
                finish_s, job_id, partition, job = heapq.heappop(running)
                now = max(now, finish_s)
                self.partitions.release(partition)
                self.policy.on_finish(job, now)
                continue
            # Nothing running and nothing startable: jump to the next
            # submission instant (the machine is idle until then).
            future = [job.submit_s for job in self._queue if job.submit_s > now]
            if not future:
                raise ConfigurationError(
                    "scheduler stalled with queued jobs; this should be "
                    "impossible because submit() validates partition sizes"
                )
            now = min(future)
        return [self._results[job_id] for job_id in sorted(self._results)]

    # -- internals -----------------------------------------------------------

    def _start_eligible(self, now: float, running: list) -> None:
        """Start every queued job that fits, scanning policy order.

        The policy's front-runner gets the first shot at the free
        partitions; jobs ranked behind it may backfill around it only
        when it cannot be placed (allocation failures skip, not stall).
        """
        eligible = [job for job in self._queue if job.submit_s <= now]
        started = set()
        for job in self.policy.order(eligible, now):
            try:
                partition = self.partitions.allocate(job.partition_size)
            except ConfigurationError:
                continue  # blocked; jobs ranked behind it may backfill
            self.policy.on_start(job, now)
            result = self._run_job(job, partition, now)
            heapq.heappush(
                running, (result.finish_s, job.job_id, partition, job)
            )
            started.add(job.job_id)
        if started:
            self._queue = [
                job for job in self._queue if job.job_id not in started
            ]

    def _run_job(self, job: _QueuedJob, partition: Partition, now: float) -> JobResult:
        nranks = job.spec.options.nranks
        machine = self.template.machine_for(partition, nranks)
        execution = execute(machine, job.spec)
        result = JobResult(
            job_id=job.job_id,
            spec=job.spec,
            execution=execution,
            partition_size=partition.size,
            nodes=self.template.nodes_for(partition, nranks),
            submit_s=job.submit_s,
            start_s=now,
            finish_s=now + execution.total_virtual_s,
        )
        self._results[job.job_id] = result
        return result

    # -- aggregate metrics ---------------------------------------------------

    def makespan_s(self) -> float:
        """Finish time of the last completed job."""
        return max((r.finish_s for r in self._results.values()), default=0.0)

    def total_queue_wait_s(self) -> float:
        """Sum of per-job queue waits."""
        return sum(r.queue_wait_s for r in self._results.values())

    def utilization(self) -> float:
        """Node-seconds of service over node-seconds of machine time."""
        makespan = self.makespan_s()
        if makespan <= 0.0:
            return 0.0
        busy = sum(
            r.partition_size * r.service_s for r in self._results.values()
        )
        return busy / (self.partitions.usable_nodes * makespan)
