"""Pluggable queueing policies for the space-sharing scheduler.

The PR-4 :class:`~repro.runtime.scheduler.Scheduler` hard-wired one
discipline: scan the queue in submission order and start every job whose
partition fits (FIFO with greedy backfill).  The always-on service layer
(:mod:`repro.service`) needs other disciplines — per-tenant weighted
fair-share with priorities — without forking the allocation core, so the
discipline is now a :class:`QueuePolicy` object the scheduler consults
for *ordering only*.  Allocation, backfill-by-skipping, and virtual-time
bookkeeping stay in the caller: a policy ranks the eligible queue, the
caller walks that ranking and starts whatever fits.

Determinism contract: a policy's ranking may depend only on job fields
(id, tenant, priority, cost, submit time) and on its own state updated
through the ``on_submit``/``on_start``/``on_finish`` hooks — never on
wall clock, hash order, or ambient RNG.  Every ordering breaks ties on
``job_id`` so identical submissions replay identically.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = ["QueuePolicy", "FifoBackfill", "WeightedFairShare", "make_policy"]


class QueuePolicy:
    """Ordering discipline consulted by the scheduling pass.

    Subclasses override :meth:`order`; the hooks are optional.  The
    ``job`` objects expose at least ``job_id``, ``tenant``, ``priority``,
    ``partition_size``, ``submit_s``, and ``cost`` (node-seconds of
    expected service, or the partition size when no estimate exists).
    """

    name = "base"

    def on_submit(self, job, now: float) -> None:
        """A job entered the queue at virtual time ``now``."""

    def order(self, eligible: list, now: float) -> list:
        """Rank the eligible (already-submitted) jobs for this pass."""
        raise NotImplementedError

    def on_start(self, job, now: float) -> None:
        """A job was placed on a partition at virtual time ``now``."""

    def on_finish(self, job, now: float) -> None:
        """A job's partition was released at virtual time ``now``."""


class FifoBackfill(QueuePolicy):
    """Submission order: the PR-4 behavior, extracted verbatim.

    The head of the queue gets the first shot at the free partitions and
    later jobs may start only when an earlier job cannot be placed —
    which is exactly what walking the ranking with skip-on-failure does.
    """

    name = "fifo"

    def order(self, eligible: list, now: float) -> list:
        return sorted(eligible, key=lambda job: job.job_id)


class WeightedFairShare(QueuePolicy):
    """Start-time fair queueing over tenants, with strict priorities.

    Each tenant owns a weight; a job's *start tag* is the maximum of the
    global virtual time and its tenant's last finish tag, and its finish
    tag advances the tenant by ``cost / weight``.  Ranking is by
    descending priority, then ascending start tag, then job id — so a
    heavy tenant's backlog cannot starve a light tenant (its tags race
    ahead), while a higher :attr:`~repro.runtime.spec.JobSpec.priority`
    always clears the queue first regardless of tags.

    All state advances through the hooks in virtual time; two runs fed
    the same submission sequence produce the same tags and ranking.
    """

    name = "fair"

    def __init__(self, weights: dict | None = None, *, default_weight: float = 1.0) -> None:
        if default_weight <= 0.0:
            raise ConfigurationError(
                f"default_weight must be > 0, got {default_weight}"
            )
        self.weights = dict(weights or {})
        for tenant, weight in sorted(self.weights.items()):
            if weight <= 0.0:
                raise ConfigurationError(
                    f"tenant {tenant!r} weight must be > 0, got {weight}"
                )
        self.default_weight = default_weight
        self._vtime = 0.0
        self._tenant_finish: dict = {}
        self._tags: dict = {}

    def _weight(self, tenant: str) -> float:
        return self.weights.get(tenant, self.default_weight)

    def on_submit(self, job, now: float) -> None:
        start_tag = max(self._vtime, self._tenant_finish.get(job.tenant, 0.0))
        finish_tag = start_tag + job.cost / self._weight(job.tenant)
        self._tags[job.job_id] = start_tag
        self._tenant_finish[job.tenant] = finish_tag

    def order(self, eligible: list, now: float) -> list:
        return sorted(
            eligible,
            key=lambda job: (
                -job.priority,
                self._tags.get(job.job_id, 0.0),
                job.job_id,
            ),
        )

    def on_start(self, job, now: float) -> None:
        # Global virtual time tracks the newest start tag placed in
        # service, so tenants idle through a busy spell re-enter at the
        # current front instead of with an ancient (unfairly small) tag.
        self._vtime = max(self._vtime, self._tags.get(job.job_id, 0.0))

    def on_finish(self, job, now: float) -> None:
        self._tags.pop(job.job_id, None)


def make_policy(name: str, *, weights: dict | None = None) -> QueuePolicy:
    """Build a policy by CLI name (``"fifo"`` or ``"fair"``)."""
    if name == "fifo":
        return FifoBackfill()
    if name == "fair":
        return WeightedFairShare(weights)
    raise ConfigurationError(
        f"unknown queue policy {name!r}; use 'fifo' or 'fair'"
    )
