"""Unified job launch for the simulated machines.

The runtime layer sits between the app drivers and the engine:

* :mod:`~repro.runtime.spec` — :class:`JobSpec`/:class:`RunOptions`, the
  consolidated description of *what* to run and under which cross-cutting
  knobs (machine, placement, protocol, kernel, tracing, faults,
  checkpointing).
* :mod:`~repro.runtime.registry` — :class:`ProgramDef`, where each app
  (wavelet, nbody, pic, workload) registers its rank program, argument
  preparation, result assembly, and supported options.
* :mod:`~repro.runtime.exec` — :func:`execute`/:func:`launch`, the one
  ``Engine`` loop (with checkpoint/restart recovery) every driver now
  goes through.
* :mod:`~repro.runtime.scheduler` — :class:`Scheduler`, space-sharing one
  machine into buddy power-of-two partitions and running many jobs
  FIFO-with-backfill in shared virtual time.

The legacy drivers (``run_spmd_wavelet``, ``run_parallel_nbody``,
``run_parallel_pic``, ``run_with_recovery``) remain as thin wrappers and
produce byte-identical results for identical inputs.
"""

from repro.runtime.exec import Execution, execute, launch, run_program
from repro.runtime.policy import (
    FifoBackfill,
    QueuePolicy,
    WeightedFairShare,
    make_policy,
)
from repro.runtime.registry import (
    Launch,
    ProgramDef,
    build_launch,
    get_program,
    program_names,
    register,
)
from repro.runtime.scheduler import (
    JobResult,
    MachineTemplate,
    Scheduler,
    machine_template,
)
from repro.runtime.spec import JobSpec, RunOptions, resolve_machine

__all__ = [
    "JobSpec",
    "RunOptions",
    "resolve_machine",
    "ProgramDef",
    "Launch",
    "register",
    "get_program",
    "program_names",
    "build_launch",
    "Execution",
    "run_program",
    "execute",
    "launch",
    "Scheduler",
    "JobResult",
    "MachineTemplate",
    "machine_template",
    "QueuePolicy",
    "FifoBackfill",
    "WeightedFairShare",
    "make_policy",
]
