"""Job execution: one place that owns the ``Engine`` loop.

:func:`run_program` is the checkpoint/restart retry loop formerly private
to :mod:`repro.machines.faults.recovery` (whose ``run_with_recovery``
now delegates here): run the program under the current fault plan; on a
:class:`~repro.errors.RankCrashError`, repair the crashed rank, rewind to
the newest globally committed checkpoint, and retry.  A fault-free plan
degenerates to a single ``Engine.run``.

:func:`execute` drives a whole :class:`~repro.runtime.spec.JobSpec` on a
given machine — registry lookup, option validation, the retry loop, and
result assembly — and :func:`launch` additionally resolves the machine
from the spec's options, which is what the CLI subcommands use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, RankCrashError
from repro.machines.engine import Engine, Machine, RunResult
from repro.runtime.registry import build_launch
from repro.runtime.spec import JobSpec, resolve_machine

__all__ = ["Execution", "run_program", "execute", "launch"]


@dataclass
class Execution:
    """Everything one completed job execution produced."""

    #: Result of the final, successful engine run.
    run: RunResult
    #: Assembled program outcome (pyramid, particle set, ...); the raw
    #: :class:`RunResult` when the program has no assembly step.
    outcome: object = None
    #: One :class:`RankCrashError` per aborted attempt, in order.
    crashes: list = field(default_factory=list)
    #: Total ``Engine.run`` invocations (``len(crashes) + 1``).
    attempts: int = 1
    #: Virtual time across *all* attempts: time lost to aborted runs plus
    #: the final attempt's elapsed time.
    total_virtual_s: float = 0.0
    #: The fault plan the final attempt ran under (crashed ranks repaired).
    plan: object = None

    @property
    def restarts(self) -> int:
        """Number of checkpoint/restart cycles (0 for a clean run)."""
        return len(self.crashes)


def run_program(
    machine: Machine,
    program,
    *args,
    faults=None,
    max_restarts: int = 8,
    record_trace: bool = False,
    restore_kwarg: str = "restore",
    **kwargs,
) -> Execution:
    """Run ``program`` on ``machine`` to completion through injected crashes.

    Each attempt runs under the current plan; a
    :class:`~repro.errors.RankCrashError` repairs the crashed rank
    (``plan.without_crash``), adopts the crash's committed checkpoint (if
    any) as the next attempt's ``restore``, and retries.  A crash with no
    newer committed checkpoint keeps the previous restore point, so
    back-to-back crashes never regress the recovery line.  Raises the
    final :class:`RankCrashError` if ``max_restarts`` is exhausted.

    Extra positional/keyword arguments are forwarded to ``program``
    through ``Engine.run``; the restore states are injected under
    ``restore_kwarg`` only once a committed checkpoint exists, so
    programs without checkpoint support can still be driven (they
    restart from the beginning).
    """
    if max_restarts < 0:
        raise ConfigurationError(f"max_restarts must be >= 0, got {max_restarts}")
    plan = faults
    crashes: list = []
    lost_s = 0.0
    restore = None
    while True:
        engine = Engine(machine, record_trace=record_trace, faults=plan)
        call_kwargs = dict(kwargs)
        if restore is not None:
            call_kwargs[restore_kwarg] = restore
        try:
            run = engine.run(program, *args, **call_kwargs)
        except RankCrashError as crash:
            crashes.append(crash)
            lost_s += crash.at_s
            if len(crashes) > max_restarts:
                raise
            plan = plan.without_crash(crash.rank)
            if crash.checkpoint_index >= 0:
                restore = crash.checkpoint_states
            continue
        return Execution(
            run=run,
            outcome=run,
            crashes=crashes,
            attempts=len(crashes) + 1,
            total_virtual_s=lost_s + run.elapsed_s,
            plan=plan,
        )


def execute(machine: Machine, spec: JobSpec) -> Execution:
    """Run one :class:`JobSpec` on ``machine`` and assemble its outcome."""
    opts = spec.options
    job = build_launch(spec, machine.nranks)
    execution = run_program(
        machine,
        job.program,
        *job.args,
        faults=opts.faults,
        max_restarts=opts.max_restarts,
        record_trace=opts.record_trace,
        **job.kwargs,
    )
    if job.assemble is not None:
        execution.outcome = job.assemble(execution.run)
    return execution


def launch(spec: JobSpec) -> Execution:
    """Resolve the machine named by ``spec.options`` and run the job."""
    return execute(resolve_machine(spec.options), spec)
