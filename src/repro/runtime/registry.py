"""Program registry: every app describes itself to the runtime.

A :class:`ProgramDef` tells the runtime how to turn a
:class:`~repro.runtime.spec.JobSpec` into something the engine can run —
the rank program, its arguments, and how to assemble the per-rank return
values into the app's outcome object — plus which cross-cutting options
the program supports, so an unsupported knob (``kernel="lifting"`` on the
N-body code, say) fails loudly at submission instead of being silently
ignored.

The four built-in programs mirror the legacy drivers:

``wavelet``
    Striped/block SPMD 2-D decomposition
    (:mod:`repro.wavelet.parallel.spmd`); supports ``kernel``,
    ``decomposition``, and (striped only) checkpointing.  Assembles a
    :class:`~repro.wavelet.parallel.spmd.SpmdWaveletOutcome`.
``nbody``
    Manager-worker / replicated Barnes-Hut
    (:mod:`repro.nbody.parallel`); checkpointing with the euler
    integrator.  Assembles a
    :class:`~repro.nbody.parallel.ParallelNBodyOutcome`.
``pic``
    Worker-worker 3-D electrostatic PIC (:mod:`repro.pic.parallel`);
    checkpointing.  Assembles a
    :class:`~repro.pic.parallel.ParallelPicOutcome`.
``workload``
    Replays a NAS-like instruction trace's type mix as engine compute
    charges, evenly sharded over the ranks, with a final allreduce of the
    instruction counts — a synthetic job for exercising the scheduler
    with the Appendix C workload suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.runtime.spec import JobSpec

__all__ = [
    "Launch",
    "ProgramDef",
    "register",
    "get_program",
    "program_names",
    "build_launch",
]


@dataclass(frozen=True)
class Launch:
    """A ready-to-run job: rank program, arguments, and result assembly.

    ``assemble`` maps the finished
    :class:`~repro.machines.engine.RunResult` to the program's outcome
    object (``None`` means the run result itself is the outcome).
    """

    program: object
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    assemble: object = None


@dataclass(frozen=True)
class ProgramDef:
    """A registered application program.

    Parameters
    ----------
    name:
        Registry key (``spec.program``).
    build:
        ``build(spec, nranks) -> Launch`` — validates the spec against
        the target rank count and binds the rank program.
    supports:
        Option names the program honors beyond the engine-level ones
        (``record_trace``/``faults`` always apply): any of ``"kernel"``,
        ``"decomposition"``, ``"checkpointing"``, ``"collective"``.
    description:
        One-line summary for listings.
    """

    name: str
    build: object
    supports: frozenset = frozenset()
    description: str = ""

    def validate(self, spec: JobSpec) -> None:
        """Reject options the program does not support."""
        opts = spec.options
        if opts.kernel != "conv" and "kernel" not in self.supports:
            raise ConfigurationError(
                f"program {self.name!r} does not support kernel={opts.kernel!r}"
            )
        if opts.decomposition != "striped" and "decomposition" not in self.supports:
            raise ConfigurationError(
                f"program {self.name!r} does not support "
                f"decomposition={opts.decomposition!r}"
            )
        if opts.checkpoint_interval > 0 and "checkpointing" not in self.supports:
            raise ConfigurationError(
                f"program {self.name!r} does not support checkpointing"
            )
        if opts.collective != "rdouble":
            from repro.machines.api import ALLREDUCE_ALGORITHMS

            if opts.collective not in ALLREDUCE_ALGORITHMS:
                raise ConfigurationError(
                    f"unknown collective {opts.collective!r}; "
                    f"use one of {sorted(ALLREDUCE_ALGORITHMS)}"
                )
            if "collective" not in self.supports:
                raise ConfigurationError(
                    f"program {self.name!r} does not support "
                    f"collective={opts.collective!r}"
                )


_REGISTRY: dict = {}


def register(progdef: ProgramDef) -> ProgramDef:
    """Add (or replace) a program definition; returns it for chaining."""
    _REGISTRY[progdef.name] = progdef
    return progdef


def get_program(name: str) -> ProgramDef:
    """Look up a registered program by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown program {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def program_names() -> tuple:
    """Registered program names, sorted."""
    return tuple(sorted(_REGISTRY))


def build_launch(spec: JobSpec, nranks: int) -> Launch:
    """Validate ``spec`` and bind it to a rank count."""
    progdef = get_program(spec.program)
    progdef.validate(spec)
    return progdef.build(spec, nranks)


# --------------------------------------------------------------------------
# Built-in program definitions
# --------------------------------------------------------------------------


def _build_wavelet(spec: JobSpec, nranks: int) -> Launch:
    import numpy as np

    from repro.errors import DecompositionError
    from repro.wavelet.parallel.decomposition import (
        BlockDecomposition,
        StripeDecomposition,
        factor_grid,
    )
    from repro.wavelet.parallel.spmd import (
        _assemble_block,
        _assemble_striped,
        block_wavelet_program,
        striped_wavelet_program,
    )

    opts = spec.options
    image = np.asarray(spec.params["image"], dtype=np.float64)
    bank = spec.params["bank"]
    levels = int(spec.params["levels"])
    distribute = bool(spec.param("distribute", True))
    collect = bool(spec.param("collect", True))
    if opts.kernel != "conv":
        from repro.wavelet.plan import parse_kernel_spec

        # Validates names and parameterized specs ("fused:16",
        # "single-loop") up front; raises ConfigurationError on junk.
        parse_kernel_spec(opts.kernel)
    kwargs = dict(distribute=distribute, collect=collect, kernel=opts.kernel)

    if opts.decomposition == "striped":
        decomp = StripeDecomposition(image.shape[0], image.shape[1], nranks, levels)
        program = striped_wavelet_program
        if opts.checkpoint_interval > 0:
            kwargs["checkpoint_interval"] = opts.checkpoint_interval

        def assemble(run):
            from repro.wavelet.parallel.spmd import SpmdWaveletOutcome

            pyramid = None
            if run.results[0] is not None and (collect or nranks == 1):
                pyramid = _assemble_striped(run.results[0], bank.name, levels)
            return SpmdWaveletOutcome(run=run, pyramid=pyramid)

    elif opts.decomposition == "block":
        if opts.checkpoint_interval > 0:
            raise ConfigurationError(
                "checkpointing is only supported for the striped decomposition"
            )
        prows, pcols = factor_grid(nranks)
        decomp = BlockDecomposition(image.shape[0], image.shape[1], prows, pcols, levels)
        program = block_wavelet_program

        def assemble(run):
            from repro.wavelet.parallel.spmd import SpmdWaveletOutcome

            pyramid = None
            if run.results[0] is not None and (collect or nranks == 1):
                pyramid = _assemble_block(run.results[0], decomp, bank.name, levels)
            return SpmdWaveletOutcome(run=run, pyramid=pyramid)

    else:
        raise DecompositionError(
            f"unknown decomposition {opts.decomposition!r}; use 'striped' or 'block'"
        )

    return Launch(
        program=program,
        args=(image, bank, levels, decomp),
        kwargs=kwargs,
        assemble=assemble,
    )


def _build_nbody(spec: JobSpec, nranks: int) -> Launch:
    from repro.nbody.parallel import (
        ParallelNBodyOutcome,
        manager_worker_program,
        replicated_program,
    )

    opts = spec.options
    particles = spec.params["particles"]
    steps = int(spec.params["steps"])
    model = spec.param("model", "manager_worker")
    programs = {
        "manager_worker": manager_worker_program,
        "replicated": replicated_program,
    }
    try:
        program = programs[model]
    except KeyError:
        raise ConfigurationError(
            f"unknown model {model!r}; use 'manager_worker' or 'replicated'"
        ) from None
    kwargs = {
        key: value
        for key, value in spec.params.items()
        if key not in ("particles", "steps", "model")
    }
    if opts.checkpoint_interval > 0:
        if model != "manager_worker":
            raise ConfigurationError(
                "checkpointing is only supported for the manager_worker model"
            )
        kwargs["checkpoint_interval"] = opts.checkpoint_interval

    def assemble(run):
        from repro.data.particles import ParticleSet

        final = run.results[0]
        out_particles = ParticleSet(
            positions=final["positions"],
            velocities=final["velocities"],
            masses=particles.masses.copy(),
        )
        return ParallelNBodyOutcome(
            run=run,
            particles=out_particles,
            interactions_per_step=final["interactions_per_step"],
        )

    return Launch(
        program=program, args=(particles, steps), kwargs=kwargs, assemble=assemble
    )


def _build_pic(spec: JobSpec, nranks: int) -> Launch:
    from repro.pic.parallel import ParallelPicOutcome, pic_program

    opts = spec.options
    grid = spec.params["grid"]
    particles = spec.params["particles"]
    steps = int(spec.params["steps"])
    kwargs = {
        key: value
        for key, value in spec.params.items()
        if key not in ("grid", "particles", "steps")
    }
    if opts.checkpoint_interval > 0:
        kwargs["checkpoint_interval"] = opts.checkpoint_interval
    if opts.collective != "rdouble":
        # The charge-density combine is the program's global reduction;
        # the scalar dt allreduce stays on recursive doubling either way.
        kwargs["global_sum"] = opts.collective

    def assemble(run):
        import numpy as np

        from repro.data.particles import ParticleSet

        result = run.results[0]
        positions = np.vstack([p[0] for p in result["pieces"]])
        velocities = np.vstack([p[1] for p in result["pieces"]])
        masses = particles.masses[: positions.shape[0]].copy()
        out = ParticleSet(positions, velocities, masses)
        return ParallelPicOutcome(run=run, particles=out, dts=result["dts"])

    return Launch(
        program=pic_program,
        args=(grid, particles, steps),
        kwargs=kwargs,
        assemble=assemble,
    )


def _workload_program(ctx, mix_counts: dict, repeats: int, collective: str = "rdouble"):
    """Rank program replaying an instruction-type mix as compute charges.

    ``mix_counts`` maps engine cost categories (``flops``/``intops``/
    ``memops``) to total instruction counts; each rank charges an even
    share per repeat, then the counts are allreduced as the SPMD epilogue
    (``collective`` picks the schedule; scalar payloads are
    value-identical either way).
    """
    from repro.machines.api import get_allreduce

    allred = get_allreduce(collective)
    share = {k: v / ctx.nranks for k, v in mix_counts.items()}
    for _ in range(repeats):
        yield ctx.compute(
            flops=share.get("flops", 0.0),
            intops=share.get("intops", 0.0),
            memops=share.get("memops", 0.0),
        )
    total = yield from allred(ctx, sum(share.values()))
    return {"instructions": total, "rank_share": sum(share.values())}


def _build_workload(spec: JobSpec, nranks: int) -> Launch:
    opts = spec.options
    trace = spec.params["trace"]
    repeats = int(spec.param("repeats", 1))
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    # Map the five-type workload mix onto the engine's three cost buckets
    # (control/branch instructions execute on the integer units).
    mix = trace.type_mix()
    n = float(len(trace))
    counts = {
        "intops": n * float(mix[0] + mix[3] + mix[4]),
        "memops": n * float(mix[1]),
        "flops": n * float(mix[2]),
    }

    def assemble(run):
        return run

    kwargs = {}
    if opts.collective != "rdouble":
        kwargs["collective"] = opts.collective
    return Launch(
        program=_workload_program,
        args=(counts, repeats),
        kwargs=kwargs,
        assemble=assemble,
    )


register(
    ProgramDef(
        name="wavelet",
        build=_build_wavelet,
        supports=frozenset({"kernel", "decomposition", "checkpointing"}),
        description="SPMD 2-D wavelet decomposition (striped/block)",
    )
)
register(
    ProgramDef(
        name="nbody",
        build=_build_nbody,
        supports=frozenset({"checkpointing"}),
        description="Barnes-Hut N-body (manager-worker/replicated)",
    )
)
register(
    ProgramDef(
        name="pic",
        build=_build_pic,
        supports=frozenset({"checkpointing", "collective"}),
        description="3-D electrostatic PIC (worker-worker)",
    )
)
register(
    ProgramDef(
        name="workload",
        build=_build_workload,
        supports=frozenset({"collective"}),
        description="NAS-like instruction-mix replay",
    )
)
