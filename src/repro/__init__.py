"""repro — reproduction of *Wavelet Decomposition on High-Performance
Computing Systems* (El-Ghazawi & Le Moigne, ICPP 1996) and its companion
JNNIE studies.

The package is organized as a set of substrates plus the paper's
contributions layered on top:

``repro.machines``
    Deterministic discrete-event simulators of the parallel machines the
    paper evaluated on: an Intel-Paragon-like message-passing MIMD mesh,
    a Cray-T3D-like torus, and a MasPar-like SIMD processor array.
``repro.wavelet``
    Mallat multi-resolution wavelet decomposition/reconstruction, plus the
    paper's coarse-grain (striped, snake-placed SPMD) and fine-grain
    (systolic / dilution SIMD) parallel algorithms.
``repro.nbody``
    Barnes-Hut N-body simulation with costzones partitioning and the
    manager-worker parallel formulation of Appendix B.
``repro.pic``
    3-D electrostatic Particle-In-Cell simulation with a slab-decomposed
    parallel FFT Poisson solver (Appendix B).
``repro.workload``
    Architecture-invariant workload characterization: oracle-model parallel
    instructions, centroids, similarity, smoothability (Appendix C).
``repro.perf``
    The "performance budget" instrumentation model (useful work,
    communication, redundancy, load-imbalance overheads).
``repro.data``
    Synthetic stand-ins for the paper's inputs (Landsat-TM-like imagery,
    particle distributions).

Quickstart
----------
>>> import numpy as np
>>> from repro.wavelet import mallat_decompose_2d, daubechies_filter
>>> image = np.random.default_rng(0).random((64, 64))
>>> pyramid = mallat_decompose_2d(image, daubechies_filter(8), levels=2)
>>> pyramid.approximation.shape
(16, 16)
"""

from repro._version import __version__

__all__ = ["__version__"]
