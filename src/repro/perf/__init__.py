"""Performance-budget and scalability reporting (the measurement
methodology of Appendix B Section 3).

The per-rank budget itself is collected by the engine
(:class:`repro.machines.engine.RankBudget`); this package adds speedup /
efficiency curves, the uniprocessor extrapolation device, plain-text
rendering of the paper's tables and figures, and the wall-clock kernel
benchmark harness (:mod:`repro.perf.bench`).
"""

from repro.perf.bench import (
    BENCH_SCHEMA,
    VIRTUAL_BENCH_SCHEMA,
    BenchCase,
    default_cases,
    quick_cases,
    run_bench,
    run_virtual_bench,
    validate_bench_document,
    write_bench_json,
)
from repro.perf.metrics import ScalingCurve, ScalingPoint, linear_extrapolate
from repro.perf.report import (
    format_budget,
    format_critical_path,
    format_fault_sweep,
    format_profile,
    format_speedup_series,
    format_table,
    format_timeline,
)

__all__ = [
    "ScalingPoint",
    "ScalingCurve",
    "linear_extrapolate",
    "format_table",
    "format_budget",
    "format_speedup_series",
    "format_timeline",
    "format_profile",
    "format_critical_path",
    "format_fault_sweep",
    "BENCH_SCHEMA",
    "VIRTUAL_BENCH_SCHEMA",
    "BenchCase",
    "default_cases",
    "quick_cases",
    "run_bench",
    "run_virtual_bench",
    "validate_bench_document",
    "write_bench_json",
]
