"""Performance-budget and scalability reporting (the measurement
methodology of Appendix B Section 3).

The per-rank budget itself is collected by the engine
(:class:`repro.machines.engine.RankBudget`); this package adds speedup /
efficiency curves, the uniprocessor extrapolation device, plain-text
rendering of the paper's tables and figures, the wall-clock kernel
benchmark harness (:mod:`repro.perf.bench`), and the engine rank-scaling
benchmark (:mod:`repro.perf.engine_bench`).
"""

from repro.perf.bench import (
    BENCH_SCHEMA,
    VIRTUAL_BENCH_SCHEMA,
    BenchCase,
    default_cases,
    quick_cases,
    run_bench,
    run_virtual_bench,
    validate_bench_document,
    write_bench_json,
)
from repro.perf.engine_bench import (
    DEFAULT_RANKS,
    DEFAULT_WORKLOADS,
    ENGINE_BENCH_SCHEMA,
    format_engine_bench,
    run_engine_case,
    run_engine_sweep,
    validate_engine_bench_document,
)
from repro.perf.metrics import ScalingCurve, ScalingPoint, linear_extrapolate
from repro.perf.report import (
    format_budget,
    format_critical_path,
    format_fault_sweep,
    format_profile,
    format_speedup_series,
    format_table,
    format_timeline,
)

__all__ = [
    "ScalingPoint",
    "ScalingCurve",
    "linear_extrapolate",
    "format_table",
    "format_budget",
    "format_speedup_series",
    "format_timeline",
    "format_profile",
    "format_critical_path",
    "format_fault_sweep",
    "BENCH_SCHEMA",
    "VIRTUAL_BENCH_SCHEMA",
    "BenchCase",
    "default_cases",
    "quick_cases",
    "run_bench",
    "run_virtual_bench",
    "validate_bench_document",
    "write_bench_json",
    "ENGINE_BENCH_SCHEMA",
    "DEFAULT_RANKS",
    "DEFAULT_WORKLOADS",
    "run_engine_case",
    "run_engine_sweep",
    "validate_engine_bench_document",
    "format_engine_bench",
]
