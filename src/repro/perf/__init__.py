"""Performance-budget and scalability reporting (the measurement
methodology of Appendix B Section 3).

The per-rank budget itself is collected by the engine
(:class:`repro.machines.engine.RankBudget`); this package adds speedup /
efficiency curves, the uniprocessor extrapolation device, and plain-text
rendering of the paper's tables and figures.
"""

from repro.perf.metrics import ScalingCurve, ScalingPoint, linear_extrapolate
from repro.perf.report import (
    format_budget,
    format_critical_path,
    format_fault_sweep,
    format_profile,
    format_speedup_series,
    format_table,
    format_timeline,
)

__all__ = [
    "ScalingPoint",
    "ScalingCurve",
    "linear_extrapolate",
    "format_table",
    "format_budget",
    "format_speedup_series",
    "format_timeline",
    "format_profile",
    "format_critical_path",
    "format_fault_sweep",
]
