"""Plain-text rendering of the evaluation artifacts.

Every benchmark prints its table or figure series through these helpers so
``pytest benchmarks/ --benchmark-only`` output reads like the paper's
artifacts: rows of numbers with headers, plus ASCII bar profiles for the
performance-budget figures.
"""

from __future__ import annotations

from repro.machines.engine import RunResult

__all__ = [
    "format_table",
    "format_budget",
    "format_speedup_series",
    "format_timeline",
    "format_profile",
    "format_critical_path",
    "format_fault_sweep",
]


def format_table(title: str, headers: list, rows: list) -> str:
    """Fixed-width table with a title rule.

    Rows shorter than the header (e.g. triangular matrices) are padded
    with empty cells.
    """
    width = len(headers)
    rows = [list(row) + [""] * (width - len(row)) for row in rows]
    columns = [headers] + [[_fmt(cell) for cell in row] for row in rows]
    widths = [max(len(row[i]) for row in columns) for i in range(len(headers))]
    lines = [title, "-" * max(len(title), sum(widths) + 2 * len(widths))]
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    for row in columns[1:]:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.1f}"
        if abs(cell) >= 0.01:
            return f"{cell:.4g}"
        return f"{cell:.3e}"
    return str(cell)


def format_budget(title: str, run: RunResult) -> str:
    """Render a run's mean performance budget as the paper's stacked-bar
    figures, in ASCII."""
    budget = run.mean_budget()
    fractions = budget.fractions()
    lines = [title]
    for key in ("work", "comm", "redundancy", "imbalance"):
        bar = "#" * int(round(fractions[key] * 50))
        lines.append(f"  {key:<11}{fractions[key] * 100:6.1f}% |{bar}")
    lines.append(f"  elapsed {run.elapsed_s:.4f}s over {run.nranks} ranks")
    return "\n".join(lines)


_SPARK_GLYPHS = " .:-=+*#%@"


def format_profile(title: str, values, *, width: int = 64) -> str:
    """ASCII sparkline of a non-negative series (e.g. a workload's
    parallelism profile over cycles), resampled to ``width`` columns by
    bucket means."""
    series = [float(v) for v in values]
    if not series:
        raise ValueError("cannot render an empty profile")
    if len(series) > width:
        bucket = len(series) / width
        series = [
            sum(series[int(i * bucket) : max(int(i * bucket) + 1, int((i + 1) * bucket))])
            / max(1, int((i + 1) * bucket) - int(i * bucket))
            for i in range(width)
        ]
    peak = max(series) or 1.0
    glyphs = "".join(
        _SPARK_GLYPHS[min(len(_SPARK_GLYPHS) - 1, int(v / peak * (len(_SPARK_GLYPHS) - 1)))]
        for v in series
    )
    return f"{title}\n  |{glyphs}|  peak={peak:g}"


_TIMELINE_GLYPHS = {
    "compute": "#",
    "redundancy": "~",
    "send": ">",
    "recv": "<",
    "checkpoint": "o",
}


def format_timeline(title: str, run: RunResult, *, width: int = 72) -> str:
    """ASCII Gantt chart of a traced run (requires ``record_trace=True``).

    Each rank gets a row; ``#`` = useful compute, ``~`` = redundancy,
    ``>`` = send-side communication, ``<`` = receive/blocked, ``.`` =
    idle.  Later events overwrite earlier ones within a character cell.
    """
    if run.trace is None:
        raise ValueError(
            "run has no trace; construct the Engine with record_trace=True"
        )
    span = max(run.elapsed_s, 1e-30)
    rows = {rank: ["."] * width for rank in range(run.nranks)}
    for event in run.trace:
        start = int(event.start_s / span * width)
        end = max(start + 1, int(event.end_s / span * width))
        glyph = _TIMELINE_GLYPHS.get(event.kind, "?")
        row = rows[event.rank]
        for i in range(start, min(end, width)):
            row[i] = glyph
    lines = [title, f"0 {'-' * (width - 4)} {span:.4g}s"]
    for rank in range(run.nranks):
        lines.append(f"r{rank:<3}|{''.join(rows[rank])}|")
    lines.append(
        "legend: # work  ~ redundancy  > send  < recv/wait  o checkpoint  . idle"
    )
    return "\n".join(lines)


def format_critical_path(title: str, analysis) -> str:
    """Render a :class:`~repro.machines.causality.CriticalPathAnalysis`:
    the causal lower bound, the measured elapsed time, and the slack
    between them (time lost to contention and placement), plus the
    work/comm/wire composition of the critical path itself."""
    lines = [title]
    lines.append(f"  causal lower bound {analysis.lower_bound_s:.4f}s")
    lines.append(f"  elapsed            {analysis.elapsed_s:.4f}s")
    lines.append(
        f"  slack              {analysis.slack_s:.4f}s "
        f"({analysis.slack_fraction * 100:.1f}% contention/placement loss)"
    )
    lines.append(
        f"  path: {len(analysis.path)} events | work {analysis.work_s:.4f}s  "
        f"comm {analysis.comm_s:.4f}s  wire {analysis.transit_s:.4f}s"
    )
    return "\n".join(lines)


def format_fault_sweep(title: str, rows: list) -> str:
    """Render an overhead-vs-fault-rate sweep.

    ``rows`` is a list of dicts with keys ``rate``, ``elapsed_s`` (the
    final successful attempt), ``overhead`` (fractional slowdown of the
    *total* virtual time across all attempts vs the fault-free run),
    ``retransmits``, ``checkpoints``, ``restarts``, and ``lost_s``
    (virtual time thrown away by aborted attempts).
    """
    table_rows = [
        [
            f"{r['rate']:.2f}",
            f"{r['elapsed_s']:.4f}",
            f"{r['overhead'] * 100:+.1f}%",
            str(r["retransmits"]),
            str(r["checkpoints"]),
            str(r["restarts"]),
            f"{r['lost_s']:.4f}",
        ]
        for r in rows
    ]
    return format_table(
        title,
        ["fault_rate", "elapsed_s", "overhead", "retransmits", "ckpts", "restarts", "lost_s"],
        table_rows,
    )


def format_speedup_series(title: str, series: dict) -> str:
    """Render {label: [(nranks, speedup), ...]} like the paper's scaling
    figures."""
    lines = [title]
    for label, points in series.items():
        rendered = "  ".join(f"P={n}:{s:5.2f}" for n, s in points)
        lines.append(f"  {label:<18}{rendered}")
    return "\n".join(lines)
