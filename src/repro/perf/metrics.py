"""Scalability metrics: speedup, efficiency, and extrapolation.

Appendix B's figures report speedup relative to uniprocessor runs; for
problem sizes whose uniprocessor run pages ("excessive paging was
observed"), the paper extrapolates the uniprocessor time from smaller
sizes to keep speedup curves honest — Figure 9 then shows what happens
when the *measured* (paging) uniprocessor time is used instead:
superlinear speedup.  Both paths are provided here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ScalingPoint", "ScalingCurve", "linear_extrapolate"]


@dataclass(frozen=True)
class ScalingPoint:
    """One (processor count, time) measurement."""

    nranks: int
    elapsed_s: float


@dataclass
class ScalingCurve:
    """A family of measurements sharing one workload.

    Parameters
    ----------
    label:
        Curve name for reports.
    points:
        The measurements.
    serial_s:
        Reference uniprocessor time; defaults to the P=1 point.
    """

    label: str
    points: list
    serial_s: float | None = None

    def __post_init__(self) -> None:
        self.points = sorted(self.points, key=lambda p: p.nranks)
        if not self.points:
            raise ConfigurationError("a scaling curve needs at least one point")
        if self.serial_s is None:
            for p in self.points:
                if p.nranks == 1:
                    self.serial_s = p.elapsed_s
                    break
        if self.serial_s is None:
            raise ConfigurationError(
                "no P=1 point and no explicit serial_s reference"
            )

    def speedup(self) -> list:
        """(nranks, speedup) pairs."""
        return [(p.nranks, self.serial_s / p.elapsed_s) for p in self.points]

    def efficiency(self) -> list:
        """(nranks, efficiency) pairs (speedup / nranks)."""
        return [
            (p.nranks, self.serial_s / p.elapsed_s / p.nranks) for p in self.points
        ]


def linear_extrapolate(sizes, times, target_size: float) -> float:
    """Least-squares linear extrapolation of time vs problem size.

    This is the paper's device for projecting non-paging uniprocessor
    times at sizes that no longer fit in one node's memory (Appendix B
    Tables 1-2's "extrapolated" rows).
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    times = np.asarray(times, dtype=np.float64)
    if sizes.size < 2 or sizes.size != times.size:
        raise ConfigurationError("extrapolation needs >= 2 (size, time) pairs")
    slope, intercept = np.polyfit(sizes, times, 1)
    return float(slope * target_size + intercept)
