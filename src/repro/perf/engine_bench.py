"""Engine rank-scaling benchmark: the paper's placement study at 1k-4k ranks.

The kernel benchmark (:mod:`repro.perf.bench`) measures the wavelet *math*;
this harness measures the *simulator* — how fast the discrete-event engine
retires operations as the rank count grows.  Each case runs one of two
workloads on a :func:`~repro.machines.specs.scaled_mesh`, under both the
indexed matcher + vectorized contention network (the production
configuration) and the retained linear matcher + uncached network (the
pre-optimization baseline), and reports events/sec, virtual-vs-host time,
and peak RSS per configuration:

``"wavelet"``
    The paper's Section 5.1 striped-wavelet placement experiment end to
    end (distribute, per-level boundary exchange, collect at rank 0),
    capped by a tree broadcast and a Rabenseifner allreduce so the
    hierarchical collectives run at full scale.  Dominated by per-rank
    filter math and route computation, so it bounds the *end-to-end*
    engine gain.
``"collect"``
    The collect stage of a three-level decomposition isolated: every
    rank ships its four sub-band pieces to rank 0 under distinct tags.
    Rank 0's mailbox holds ``4*(P-1)`` channels, so the pre-PR linear
    matcher scans O(P) queues per receive — the O(P^2) hot path the
    exact-key index removes.  This row is where the matcher speedup is
    measured.

Both engine configurations are bitwise-equivalent by construction; the
harness enforces it by cross-checking elapsed virtual time and the
collected-image checksum between the two, so a speedup number can never
come from a behavioral divergence.

Results serialize under the ``repro.bench.engine/v1`` schema; the CI
ratchet (:func:`repro.perf.ratchet.check_ratchet`) compares the geometric
mean of ``speedup_vs_linear`` per placement against the committed
``BENCH_engine.json`` so matching/contention regressions fail the build.

Host timings vary with the machine running the suite; speedups are timing
*ratios* on the same host and workload, so host speed cancels out — the
same reasoning the kernel ratchet uses.
"""

from __future__ import annotations

import resource
import time

import numpy as np

from repro.errors import ConfigurationError
from repro.machines.tags import ENGINE_BENCH_TAG_BASE as _COLLECT_TAG_BASE

__all__ = [
    "ENGINE_BENCH_SCHEMA",
    "DEFAULT_RANKS",
    "DEFAULT_WORKLOADS",
    "engine_scale_program",
    "collect_stage_program",
    "run_engine_case",
    "run_engine_sweep",
    "validate_engine_bench_document",
]

ENGINE_BENCH_SCHEMA = "repro.bench.engine/v1"

#: The paper's study stops at 64 (the JPL Paragon cabinet); the sweep
#: extends it three doublings of mesh side beyond that.
DEFAULT_RANKS = (64, 256, 1024, 4096)

DEFAULT_WORKLOADS = ("wavelet", "collect")

_PLACEMENTS = ("snake", "naive")
_MATCHERS = ("indexed", "linear")
_WORKLOADS = DEFAULT_WORKLOADS

#: Sub-band messages per rank in the collect workload: approx plus three
#: detail bands, i.e. the output of a three-level decomposition.
_COLLECT_BANDS = 4

_RESULT_FIELDS = {
    "nranks": int,
    "placement": str,
    "workload": str,
    "matcher": str,
    "rounds": int,
    "events": int,
    "host_s": float,
    "virtual_s": float,
    "events_per_s": float,
    "peak_rss_kb": int,
    "contention_s": float,
    "messages": int,
    "route_cache_hits": int,
    "path_cache_hits": int,
    "checksum": float,
    "speedup_vs_linear": float,  # 0.0 on baseline rows / unbaselined runs
}


def _bench_image(rows: int, cols: int) -> np.ndarray:
    """Deterministic synthetic scene (no RNG: the engine benchmark must
    be a pure function of its arguments)."""
    r = np.arange(rows, dtype=np.float64)[:, None]
    c = np.arange(cols, dtype=np.float64)[None, :]
    return (r * 3.0 + c * 7.0) % 17.0


def engine_scale_program(ctx, image, bank, levels, decomp, rounds, collective):
    """Rank program for one scale case: ``rounds`` full striped-wavelet
    decompositions (distribute + boundary exchange + collect), capped by
    a tree broadcast and a ``collective``-selected allreduce of the
    checksum so the hierarchical collectives run at full scale too."""
    from repro.machines.api import broadcast_tree, get_allreduce
    from repro.wavelet.parallel.spmd import striped_wavelet_program

    allred = get_allreduce(collective)
    checksum = 0.0
    for _ in range(rounds):
        gathered = yield from striped_wavelet_program(ctx, image, bank, levels, decomp)
        if ctx.rank == 0:
            checksum = float(np.sum(gathered[0]["approx"]))
    checksum = yield from broadcast_tree(ctx, checksum, root=0)
    vec = np.full(max(ctx.nranks, 2), checksum / max(ctx.nranks, 1))
    total = yield from allred(ctx, vec)
    return float(total[0])


def collect_stage_program(ctx, rows, cols, bands, rounds):
    """The collect stage of a ``bands - 1``-level striped decomposition,
    isolated: every rank ships its ``bands`` sub-band pieces to rank 0
    under distinct tags, ``rounds`` times.  Per-event host work is tiny,
    so engine time is dominated by message matching at rank 0 — the
    pre-PR linear scan's worst case."""
    pieces = [
        (np.arange(float(rows * cols)).reshape(rows, cols) * (ctx.rank + b + 1))
        % 17.0
        for b in range(bands)
    ]
    total = 0.0
    for _ in range(rounds):
        if ctx.rank == 0:
            acc = float(pieces[0][0, 0])
            for src in range(1, ctx.nranks):
                for b in range(bands):
                    piece = yield ctx.recv(src, tag=_COLLECT_TAG_BASE + b)
                    acc += float(piece[0, 0])
            total = acc
        else:
            for b in range(bands):
                yield ctx.send(0, pieces[b], tag=_COLLECT_TAG_BASE + b)
    return total


def run_engine_case(
    nranks: int,
    placement: str = "snake",
    *,
    workload: str = "wavelet",
    matcher: str = "indexed",
    rounds: int = 2,
    rows_per_rank: int = 4,
    cols: int = 16,
    levels: int = 1,
    filter_length: int = 4,
    collective: str = "rabenseifner",
) -> dict:
    """Run one (nranks, placement, workload, matcher) configuration and
    measure it.

    ``matcher="linear"`` also disables the network's path cache, so the
    baseline row reflects the full pre-optimization engine.  ``peak_rss_kb``
    is the process high-water mark (monotone across cases in one process:
    comparable within a sweep, not per-case exact).
    """
    from repro.machines.engine import Engine
    from repro.machines.specs import scaled_mesh

    if rounds < 1:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
    if workload not in _WORKLOADS:
        raise ConfigurationError(
            f"unknown engine bench workload {workload!r}; use one of {_WORKLOADS}"
        )
    machine = scaled_mesh(nranks, placement)
    if matcher == "linear":
        machine.network.use_path_cache = False
    engine = Engine(machine, matcher=matcher)

    if workload == "wavelet":
        from repro.wavelet import filter_bank_for_length
        from repro.wavelet.parallel.decomposition import StripeDecomposition

        bank = filter_bank_for_length(filter_length)
        rows = rows_per_rank * nranks
        image = _bench_image(rows, cols)
        decomp = StripeDecomposition(rows, cols, nranks, levels)
        prog_args = (engine_scale_program, image, bank, levels, decomp, rounds, collective)
    else:
        prog_args = (collect_stage_program, 2, cols, _COLLECT_BANDS, rounds)

    t0 = time.perf_counter()  # lint: disable=DET-WALL-CLOCK
    run = engine.run(*prog_args)
    host_s = time.perf_counter() - t0  # lint: disable=DET-WALL-CLOCK
    stats = run.engine_stats
    events = int(stats["events"])
    return {
        "nranks": int(nranks),
        "placement": placement,
        "workload": workload,
        "matcher": matcher,
        "rounds": int(rounds),
        "events": events,
        "host_s": float(host_s),
        "virtual_s": float(run.elapsed_s),
        "events_per_s": float(events / host_s) if host_s > 0 else 0.0,
        "peak_rss_kb": int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss),
        "contention_s": float(run.contention_s),
        "messages": int(run.messages_sent),
        "route_cache_hits": int(stats["route_cache_hits"]),
        "path_cache_hits": int(stats["path_cache_hits"]),
        "checksum": float(run.results[0]),
        "speedup_vs_linear": 0.0,
    }


def run_engine_sweep(
    ranks=DEFAULT_RANKS,
    placements=_PLACEMENTS,
    workloads=DEFAULT_WORKLOADS,
    *,
    rounds: int = 2,
    baseline: bool = True,
    baseline_max_ranks: int | None = None,
) -> dict:
    """The full rank-scaling sweep: every (nranks, placement, workload)
    under the indexed engine, plus (with ``baseline=True``) the
    linear+uncached engine for the speedup ratio.

    ``baseline_max_ranks`` skips the O(P^2) baseline above a rank cap
    (the linear matcher is exactly what makes huge meshes slow); capped
    rows keep ``speedup_vs_linear == 0.0``.

    Cross-checks per case that the two engines agree bitwise on elapsed
    virtual time and checksum before publishing a speedup.
    """
    results = []
    for nranks in ranks:
        for placement in placements:
            for workload in workloads:
                indexed = run_engine_case(
                    nranks,
                    placement,
                    workload=workload,
                    matcher="indexed",
                    rounds=rounds,
                )
                results.append(indexed)
                want_baseline = baseline and (
                    baseline_max_ranks is None or nranks <= baseline_max_ranks
                )
                if not want_baseline:
                    continue
                linear = run_engine_case(
                    nranks,
                    placement,
                    workload=workload,
                    matcher="linear",
                    rounds=rounds,
                )
                results.append(linear)
                if linear["virtual_s"] != indexed["virtual_s"] or (
                    linear["checksum"] != indexed["checksum"]
                ):
                    raise ConfigurationError(
                        f"matcher divergence at {nranks} ranks "
                        f"({placement}/{workload}): "
                        f"indexed virtual_s={indexed['virtual_s']!r} "
                        f"checksum={indexed['checksum']!r} vs linear "
                        f"virtual_s={linear['virtual_s']!r} "
                        f"checksum={linear['checksum']!r}"
                    )
                if linear["host_s"] > 0 and indexed["host_s"] > 0:
                    indexed["speedup_vs_linear"] = (
                        linear["host_s"] / indexed["host_s"]
                    )
    return {
        "schema": ENGINE_BENCH_SCHEMA,
        "config": {
            "ranks": [int(n) for n in ranks],
            "placements": list(placements),
            "workloads": list(workloads),
            "rounds": int(rounds),
            "baseline": bool(baseline),
            "baseline_max_ranks": baseline_max_ranks,
        },
        "results": results,
    }


def validate_engine_bench_document(doc) -> None:
    """Structural sanity check of an engine benchmark document.

    Raises :class:`~repro.errors.ConfigurationError` on any violation:
    wrong schema tag, missing/extra result fields, unknown placements or
    matchers, non-positive timings, or an indexed/linear pair whose
    virtual times disagree (the bitwise-equivalence invariant).
    """
    if not isinstance(doc, dict):
        raise ConfigurationError(
            f"engine bench document must be a dict, got {type(doc)}"
        )
    if doc.get("schema") != ENGINE_BENCH_SCHEMA:
        raise ConfigurationError(
            f"unknown engine bench schema {doc.get('schema')!r}; "
            f"expected {ENGINE_BENCH_SCHEMA!r}"
        )
    if not isinstance(doc.get("config"), dict):
        raise ConfigurationError("engine bench document is missing its 'config' dict")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        raise ConfigurationError("engine bench document has no results")
    virtual = {}
    for i, row in enumerate(results):
        if not isinstance(row, dict):
            raise ConfigurationError(f"result {i} is not a dict")
        if set(row) != set(_RESULT_FIELDS):
            raise ConfigurationError(
                f"result {i} fields {sorted(row)} != {sorted(_RESULT_FIELDS)}"
            )
        for name, kind in _RESULT_FIELDS.items():
            value = row[name]
            if kind is float:
                ok = isinstance(value, (int, float)) and not isinstance(value, bool)
            else:
                ok = isinstance(value, kind) and not isinstance(value, bool)
            if not ok:
                raise ConfigurationError(
                    f"result {i} field {name!r} has {type(value).__name__}, "
                    f"expected {kind.__name__}"
                )
        if row["placement"] not in _PLACEMENTS:
            raise ConfigurationError(
                f"result {i} has unknown placement {row['placement']!r}"
            )
        if row["workload"] not in _WORKLOADS:
            raise ConfigurationError(
                f"result {i} has unknown workload {row['workload']!r}"
            )
        if row["matcher"] not in _MATCHERS:
            raise ConfigurationError(
                f"result {i} has unknown matcher {row['matcher']!r}"
            )
        if row["host_s"] <= 0 or row["events_per_s"] <= 0 or row["virtual_s"] <= 0:
            raise ConfigurationError(f"result {i} has a non-positive timing")
        if row["events"] <= 0:
            raise ConfigurationError(f"result {i} retired no events")
        case = (row["nranks"], row["placement"], row["workload"])
        seen = virtual.setdefault(case, (row["virtual_s"], row["checksum"]))
        if seen != (row["virtual_s"], row["checksum"]):
            raise ConfigurationError(
                f"result {i} {case}: virtual time/checksum disagree across "
                "matchers (bitwise-equivalence violation)"
            )


def format_engine_bench(doc) -> str:
    """Plain-text rank-scaling table for one sweep document."""
    lines = [
        "engine rank-scaling sweep "
        f"(rounds={doc['config'].get('rounds', '?')})",
        f"{'ranks':>6} {'placement':>9} {'workload':>8} {'matcher':>8} "
        f"{'events':>9} {'events/s':>11} {'virtual_s':>10} {'host_s':>8} "
        f"{'speedup':>8}",
    ]
    for row in doc["results"]:
        speedup = row.get("speedup_vs_linear", 0.0)
        lines.append(
            f"{row['nranks']:>6} {row['placement']:>9} {row['workload']:>8} "
            f"{row['matcher']:>8} {row['events']:>9} "
            f"{row['events_per_s']:>11.0f} {row['virtual_s']:>10.4f} "
            f"{row['host_s']:>8.3f} "
            + (f"{speedup:>7.2f}x" if speedup else f"{'-':>8}")
        )
    return "\n".join(lines)
