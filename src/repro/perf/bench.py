"""Wall-clock kernel benchmark harness (``python -m repro bench``).

Times the sequential 2-D decomposition under each registered kernel
(``conv``/``lifting``/``fused``) over a grid of image sizes, filter
lengths, and levels, with warmup iterations and a trimmed mean over
repeats.  Every timed case also records numeric cross-checks — max-abs
deviation of the subbands from the ``conv`` reference and the round-trip
reconstruction error — so a speedup can never silently come from a wrong
answer.

The output document (``BENCH_wavelet.json``) is versioned under the
``repro.bench.wavelet/v1`` schema and checked by
:func:`validate_bench_document`, which the CI smoke job and the tier-1
suite both run.

Documents may also carry a per-PR perf trajectory: an optional
top-level ``history`` list of ``{"pr", "speedups"}`` entries
(:func:`history_entry`), one per pull request that regenerated the
baseline.  The ratchet (:mod:`repro.perf.ratchet`) folds the history
into the baseline — per kernel, per case, the best speedup ever
committed — so a fresh run is compared against the trajectory's high-
water mark, not just the last snapshot.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "BENCH_SCHEMA",
    "VIRTUAL_BENCH_SCHEMA",
    "BenchCase",
    "default_cases",
    "history_entry",
    "quick_cases",
    "record_history",
    "run_bench",
    "run_virtual_bench",
    "validate_bench_document",
    "write_bench_json",
]

BENCH_SCHEMA = "repro.bench.wavelet/v1"
VIRTUAL_BENCH_SCHEMA = "repro.bench.wavelet-virtual/v1"

# Numeric acceptance budgets: kernels must agree with conv to 1e-9 on the
# subbands and invert to 1e-10 (float64; the documented tolerances).
MAX_ABS_BUDGET = 1e-9
ROUND_TRIP_BUDGET = 1e-10


@dataclass(frozen=True)
class BenchCase:
    """One (image size, filter, depth) benchmark configuration."""

    size: int
    filter_length: int
    levels: int

    @property
    def label(self) -> str:
        """Human-readable case tag (``512x512 F4/L3``)."""
        return f"{self.size}x{self.size} F{self.filter_length}/L{self.levels}"


def default_cases() -> list:
    """The full sweep: 256..1024 squared, Haar/D4/D8, 1-4 levels.

    Includes the acceptance case ``512x512 F4/L3``.
    """
    cases = []
    for size, level_choices in ((256, (1, 4)), (512, (1, 3)), (1024, (1, 2))):
        for filter_length in (2, 4, 8):
            for levels in level_choices:
                cases.append(BenchCase(size, filter_length, levels))
    return cases


def quick_cases() -> list:
    """A CI-sized subset (seconds, not minutes) covering every filter
    length.  A strict subset of :func:`default_cases` so a quick run
    shares cases with (and can ratchet against) a committed full-sweep
    baseline."""
    return [
        BenchCase(256, 2, 1),
        BenchCase(256, 4, 4),
        BenchCase(256, 8, 1),
    ]


def _trimmed_mean_ns(samples: list, trim: int) -> float:
    ordered = sorted(samples)
    if trim > 0 and len(ordered) > 2 * trim:
        ordered = ordered[trim : len(ordered) - trim]
    return float(sum(ordered)) / len(ordered)


def run_bench(
    cases=None,
    kernels=None,
    *,
    warmup: int = 1,
    repeats: int = 5,
    trim: int = 1,
    seed: int = 2024,
) -> dict:
    """Time every (case, kernel) pair and return the schema-versioned
    benchmark document.

    Parameters
    ----------
    cases:
        Iterable of :class:`BenchCase` (default :func:`default_cases`).
    kernels:
        Kernel names to sweep (default: all of
        :data:`repro.wavelet.KERNEL_NAMES`, conv first).
    warmup / repeats / trim:
        Untimed warmup iterations per pair, timed repeats, and how many
        extremes to drop from each end before averaging.
    seed:
        RNG seed for the synthetic input images.
    """
    from repro.wavelet import (
        KERNEL_NAMES,
        filter_bank_for_length,
        mallat_decompose_2d,
        mallat_reconstruct_2d,
    )

    if cases is None:
        cases = default_cases()
    if kernels is None:
        kernels = list(KERNEL_NAMES)
    if "conv" not in kernels:
        raise ConfigurationError("bench requires the 'conv' reference kernel")
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")

    rng = np.random.RandomState(seed)
    results = []
    for case in cases:
        image = rng.standard_normal((case.size, case.size))
        bank = filter_bank_for_length(case.filter_length)
        reference = mallat_decompose_2d(image, bank, case.levels)
        ref_bands = [reference.approximation] + [
            band for t in reference.details for band in (t.lh, t.hl, t.hh)
        ]
        conv_ns = None
        for kernel in kernels:
            for _ in range(warmup):
                mallat_decompose_2d(image, bank, case.levels, kernel=kernel)
            samples = []
            pyramid = None
            for _ in range(repeats):
                # Host-clock timing is this harness's entire job; results
                # are reported as measurements, never fed back into runs.
                t0 = time.perf_counter_ns()  # lint: disable=DET-WALL-CLOCK
                pyramid = mallat_decompose_2d(image, bank, case.levels, kernel=kernel)
                samples.append(time.perf_counter_ns() - t0)  # lint: disable=DET-WALL-CLOCK
            ns_per_op = _trimmed_mean_ns(samples, trim)
            if kernel == "conv":
                conv_ns = ns_per_op

            bands = [pyramid.approximation] + [
                band for t in pyramid.details for band in (t.lh, t.hl, t.hh)
            ]
            max_abs = max(
                float(np.abs(got - ref).max())
                for got, ref in zip(bands, ref_bands)
            )
            rec = mallat_reconstruct_2d(pyramid, bank, kernel=kernel)
            round_trip = float(np.abs(rec - image).max())
            results.append(
                {
                    "size": case.size,
                    "filter_length": case.filter_length,
                    "levels": case.levels,
                    "kernel": kernel,
                    "ns_per_op": ns_per_op,
                    "speedup_vs_conv": conv_ns / ns_per_op,
                    "max_abs_vs_conv": max_abs,
                    "round_trip_error": round_trip,
                    "checksum": float(np.abs(pyramid.approximation).sum()),
                }
            )

    doc = {
        "schema": BENCH_SCHEMA,
        "config": {
            "warmup": warmup,
            "repeats": repeats,
            "trim": trim,
            "seed": seed,
            "kernels": list(kernels),
        },
        "results": results,
    }
    validate_bench_document(doc)
    return doc


def run_virtual_bench(
    cases=None,
    kernels=None,
    *,
    machine: str = "paragon",
    nranks: int = 8,
    seed: int = 2024,
) -> dict:
    """Virtual-time counterpart of :func:`run_bench`.

    Every (case, kernel) pair is described as a runtime
    :class:`~repro.runtime.spec.JobSpec` and launched on a simulated
    machine, so the reported seconds are the engine's deterministic
    virtual time (parallel SPMD run, communication included) rather than
    host wall clock — repeats/warmup/trim do not apply.  The document is
    versioned separately (``repro.bench.wavelet-virtual/v1``) because its
    rows carry ``virtual_s`` instead of ``ns_per_op`` and need no numeric
    cross-check columns (the digest-pinned compat tests own those).
    """
    from repro.runtime import JobSpec, RunOptions, launch
    from repro.wavelet import KERNEL_NAMES, filter_bank_for_length
    from repro.wavelet.parallel.decomposition import StripeDecomposition

    if cases is None:
        cases = quick_cases()
    if kernels is None:
        kernels = list(KERNEL_NAMES)
    if "conv" not in kernels:
        raise ConfigurationError("bench requires the 'conv' reference kernel")

    from repro.errors import DecompositionError

    rng = np.random.RandomState(seed)
    results = []
    skipped = []
    for case in cases:
        image = rng.standard_normal((case.size, case.size))
        bank = filter_bank_for_length(case.filter_length)
        # A case that cannot stripe over ``nranks`` (divisibility or the
        # deepest-level guard requirement) is skipped and recorded, not
        # silently dropped: the wall-clock bench has no such constraint,
        # so the virtual sweep must say which rows it lost.
        try:
            StripeDecomposition(case.size, case.size, nranks, case.levels)
        except DecompositionError as exc:
            skipped.append({"case": case.label, "reason": str(exc)})
            continue
        deepest_rows = case.size // (nranks * 2 ** (case.levels - 1))
        guard = max(len(bank.lowpass), len(bank.highpass))
        if nranks > 1 and deepest_rows < guard:
            skipped.append(
                {
                    "case": case.label,
                    "reason": (
                        f"deepest-level stripe of {deepest_rows} rows is "
                        f"shorter than the {guard}-tap filter support"
                    ),
                }
            )
            continue
        conv_s = None
        case_rows = []
        try:
            for kernel in kernels:
                spec = JobSpec(
                    program="wavelet",
                    params={"image": image, "bank": bank, "levels": case.levels},
                    options=RunOptions(
                        machine=machine, nranks=nranks, kernel=kernel
                    ),
                    name=f"{case.label} {kernel}",
                )
                virtual_s = launch(spec).run.elapsed_s
                if kernel == "conv":
                    conv_s = virtual_s
                case_rows.append(
                    {
                        "size": case.size,
                        "filter_length": case.filter_length,
                        "levels": case.levels,
                        "kernel": kernel,
                        "virtual_s": virtual_s,
                        "speedup_vs_conv": conv_s / virtual_s,
                    }
                )
        except DecompositionError as exc:
            skipped.append({"case": case.label, "reason": str(exc)})
            continue
        results.extend(case_rows)
    return {
        "schema": VIRTUAL_BENCH_SCHEMA,
        "config": {"machine": machine, "nranks": nranks, "seed": seed,
                   "kernels": list(kernels)},
        "results": results,
        "skipped": skipped,
    }


def history_entry(doc: dict, pr: str) -> dict:
    """One perf-trajectory entry from a wall-clock bench document.

    ``{"pr": pr, "speedups": {kernel: {"size/filter/levels": speedup}}}``
    — conv (always 1.0 by construction) is omitted.
    """
    if not isinstance(pr, str) or not pr:
        raise ConfigurationError(f"history pr id must be a non-empty string, got {pr!r}")
    speedups: dict = {}
    for row in doc.get("results", ()):
        if row["kernel"] == "conv":
            continue
        key = f"{row['size']}/{row['filter_length']}/{row['levels']}"
        speedups.setdefault(row["kernel"], {})[key] = float(row["speedup_vs_conv"])
    if not speedups:
        raise ConfigurationError("cannot build a history entry: no non-conv results")
    return {"pr": pr, "speedups": speedups}


def record_history(doc: dict, pr: str, prior: dict | None = None) -> dict:
    """Stamp ``doc`` with the perf trajectory: the prior baseline's
    ``history`` (if any) plus this document's own :func:`history_entry`
    under ``pr``.  An existing entry for the same ``pr`` is replaced (a
    PR may regenerate its baseline several times).  Returns ``doc``.
    """
    carried = list((prior or {}).get("history") or ())
    carried = [entry for entry in carried if entry.get("pr") != pr]
    doc["history"] = carried + [history_entry(doc, pr)]
    validate_bench_document(doc)
    return doc


def _validate_history(history) -> None:
    from repro.wavelet import KERNEL_NAMES

    if not isinstance(history, list):
        raise ConfigurationError("bench 'history' must be a list of trajectory entries")
    for i, entry in enumerate(history):
        if not isinstance(entry, dict) or set(entry) != {"pr", "speedups"}:
            raise ConfigurationError(
                f"history entry {i} must be a dict with exactly 'pr' and 'speedups'"
            )
        if not isinstance(entry["pr"], str) or not entry["pr"]:
            raise ConfigurationError(f"history entry {i} 'pr' must be a non-empty string")
        speedups = entry["speedups"]
        if not isinstance(speedups, dict) or not speedups:
            raise ConfigurationError(
                f"history entry {i} 'speedups' must be a non-empty dict"
            )
        for kernel, cases in speedups.items():
            if kernel not in KERNEL_NAMES or kernel == "conv":
                raise ConfigurationError(
                    f"history entry {i} has unexpected kernel {kernel!r}"
                )
            if not isinstance(cases, dict) or not cases:
                raise ConfigurationError(
                    f"history entry {i} kernel {kernel!r} has no cases"
                )
            for case_key, speedup in cases.items():
                parts = str(case_key).split("/")
                if len(parts) != 3 or not all(p.isdigit() for p in parts):
                    raise ConfigurationError(
                        f"history entry {i} case key {case_key!r} is not "
                        "'size/filter_length/levels'"
                    )
                if (
                    not isinstance(speedup, (int, float))
                    or isinstance(speedup, bool)
                    or speedup <= 0
                ):
                    raise ConfigurationError(
                        f"history entry {i} case {case_key!r} speedup must be "
                        f"a positive number, got {speedup!r}"
                    )


_RESULT_FIELDS = {
    "size": int,
    "filter_length": int,
    "levels": int,
    "kernel": str,
    "ns_per_op": float,
    "speedup_vs_conv": float,
    "max_abs_vs_conv": float,
    "round_trip_error": float,
    "checksum": float,
}


def validate_bench_document(doc) -> None:
    """Structural + numeric sanity check of a benchmark document.

    Raises :class:`~repro.errors.ConfigurationError` on any violation:
    wrong schema tag, missing/extra result fields, unknown kernels,
    non-positive timings, missing conv reference rows, numeric
    cross-checks outside the documented budgets, or a malformed optional
    ``history`` trajectory (see :func:`history_entry`).
    """
    from repro.wavelet import KERNEL_NAMES

    if not isinstance(doc, dict):
        raise ConfigurationError(f"bench document must be a dict, got {type(doc)}")
    if doc.get("schema") != BENCH_SCHEMA:
        raise ConfigurationError(
            f"unknown bench schema {doc.get('schema')!r}; expected {BENCH_SCHEMA!r}"
        )
    if not isinstance(doc.get("config"), dict):
        raise ConfigurationError("bench document is missing its 'config' dict")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        raise ConfigurationError("bench document has no results")

    conv_cases = set()
    all_cases = set()
    for i, row in enumerate(results):
        if not isinstance(row, dict):
            raise ConfigurationError(f"result {i} is not a dict")
        if set(row) != set(_RESULT_FIELDS):
            raise ConfigurationError(
                f"result {i} fields {sorted(row)} != {sorted(_RESULT_FIELDS)}"
            )
        for field, kind in _RESULT_FIELDS.items():
            value = row[field]
            if kind is float:
                ok = isinstance(value, (int, float)) and not isinstance(value, bool)
            else:
                ok = isinstance(value, kind) and not isinstance(value, bool)
            if not ok:
                raise ConfigurationError(
                    f"result {i} field {field!r} has {type(value).__name__}, "
                    f"expected {kind.__name__}"
                )
        if row["kernel"] not in KERNEL_NAMES:
            raise ConfigurationError(f"result {i} has unknown kernel {row['kernel']!r}")
        if row["ns_per_op"] <= 0 or row["speedup_vs_conv"] <= 0:
            raise ConfigurationError(f"result {i} has a non-positive timing")
        if row["max_abs_vs_conv"] > MAX_ABS_BUDGET:
            raise ConfigurationError(
                f"result {i} ({row['kernel']}) deviates from conv by "
                f"{row['max_abs_vs_conv']:.3e} > {MAX_ABS_BUDGET:.0e}"
            )
        if row["round_trip_error"] > ROUND_TRIP_BUDGET:
            raise ConfigurationError(
                f"result {i} ({row['kernel']}) round-trip error "
                f"{row['round_trip_error']:.3e} > {ROUND_TRIP_BUDGET:.0e}"
            )
        key = (row["size"], row["filter_length"], row["levels"])
        all_cases.add(key)
        if row["kernel"] == "conv":
            conv_cases.add(key)
            if abs(row["speedup_vs_conv"] - 1.0) > 1e-12:
                raise ConfigurationError(
                    f"result {i}: conv speedup_vs_conv must be 1.0"
                )
    missing = all_cases - conv_cases
    if missing:
        raise ConfigurationError(
            f"cases {sorted(missing)} lack a conv reference row"
        )
    if "history" in doc:
        _validate_history(doc["history"])


def write_bench_json(path: str, doc: dict) -> None:
    """Validate and write a benchmark document as pretty-printed JSON."""
    validate_bench_document(doc)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
