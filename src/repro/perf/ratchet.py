"""Benchmark ratchet: fail CI when kernel speedups regress.

A committed ``BENCH_wavelet.json`` baseline pins the speedups the
lifting-family kernels achieved over the conv reference on the machine
that produced it.  :func:`compare_bench` re-aggregates a fresh run
against that baseline — per-kernel geometric mean of
``speedup_vs_conv`` over the *intersection* of benchmark cases, so a
quick CI run ratchets against the matching subset of a full baseline —
and flags any kernel whose mean speedup fell more than ``tolerance``
below the pinned value.

When the baseline carries a per-PR ``history`` trajectory
(:func:`repro.perf.bench.history_entry`), the pinned value per kernel
per case is the *maximum* over the snapshot and every history entry:
the ratchet compares against the best speedup any PR ever committed,
so a regression slipped into one baseline regeneration cannot lower
the bar for the next.

Wall-clock numbers are noisy across hosts, which is why the tolerance is
generous by default (25%) and the comparison is against ratios
(speedup), not absolute ns/op: machine-wide slowdowns cancel out, while
a real kernel regression (lost fusion, broken lifting path) does not.

The same machinery ratchets the engine rank-scaling benchmark
(``BENCH_engine.json``, schema ``repro.bench.engine/v1``): there the
group is ``placement/workload``, the case key is the rank count, and the
pinned ratio is ``speedup_vs_linear`` — the indexed engine's advantage
over the retained pre-optimization matcher.  A document's ``schema`` tag
selects the aggregation; comparing documents of different schemas is a
configuration error, not a silent skip.
"""

from __future__ import annotations

import json
import math

from repro.errors import ConfigurationError
from repro.perf.engine_bench import ENGINE_BENCH_SCHEMA

__all__ = ["load_bench", "compare_bench", "format_ratchet", "check_ratchet"]


def load_bench(path: str) -> dict:
    """Read a benchmark JSON document and check its shape."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        raise ConfigurationError(f"cannot read benchmark baseline {path!r}: {exc}")
    if not isinstance(doc, dict) or not isinstance(doc.get("results"), list):
        raise ConfigurationError(
            f"benchmark baseline {path!r} has no 'results' list"
        )
    return doc


def _case_key(row: dict) -> tuple:
    return (row["size"], row["filter_length"], row["levels"])


def _speedups_by_kernel(doc: dict) -> dict:
    """``{kernel: {case_key: speedup_vs_conv}}``, conv excluded."""
    table: dict = {}
    for row in doc["results"]:
        if row["kernel"] == "conv":
            continue
        table.setdefault(row["kernel"], {})[_case_key(row)] = float(
            row["speedup_vs_conv"]
        )
    return table


def _merge_history(table: dict, doc: dict) -> dict:
    """Fold a baseline's per-PR ``history`` into its speedup table:
    per kernel per case, keep the best speedup ever committed."""
    for entry in doc.get("history") or ():
        for kernel, cases in entry.get("speedups", {}).items():
            dest = table.setdefault(kernel, {})
            for case_key, speedup in cases.items():
                size, filt, levels = (int(p) for p in str(case_key).split("/"))
                key = (size, filt, levels)
                dest[key] = max(dest.get(key, 0.0), float(speedup))
    return table


def _is_engine_doc(doc: dict) -> bool:
    return doc.get("schema") == ENGINE_BENCH_SCHEMA


def _engine_speedups(doc: dict) -> dict:
    """``{placement/workload: {nranks: speedup_vs_linear}}`` from indexed
    rows that carry a measured baseline (``speedup_vs_linear > 0``)."""
    table: dict = {}
    for row in doc["results"]:
        if row["matcher"] != "indexed" or row.get("speedup_vs_linear", 0.0) <= 0:
            continue
        group = f"{row['placement']}/{row['workload']}"
        table.setdefault(group, {})[row["nranks"]] = float(
            row["speedup_vs_linear"]
        )
    return table


def _geomean(values: list) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def compare_bench(current: dict, baseline: dict, *, tolerance: float = 0.25) -> dict:
    """Compare two benchmark documents kernel by kernel.

    Returns ``{"ok": bool, "tolerance": float, "kernels": [...]}`` where
    each kernel entry carries the baseline/current geometric-mean
    speedup over the shared cases, the ratio, and a ``regressed`` flag
    (``current < baseline * (1 - tolerance)``).  Kernels or cases absent
    from either side are skipped (reported with ``cases == 0``), never
    treated as regressions.  A wavelet baseline's per-PR ``history``
    trajectory is folded in first (per kernel per case, the best
    speedup ever committed).
    """
    if not 0.0 <= tolerance < 1.0:
        raise ConfigurationError(
            f"ratchet tolerance must be in [0, 1), got {tolerance}"
        )
    if _is_engine_doc(current) != _is_engine_doc(baseline):
        raise ConfigurationError(
            "cannot ratchet across benchmark schemas: current is "
            f"{current.get('schema')!r}, baseline is {baseline.get('schema')!r}"
        )
    if _is_engine_doc(current):
        current_table = _engine_speedups(current)
        baseline_table = _engine_speedups(baseline)
    else:
        current_table = _speedups_by_kernel(current)
        baseline_table = _merge_history(_speedups_by_kernel(baseline), baseline)
    kernels = []
    ok = True
    for kernel in sorted(set(current_table) | set(baseline_table)):
        shared = sorted(
            set(current_table.get(kernel, {})) & set(baseline_table.get(kernel, {}))
        )
        if not shared:
            kernels.append(
                {
                    "kernel": kernel,
                    "cases": 0,
                    "baseline": None,
                    "current": None,
                    "ratio": None,
                    "regressed": False,
                }
            )
            continue
        base = _geomean([baseline_table[kernel][key] for key in shared])
        cur = _geomean([current_table[kernel][key] for key in shared])
        ratio = cur / base
        regressed = ratio < 1.0 - tolerance
        ok = ok and not regressed
        kernels.append(
            {
                "kernel": kernel,
                "cases": len(shared),
                "baseline": base,
                "current": cur,
                "ratio": ratio,
                "regressed": regressed,
            }
        )
    return {"ok": ok, "tolerance": tolerance, "kernels": kernels}


def format_ratchet(report: dict) -> str:
    """Human-readable ratchet verdict."""
    lines = [
        f"speedup ratchet (tolerance {report['tolerance']:.0%} regression)"
    ]
    for entry in report["kernels"]:
        if entry["cases"] == 0:
            lines.append(f"  {entry['kernel']:<14} no shared cases; skipped")
            continue
        verdict = "REGRESSED" if entry["regressed"] else "ok"
        lines.append(
            f"  {entry['kernel']:<14} baseline {entry['baseline']:.2f}x, "
            f"current {entry['current']:.2f}x over {entry['cases']} case(s) "
            f"({entry['ratio']:.0%}) -> {verdict}"
        )
    lines.append(
        "ratchet passed" if report["ok"] else "ratchet FAILED: speedup regressed"
    )
    return "\n".join(lines)


def check_ratchet(current: dict, baseline_path: str, *, tolerance: float = 0.25) -> dict:
    """Load the baseline, compare, and return the report."""
    return compare_bench(current, load_bench(baseline_path), tolerance=tolerance)
