"""Wavelet-based image registration.

The paper's introduction lists image registration among the wavelet
applications motivating fast decomposition ([Lem94] — Le Moigne's wavelet
registration of Landsat imagery, the same group's companion work).  This
module implements the classic coarse-to-fine translation estimator over
the Mallat pyramid:

1. decompose both images,
2. estimate the shift on the coarsest approximation bands by circular
   phase correlation (cheap: the coarse band is ``4^K`` times smaller),
3. walk back up the pyramid, doubling the estimate and refining it with a
   local correlation search at every level, finishing on the full images.

For periodic (circularly shifted) content the estimate is exact; for
generic content it is accurate to the correlation peak.  The pyramid
makes the search global yet cheap — the coarse phase correlation sees the
whole image at a fraction of the pixels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.wavelet.filters import FilterBank, haar_filter
from repro.wavelet.pyramid import mallat_decompose_2d
from repro.wavelet.transform import max_decomposition_levels

__all__ = ["RegistrationResult", "phase_correlation", "register_translation"]


@dataclass(frozen=True)
class RegistrationResult:
    """Estimated translation taking ``target`` onto ``reference``.

    ``shift`` is ``(rows, cols)``: ``np.roll(target, shift, (0, 1))``
    best matches the reference.  ``score`` is the normalized correlation
    at the estimate (1.0 = identical), ``path`` the per-level estimates
    from coarsest to finest.
    """

    shift: tuple
    score: float
    path: tuple


def _as_signed(index: int, extent: int) -> int:
    """Map a circular index to the symmetric range (-extent/2, extent/2]."""
    return index - extent if index > extent // 2 else index


def phase_correlation(reference: np.ndarray, target: np.ndarray) -> tuple:
    """Integer circular shift maximizing the cross-power spectrum peak.

    Returns ``(dy, dx)`` such that ``np.roll(target, (dy, dx), (0, 1))``
    aligns with the reference.
    """
    reference = np.asarray(reference, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if reference.shape != target.shape:
        raise ConfigurationError(
            f"images must share a shape, got {reference.shape} vs {target.shape}"
        )
    spectrum = np.fft.fft2(reference) * np.conj(np.fft.fft2(target))
    magnitude = np.abs(spectrum)
    magnitude[magnitude == 0.0] = 1.0
    correlation = np.fft.ifft2(spectrum / magnitude).real
    peak = np.unravel_index(int(np.argmax(correlation)), correlation.shape)
    return (
        _as_signed(int(peak[0]), reference.shape[0]),
        _as_signed(int(peak[1]), reference.shape[1]),
    )


def _correlation_score(reference: np.ndarray, target: np.ndarray, shift) -> float:
    rolled = np.roll(target, shift, axis=(0, 1))
    ref = reference - reference.mean()
    tgt = rolled - rolled.mean()
    denom = np.linalg.norm(ref) * np.linalg.norm(tgt)
    if denom == 0.0:
        return 0.0
    return float((ref * tgt).sum() / denom)


def _refine(reference: np.ndarray, target: np.ndarray, guess, radius: int = 2):
    best_shift = tuple(guess)
    best_score = _correlation_score(reference, target, best_shift)
    for dy in range(-radius, radius + 1):
        for dx in range(-radius, radius + 1):
            candidate = (guess[0] + dy, guess[1] + dx)
            score = _correlation_score(reference, target, candidate)
            if score > best_score:
                best_score, best_shift = score, candidate
    return best_shift, best_score


def register_translation(
    reference: np.ndarray,
    target: np.ndarray,
    *,
    bank: FilterBank | None = None,
    levels: int | None = None,
) -> RegistrationResult:
    """Coarse-to-fine translation registration over the wavelet pyramid.

    Parameters
    ----------
    reference, target:
        Equal-shape 2-D images; the estimated shift maps target onto
        reference (circularly).
    bank:
        Analysis bank (default Haar — short support localizes best).
    levels:
        Pyramid depth; defaults to leaving a coarse band of >= 16 pixels
        per side.
    """
    reference = np.asarray(reference, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if reference.shape != target.shape:
        raise ConfigurationError(
            f"images must share a shape, got {reference.shape} vs {target.shape}"
        )
    bank = bank or haar_filter()
    allowed = max_decomposition_levels(reference.shape, bank.length)
    if levels is None:
        levels = 1
        side = min(reference.shape)
        while levels < allowed and side // 2 >= 16:
            levels += 1
            side //= 2
    if not 1 <= levels <= allowed:
        raise ConfigurationError(
            f"levels={levels} out of range for shape {reference.shape} (max {allowed})"
        )

    # Approximation band per level (index 0 = full resolution).
    ref_bands = [reference]
    tgt_bands = [target]
    for _level in range(levels):
        ref_bands.append(mallat_decompose_2d(ref_bands[-1], bank, 1).approximation)
        tgt_bands.append(mallat_decompose_2d(tgt_bands[-1], bank, 1).approximation)

    # Coarsest: global phase correlation.
    estimate = phase_correlation(ref_bands[-1], tgt_bands[-1])
    path = [estimate]
    # Walk up, doubling and refining locally.
    score = _correlation_score(ref_bands[-1], tgt_bands[-1], estimate)
    for level in range(levels - 1, -1, -1):
        estimate = (estimate[0] * 2, estimate[1] * 2)
        estimate, score = _refine(ref_bands[level], tgt_bands[level], estimate)
        path.append(estimate)
    # Report the canonical signed representative of the circular shift.
    estimate = (
        _as_signed(estimate[0] % reference.shape[0], reference.shape[0]),
        _as_signed(estimate[1] % reference.shape[1], reference.shape[1]),
    )
    return RegistrationResult(shift=estimate, score=score, path=tuple(path))
