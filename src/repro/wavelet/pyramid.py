"""Multi-level decomposition pyramids.

A :class:`WaveletPyramid` stores the full multi-resolution representation:
the deepest approximation image I_K plus the (LH, HL, HH) detail triple of
every level, finest first.  The paper repeatedly renames LL_{k+1} to
I_{k+1} and recurses; the pyramid captures that iteration's outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.wavelet.filters import FilterBank
from repro.wavelet.transform import (
    Subbands2D,
    mallat_inverse_step_2d,
    mallat_step_2d,
    max_decomposition_levels,
)

__all__ = ["DetailTriple", "WaveletPyramid", "mallat_decompose_2d", "mallat_reconstruct_2d"]


@dataclass(frozen=True)
class DetailTriple:
    """The three detail subbands of one decomposition level."""

    lh: np.ndarray
    hl: np.ndarray
    hh: np.ndarray

    @property
    def shape(self) -> tuple[int, int]:
        """Shape of each detail subband."""
        return tuple(self.lh.shape)

    def energy(self) -> float:
        """Sum of squares across the triple."""
        return float((self.lh**2).sum() + (self.hl**2).sum() + (self.hh**2).sum())


@dataclass(frozen=True)
class WaveletPyramid:
    """Complete multi-resolution representation of an image.

    Attributes
    ----------
    approximation:
        The deepest LL image (I_K in the paper's notation).
    details:
        Per-level detail triples, ``details[0]`` being the finest level
        (level 1).
    filter_name:
        Name of the analysis bank used, for provenance.
    """

    approximation: np.ndarray
    details: tuple
    filter_name: str = "custom"

    @property
    def levels(self) -> int:
        """Number of decomposition levels."""
        return len(self.details)

    @property
    def original_shape(self) -> tuple[int, int]:
        """Shape of the image that produced this pyramid."""
        rows, cols = self.approximation.shape
        scale = 2**self.levels
        return (rows * scale, cols * scale)

    def total_energy(self) -> float:
        """Energy across every coefficient (conserved for orthonormal banks)."""
        return float((self.approximation**2).sum()) + sum(
            triple.energy() for triple in self.details
        )

    def coefficient_count(self) -> int:
        """Total number of stored coefficients (equals the original pixel
        count — the transform is critically sampled)."""
        count = self.approximation.size
        for triple in self.details:
            count += triple.lh.size + triple.hl.size + triple.hh.size
        return count

    def compression_candidates(self, keep_fraction: float) -> "WaveletPyramid":
        """Zero all but the largest-magnitude ``keep_fraction`` of detail
        coefficients — the classic wavelet compression step the paper's
        introduction motivates (EOSDIS image compression)."""
        if not 0.0 < keep_fraction <= 1.0:
            raise ConfigurationError(
                f"keep_fraction must be in (0, 1], got {keep_fraction}"
            )
        magnitudes = np.concatenate(
            [np.abs(band).ravel() for t in self.details for band in (t.lh, t.hl, t.hh)]
        )
        if magnitudes.size == 0:
            return self
        keep = max(1, int(round(keep_fraction * magnitudes.size)))
        threshold = np.partition(magnitudes, -keep)[-keep]
        new_details = tuple(
            DetailTriple(
                lh=np.where(np.abs(t.lh) >= threshold, t.lh, 0.0),
                hl=np.where(np.abs(t.hl) >= threshold, t.hl, 0.0),
                hh=np.where(np.abs(t.hh) >= threshold, t.hh, 0.0),
            )
            for t in self.details
        )
        return WaveletPyramid(self.approximation.copy(), new_details, self.filter_name)


def mallat_decompose_2d(
    image: np.ndarray, bank: FilterBank, levels: int = 1, *, kernel: str = "conv"
) -> WaveletPyramid:
    """Run the paper's steps (0)-(5): iterate the 2-D Mallat step ``levels``
    times, recursing on the LL band.

    ``kernel`` selects the per-level implementation (``"conv"`` — the
    byte-identical default — ``"lifting"``, ``"fused"``/``"fused:N"``,
    or ``"single-loop"``; see :mod:`repro.wavelet.kernels`).

    Raises
    ------
    ConfigurationError
        If ``levels`` exceeds what the image shape and filter length allow.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ConfigurationError(f"expected a 2-D image, got ndim={image.ndim}")
    allowed = max_decomposition_levels(image.shape, bank.length)
    if not 1 <= levels <= allowed:
        raise ConfigurationError(
            f"levels={levels} out of range for shape {image.shape} and "
            f"{bank.length}-tap filter (max {allowed})"
        )

    details: list[DetailTriple] = []
    current = image
    for _ in range(levels):
        bands: Subbands2D = mallat_step_2d(current, bank, kernel=kernel)
        details.append(DetailTriple(lh=bands.lh, hl=bands.hl, hh=bands.hh))
        current = bands.ll
    return WaveletPyramid(current, tuple(details), bank.name)


def mallat_reconstruct_2d(
    pyramid: WaveletPyramid, bank: FilterBank, *, kernel: str = "conv"
) -> np.ndarray:
    """Invert :func:`mallat_decompose_2d` (the Figure 2 reverse process)."""
    current = pyramid.approximation
    for triple in reversed(pyramid.details):
        if triple.shape != current.shape:
            raise ConfigurationError(
                f"detail shape {triple.shape} does not match running "
                f"approximation shape {current.shape}"
            )
        current = mallat_inverse_step_2d(
            Subbands2D(ll=current, lh=triple.lh, hl=triple.hl, hh=triple.hh),
            bank,
            kernel=kernel,
        )
    return current
