"""Domain decompositions for the coarse-grain parallel wavelet transform.

Section 4.2 distributes the image as *stripes* of rows rather than blocks:
a stripe owner only ever needs guard data from one neighbor (the south
one, for column filtering), halving the per-level message count relative
to a block decomposition, which needs guards for both the row and column
filtering steps.  Both schemes are implemented so the benchmark suite can
regenerate that comparison.

Guard-zone depth follows the paper ("in the order of the filter length"):
``filter_length`` rows (or columns) per level.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DecompositionError

__all__ = [
    "StripeDecomposition",
    "BlockDecomposition",
    "factor_grid",
    "analysis_guard_depths",
    "synthesis_guard_depths",
]


def analysis_guard_depths(bank, kernel: str = "conv") -> tuple:
    """``(front, back)`` guard rows/cols a rank needs around its owned
    segment for one level of decimating analysis under ``kernel``.

    The convolution kernel's forward-only window needs no front guard and
    ``filter_length`` trailing samples (the paper's "order of the filter
    length").  Lifting steps reach both ways, so the lifting-scheme
    kernels (``lifting``/``fused``/``single-loop``) need guards on both
    sides.  Depths are derived from the kernel's parsed
    :class:`~repro.wavelet.plan.KernelPlan`, which probes the factored
    scheme's margins and rounds the back guard up to keep extended
    segments an even length.
    """
    from repro.wavelet.plan import parse_kernel_spec

    return parse_kernel_spec(kernel).analysis_guard_depths(bank)


def synthesis_guard_depths(bank, kernel: str = "conv") -> tuple:
    """``(front, back)`` guard subband samples needed for one level of
    upsampling synthesis under ``kernel`` (front comes from the preceding
    neighbor, back from the following one)."""
    from repro.wavelet.plan import parse_kernel_spec

    return parse_kernel_spec(kernel).synthesis_guard_depths(bank)


@dataclass(frozen=True)
class StripeDecomposition:
    """Contiguous row stripes, one per rank.

    Requires ``rows`` divisible by ``nranks * 2**levels`` so every rank
    owns a whole, even number of rows at every decomposition level.
    """

    rows: int
    cols: int
    nranks: int
    levels: int

    def __post_init__(self) -> None:
        if self.nranks < 1:
            raise DecompositionError(f"nranks must be >= 1, got {self.nranks}")
        if self.levels < 1:
            raise DecompositionError(f"levels must be >= 1, got {self.levels}")
        granularity = self.nranks * 2**self.levels
        if self.rows % granularity != 0:
            raise DecompositionError(
                f"rows={self.rows} must be divisible by nranks*2^levels="
                f"{granularity} for a balanced stripe decomposition"
            )
        if self.cols % 2**self.levels != 0:
            raise DecompositionError(
                f"cols={self.cols} must be divisible by 2^levels="
                f"{2**self.levels}"
            )

    def local_rows(self, level: int = 0) -> int:
        """Rows owned by each rank at the start of ``level`` (0-based)."""
        return self.rows // self.nranks // 2**level

    def row_range(self, rank: int, level: int = 0) -> tuple:
        """Global ``(start, stop)`` rows owned by ``rank`` at ``level``."""
        if not 0 <= rank < self.nranks:
            raise DecompositionError(f"rank {rank} out of range")
        local = self.local_rows(level)
        return (rank * local, (rank + 1) * local)

    def south_neighbor(self, rank: int) -> int:
        """Rank owning the stripe below (wraps: the transform is periodic)."""
        return (rank + 1) % self.nranks

    def north_neighbor(self, rank: int) -> int:
        """Rank owning the stripe above (wraps)."""
        return (rank - 1) % self.nranks


def factor_grid(nranks: int) -> tuple:
    """Factor a rank count into the most square ``(prows, pcols)`` grid."""
    best = (1, nranks)
    for prows in range(1, int(nranks**0.5) + 1):
        if nranks % prows == 0:
            best = (prows, nranks // prows)
    return best


@dataclass(frozen=True)
class BlockDecomposition:
    """2-D block decomposition over a ``prows x pcols`` rank grid.

    Ranks are numbered row-major over the grid.  Each block needs an east
    guard (for row filtering) *and* a south guard (for column filtering)
    at every level — the two-transaction cost that Figure 3 contrasts with
    striping.
    """

    rows: int
    cols: int
    prows: int
    pcols: int
    levels: int

    def __post_init__(self) -> None:
        if self.prows < 1 or self.pcols < 1:
            raise DecompositionError(
                f"process grid must be >= 1x1, got {self.prows}x{self.pcols}"
            )
        if self.levels < 1:
            raise DecompositionError(f"levels must be >= 1, got {self.levels}")
        if self.rows % (self.prows * 2**self.levels) != 0:
            raise DecompositionError(
                f"rows={self.rows} not divisible by prows*2^levels="
                f"{self.prows * 2 ** self.levels}"
            )
        if self.cols % (self.pcols * 2**self.levels) != 0:
            raise DecompositionError(
                f"cols={self.cols} not divisible by pcols*2^levels="
                f"{self.pcols * 2 ** self.levels}"
            )

    @property
    def nranks(self) -> int:
        """Total ranks in the grid."""
        return self.prows * self.pcols

    def grid_coord(self, rank: int) -> tuple:
        """(block-row, block-col) of a rank."""
        if not 0 <= rank < self.nranks:
            raise DecompositionError(f"rank {rank} out of range")
        return (rank // self.pcols, rank % self.pcols)

    def local_shape(self, level: int = 0) -> tuple:
        """Block shape at the start of ``level``."""
        return (
            self.rows // self.prows // 2**level,
            self.cols // self.pcols // 2**level,
        )

    def block_ranges(self, rank: int, level: int = 0) -> tuple:
        """Global ``((r0, r1), (c0, c1))`` owned by ``rank`` at ``level``."""
        br, bc = self.grid_coord(rank)
        lr, lc = self.local_shape(level)
        return ((br * lr, (br + 1) * lr), (bc * lc, (bc + 1) * lc))

    def east_neighbor(self, rank: int) -> int:
        """Rank owning the block to the right (wraps around the grid row)."""
        br, bc = self.grid_coord(rank)
        return br * self.pcols + (bc + 1) % self.pcols

    def west_neighbor(self, rank: int) -> int:
        """Rank owning the block to the left (wraps)."""
        br, bc = self.grid_coord(rank)
        return br * self.pcols + (bc - 1) % self.pcols

    def south_neighbor(self, rank: int) -> int:
        """Rank owning the block below (wraps around the grid column)."""
        br, bc = self.grid_coord(rank)
        return ((br + 1) % self.prows) * self.pcols + bc

    def north_neighbor(self, rank: int) -> int:
        """Rank owning the block above (wraps)."""
        br, bc = self.grid_coord(rank)
        return ((br - 1) % self.prows) * self.pcols + bc
