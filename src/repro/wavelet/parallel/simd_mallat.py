"""Fine-grain SIMD wavelet decomposition: the MasPar algorithms.

Section 4.1 describes two data-parallel formulations, both of which store
the filter in the control unit and broadcast taps from last to first, with
each (logical) PE holding one pixel:

* **Systolic** — after every broadcast each PE multiply-accumulates and
  shifts its *partial result* one PE to the left; after ``m`` steps each
  PE holds one filtered pixel.  Decimation then compacts the even-indexed
  results through the global router.
* **Systolic with dilution** — the filter is "diluted" (stretched by the
  level's stride) so taps align with the surviving pixels in place;
  decimation becomes implicit and the router is never used, at the price
  of longer X-net shifts at deeper levels and full-array MACs.

Both run the real arithmetic through :class:`MasParMachine`, so their
pyramids are verified against the sequential transform exactly, while the
machine charges cycles per primitive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.machines.simd.machine import MasParMachine, SimdStats
from repro.wavelet.filters import FilterBank
from repro.wavelet.pyramid import DetailTriple, WaveletPyramid
from repro.wavelet.transform import max_decomposition_levels

__all__ = ["SimdWaveletOutcome", "simd_mallat_decompose"]


@dataclass
class SimdWaveletOutcome:
    """Result of a SIMD decomposition: pyramid, cycle stats, virtual time."""

    pyramid: WaveletPyramid
    stats: SimdStats
    elapsed_s: float
    algorithm: str
    virtualization: str


def _systolic_filter(
    machine: MasParMachine, data: np.ndarray, taps: np.ndarray, axis: int, stride: int
) -> np.ndarray:
    """One filtering pass: broadcast taps last-to-first, MAC, shift the
    partial result left by ``stride`` after every step but the last.

    With ``stride == 1`` this is the plain systolic pass; with the level's
    stride it is the diluted variant.  Final PE ``n`` holds
    ``sum_k taps[k] * data[n + k*stride]`` (toroidal).
    """
    acc = np.zeros_like(data)
    m = taps.size
    for j in range(m - 1, -1, -1):
        coeff = machine.broadcast(taps[j])
        machine.mac(acc, data, coeff)
        if j > 0:
            acc = machine.shift(acc, stride, axis=axis)
    return acc


def simd_mallat_decompose(
    machine: MasParMachine,
    image: np.ndarray,
    bank: FilterBank,
    levels: int = 1,
    *,
    algorithm: str = "systolic",
) -> SimdWaveletOutcome:
    """Run the fine-grain decomposition on a MasPar machine model.

    Parameters
    ----------
    machine:
        :class:`MasParMachine` (its virtualization scheme governs shift
        costs; counters are reset at entry).
    image:
        Square 2-D image with power-of-two-friendly dimensions.
    bank, levels:
        Analysis bank and decomposition depth.
    algorithm:
        ``"systolic"`` (router decimation) or ``"dilution"`` (in-place
        strided filtering, no router).

    Returns
    -------
    SimdWaveletOutcome
        The pyramid (identical to the sequential transform) plus the cycle
        breakdown and virtual elapsed time.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ConfigurationError(f"expected a 2-D image, got ndim={image.ndim}")
    allowed = max_decomposition_levels(image.shape, bank.length)
    if not 1 <= levels <= allowed:
        raise ConfigurationError(
            f"levels={levels} out of range for shape {image.shape} and "
            f"{bank.length}-tap filter (max {allowed})"
        )
    machine.reset()

    if algorithm == "systolic":
        pyramid = _decompose_systolic(machine, image, bank, levels)
    elif algorithm == "dilution":
        pyramid = _decompose_dilution(machine, image, bank, levels)
    else:
        raise ConfigurationError(
            f"unknown algorithm {algorithm!r}; use 'systolic' or 'dilution'"
        )
    return SimdWaveletOutcome(
        pyramid=pyramid,
        stats=machine.stats,
        elapsed_s=machine.elapsed_s,
        algorithm=algorithm,
        virtualization=machine.virtualization,
    )


def _decompose_systolic(
    machine: MasParMachine, image: np.ndarray, bank: FilterBank, levels: int
) -> WaveletPyramid:
    current = image.copy()
    details = []
    for _ in range(levels):
        lo = _systolic_filter(machine, current, bank.lowpass, axis=1, stride=1)
        hi = _systolic_filter(machine, current, bank.highpass, axis=1, stride=1)
        lo = machine.router_decimate(lo, axis=1)
        hi = machine.router_decimate(hi, axis=1)
        ll = machine.router_decimate(
            _systolic_filter(machine, lo, bank.lowpass, axis=0, stride=1), axis=0
        )
        lh = machine.router_decimate(
            _systolic_filter(machine, lo, bank.highpass, axis=0, stride=1), axis=0
        )
        hl = machine.router_decimate(
            _systolic_filter(machine, hi, bank.lowpass, axis=0, stride=1), axis=0
        )
        hh = machine.router_decimate(
            _systolic_filter(machine, hi, bank.highpass, axis=0, stride=1), axis=0
        )
        details.append(DetailTriple(lh=lh, hl=hl, hh=hh))
        current = ll
    return WaveletPyramid(current, tuple(details), bank.name)


def _decompose_dilution(
    machine: MasParMachine, image: np.ndarray, bank: FilterBank, levels: int
) -> WaveletPyramid:
    # Full-size working arrays: valid level-k samples sit at stride 2^k.
    current = image.copy()
    diluted_details = []
    stride = 1
    for _ in range(levels):
        lo = _systolic_filter(machine, current, bank.lowpass, axis=1, stride=stride)
        hi = _systolic_filter(machine, current, bank.highpass, axis=1, stride=stride)
        # Decimation is implicit: valid columns are now multiples of 2*stride.
        ll = _systolic_filter(machine, lo, bank.lowpass, axis=0, stride=stride)
        lh = _systolic_filter(machine, lo, bank.highpass, axis=0, stride=stride)
        hl = _systolic_filter(machine, hi, bank.lowpass, axis=0, stride=stride)
        hh = _systolic_filter(machine, hi, bank.highpass, axis=0, stride=stride)
        stride *= 2
        diluted_details.append((lh, hl, hh, stride))
        current = ll
    details = tuple(
        DetailTriple(
            lh=np.ascontiguousarray(lh[::s, ::s]),
            hl=np.ascontiguousarray(hl[::s, ::s]),
            hh=np.ascontiguousarray(hh[::s, ::s]),
        )
        for (lh, hl, hh, s) in diluted_details
    )
    approx = np.ascontiguousarray(current[::stride, ::stride])
    return WaveletPyramid(approx, details, bank.name)
