"""Fine-grain SIMD wavelet decomposition: the MasPar algorithms.

Section 4.1 describes two data-parallel formulations, both of which store
the filter in the control unit and broadcast taps from last to first, with
each (logical) PE holding one pixel:

* **Systolic** — after every broadcast each PE multiply-accumulates and
  shifts its *partial result* one PE to the left; after ``m`` steps each
  PE holds one filtered pixel.  Decimation then compacts the even-indexed
  results through the global router.
* **Systolic with dilution** — the filter is "diluted" (stretched by the
  level's stride) so taps align with the surviving pixels in place;
  decimation becomes implicit and the router is never used, at the price
  of longer X-net shifts at deeper levels and full-array MACs.
* **Lifting** — decimate *first* (one router pass splits even/odd lanes),
  then run the factored lifting steps on the half-size lanes with X-net
  shifts and MACs.  Every MAC and shift touches half (or, in the column
  pass, a quarter) of the PEs the systolic formulation needs, cutting the
  arithmetic cycle count roughly in half for long filters.
* **Single-loop** — decimate *both* axes first (router passes split the
  image into its four polyphase quarter lanes), then interleave each
  lifting step's horizontal and vertical applications on the
  quarter-size lanes.  Every MAC touches a quarter of the PEs, the
  diagonal scaling fuses into one MAC per subband, and each pixel is
  visited once per level (:mod:`repro.wavelet.singleloop`).

All run the real arithmetic through :class:`MasParMachine`, so their
pyramids are verified against the sequential transform (exactly for the
convolution algorithms, within float tolerance for lifting), while the
machine charges cycles per primitive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.machines.simd.machine import MasParMachine, SimdStats
from repro.wavelet.filters import FilterBank
from repro.wavelet.pyramid import DetailTriple, WaveletPyramid
from repro.wavelet.transform import max_decomposition_levels

__all__ = ["SimdWaveletOutcome", "simd_mallat_decompose"]


@dataclass
class SimdWaveletOutcome:
    """Result of a SIMD decomposition: pyramid, cycle stats, virtual time."""

    pyramid: WaveletPyramid
    stats: SimdStats
    elapsed_s: float
    algorithm: str
    virtualization: str


def _systolic_filter(
    machine: MasParMachine, data: np.ndarray, taps: np.ndarray, axis: int, stride: int
) -> np.ndarray:
    """One filtering pass: broadcast taps last-to-first, MAC, shift the
    partial result left by ``stride`` after every step but the last.

    With ``stride == 1`` this is the plain systolic pass; with the level's
    stride it is the diluted variant.  Final PE ``n`` holds
    ``sum_k taps[k] * data[n + k*stride]`` (toroidal).
    """
    acc = np.zeros_like(data)
    m = taps.size
    for j in range(m - 1, -1, -1):
        coeff = machine.broadcast(taps[j])
        machine.mac(acc, data, coeff)
        if j > 0:
            acc = machine.shift(acc, stride, axis=axis)
    return acc


def simd_mallat_decompose(
    machine: MasParMachine,
    image: np.ndarray,
    bank: FilterBank,
    levels: int = 1,
    *,
    algorithm: str = "systolic",
) -> SimdWaveletOutcome:
    """Run the fine-grain decomposition on a MasPar machine model.

    Parameters
    ----------
    machine:
        :class:`MasParMachine` (its virtualization scheme governs shift
        costs; counters are reset at entry).
    image:
        Square 2-D image with power-of-two-friendly dimensions.
    bank, levels:
        Analysis bank and decomposition depth.
    algorithm:
        ``"systolic"`` (router decimation), ``"dilution"`` (in-place
        strided filtering, no router), ``"lifting"`` (decimate first,
        factored lifting steps on half-size lanes), or ``"single-loop"``
        (decimate both axes first, interleaved steps on quarter-size
        lanes with fused output scaling).

    Returns
    -------
    SimdWaveletOutcome
        The pyramid (identical to the sequential transform) plus the cycle
        breakdown and virtual elapsed time.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ConfigurationError(f"expected a 2-D image, got ndim={image.ndim}")
    allowed = max_decomposition_levels(image.shape, bank.length)
    if not 1 <= levels <= allowed:
        raise ConfigurationError(
            f"levels={levels} out of range for shape {image.shape} and "
            f"{bank.length}-tap filter (max {allowed})"
        )
    machine.reset()

    if algorithm == "systolic":
        pyramid = _decompose_systolic(machine, image, bank, levels)
    elif algorithm == "dilution":
        pyramid = _decompose_dilution(machine, image, bank, levels)
    elif algorithm == "lifting":
        pyramid = _decompose_lifting(machine, image, bank, levels)
    elif algorithm == "single-loop":
        pyramid = _decompose_single_loop(machine, image, bank, levels)
    else:
        raise ConfigurationError(
            f"unknown algorithm {algorithm!r}; use 'systolic', 'dilution', "
            f"'lifting', or 'single-loop'"
        )
    return SimdWaveletOutcome(
        pyramid=pyramid,
        stats=machine.stats,
        elapsed_s=machine.elapsed_s,
        algorithm=algorithm,
        virtualization=machine.virtualization,
    )


def _decompose_systolic(
    machine: MasParMachine, image: np.ndarray, bank: FilterBank, levels: int
) -> WaveletPyramid:
    current = image.copy()
    details = []
    for _ in range(levels):
        lo = _systolic_filter(machine, current, bank.lowpass, axis=1, stride=1)
        hi = _systolic_filter(machine, current, bank.highpass, axis=1, stride=1)
        lo = machine.router_decimate(lo, axis=1)
        hi = machine.router_decimate(hi, axis=1)
        ll = machine.router_decimate(
            _systolic_filter(machine, lo, bank.lowpass, axis=0, stride=1), axis=0
        )
        lh = machine.router_decimate(
            _systolic_filter(machine, lo, bank.highpass, axis=0, stride=1), axis=0
        )
        hl = machine.router_decimate(
            _systolic_filter(machine, hi, bank.lowpass, axis=0, stride=1), axis=0
        )
        hh = machine.router_decimate(
            _systolic_filter(machine, hi, bank.highpass, axis=0, stride=1), axis=0
        )
        details.append(DetailTriple(lh=lh, hl=hl, hh=hh))
        current = ll
    return WaveletPyramid(current, tuple(details), bank.name)


def _lifting_lane_pass(machine: MasParMachine, data: np.ndarray, scheme, axis: int):
    """One decimating analysis pass along ``axis`` on the machine, lifting
    style: split even/odd lanes through the router, then run the factored
    steps as broadcast + toroidal shift + MAC on the half-size lanes.

    Returns ``(approx, detail)`` with the axis halved.
    """
    xe = machine.router_decimate(data, axis=axis)
    xo = machine.router_decimate(machine.shift(data, 1, axis=axis), axis=axis)
    lanes = {"e": xe, "o": xo}
    for step in scheme.steps:
        target = lanes[step.target]
        source = lanes["o" if step.target == "e" else "e"]
        for j, c in enumerate(step.coeffs):
            coeff = machine.broadcast(c)
            offset = step.dmin + j
            shifted = machine.shift(source, offset, axis=axis) if offset else source
            machine.mac(target, shifted, coeff)

    def _finish(lane_key: str, scale: float, shift: int) -> np.ndarray:
        lane = lanes[lane_key]
        if shift:
            lane = machine.shift(lane, shift, axis=axis)
        out = np.zeros_like(lane)
        machine.mac(out, lane, machine.broadcast(scale))
        return out

    approx = _finish(scheme.low_lane, scheme.low_scale, scheme.low_shift)
    detail = _finish(scheme.high_lane, scheme.high_scale, scheme.high_shift)
    return approx, detail


def _decompose_lifting(
    machine: MasParMachine, image: np.ndarray, bank: FilterBank, levels: int
) -> WaveletPyramid:
    from repro.wavelet.lifting import lifting_scheme

    scheme = lifting_scheme(bank)
    current = image.copy()
    details = []
    for _ in range(levels):
        lo, hi = _lifting_lane_pass(machine, current, scheme, axis=1)
        ll, lh = _lifting_lane_pass(machine, lo, scheme, axis=0)
        hl, hh = _lifting_lane_pass(machine, hi, scheme, axis=0)
        details.append(DetailTriple(lh=lh, hl=hl, hh=hh))
        current = ll
    return WaveletPyramid(current, tuple(details), bank.name)


def _decompose_single_loop(
    machine: MasParMachine, image: np.ndarray, bank: FilterBank, levels: int
) -> WaveletPyramid:
    """Single-loop sweep on the PE array: router-decimate both axes into
    the four polyphase quarter lanes, then run each lifting step
    horizontally and immediately vertically (broadcast hoisted once per
    tap, serving both lane pairs) and fuse the diagonal scaling into one
    MAC per subband."""
    from repro.wavelet.lifting import lifting_scheme
    from repro.wavelet.singleloop import _band_specs

    parities = ("e", "o")
    scheme = lifting_scheme(bank)
    current = image.copy()
    details = []
    for _ in range(levels):
        row = {
            "e": machine.router_decimate(current, axis=0),
            "o": machine.router_decimate(machine.shift(current, 1, axis=0), axis=0),
        }
        lanes = {}
        for r in parities:
            lanes[(r, "e")] = machine.router_decimate(row[r], axis=1)
            lanes[(r, "o")] = machine.router_decimate(
                machine.shift(row[r], 1, axis=1), axis=1
            )
        for step in scheme.steps:
            other = "o" if step.target == "e" else "e"
            for axis in (1, 0):
                for j, c in enumerate(step.coeffs):
                    coeff = machine.broadcast(c)
                    offset = step.dmin + j
                    for p in parities:
                        t = (p, step.target) if axis == 1 else (step.target, p)
                        s = (p, other) if axis == 1 else (other, p)
                        src = lanes[s]
                        shifted = (
                            machine.shift(src, offset, axis=axis) if offset else src
                        )
                        machine.mac(lanes[t], shifted, coeff)
        bands = []
        for v, h in _band_specs(scheme):
            lane = lanes[(v[0], h[0])]
            if v[2]:
                lane = machine.shift(lane, v[2], axis=0)
            if h[2]:
                lane = machine.shift(lane, h[2], axis=1)
            out = np.zeros_like(lane)
            machine.mac(out, lane, machine.broadcast(v[1] * h[1]))
            bands.append(out)
        ll, lh, hl, hh = bands
        details.append(DetailTriple(lh=lh, hl=hl, hh=hh))
        current = ll
    return WaveletPyramid(current, tuple(details), bank.name)


def _decompose_dilution(
    machine: MasParMachine, image: np.ndarray, bank: FilterBank, levels: int
) -> WaveletPyramid:
    # Full-size working arrays: valid level-k samples sit at stride 2^k.
    current = image.copy()
    diluted_details = []
    stride = 1
    for _ in range(levels):
        lo = _systolic_filter(machine, current, bank.lowpass, axis=1, stride=stride)
        hi = _systolic_filter(machine, current, bank.highpass, axis=1, stride=stride)
        # Decimation is implicit: valid columns are now multiples of 2*stride.
        ll = _systolic_filter(machine, lo, bank.lowpass, axis=0, stride=stride)
        lh = _systolic_filter(machine, lo, bank.highpass, axis=0, stride=stride)
        hl = _systolic_filter(machine, hi, bank.lowpass, axis=0, stride=stride)
        hh = _systolic_filter(machine, hi, bank.highpass, axis=0, stride=stride)
        stride *= 2
        diluted_details.append((lh, hl, hh, stride))
        current = ll
    details = tuple(
        DetailTriple(
            lh=np.ascontiguousarray(lh[::s, ::s]),
            hl=np.ascontiguousarray(hl[::s, ::s]),
            hh=np.ascontiguousarray(hh[::s, ::s]),
        )
        for (lh, hl, hh, s) in diluted_details
    )
    approx = np.ascontiguousarray(current[::stride, ::stride])
    return WaveletPyramid(approx, details, bank.name)
