"""Coarse-grain SPMD wavelet decomposition (the Paragon algorithm).

Implements Section 4.2: the image is distributed as stripes of rows, and
at the end of each level's row filtering every rank builds a guard zone of
``filter_length`` rows from its *south* neighbor before column filtering.
Striping limits the exchange to one neighbor; the alternative block
decomposition (two guards per level: east for row filtering, south for
column filtering) is implemented for the comparison benchmark.

The programs run real NumPy filtering, so the assembled parallel pyramid
is verified bit-for-bit against :func:`repro.wavelet.mallat_decompose_2d`
(both compute the identical periodized transform; no float reordering is
introduced by the decomposition).

Message tags are allocated by the central :mod:`repro.machines.tags`
registry (distribution, row-guard, column-guard, collection, plus the
lifting kernels' front-guard exchanges and the single-loop sweep's
raw-tile guard exchanges).

``kernel="single-loop"`` runs the monolithic sweep of
:mod:`repro.wavelet.singleloop`: there are no per-pass intermediates to
exchange, so each level ships guards of the *raw* tile up front — row
guards under striping (2 messages/level), column guards plus guards of
the horizontally-extended tile under blocking (4 messages/level, the
extended rows carrying the corner data through the neighbors) — and then
charges one sweep instead of two passes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DecompositionError
from repro.machines import tags
from repro.machines.engine import Machine, RunResult
from repro.wavelet.conv import analyze_axis_valid
from repro.wavelet.cost import (
    filter_pass_cost,
    lifting_pass_cost,
    single_loop_sweep_cost,
)
from repro.wavelet.filters import FilterBank
from repro.wavelet.parallel.decomposition import (
    BlockDecomposition,
    StripeDecomposition,
    analysis_guard_depths,
)
from repro.wavelet.pyramid import DetailTriple, WaveletPyramid

__all__ = [
    "SpmdWaveletOutcome",
    "striped_wavelet_program",
    "block_wavelet_program",
    "run_spmd_wavelet",
]

_TAG_DISTRIBUTE = tags.WAVELET_DISTRIBUTE
_TAG_ROW_GUARD = tags.WAVELET_ROW_GUARD
_TAG_COL_GUARD = tags.WAVELET_COL_GUARD
_TAG_COLLECT = tags.WAVELET_COLLECT
# Lifting steps reach backwards as well as forwards, so the lifting/fused
# kernels add a front-guard exchange in the opposite direction.
_TAG_COL_GUARD_FRONT = tags.WAVELET_COL_GUARD_FRONT
_TAG_ROW_GUARD_FRONT = tags.WAVELET_ROW_GUARD_FRONT
# The single-loop sweep exchanges guards of the raw tile before any
# arithmetic; its messages ride their own tags so a mixed-kernel trace
# can never alias a lifting guard.
_TAG_SWEEP_GUARD = tags.WAVELET_SWEEP_GUARD
_TAG_SWEEP_GUARD_FRONT = tags.WAVELET_SWEEP_GUARD_FRONT
_TAG_SWEEP_COL_GUARD = tags.WAVELET_SWEEP_COL_GUARD
_TAG_SWEEP_COL_GUARD_FRONT = tags.WAVELET_SWEEP_COL_GUARD_FRONT


def _is_sweep(kernel: str) -> bool:
    """Whether ``kernel`` resolves to the single-loop traversal."""
    from repro.wavelet.plan import parse_kernel_spec

    return parse_kernel_spec(kernel).traversal == "single-loop"


@dataclass
class SpmdWaveletOutcome:
    """A parallel decomposition run: engine result plus assembled pyramid
    (``None`` when ``collect=False``)."""

    run: RunResult
    pyramid: WaveletPyramid


def striped_wavelet_program(
    ctx,
    image: np.ndarray,
    bank: FilterBank,
    levels: int,
    decomp: StripeDecomposition,
    *,
    distribute: bool = True,
    collect: bool = True,
    checkpoint_interval: int = 0,
    restore=None,
    kernel: str = "conv",
):
    """Rank program: striped decomposition with snake-friendly neighbor
    guard exchange.  Rank 0 returns the per-rank piece dictionary needed
    for assembly (all ranks return their local pieces).

    ``checkpoint_interval > 0`` writes a coordinated checkpoint every
    that-many levels (state: next level, running approximation, detail
    pieces so far); ``restore`` is the per-rank state list carried by a
    :class:`~repro.errors.RankCrashError` — resuming skips the initial
    distribution and fast-forwards to the checkpointed level.

    ``kernel`` selects the filtering implementation.  ``"conv"`` (default)
    is the seed path, unchanged; ``"lifting"``/``"fused"`` run the factored
    lifting passes (fusion is a sequential cache-locality detail, so both
    behave identically here) — the fully-local row pass is periodized
    lifting, the column pass valid-mode lifting over guards sized by
    :func:`~repro.wavelet.parallel.decomposition.analysis_guard_depths`,
    adding a front-guard exchange toward the south neighbor when the
    scheme's front margin is nonzero.  ``"single-loop"`` exchanges row
    guards of the *raw* stripe instead (same depths — the sweep's row
    erosion equals the separable column pass's) and runs one monolithic
    valid-rows/periodized-columns sweep per level, charged as a single
    :func:`~repro.wavelet.cost.single_loop_sweep_cost`.
    """
    rank, nranks = ctx.rank, ctx.nranks
    m = bank.length
    if kernel != "conv":
        from repro.wavelet.lifting import lifting_scheme

        scheme = lifting_scheme(bank)
        front, back = analysis_guard_depths(bank, kernel)
        sweep = _is_sweep(kernel)
    else:
        scheme = None
        front, back = analysis_guard_depths(bank)
        sweep = False

    if restore is not None:
        start_level, current, saved_details = restore[rank]
        current = np.asarray(current, dtype=np.float64)
        local_details = [tuple(np.asarray(a) for a in d) for d in saved_details]
    else:
        start_level = 0
        # --- initial distribution (rank 0 owns the image) ------------------
        if distribute and nranks > 1:
            if rank == 0:
                for dst in range(1, nranks):
                    r0, r1 = decomp.row_range(dst)
                    yield ctx.send(dst, image[r0:r1], tag=_TAG_DISTRIBUTE)
                r0, r1 = decomp.row_range(0)
                current = np.array(image[r0:r1], dtype=np.float64)
            else:
                received = yield ctx.recv(0, tag=_TAG_DISTRIBUTE)
                current = np.asarray(received, dtype=np.float64)
        else:
            r0, r1 = decomp.row_range(rank)
            current = np.array(image[r0:r1], dtype=np.float64)
        local_details = []

    north = decomp.north_neighbor(rank)
    south = decomp.south_neighbor(rank)

    for _level in range(start_level, levels):
        rows, cols = current.shape
        if (rows < m or rows < max(front, back)) and nranks > 1:
            raise DecompositionError(
                f"local stripe of {rows} rows is shorter than the "
                f"filter/guard requirement; reduce ranks or levels"
            )
        # Domain-decomposition bookkeeping: pure parallelization redundancy.
        yield ctx.compute(intops=64, redundant=True)

        if sweep:
            from repro.wavelet.singleloop import single_loop_analyze_valid

            # Guards of the raw stripe, shipped before any arithmetic
            # (the sweep has no row-pass intermediates to exchange).
            if nranks > 1:
                if back > 0:
                    yield ctx.send(north, current[:back], tag=_TAG_SWEEP_GUARD)
                if front > 0:
                    yield ctx.send(
                        south, current[rows - front :], tag=_TAG_SWEEP_GUARD_FRONT
                    )
                back_rows = (
                    (yield ctx.recv(south, tag=_TAG_SWEEP_GUARD))
                    if back > 0
                    else current[:0]
                )
                front_rows = (
                    (yield ctx.recv(north, tag=_TAG_SWEEP_GUARD_FRONT))
                    if front > 0
                    else current[:0]
                )
            else:
                back_rows = current[:back]
                front_rows = current[rows - front :]

            out_rows = rows // 2
            ext = np.vstack([front_rows, current, back_rows])
            ll, lh, hl, hh = single_loop_analyze_valid(
                ext, scheme, out_rows, cols // 2, front, periodic_cols=True
            )
            yield ctx.charge(single_loop_sweep_cost(rows, cols, scheme.step_taps))
        elif kernel == "conv":
            # Steps 1-2: row filtering + column decimation, fully local.
            lo = _analyze_full_axis1(current, bank.lowpass)
            hi = _analyze_full_axis1(current, bank.highpass)
            yield ctx.charge(filter_pass_cost(2 * rows * (cols // 2), m))

            # Guard zone: ship my top `m` rows of both intermediates to the
            # north neighbor; receive the south neighbor's (periodic wrap).
            if nranks > 1:
                yield ctx.send(north, np.stack([lo[:m], hi[:m]]), tag=_TAG_COL_GUARD)
                guard = yield ctx.recv(south, tag=_TAG_COL_GUARD)
                guard_lo, guard_hi = guard[0], guard[1]
            else:
                guard_lo, guard_hi = lo[:m], hi[:m]

            # Steps 3-4: column filtering + row decimation over stripe+guard.
            out_rows = rows // 2
            ext_lo = np.vstack([lo, guard_lo])
            ext_hi = np.vstack([hi, guard_hi])
            ll = analyze_axis_valid(ext_lo, bank.lowpass, axis=0, out_len=out_rows)
            lh = analyze_axis_valid(ext_lo, bank.highpass, axis=0, out_len=out_rows)
            hl = analyze_axis_valid(ext_hi, bank.lowpass, axis=0, out_len=out_rows)
            hh = analyze_axis_valid(ext_hi, bank.highpass, axis=0, out_len=out_rows)
            yield ctx.charge(filter_pass_cost(4 * out_rows * (cols // 2), m))
        else:
            from repro.wavelet.lifting import (
                lifting_analyze_axis,
                lifting_analyze_axis_valid,
            )

            # Row pass: both subbands in one periodized lifting sweep.
            lo, hi = lifting_analyze_axis(current, scheme, axis=1)
            yield ctx.charge(lifting_pass_cost(2 * rows * (cols // 2), scheme.step_taps))

            # Back guard (from south, as conv) plus a front guard (from
            # north) when the scheme's steps reach backwards.
            if nranks > 1:
                if back > 0:
                    yield ctx.send(
                        north, np.stack([lo[:back], hi[:back]]), tag=_TAG_COL_GUARD
                    )
                if front > 0:
                    yield ctx.send(
                        south,
                        np.stack([lo[rows - front :], hi[rows - front :]]),
                        tag=_TAG_COL_GUARD_FRONT,
                    )
                if back > 0:
                    guard = yield ctx.recv(south, tag=_TAG_COL_GUARD)
                    back_lo, back_hi = guard[0], guard[1]
                else:
                    back_lo = back_hi = lo[:0]
                if front > 0:
                    guard = yield ctx.recv(north, tag=_TAG_COL_GUARD_FRONT)
                    front_lo, front_hi = guard[0], guard[1]
                else:
                    front_lo = front_hi = lo[:0]
            else:
                back_lo, back_hi = lo[:back], hi[:back]
                front_lo, front_hi = lo[rows - front :], hi[rows - front :]

            out_rows = rows // 2
            ext_lo = np.vstack([front_lo, lo, back_lo])
            ext_hi = np.vstack([front_hi, hi, back_hi])
            ll, lh = lifting_analyze_axis_valid(ext_lo, scheme, 0, out_rows, front)
            hl, hh = lifting_analyze_axis_valid(ext_hi, scheme, 0, out_rows, front)
            yield ctx.charge(
                lifting_pass_cost(4 * out_rows * (cols // 2), scheme.step_taps)
            )

        local_details.append((lh, hl, hh))
        current = ll

        if checkpoint_interval > 0 and (_level + 1) % checkpoint_interval == 0:
            yield ctx.checkpoint((_level + 1, current, local_details))

    pieces = {"approx": current, "details": local_details}
    if collect and nranks > 1:
        if rank == 0:
            gathered = [pieces]
            for src in range(1, nranks):
                gathered.append((yield ctx.recv(src, tag=_TAG_COLLECT)))
            return gathered
        yield ctx.send(0, pieces, tag=_TAG_COLLECT)
        return None
    return [pieces] if rank == 0 else None


def block_wavelet_program(
    ctx,
    image: np.ndarray,
    bank: FilterBank,
    levels: int,
    decomp: BlockDecomposition,
    *,
    distribute: bool = True,
    collect: bool = True,
    kernel: str = "conv",
):
    """Rank program: 2-D block decomposition (two guard exchanges per
    level), the costlier alternative of Figure 3.  ``kernel`` as in
    :func:`striped_wavelet_program`; under lifting both the row and the
    column filtering gain a front-guard exchange when needed.  Under
    ``"single-loop"`` the level exchanges guards of the raw block in two
    stages — east/west column guards, then north/south row guards of the
    *horizontally-extended* block, so the corner data each diagonal
    neighbor owns arrives through the adjacent neighbors' guards — and
    runs one doubly-valid monolithic sweep."""
    rank, nranks = ctx.rank, ctx.nranks
    m = bank.length
    if kernel != "conv":
        from repro.wavelet.lifting import lifting_scheme

        scheme = lifting_scheme(bank)
        front, back = analysis_guard_depths(bank, kernel)
        sweep = _is_sweep(kernel)
    else:
        scheme = None
        front, back = analysis_guard_depths(bank)
        sweep = False

    (r0, r1), (c0, c1) = decomp.block_ranges(rank)
    if distribute and nranks > 1:
        if rank == 0:
            for dst in range(1, nranks):
                (dr0, dr1), (dc0, dc1) = decomp.block_ranges(dst)
                yield ctx.send(dst, image[dr0:dr1, dc0:dc1], tag=_TAG_DISTRIBUTE)
            current = np.array(image[r0:r1, c0:c1], dtype=np.float64)
        else:
            received = yield ctx.recv(0, tag=_TAG_DISTRIBUTE)
            current = np.asarray(received, dtype=np.float64)
    else:
        current = np.array(image[r0:r1, c0:c1], dtype=np.float64)

    east = decomp.east_neighbor(rank)
    west = decomp.west_neighbor(rank)
    north = decomp.north_neighbor(rank)
    south = decomp.south_neighbor(rank)
    local_details = []

    for _level in range(levels):
        rows, cols = current.shape
        if (cols < m or rows < m or min(rows, cols) < max(front, back)) and nranks > 1:
            raise DecompositionError(
                f"local block {rows}x{cols} is smaller than the "
                f"filter/guard requirement; reduce ranks or levels"
            )
        yield ctx.compute(intops=128, redundant=True)

        out_cols = cols // 2
        out_rows = rows // 2
        if sweep:
            from repro.wavelet.singleloop import single_loop_analyze_valid

            # Stage 1: east/west column guards of the raw block.
            if decomp.pcols > 1:
                if back > 0:
                    yield ctx.send(
                        west,
                        np.ascontiguousarray(current[:, :back]),
                        tag=_TAG_SWEEP_COL_GUARD,
                    )
                if front > 0:
                    yield ctx.send(
                        east,
                        np.ascontiguousarray(current[:, cols - front :]),
                        tag=_TAG_SWEEP_COL_GUARD_FRONT,
                    )
                guard_east = (
                    (yield ctx.recv(east, tag=_TAG_SWEEP_COL_GUARD))
                    if back > 0
                    else current[:, :0]
                )
                guard_west = (
                    (yield ctx.recv(west, tag=_TAG_SWEEP_COL_GUARD_FRONT))
                    if front > 0
                    else current[:, :0]
                )
            else:
                guard_east = current[:, :back]
                guard_west = current[:, cols - front :]
            ext = np.hstack([guard_west, current, guard_east])

            # Stage 2: north/south row guards of the horizontally-extended
            # block — the neighbors' own east/west guards ride along, so
            # the corner data flows without diagonal messages.
            if decomp.prows > 1:
                if back > 0:
                    yield ctx.send(north, ext[:back], tag=_TAG_SWEEP_GUARD)
                if front > 0:
                    yield ctx.send(
                        south, ext[rows - front :], tag=_TAG_SWEEP_GUARD_FRONT
                    )
                back_rows = (
                    (yield ctx.recv(south, tag=_TAG_SWEEP_GUARD))
                    if back > 0
                    else ext[:0]
                )
                front_rows = (
                    (yield ctx.recv(north, tag=_TAG_SWEEP_GUARD_FRONT))
                    if front > 0
                    else ext[:0]
                )
            else:
                back_rows = ext[:back]
                front_rows = ext[rows - front :]
            full = np.vstack([front_rows, ext, back_rows])
            ll, lh, hl, hh = single_loop_analyze_valid(
                full, scheme, out_rows, out_cols, front, front
            )
            yield ctx.charge(single_loop_sweep_cost(rows, cols, scheme.step_taps))
        elif kernel == "conv":
            # Row filtering needs an east guard of `m` columns.
            if decomp.pcols > 1:
                yield ctx.send(west, np.ascontiguousarray(current[:, :m]), tag=_TAG_ROW_GUARD)
                guard_east = yield ctx.recv(east, tag=_TAG_ROW_GUARD)
            else:
                guard_east = current[:, :m]
            ext = np.hstack([current, guard_east])
            lo = analyze_axis_valid(ext, bank.lowpass, axis=1, out_len=out_cols)
            hi = analyze_axis_valid(ext, bank.highpass, axis=1, out_len=out_cols)
            yield ctx.charge(filter_pass_cost(2 * rows * out_cols, m))

            # Column filtering needs a south guard of `m` rows.
            if decomp.prows > 1:
                yield ctx.send(north, np.stack([lo[:m], hi[:m]]), tag=_TAG_COL_GUARD)
                guard = yield ctx.recv(south, tag=_TAG_COL_GUARD)
                guard_lo, guard_hi = guard[0], guard[1]
            else:
                guard_lo, guard_hi = lo[:m], hi[:m]
            ext_lo = np.vstack([lo, guard_lo])
            ext_hi = np.vstack([hi, guard_hi])
            ll = analyze_axis_valid(ext_lo, bank.lowpass, axis=0, out_len=out_rows)
            lh = analyze_axis_valid(ext_lo, bank.highpass, axis=0, out_len=out_rows)
            hl = analyze_axis_valid(ext_hi, bank.lowpass, axis=0, out_len=out_rows)
            hh = analyze_axis_valid(ext_hi, bank.highpass, axis=0, out_len=out_rows)
            yield ctx.charge(filter_pass_cost(4 * out_rows * out_cols, m))
        else:
            from repro.wavelet.lifting import lifting_analyze_axis_valid

            # Row filtering: east back guard, plus a west front guard when
            # the lifting steps reach backwards.
            if decomp.pcols > 1:
                if back > 0:
                    yield ctx.send(
                        west, np.ascontiguousarray(current[:, :back]), tag=_TAG_ROW_GUARD
                    )
                if front > 0:
                    yield ctx.send(
                        east,
                        np.ascontiguousarray(current[:, cols - front :]),
                        tag=_TAG_ROW_GUARD_FRONT,
                    )
                guard_east = (
                    (yield ctx.recv(east, tag=_TAG_ROW_GUARD))
                    if back > 0
                    else current[:, :0]
                )
                guard_west = (
                    (yield ctx.recv(west, tag=_TAG_ROW_GUARD_FRONT))
                    if front > 0
                    else current[:, :0]
                )
            else:
                guard_east = current[:, :back]
                guard_west = current[:, cols - front :]
            ext = np.hstack([guard_west, current, guard_east])
            lo, hi = lifting_analyze_axis_valid(ext, scheme, 1, out_cols, front)
            yield ctx.charge(lifting_pass_cost(2 * rows * out_cols, scheme.step_taps))

            # Column filtering: south back guard plus north front guard.
            if decomp.prows > 1:
                if back > 0:
                    yield ctx.send(
                        north, np.stack([lo[:back], hi[:back]]), tag=_TAG_COL_GUARD
                    )
                if front > 0:
                    yield ctx.send(
                        south,
                        np.stack([lo[rows - front :], hi[rows - front :]]),
                        tag=_TAG_COL_GUARD_FRONT,
                    )
                if back > 0:
                    guard = yield ctx.recv(south, tag=_TAG_COL_GUARD)
                    back_lo, back_hi = guard[0], guard[1]
                else:
                    back_lo = back_hi = lo[:0]
                if front > 0:
                    guard = yield ctx.recv(north, tag=_TAG_COL_GUARD_FRONT)
                    front_lo, front_hi = guard[0], guard[1]
                else:
                    front_lo = front_hi = lo[:0]
            else:
                back_lo, back_hi = lo[:back], hi[:back]
                front_lo, front_hi = lo[rows - front :], hi[rows - front :]
            ext_lo = np.vstack([front_lo, lo, back_lo])
            ext_hi = np.vstack([front_hi, hi, back_hi])
            ll, lh = lifting_analyze_axis_valid(ext_lo, scheme, 0, out_rows, front)
            hl, hh = lifting_analyze_axis_valid(ext_hi, scheme, 0, out_rows, front)
            yield ctx.charge(lifting_pass_cost(4 * out_rows * out_cols, scheme.step_taps))

        local_details.append((lh, hl, hh))
        current = ll

    pieces = {"approx": current, "details": local_details}
    if collect and nranks > 1:
        if rank == 0:
            gathered = [pieces]
            for src in range(1, nranks):
                gathered.append((yield ctx.recv(src, tag=_TAG_COLLECT)))
            return gathered
        yield ctx.send(0, pieces, tag=_TAG_COLLECT)
        return None
    return [pieces] if rank == 0 else None


def _analyze_full_axis1(data: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Periodized row filtering of a full-width stripe (rows are entirely
    local under striping, so the sequential primitive applies directly)."""
    from repro.wavelet.conv import analyze_axis

    return analyze_axis(data, taps, axis=1)


def _assemble_striped(gathered, bank_name: str, levels: int) -> WaveletPyramid:
    approx = np.vstack([p["approx"] for p in gathered])
    details = []
    for level in range(levels):
        details.append(
            DetailTriple(
                lh=np.vstack([p["details"][level][0] for p in gathered]),
                hl=np.vstack([p["details"][level][1] for p in gathered]),
                hh=np.vstack([p["details"][level][2] for p in gathered]),
            )
        )
    return WaveletPyramid(approx, tuple(details), bank_name)


def _assemble_block(gathered, decomp: BlockDecomposition, bank_name: str, levels: int):
    def grid_stack(index):
        rows = []
        for br in range(decomp.prows):
            row = [index(br * decomp.pcols + bc) for bc in range(decomp.pcols)]
            rows.append(np.hstack(row))
        return np.vstack(rows)

    approx = grid_stack(lambda r: gathered[r]["approx"])
    details = []
    for level in range(levels):
        details.append(
            DetailTriple(
                lh=grid_stack(lambda r: gathered[r]["details"][level][0]),
                hl=grid_stack(lambda r: gathered[r]["details"][level][1]),
                hh=grid_stack(lambda r: gathered[r]["details"][level][2]),
            )
        )
    return WaveletPyramid(approx, tuple(details), bank_name)


def run_spmd_wavelet(
    machine: Machine,
    image: np.ndarray,
    bank: FilterBank,
    levels: int,
    *,
    decomposition: str = "striped",
    distribute: bool = True,
    collect: bool = True,
    kernel: str = "conv",
) -> SpmdWaveletOutcome:
    """Execute the parallel decomposition on a simulated machine.

    Parameters
    ----------
    machine:
        A :class:`~repro.machines.engine.Machine` (e.g. from
        :func:`repro.machines.paragon`).
    image:
        2-D input image.
    bank, levels:
        Analysis bank and decomposition depth.
    decomposition:
        ``"striped"`` (the paper's choice) or ``"block"``.
    kernel:
        Filtering implementation: ``"conv"`` (default, the seed path),
        ``"lifting"``, ``"fused"`` (or a parameterized ``"fused:N"``
        spec), or ``"single-loop"`` (see :mod:`repro.wavelet.kernels`).
    distribute / collect:
        Whether the timed region includes shipping the image out from
        rank 0 and gathering the subbands back (the paper's measurements
        operate on distributed data; pass ``True`` to include the I/O).

    Returns
    -------
    SpmdWaveletOutcome
        Engine run result and the assembled pyramid (when collected, or
        when running on one rank).

    Notes
    -----
    Thin wrapper over the runtime layer: builds a
    :class:`~repro.runtime.spec.JobSpec` for the registered ``wavelet``
    program and runs it through :func:`repro.runtime.execute`.
    """
    from repro.runtime import JobSpec, RunOptions, execute

    spec = JobSpec(
        program="wavelet",
        params={
            "image": image,
            "bank": bank,
            "levels": levels,
            "distribute": distribute,
            "collect": collect,
        },
        options=RunOptions(kernel=kernel, decomposition=decomposition),
    )
    return execute(machine, spec).outcome
