"""Fine-grain SIMD wavelet reconstruction on the MasPar model.

The reverse of the systolic decomposition: subband samples are spread
back to even positions through the global router (the inverse of the
decimation compaction), then each synthesis filter runs as a systolic
convolution — broadcast a tap, multiply-accumulate, shift the *data* one
PE to the right — and the low/high channels are summed.
"""

from __future__ import annotations

import numpy as np

from repro.machines.simd.machine import MasParMachine, SimdStats
from repro.wavelet.filters import FilterBank
from repro.wavelet.pyramid import WaveletPyramid
from repro.wavelet.transform import Subbands2D

__all__ = ["simd_mallat_reconstruct"]


def _router_upsample(machine: MasParMachine, data: np.ndarray, axis: int) -> np.ndarray:
    """Spread samples to even positions along ``axis`` (router traffic of
    the same volume as the forward decimation)."""
    shape = list(data.shape)
    shape[axis] *= 2
    out = np.zeros(shape, dtype=np.float64)
    slicer = [slice(None)] * data.ndim
    slicer[axis] = slice(0, None, 2)
    out[tuple(slicer)] = data
    machine.stats.router_cycles += machine.virt.router_cycles(data.size)
    return out


def _systolic_synthesize(
    machine: MasParMachine, upsampled: np.ndarray, taps: np.ndarray, axis: int
) -> np.ndarray:
    """Systolic periodic convolution: ``out[n] = sum_k taps[k] u[n-k]``."""
    acc = np.zeros_like(upsampled)
    rolling = upsampled
    for k in range(taps.size):
        coeff = machine.broadcast(taps[k])
        machine.mac(acc, rolling, coeff)
        if k + 1 < taps.size:
            # Shift the data one PE to the *right* (toward higher indices).
            rolling = machine.shift(rolling, -1, axis=axis)
    return acc


def _inverse_step(
    machine: MasParMachine, bands: Subbands2D, bank: FilterBank
) -> np.ndarray:
    low = _systolic_synthesize(
        machine, _router_upsample(machine, bands.ll, 0), bank.lowpass, 0
    ) + _systolic_synthesize(
        machine, _router_upsample(machine, bands.lh, 0), bank.highpass, 0
    )
    high = _systolic_synthesize(
        machine, _router_upsample(machine, bands.hl, 0), bank.lowpass, 0
    ) + _systolic_synthesize(
        machine, _router_upsample(machine, bands.hh, 0), bank.highpass, 0
    )
    return _systolic_synthesize(
        machine, _router_upsample(machine, low, 1), bank.lowpass, 1
    ) + _systolic_synthesize(
        machine, _router_upsample(machine, high, 1), bank.highpass, 1
    )


def simd_mallat_reconstruct(
    machine: MasParMachine, pyramid: WaveletPyramid, bank: FilterBank
):
    """Invert a pyramid on the MasPar model.

    Returns ``(image, stats, elapsed_s)``; the image equals the sequential
    :func:`repro.wavelet.mallat_reconstruct_2d` output.
    """
    machine.reset()
    current = pyramid.approximation
    for triple in reversed(pyramid.details):
        bands = Subbands2D(ll=current, lh=triple.lh, hl=triple.hl, hh=triple.hh)
        current = _inverse_step(machine, bands, bank)
    return current, machine.stats, machine.elapsed_s
