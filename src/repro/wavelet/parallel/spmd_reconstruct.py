"""Coarse-grain SPMD wavelet *reconstruction* (the paper's Figure 2
reverse process, parallelized with the same striping discipline as the
decomposition).

Each rank owns row stripes of every pyramid level.  Reconstruction runs
coarsest-to-finest; at each level the column synthesis (upsample + filter
along rows of the stripe) needs ``filter_length // 2`` guard rows from
the *north* neighbor — the mirror of the decomposition's south guard —
followed by fully local row synthesis.  Outputs are bit-identical to
:func:`repro.wavelet.mallat_reconstruct_2d`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DecompositionError
from repro.machines.engine import Engine, Machine, RunResult
from repro.wavelet.conv import synthesize_axis, synthesize_axis_valid
from repro.wavelet.cost import synthesis_pass_cost
from repro.wavelet.filters import FilterBank
from repro.wavelet.parallel.decomposition import StripeDecomposition
from repro.wavelet.pyramid import WaveletPyramid

__all__ = ["SpmdReconstructOutcome", "striped_reconstruct_program", "run_spmd_reconstruct"]

_TAG_DISTRIBUTE = 5
_TAG_GUARD = 6
_TAG_COLLECT = 7


@dataclass
class SpmdReconstructOutcome:
    """Engine result plus the assembled image (rank 0)."""

    run: RunResult
    image: np.ndarray


def _stripe_pieces(pyramid: WaveletPyramid, decomp: StripeDecomposition, rank: int):
    """Slice one rank's stripes out of a full pyramid (deepest level's
    stripes use the deepest row split, and so on upward)."""
    levels = pyramid.levels
    a0, a1 = decomp.row_range(rank, level=levels)
    pieces = {"approx": pyramid.approximation[a0:a1].copy(), "details": []}
    for level in range(levels):
        d0, d1 = decomp.row_range(rank, level=level + 1)
        triple = pyramid.details[level]
        pieces["details"].append(
            (triple.lh[d0:d1].copy(), triple.hl[d0:d1].copy(), triple.hh[d0:d1].copy())
        )
    return pieces


def striped_reconstruct_program(
    ctx,
    pyramid: WaveletPyramid,
    bank: FilterBank,
    decomp: StripeDecomposition,
    *,
    distribute: bool = True,
    collect: bool = True,
):
    """Rank program for the striped parallel reconstruction."""
    rank, nranks = ctx.rank, ctx.nranks
    m = bank.length
    guard_depth = max(1, m // 2)
    levels = pyramid.levels

    if distribute and nranks > 1:
        if rank == 0:
            for dst in range(1, nranks):
                yield ctx.send(dst, _stripe_pieces(pyramid, decomp, dst), tag=_TAG_DISTRIBUTE)
            pieces = _stripe_pieces(pyramid, decomp, 0)
        else:
            pieces = yield ctx.recv(0, tag=_TAG_DISTRIBUTE)
    else:
        pieces = _stripe_pieces(pyramid, decomp, rank)

    north = decomp.north_neighbor(rank)
    south = decomp.south_neighbor(rank)
    current = np.asarray(pieces["approx"], dtype=np.float64)

    for level in range(levels - 1, -1, -1):
        lh, hl, hh = (np.asarray(b, dtype=np.float64) for b in pieces["details"][level])
        rows, cols = current.shape
        if rows < guard_depth and nranks > 1:
            raise DecompositionError(
                f"local stripe of {rows} rows is shorter than the "
                f"{guard_depth}-row synthesis guard; reduce ranks or levels"
            )
        yield ctx.compute(intops=64, redundant=True)

        # Column synthesis needs the north neighbor's *bottom* guard rows
        # of every subband at this level (periodic wrap via the ring).
        if nranks > 1:
            bottom = np.stack(
                [current[-guard_depth:], lh[-guard_depth:], hl[-guard_depth:], hh[-guard_depth:]]
            )
            yield ctx.send(south, bottom, tag=_TAG_GUARD)
            guard = yield ctx.recv(north, tag=_TAG_GUARD)
        else:
            guard = np.stack(
                [current[-guard_depth:], lh[-guard_depth:], hl[-guard_depth:], hh[-guard_depth:]]
            )
        ext_ll = np.vstack([guard[0], current])
        ext_lh = np.vstack([guard[1], lh])
        ext_hl = np.vstack([guard[2], hl])
        ext_hh = np.vstack([guard[3], hh])

        out_rows = 2 * rows
        low = synthesize_axis_valid(
            ext_ll, bank.lowpass, 0, out_rows, guard_depth
        ) + synthesize_axis_valid(ext_lh, bank.highpass, 0, out_rows, guard_depth)
        high = synthesize_axis_valid(
            ext_hl, bank.lowpass, 0, out_rows, guard_depth
        ) + synthesize_axis_valid(ext_hh, bank.highpass, 0, out_rows, guard_depth)
        yield ctx.charge(synthesis_pass_cost(4 * out_rows * cols, m))

        # Row synthesis is fully local (rows are whole within a stripe).
        current = synthesize_axis(low, bank.lowpass, 1) + synthesize_axis(
            high, bank.highpass, 1
        )
        yield ctx.charge(synthesis_pass_cost(2 * out_rows * 2 * cols, m))

    if collect and nranks > 1:
        if rank == 0:
            stripes = [current]
            for src in range(1, nranks):
                stripes.append((yield ctx.recv(src, tag=_TAG_COLLECT)))
            return np.vstack(stripes)
        yield ctx.send(0, current, tag=_TAG_COLLECT)
        return None
    return current if rank == 0 else None


def run_spmd_reconstruct(
    machine: Machine,
    pyramid: WaveletPyramid,
    bank: FilterBank,
    *,
    distribute: bool = True,
    collect: bool = True,
) -> SpmdReconstructOutcome:
    """Reconstruct a pyramid on a simulated machine; the result matches
    the sequential inverse transform exactly."""
    rows, cols = pyramid.original_shape
    decomp = StripeDecomposition(rows, cols, machine.nranks, pyramid.levels)
    run = Engine(machine).run(
        striped_reconstruct_program,
        pyramid,
        bank,
        decomp,
        distribute=distribute,
        collect=collect,
    )
    return SpmdReconstructOutcome(run=run, image=run.results[0])
