"""Coarse-grain SPMD wavelet *reconstruction* (the paper's Figure 2
reverse process, parallelized with the same striping discipline as the
decomposition).

Each rank owns row stripes of every pyramid level.  Reconstruction runs
coarsest-to-finest; at each level the column synthesis (upsample + filter
along rows of the stripe) needs ``filter_length // 2`` guard rows from
the *north* neighbor — the mirror of the decomposition's south guard —
followed by fully local row synthesis.  Outputs are bit-identical to
:func:`repro.wavelet.mallat_reconstruct_2d`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DecompositionError
from repro.machines import tags
from repro.machines.engine import Engine, Machine, RunResult
from repro.wavelet.conv import synthesize_axis, synthesize_axis_valid
from repro.wavelet.cost import lifting_pass_cost, synthesis_pass_cost
from repro.wavelet.filters import FilterBank
from repro.wavelet.parallel.decomposition import (
    StripeDecomposition,
    synthesis_guard_depths,
)
from repro.wavelet.pyramid import WaveletPyramid

__all__ = ["SpmdReconstructOutcome", "striped_reconstruct_program", "run_spmd_reconstruct"]

_TAG_DISTRIBUTE = tags.RECONSTRUCT_DISTRIBUTE
_TAG_GUARD = tags.RECONSTRUCT_GUARD
_TAG_COLLECT = tags.RECONSTRUCT_COLLECT
# Extra guard the lifting/fused kernels fetch from the *south* neighbor
# when the inverse lifting steps reach forwards.
_TAG_GUARD_BACK = tags.RECONSTRUCT_GUARD_BACK


@dataclass
class SpmdReconstructOutcome:
    """Engine result plus the assembled image (rank 0)."""

    run: RunResult
    image: np.ndarray


def _stripe_pieces(pyramid: WaveletPyramid, decomp: StripeDecomposition, rank: int):
    """Slice one rank's stripes out of a full pyramid (deepest level's
    stripes use the deepest row split, and so on upward)."""
    levels = pyramid.levels
    a0, a1 = decomp.row_range(rank, level=levels)
    pieces = {"approx": pyramid.approximation[a0:a1].copy(), "details": []}
    for level in range(levels):
        d0, d1 = decomp.row_range(rank, level=level + 1)
        triple = pyramid.details[level]
        pieces["details"].append(
            (triple.lh[d0:d1].copy(), triple.hl[d0:d1].copy(), triple.hh[d0:d1].copy())
        )
    return pieces


def striped_reconstruct_program(
    ctx,
    pyramid: WaveletPyramid,
    bank: FilterBank,
    decomp: StripeDecomposition,
    *,
    distribute: bool = True,
    collect: bool = True,
    kernel: str = "conv",
):
    """Rank program for the striped parallel reconstruction.

    Any lifting-scheme kernel (``"lifting"``/``"fused"``/``"single-loop"``
    — the single-loop inverse shares the separable lifting synthesis
    path) runs the inverse lifting passes with guard depths from the
    scheme's synthesis margins (a north front guard, plus a south back
    guard when the inverse steps reach forwards).
    """
    rank, nranks = ctx.rank, ctx.nranks
    m = bank.length
    guard_depth = max(1, m // 2)
    if kernel != "conv":
        from repro.wavelet.lifting import lifting_scheme

        scheme = lifting_scheme(bank)
        s_front, s_back = synthesis_guard_depths(bank, kernel)
    else:
        scheme = None
        s_front, s_back = synthesis_guard_depths(bank)
    levels = pyramid.levels

    if distribute and nranks > 1:
        if rank == 0:
            for dst in range(1, nranks):
                yield ctx.send(dst, _stripe_pieces(pyramid, decomp, dst), tag=_TAG_DISTRIBUTE)
            pieces = _stripe_pieces(pyramid, decomp, 0)
        else:
            pieces = yield ctx.recv(0, tag=_TAG_DISTRIBUTE)
    else:
        pieces = _stripe_pieces(pyramid, decomp, rank)

    north = decomp.north_neighbor(rank)
    south = decomp.south_neighbor(rank)
    current = np.asarray(pieces["approx"], dtype=np.float64)

    for level in range(levels - 1, -1, -1):
        lh, hl, hh = (np.asarray(b, dtype=np.float64) for b in pieces["details"][level])
        rows, cols = current.shape
        if (
            rows < guard_depth or rows < max(s_front, s_back)
        ) and nranks > 1:
            raise DecompositionError(
                f"local stripe of {rows} rows is shorter than the "
                f"synthesis guard requirement; reduce ranks or levels"
            )
        yield ctx.compute(intops=64, redundant=True)

        out_rows = 2 * rows
        if kernel == "conv":
            # Column synthesis needs the north neighbor's *bottom* guard rows
            # of every subband at this level (periodic wrap via the ring).
            if nranks > 1:
                bottom = np.stack(
                    [current[-guard_depth:], lh[-guard_depth:], hl[-guard_depth:], hh[-guard_depth:]]
                )
                yield ctx.send(south, bottom, tag=_TAG_GUARD)
                guard = yield ctx.recv(north, tag=_TAG_GUARD)
            else:
                guard = np.stack(
                    [current[-guard_depth:], lh[-guard_depth:], hl[-guard_depth:], hh[-guard_depth:]]
                )
            ext_ll = np.vstack([guard[0], current])
            ext_lh = np.vstack([guard[1], lh])
            ext_hl = np.vstack([guard[2], hl])
            ext_hh = np.vstack([guard[3], hh])

            low = synthesize_axis_valid(
                ext_ll, bank.lowpass, 0, out_rows, guard_depth
            ) + synthesize_axis_valid(ext_lh, bank.highpass, 0, out_rows, guard_depth)
            high = synthesize_axis_valid(
                ext_hl, bank.lowpass, 0, out_rows, guard_depth
            ) + synthesize_axis_valid(ext_hh, bank.highpass, 0, out_rows, guard_depth)
            yield ctx.charge(synthesis_pass_cost(4 * out_rows * cols, m))

            # Row synthesis is fully local (rows are whole within a stripe).
            current = synthesize_axis(low, bank.lowpass, 1) + synthesize_axis(
                high, bank.highpass, 1
            )
            yield ctx.charge(synthesis_pass_cost(2 * out_rows * 2 * cols, m))
        else:
            from repro.wavelet.lifting import (
                lifting_synthesize_axis,
                lifting_synthesize_axis_valid,
            )

            bands = (current, lh, hl, hh)
            if nranks > 1:
                if s_front > 0:
                    bottom = np.stack([b[rows - s_front :] for b in bands])
                    yield ctx.send(south, bottom, tag=_TAG_GUARD)
                if s_back > 0:
                    top = np.stack([b[:s_back] for b in bands])
                    yield ctx.send(north, top, tag=_TAG_GUARD_BACK)
                if s_front > 0:
                    front_guard = yield ctx.recv(north, tag=_TAG_GUARD)
                else:
                    front_guard = [b[:0] for b in bands]
                if s_back > 0:
                    back_guard = yield ctx.recv(south, tag=_TAG_GUARD_BACK)
                else:
                    back_guard = [b[:0] for b in bands]
            else:
                front_guard = [b[rows - s_front :] for b in bands]
                back_guard = [b[:s_back] for b in bands]
            ext = [
                np.vstack([front_guard[i], bands[i], back_guard[i]])
                for i in range(4)
            ]

            # Column inverse: (LL, LH) -> low rows, (HL, HH) -> high rows.
            low = lifting_synthesize_axis_valid(ext[0], ext[1], scheme, 0, out_rows, s_front)
            high = lifting_synthesize_axis_valid(ext[2], ext[3], scheme, 0, out_rows, s_front)
            yield ctx.charge(lifting_pass_cost(2 * out_rows * cols, scheme.step_taps))

            # Row inverse is fully local (periodized along the row axis).
            current = lifting_synthesize_axis(low, high, scheme, axis=1)
            yield ctx.charge(lifting_pass_cost(out_rows * 2 * cols, scheme.step_taps))

    if collect and nranks > 1:
        if rank == 0:
            stripes = [current]
            for src in range(1, nranks):
                stripes.append((yield ctx.recv(src, tag=_TAG_COLLECT)))
            return np.vstack(stripes)
        yield ctx.send(0, current, tag=_TAG_COLLECT)
        return None
    return current if rank == 0 else None


def run_spmd_reconstruct(
    machine: Machine,
    pyramid: WaveletPyramid,
    bank: FilterBank,
    *,
    distribute: bool = True,
    collect: bool = True,
    kernel: str = "conv",
) -> SpmdReconstructOutcome:
    """Reconstruct a pyramid on a simulated machine; the result matches
    the sequential inverse transform exactly (``kernel="conv"``) or within
    float tolerance (lifting kernels)."""
    rows, cols = pyramid.original_shape
    decomp = StripeDecomposition(rows, cols, machine.nranks, pyramid.levels)
    run = Engine(machine).run(
        striped_reconstruct_program,
        pyramid,
        bank,
        decomp,
        distribute=distribute,
        collect=collect,
        kernel=kernel,
    )
    return SpmdReconstructOutcome(run=run, image=run.results[0])
