"""Parallel wavelet decomposition algorithms (the paper's Section 4)."""

from repro.wavelet.parallel.decomposition import (
    BlockDecomposition,
    StripeDecomposition,
    analysis_guard_depths,
    factor_grid,
    synthesis_guard_depths,
)
from repro.wavelet.parallel.simd_mallat import SimdWaveletOutcome, simd_mallat_decompose
from repro.wavelet.parallel.simd_reconstruct import simd_mallat_reconstruct
from repro.wavelet.parallel.spmd import (
    SpmdWaveletOutcome,
    block_wavelet_program,
    run_spmd_wavelet,
    striped_wavelet_program,
)
from repro.wavelet.parallel.spmd_1d import (
    Spmd1dOutcome,
    dwt_1d_program,
    idwt_1d_program,
    run_spmd_dwt_1d,
    run_spmd_idwt_1d,
)
from repro.wavelet.parallel.spmd_reconstruct import (
    SpmdReconstructOutcome,
    run_spmd_reconstruct,
    striped_reconstruct_program,
)

__all__ = [
    "StripeDecomposition",
    "BlockDecomposition",
    "factor_grid",
    "analysis_guard_depths",
    "synthesis_guard_depths",
    "SpmdWaveletOutcome",
    "striped_wavelet_program",
    "block_wavelet_program",
    "run_spmd_wavelet",
    "SpmdReconstructOutcome",
    "striped_reconstruct_program",
    "run_spmd_reconstruct",
    "Spmd1dOutcome",
    "dwt_1d_program",
    "run_spmd_dwt_1d",
    "idwt_1d_program",
    "run_spmd_idwt_1d",
    "SimdWaveletOutcome",
    "simd_mallat_decompose",
    "simd_mallat_reconstruct",
]
