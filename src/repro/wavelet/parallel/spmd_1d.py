"""Coarse-grain SPMD transform for 1-D signals.

The paper's introduction motivates wavelets for signal analysis (speech)
as well as imagery; this module parallelizes the 1-D Mallat transform
with the same discipline as the 2-D striped code: contiguous segments
per rank, a guard of ``filter_length`` samples fetched from the right
(next) neighbor before each level's filtering, periodic wrap through the
ring.  Output matches :func:`repro.wavelet.dwt_1d` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DecompositionError
from repro.machines import tags
from repro.machines.engine import Engine, Machine, RunResult
from repro.wavelet.conv import analyze_axis_valid
from repro.wavelet.cost import filter_pass_cost, lifting_pass_cost
from repro.wavelet.filters import FilterBank
from repro.wavelet.parallel.decomposition import (
    analysis_guard_depths,
    synthesis_guard_depths,
)

__all__ = [
    "Spmd1dOutcome",
    "dwt_1d_program",
    "run_spmd_dwt_1d",
    "idwt_1d_program",
    "run_spmd_idwt_1d",
]

_TAG_DISTRIBUTE = tags.DWT1D_DISTRIBUTE
_TAG_GUARD = tags.DWT1D_GUARD
_TAG_COLLECT = tags.DWT1D_COLLECT
# Opposite-direction guards only the lifting/fused kernels need.
_TAG_GUARD_FRONT = tags.DWT1D_GUARD_FRONT
_TAG_GUARD_BACK = tags.DWT1D_GUARD_BACK


@dataclass
class Spmd1dOutcome:
    """Engine result plus the assembled (approximation, details) output."""

    run: RunResult
    approximation: np.ndarray
    details: list


def _segment(n: int, nranks: int, rank: int) -> tuple:
    if n % nranks != 0:
        raise DecompositionError(
            f"signal length {n} must divide evenly over {nranks} ranks"
        )
    width = n // nranks
    return rank * width, (rank + 1) * width


def dwt_1d_program(
    ctx,
    signal: np.ndarray,
    bank: FilterBank,
    levels: int,
    *,
    distribute: bool = True,
    collect: bool = True,
    kernel: str = "conv",
):
    """Rank program for the striped 1-D multi-level decomposition.

    Any lifting-scheme kernel (``"lifting"``/``"fused"``/``"single-loop"``
    — in 1-D the monolithic sweep degenerates to the factored passes)
    runs the lifting path; the left-neighbor guard shrinks to the
    scheme's back margin and a second, front guard travels the other way
    around the ring when the lifting steps reach backwards.
    """
    rank, nranks = ctx.rank, ctx.nranks
    m = bank.length
    if kernel != "conv":
        from repro.wavelet.lifting import lifting_scheme

        scheme = lifting_scheme(bank)
        front, back = analysis_guard_depths(bank, kernel)
    else:
        scheme = None
        front, back = analysis_guard_depths(bank)
    n = signal.shape[0]
    if n % (nranks * 2**levels) != 0:
        raise DecompositionError(
            f"signal length {n} must be divisible by nranks*2^levels="
            f"{nranks * 2 ** levels}"
        )

    if distribute and nranks > 1:
        if rank == 0:
            for dst in range(1, nranks):
                s0, s1 = _segment(n, nranks, dst)
                yield ctx.send(dst, signal[s0:s1], tag=_TAG_DISTRIBUTE)
            s0, s1 = _segment(n, nranks, 0)
            current = np.array(signal[s0:s1], dtype=np.float64)
        else:
            current = np.asarray(
                (yield ctx.recv(0, tag=_TAG_DISTRIBUTE)), dtype=np.float64
            )
    else:
        s0, s1 = _segment(n, nranks, rank)
        current = np.array(signal[s0:s1], dtype=np.float64)

    right = (rank + 1) % nranks
    left = (rank - 1) % nranks
    local_details = []
    for _level in range(levels):
        length = current.shape[0]
        if (length < m or length < max(front, back)) and nranks > 1:
            raise DecompositionError(
                f"local segment of {length} samples is shorter than the "
                f"filter/guard requirement; reduce ranks or levels"
            )
        if kernel == "conv":
            # Guard: my left neighbor needs my first m samples (periodic ring).
            if nranks > 1:
                yield ctx.send(left, current[:m].copy(), tag=_TAG_GUARD)
                guard = yield ctx.recv(right, tag=_TAG_GUARD)
            else:
                guard = current[:m]
            extended = np.concatenate([current, guard])
            out_len = length // 2
            approx = analyze_axis_valid(extended, bank.lowpass, 0, out_len)
            detail = analyze_axis_valid(extended, bank.highpass, 0, out_len)
            yield ctx.charge(filter_pass_cost(2 * out_len, m))
        else:
            from repro.wavelet.lifting import lifting_analyze_axis_valid

            if nranks > 1:
                if back > 0:
                    yield ctx.send(left, current[:back].copy(), tag=_TAG_GUARD)
                if front > 0:
                    yield ctx.send(
                        right, current[length - front :].copy(), tag=_TAG_GUARD_FRONT
                    )
                back_guard = (
                    (yield ctx.recv(right, tag=_TAG_GUARD))
                    if back > 0
                    else current[:0]
                )
                front_guard = (
                    (yield ctx.recv(left, tag=_TAG_GUARD_FRONT))
                    if front > 0
                    else current[:0]
                )
            else:
                back_guard = current[:back]
                front_guard = current[length - front :]
            extended = np.concatenate([front_guard, current, back_guard])
            out_len = length // 2
            approx, detail = lifting_analyze_axis_valid(
                extended, scheme, 0, out_len, front
            )
            yield ctx.charge(lifting_pass_cost(2 * out_len, scheme.step_taps))
        local_details.append(detail)
        current = approx

    pieces = {"approx": current, "details": local_details}
    if collect and nranks > 1:
        if rank == 0:
            gathered = [pieces]
            for src in range(1, nranks):
                gathered.append((yield ctx.recv(src, tag=_TAG_COLLECT)))
            return gathered
        yield ctx.send(0, pieces, tag=_TAG_COLLECT)
        return None
    return [pieces] if rank == 0 else None


def idwt_1d_program(
    ctx,
    approximation: np.ndarray,
    details: list,
    bank: FilterBank,
    *,
    collect: bool = True,
    kernel: str = "conv",
):
    """Rank program for the striped 1-D reconstruction.

    Synthesis needs a guard from the *left* neighbor (the mirror of the
    analysis guard), of depth ``filter_length // 2`` coefficients.  Under
    any lifting-scheme kernel (``"lifting"``/``"fused"``/``"single-loop"``)
    the guard depths come from the scheme's synthesis margins, adding a
    right-neighbor (back) guard when the inverse steps reach forwards.
    """
    from repro.wavelet.conv import synthesize_axis_valid
    from repro.wavelet.cost import synthesis_pass_cost

    rank, nranks = ctx.rank, ctx.nranks
    m = bank.length
    guard_depth = max(1, m // 2)
    if kernel != "conv":
        from repro.wavelet.lifting import lifting_scheme

        scheme = lifting_scheme(bank)
        s_front, s_back = synthesis_guard_depths(bank, kernel)
    else:
        scheme = None
        s_front, s_back = synthesis_guard_depths(bank)
    levels = len(details)
    right = (rank + 1) % nranks
    left = (rank - 1) % nranks

    a0, a1 = _segment(approximation.shape[0], nranks, rank)
    current = np.array(approximation[a0:a1], dtype=np.float64)

    for level in range(levels - 1, -1, -1):
        d0, d1 = _segment(details[level].shape[0], nranks, rank)
        detail = np.array(details[level][d0:d1], dtype=np.float64)
        length = current.shape[0]
        if (
            length < guard_depth or length < max(s_front, s_back)
        ) and nranks > 1:
            raise DecompositionError(
                f"local segment of {length} samples is shorter than the "
                f"synthesis guard requirement; reduce ranks or levels"
            )
        if kernel == "conv":
            if nranks > 1:
                tail = np.stack([current[-guard_depth:], detail[-guard_depth:]])
                yield ctx.send(right, tail, tag=_TAG_GUARD)
                guard = yield ctx.recv(left, tag=_TAG_GUARD)
            else:
                guard = np.stack([current[-guard_depth:], detail[-guard_depth:]])
            ext_approx = np.concatenate([guard[0], current])
            ext_detail = np.concatenate([guard[1], detail])
            out_len = 2 * length
            current = synthesize_axis_valid(
                ext_approx, bank.lowpass, 0, out_len, guard_depth
            ) + synthesize_axis_valid(ext_detail, bank.highpass, 0, out_len, guard_depth)
            yield ctx.charge(synthesis_pass_cost(2 * out_len, m))
        else:
            from repro.wavelet.lifting import lifting_synthesize_axis_valid

            if nranks > 1:
                if s_front > 0:
                    tail = np.stack([current[length - s_front :], detail[length - s_front :]])
                    yield ctx.send(right, tail, tag=_TAG_GUARD)
                if s_back > 0:
                    head = np.stack([current[:s_back], detail[:s_back]])
                    yield ctx.send(left, head, tag=_TAG_GUARD_BACK)
                if s_front > 0:
                    guard = yield ctx.recv(left, tag=_TAG_GUARD)
                    front_a, front_d = guard[0], guard[1]
                else:
                    front_a = front_d = current[:0]
                if s_back > 0:
                    guard = yield ctx.recv(right, tag=_TAG_GUARD_BACK)
                    back_a, back_d = guard[0], guard[1]
                else:
                    back_a = back_d = current[:0]
            else:
                front_a, front_d = current[length - s_front :], detail[length - s_front :]
                back_a, back_d = current[:s_back], detail[:s_back]
            ext_approx = np.concatenate([front_a, current, back_a])
            ext_detail = np.concatenate([front_d, detail, back_d])
            out_len = 2 * length
            current = lifting_synthesize_axis_valid(
                ext_approx, ext_detail, scheme, 0, out_len, s_front
            )
            yield ctx.charge(lifting_pass_cost(out_len, scheme.step_taps))

    if collect and nranks > 1:
        if rank == 0:
            segments = [current]
            for src in range(1, nranks):
                segments.append((yield ctx.recv(src, tag=_TAG_COLLECT)))
            return np.concatenate(segments)
        yield ctx.send(0, current, tag=_TAG_COLLECT)
        return None
    return current if rank == 0 else None


def run_spmd_idwt_1d(
    machine: Machine,
    approximation: np.ndarray,
    details: list,
    bank: FilterBank,
    *,
    kernel: str = "conv",
):
    """Reconstruct a 1-D multi-level decomposition on a simulated machine;
    matches :func:`repro.wavelet.idwt_1d` exactly (``kernel="conv"``) or
    within float tolerance (lifting kernels).  Returns ``(run, signal)``."""
    run = Engine(machine).run(
        idwt_1d_program,
        np.asarray(approximation, dtype=np.float64),
        [np.asarray(d, dtype=np.float64) for d in details],
        bank,
        kernel=kernel,
    )
    return run, run.results[0]


def run_spmd_dwt_1d(
    machine: Machine,
    signal: np.ndarray,
    bank: FilterBank,
    levels: int,
    *,
    distribute: bool = True,
    kernel: str = "conv",
) -> Spmd1dOutcome:
    """Run the 1-D decomposition on a simulated machine; outputs match
    the sequential :func:`repro.wavelet.dwt_1d` exactly (``kernel="conv"``)
    or within float tolerance (lifting kernels)."""
    signal = np.asarray(signal, dtype=np.float64)
    run = Engine(machine).run(
        dwt_1d_program,
        signal,
        bank,
        levels,
        distribute=distribute,
        collect=True,
        kernel=kernel,
    )
    gathered = run.results[0]
    approximation = np.concatenate([p["approx"] for p in gathered])
    details = [
        np.concatenate([p["details"][level] for p in gathered])
        for level in range(levels)
    ]
    return Spmd1dOutcome(run=run, approximation=approximation, details=details)
