"""Monolithic single-loop 2-D lifting sweep (Barina et al., "Parallel
Wavelet Schemes for Images", PAPERS.md).

The separable lifting kernels run a full row pass and then a full column
pass per level, materializing half-band intermediates and (for the
column pass) paying transposed copies.  The single-loop scheme instead
splits the image *once* into its four polyphase lanes

    ``lane[(r, c)] = image[r::2, c::2]``    (r, c in {even, odd})

and interleaves the lifting steps: every step is applied horizontally
(within each row-parity pair of lanes) and immediately vertically
(within each column-parity pair), so each pixel is visited once per
level and no intermediate subband image ever exists.  Because a
vertical step ``V ⊗ I`` commutes with a horizontal step ``I ⊗ H`` as
linear operators, the interleaved product ``(V_n H_n) ··· (V_1 H_1)``
equals the separable ``(V_n ··· V_1)(H_n ··· H_1)`` exactly — the two
kernels agree to float rounding, and both match direct convolution
within :data:`repro.wavelet.lifting.VERIFY_TOLERANCE`.

The diagonal output scaling is deferred and fused: each subband is one
multiply by the *product* of the two axes' scales, applied during lane
extraction (the separable form scales twice, once per pass).

Two boundary modes mirror :mod:`repro.wavelet.lifting`:

* periodized (:func:`single_loop_analyze_2d` /
  :func:`single_loop_synthesize_2d`) — the sequential kernel;
* valid-with-margins (:func:`single_loop_analyze_valid`) — the SPMD
  programs extend an owned tile with guard-exchanged margins and the
  sweep tracks a rectangular valid region per lane (row interval x
  column interval), raising :class:`~repro.errors.ConfigurationError`
  when the guards are too shallow.  The striped program keeps the
  column axis periodized (``periodic_cols=True``); the block program
  runs both axes in valid mode.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.wavelet.lifting import LiftingScheme, LiftingStep

__all__ = [
    "single_loop_analyze_2d",
    "single_loop_synthesize_2d",
    "single_loop_analyze_valid",
]

_PARITIES = ("e", "o")
_OFFSET = {"e": 0, "o": 1}


def _axis_slice(arr: np.ndarray, a: int, b: int, axis: int) -> np.ndarray:
    return arr[a:b] if axis == 0 else arr[:, a:b]


def _circ_step_2d(
    target: np.ndarray, source: np.ndarray, step: LiftingStep, sign: float, axis: int
) -> None:
    """``target[n] += sign * sum_j c[j] * source[(n + dmin + j) mod N]``
    along ``axis``, splitting each tap into its direct and wrapped slice
    (no periodic-extension copy of the lane)."""
    n = source.shape[axis]
    lo = step.dmin
    hi = lo + len(step.coeffs) - 1
    if max(0, -lo) > n or max(0, hi) > n:
        raise ConfigurationError(
            f"axis of {n} lane samples too short for a lifting step reaching "
            f"[{lo}, {hi}] (would wrap more than once)"
        )
    for j, c in enumerate(step.coeffs):
        k = (lo + j) % n
        sc = sign * c
        if k == 0:
            target += sc * source
        else:
            head = _axis_slice(target, 0, n - k, axis)
            head += sc * _axis_slice(source, k, n, axis)
            tail = _axis_slice(target, n - k, n, axis)
            tail += sc * _axis_slice(source, 0, k, axis)


def _circ_shift_2d(arr: np.ndarray, k: int, axis: int) -> np.ndarray:
    """Left-rotate ``axis`` by ``k`` (``out[n] = arr[(n + k) mod N]``)."""
    n = arr.shape[axis]
    k %= n
    if k == 0:
        return arr
    return np.concatenate(
        [_axis_slice(arr, k, n, axis), _axis_slice(arr, 0, k, axis)], axis=axis
    )


def _valid_step_2d(target, source, step, t_valid, s_valid, sign, axis):
    """Axis-generic :func:`repro.wavelet.lifting._valid_step`: apply the
    step where source samples exist along ``axis`` and return the
    target's new valid interval on that axis."""
    n_target = target.shape[axis]
    n_source = source.shape[axis]
    lo = step.dmin
    hi = lo + len(step.coeffs) - 1
    a = max(0, -lo)
    b = min(n_target, n_source - hi)
    if b > a:
        acc = _axis_slice(target, a, b, axis)
        for j, c in enumerate(step.coeffs):
            s0 = a + lo + j
            acc += (sign * c) * _axis_slice(source, s0, s0 + (b - a), axis)
    return (max(t_valid[0], s_valid[0] - lo, a), min(t_valid[1], s_valid[1] - hi, b))


def _split_quads(image: np.ndarray) -> dict:
    """Copy the four polyphase lanes out of an even-sided image."""
    return {
        (r, c): np.ascontiguousarray(image[_OFFSET[r] :: 2, _OFFSET[c] :: 2])
        for r in _PARITIES
        for c in _PARITIES
    }


def _band_specs(scheme: LiftingScheme):
    """(vertical, horizontal) (lane, scale, shift) triples in subband
    order ``ll, lh, hl, hh`` — ``lh`` is the vertically-highpassed band,
    matching the separable row-then-column convention."""
    low = (scheme.low_lane, scheme.low_scale, scheme.low_shift)
    high = (scheme.high_lane, scheme.high_scale, scheme.high_shift)
    return ((low, low), (high, low), (low, high), (high, high))


def _validate_even(rows: int, cols: int) -> None:
    if rows % 2 or cols % 2:
        raise ConfigurationError(
            f"image dimensions must be even for decimation, got {rows}x{cols}"
        )


def single_loop_analyze_2d(image: np.ndarray, scheme: LiftingScheme):
    """One periodized single-loop analysis sweep.

    Returns ``(ll, lh, hl, hh)`` quarter-size bands equal (to float
    rounding) to the separable lifting level, hence to convolution
    within the scheme's verified tolerance.
    """
    image = np.asarray(image, dtype=np.float64)
    rows, cols = image.shape
    _validate_even(rows, cols)
    if min(rows, cols) < scheme.filter_length:
        raise ConfigurationError(
            f"image {rows}x{cols} is shorter than the filter "
            f"({scheme.filter_length} taps); periodized filtering would "
            "wrap more than once"
        )
    lanes = _split_quads(image)
    for step in scheme.steps:
        other = "o" if step.target == "e" else "e"
        for r in _PARITIES:
            _circ_step_2d(lanes[(r, step.target)], lanes[(r, other)], step, 1.0, 1)
        for c in _PARITIES:
            _circ_step_2d(lanes[(step.target, c)], lanes[(other, c)], step, 1.0, 0)
    bands = []
    for v, h in _band_specs(scheme):
        lane = lanes[(v[0], h[0])]
        shifted = _circ_shift_2d(_circ_shift_2d(lane, v[2], 0), h[2], 1)
        bands.append((v[1] * h[1]) * shifted)
    return tuple(bands)


def single_loop_synthesize_2d(ll, lh, hl, hh, scheme: LiftingScheme) -> np.ndarray:
    """Invert :func:`single_loop_analyze_2d`: unscale/unshift the four
    lanes, replay the interleaved steps backwards with the sign flipped,
    and re-interleave the quads."""
    bands = [np.asarray(b, dtype=np.float64) for b in (ll, lh, hl, hh)]
    shape = bands[0].shape
    for b in bands[1:]:
        if b.shape != shape:
            raise ConfigurationError(
                f"subband shapes differ: {[b.shape for b in bands]}"
            )
    lanes = {}
    for band, (v, h) in zip(bands, _band_specs(scheme)):
        lane = band * (1.0 / (v[1] * h[1]))
        lane = _circ_shift_2d(_circ_shift_2d(lane, -v[2], 0), -h[2], 1)
        lanes[(v[0], h[0])] = np.ascontiguousarray(lane)
    for step in reversed(scheme.steps):
        other = "o" if step.target == "e" else "e"
        for c in _PARITIES:
            _circ_step_2d(lanes[(step.target, c)], lanes[(other, c)], step, -1.0, 0)
        for r in _PARITIES:
            _circ_step_2d(lanes[(r, step.target)], lanes[(r, other)], step, -1.0, 1)
    out = np.empty((2 * shape[0], 2 * shape[1]), dtype=np.float64)
    for r in _PARITIES:
        for c in _PARITIES:
            out[_OFFSET[r] :: 2, _OFFSET[c] :: 2] = lanes[(r, c)]
    return out


def single_loop_analyze_valid(
    ext: np.ndarray,
    scheme: LiftingScheme,
    out_rows: int,
    out_cols: int,
    lead_rows: int,
    lead_cols: int = 0,
    *,
    periodic_cols: bool = False,
):
    """Valid-mode single-loop sweep over a guard-extended tile.

    ``ext`` is the owned tile extended with neighbor guards: the first
    ``lead_rows`` rows (even) come from the north neighbor, the row tail
    from the south; with ``periodic_cols=False`` the first ``lead_cols``
    columns (even) come from the west and the column tail from the east,
    while ``periodic_cols=True`` treats the column axis as fully owned
    and periodized (the striped decomposition).  Returns
    ``(ll, lh, hl, hh)`` of ``out_rows x out_cols`` samples aligned with
    the owned tile — output ``(i, j)`` corresponds to input offset
    ``(2i, 2j)`` past the guards.  Raises :class:`ConfigurationError`
    when the guards are too shallow
    (:meth:`repro.wavelet.plan.KernelPlan.analysis_guard_depths` gives
    sufficient depths — the sweep's per-axis validity erosion is exactly
    the separable lifting pass's).
    """
    ext = np.asarray(ext, dtype=np.float64)
    if ext.ndim != 2:
        raise ConfigurationError(f"expected a 2-D tile, got shape {ext.shape}")
    if out_rows < 0 or out_cols < 0:
        raise ConfigurationError(
            f"output sizes must be >= 0, got {out_rows}x{out_cols}"
        )
    if lead_rows < 0 or lead_rows % 2 or lead_cols < 0 or lead_cols % 2:
        raise ConfigurationError(
            f"leads must be even and >= 0, got ({lead_rows}, {lead_cols})"
        )
    rows, cols = ext.shape
    _validate_even(rows, cols)
    lanes = _split_quads(ext)
    row_valid = {key: (0, lane.shape[0]) for key, lane in lanes.items()}
    col_valid = {key: (0, lane.shape[1]) for key, lane in lanes.items()}
    for step in scheme.steps:
        other = "o" if step.target == "e" else "e"
        for r in _PARITIES:
            t, s = (r, step.target), (r, other)
            if periodic_cols:
                _circ_step_2d(lanes[t], lanes[s], step, 1.0, 1)
            else:
                col_valid[t] = _valid_step_2d(
                    lanes[t], lanes[s], step, col_valid[t], col_valid[s], 1.0, 1
                )
            # Rows where the source lane is stale poison the target rows.
            row_valid[t] = (
                max(row_valid[t][0], row_valid[s][0]),
                min(row_valid[t][1], row_valid[s][1]),
            )
        for c in _PARITIES:
            t, s = (step.target, c), (other, c)
            row_valid[t] = _valid_step_2d(
                lanes[t], lanes[s], step, row_valid[t], row_valid[s], 1.0, 0
            )
            col_valid[t] = (
                max(col_valid[t][0], col_valid[s][0]),
                min(col_valid[t][1], col_valid[s][1]),
            )
    bands = []
    for v, h in _band_specs(scheme):
        key = (v[0], h[0])
        lane = lanes[key]
        r0 = lead_rows // 2 + v[2]
        r_lo, r_hi = row_valid[key]
        if r0 < r_lo or r0 + out_rows > r_hi:
            raise ConfigurationError(
                f"insufficient row guard for the single-loop sweep: need "
                f"lane[{r0}:{r0 + out_rows}] valid, have [{r_lo}:{r_hi}) "
                "(see KernelPlan.analysis_guard_depths)"
            )
        if periodic_cols:
            if out_cols != lane.shape[1]:
                raise ConfigurationError(
                    f"periodic columns own the whole axis: expected "
                    f"out_cols == {lane.shape[1]}, got {out_cols}"
                )
            seg = _circ_shift_2d(lane[r0 : r0 + out_rows], h[2], 1)
        else:
            c0 = lead_cols // 2 + h[2]
            c_lo, c_hi = col_valid[key]
            if c0 < c_lo or c0 + out_cols > c_hi:
                raise ConfigurationError(
                    f"insufficient column guard for the single-loop sweep: "
                    f"need lane[{c0}:{c0 + out_cols}] valid, have "
                    f"[{c_lo}:{c_hi}) (see KernelPlan.analysis_guard_depths)"
                )
            seg = lane[r0 : r0 + out_rows, c0 : c0 + out_cols]
        bands.append((v[1] * h[1]) * seg)
    return tuple(bands)
