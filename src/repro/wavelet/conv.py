"""Periodized filtering primitives for the Mallat transform.

The decomposition treats each image axis as circular (periodized), which is
the convention that keeps every level's subbands exactly half the size of
their parent and makes the orthonormal transform perfectly invertible.

Two primitives cover both directions of the transform:

* :func:`analyze_axis` — correlate with a filter and decimate by two
  (steps 1+2 / 3+4 of the paper's algorithm description).
* :func:`synthesize_axis` — upsample by two and circularly convolve
  (the reconstruction mirror, Figure 2 of the paper).

Both are vectorized over every other axis: the filter loop runs only over
the (2-8) taps, so the inner work is pure NumPy slicing.  All periodized
loops use a single periodic extension of the input and strided windows
into it — never per-tap ``np.roll``, which would allocate a fresh
full-size array per tap.  The windowed sums visit the same addends in the
same order as the rolled formulation, so results are bit-identical.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "analyze_axis",
    "analyze_axis_valid",
    "synthesize_axis",
    "synthesize_axis_valid",
    "periodic_correlate",
    "periodic_convolve",
]


def _as_f64(arr) -> np.ndarray:
    """Return ``arr`` as float64 without re-dispatching through
    ``np.asarray`` when it already is one (the pyramid calls these
    primitives once per level on arrays that are float64 after level 0)."""
    if type(arr) is np.ndarray and arr.dtype == np.float64:
        return arr
    return np.asarray(arr, dtype=np.float64)


def _validate_axis_length(n: int, taps: int) -> None:
    if n % 2 != 0:
        raise ConfigurationError(f"axis length must be even for decimation, got {n}")
    if n < taps:
        raise ConfigurationError(
            f"axis length {n} is shorter than the filter ({taps} taps); "
            "periodized filtering would wrap more than once"
        )


def _prepare_out(out, axis: int, shape: tuple) -> np.ndarray:
    """Validate a preallocated output buffer and return it as a zeroed
    view with the work axis last (accumulation happens in place, so the
    caller's buffer receives the result)."""
    if type(out) is not np.ndarray or out.dtype != np.float64:
        raise ConfigurationError("out= must be a float64 ndarray")
    moved = np.moveaxis(out, axis, -1)
    if moved.shape != shape:
        raise ConfigurationError(
            f"out= has shape {out.shape}, which does not match the result "
            f"(expected {shape} with the work axis moved last)"
        )
    moved[...] = 0.0
    return moved


def analyze_axis(
    data: np.ndarray, taps: np.ndarray, axis: int, out: np.ndarray | None = None
) -> np.ndarray:
    """Periodized correlation with ``taps`` followed by decimation by 2.

    Computes ``out[n] = sum_k taps[k] * data[(2n + k) mod N]`` along the
    given axis, halving that axis.

    Parameters
    ----------
    data:
        Input array; the target axis must have even length >= the tap count.
    taps:
        1-D filter coefficients.
    axis:
        Axis to filter and decimate.
    out:
        Optional preallocated float64 buffer of the result shape; reused
        as the accumulator (scratch reuse across pyramid levels).
    """
    taps = _as_f64(taps)
    data = _as_f64(data)
    moved = np.moveaxis(data, axis, -1)
    n = moved.shape[-1]
    m = taps.size
    _validate_axis_length(n, m)

    # Extend periodically by m-1 samples so windows never wrap mid-slice.
    extended = np.concatenate([moved, moved[..., : m - 1]], axis=-1)
    result_shape = moved.shape[:-1] + (n // 2,)
    if out is None:
        acc = np.zeros(result_shape, dtype=np.float64)
    else:
        acc = _prepare_out(out, axis, result_shape)
    for k in range(m):
        acc += taps[k] * extended[..., k : k + n : 2]
    return np.moveaxis(acc, -1, axis) if out is None else out


def analyze_axis_valid(
    data: np.ndarray, taps: np.ndarray, axis: int, out_len: int
) -> np.ndarray:
    """Decimating correlation without periodization (valid mode).

    Computes ``out[n] = sum_k taps[k] * data[2n + k]`` for ``n`` in
    ``[0, out_len)``.  This is the primitive the coarse-grain SPMD
    decomposition uses on a local stripe extended by its guard zone: the
    guard rows supply exactly the samples that periodization (or the
    neighbor) would, so stitching the per-rank outputs reproduces the
    sequential periodized transform bit-for-bit.
    """
    taps = _as_f64(taps)
    data = _as_f64(data)
    moved = np.moveaxis(data, axis, -1)
    n = moved.shape[-1]
    m = taps.size
    if out_len < 0:
        raise ConfigurationError(f"out_len must be >= 0, got {out_len}")
    needed = 2 * (out_len - 1) + m if out_len else 0
    if needed > n:
        raise ConfigurationError(
            f"valid-mode analysis needs {needed} input samples for "
            f"out_len={out_len} with {m} taps, got {n}"
        )
    out = np.zeros(moved.shape[:-1] + (out_len,), dtype=np.float64)
    for k in range(m):
        out += taps[k] * moved[..., k : k + 2 * out_len : 2]
    return np.moveaxis(out, -1, axis)


def synthesize_axis(
    data: np.ndarray, taps: np.ndarray, axis: int, out: np.ndarray | None = None
) -> np.ndarray:
    """Upsample by 2 then periodically convolve with ``taps`` (adjoint of
    :func:`analyze_axis`).

    Computes ``out[m] = sum_n data[n] * taps[(m - 2n) mod N]`` along the
    axis, doubling it.  Summing the low- and high-channel syntheses of an
    orthonormal bank reconstructs the original signal exactly.
    """
    taps = _as_f64(taps)
    data = _as_f64(data)
    moved = np.moveaxis(data, axis, -1)
    half = moved.shape[-1]
    n = half * 2
    m = taps.size
    _validate_axis_length(n, m)

    upsampled = np.zeros(moved.shape[:-1] + (n,), dtype=np.float64)
    upsampled[..., ::2] = moved
    # Window k of the extension equals roll(upsampled, k): extend the
    # front by the m-1 tail samples, then slide backwards from there.
    if m > 1:
        extended = np.concatenate([upsampled[..., n - (m - 1) :], upsampled], axis=-1)
    else:
        extended = upsampled
    if out is None:
        acc = np.zeros(moved.shape[:-1] + (n,), dtype=np.float64)
    else:
        acc = _prepare_out(out, axis, moved.shape[:-1] + (n,))
    for k in range(m):
        start = m - 1 - k
        acc += taps[k] * extended[..., start : start + n]
    return np.moveaxis(acc, -1, axis) if out is None else out


def synthesize_axis_valid(
    data: np.ndarray, taps: np.ndarray, axis: int, out_len: int, lead: int
) -> np.ndarray:
    """Upsampling synthesis without periodization (valid mode).

    ``data`` holds a contiguous run of subband samples whose first ``lead``
    entries are guard samples from the preceding (north) neighbor.  With
    ``u`` the 2x zero-stuffed upsampling of ``data``, computes

        ``out[j] = sum_k taps[k] * u[2*lead + j - k]``

    for ``j`` in ``[0, out_len)`` — i.e. the synthesis outputs aligned with
    the *owned* (non-guard) part of the stripe.  This is the reconstruction
    counterpart of :func:`analyze_axis_valid`: guard samples supply what
    periodization (or the neighbor) would, so stitching per-rank outputs
    reproduces the sequential inverse transform exactly.

    Requires ``lead >= (len(taps) - 1) // 2`` and enough trailing samples
    (``out_len <= 2 * (data_len - lead)``).
    """
    taps = _as_f64(taps)
    data = _as_f64(data)
    moved = np.moveaxis(data, axis, -1)
    length = moved.shape[-1]
    m = taps.size
    if out_len < 0:
        raise ConfigurationError(f"out_len must be >= 0, got {out_len}")
    if lead < (m - 1) // 2:
        raise ConfigurationError(
            f"valid-mode synthesis needs a guard of at least {(m - 1) // 2} "
            f"samples for {m} taps, got {lead}"
        )
    if out_len > 2 * (length - lead):
        raise ConfigurationError(
            f"valid-mode synthesis has only {2 * (length - lead)} producible "
            f"outputs, asked for {out_len}"
        )
    upsampled = np.zeros(moved.shape[:-1] + (2 * length,), dtype=np.float64)
    upsampled[..., ::2] = moved
    out = np.zeros(moved.shape[:-1] + (out_len,), dtype=np.float64)
    base = 2 * lead
    for k in range(m):
        start = base - k
        out += taps[k] * upsampled[..., start : start + out_len]
    return np.moveaxis(out, -1, axis)


def periodic_correlate(data: np.ndarray, taps: np.ndarray, axis: int = -1) -> np.ndarray:
    """Full-rate periodized correlation (no decimation).

    ``out[n] = sum_k taps[k] * data[(n + k) mod N]``.  Used by the SIMD
    systolic algorithm, which filters at full rate and decimates as a
    separate routing step.
    """
    taps = _as_f64(taps)
    data = _as_f64(data)
    moved = np.moveaxis(data, axis, -1)
    n = moved.shape[-1]
    m = taps.size
    if n < m:
        raise ConfigurationError(
            f"axis length {n} is shorter than the filter ({m} taps)"
        )
    if m > 1:
        extended = np.concatenate([moved, moved[..., : m - 1]], axis=-1)
    else:
        extended = moved
    out = np.zeros_like(moved)
    for k in range(m):
        out += taps[k] * extended[..., k : k + n]
    return np.moveaxis(out, -1, axis)


def periodic_convolve(data: np.ndarray, taps: np.ndarray, axis: int = -1) -> np.ndarray:
    """Full-rate periodized convolution ``out[n] = sum_k taps[k] * data[(n - k) mod N]``."""
    taps = _as_f64(taps)
    data = _as_f64(data)
    moved = np.moveaxis(data, axis, -1)
    n = moved.shape[-1]
    m = taps.size
    if n < m:
        raise ConfigurationError(
            f"axis length {n} is shorter than the filter ({m} taps)"
        )
    if m > 1:
        extended = np.concatenate([moved[..., n - (m - 1) :], moved], axis=-1)
    else:
        extended = moved
    out = np.zeros_like(moved)
    for k in range(m):
        start = m - 1 - k
        out += taps[k] * extended[..., start : start + n]
    return np.moveaxis(out, -1, axis)
