"""Orthonormal wavelet filter banks.

Mallat's multi-resolution decomposition is driven by a low-pass (scaling)
filter ``L`` and its quadrature-mirror high-pass companion ``H``.  The paper
runs the 2-D decomposition with filters of length 8, 4, and 2; we provide
the standard Daubechies family at those lengths (length 2 being Haar),
constructed to the orthonormality conventions that give perfect
reconstruction with the periodized transform in :mod:`repro.wavelet.conv`.

The quadrature-mirror relation used throughout is

    ``h[k] = (-1)^k * l[m - 1 - k]``

which guarantees ``sum(h) == 0`` and orthogonality of the two channels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "FilterBank",
    "quadrature_mirror",
    "haar_filter",
    "daubechies_filter",
    "filter_bank_for_length",
    "SUPPORTED_LENGTHS",
]

# Daubechies scaling (low-pass) coefficients, normalized to sum to sqrt(2).
# Values are the canonical minimum-phase ("extremal phase") solutions.
_SQRT2 = float(np.sqrt(2.0))
_SQRT3 = float(np.sqrt(3.0))

_DB1 = np.array([1.0, 1.0]) / _SQRT2

_DB2 = np.array(
    [1.0 + _SQRT3, 3.0 + _SQRT3, 3.0 - _SQRT3, 1.0 - _SQRT3]
) / (4.0 * _SQRT2)

_DB4 = np.array(
    [
        0.32580342805130,
        1.01094571509183,
        0.89220013824676,
        -0.03957502623564,
        -0.26450716736904,
        0.04361630047418,
        0.04650360107098,
        -0.01498698933036,
    ]
) / _SQRT2

_SCALING_BY_LENGTH = {2: _DB1, 4: _DB2, 8: _DB4}

# Lengths with hardcoded (paper-era) coefficients; other even lengths are
# derived on demand by spectral factorization (see _daubechies_scaling).
SUPPORTED_LENGTHS = tuple(sorted(_SCALING_BY_LENGTH))


def _daubechies_scaling(order: int) -> np.ndarray:
    """Compute the order-``p`` Daubechies minimal-phase scaling filter
    (2p taps) by spectral factorization.

    Standard construction: the halfband polynomial
    ``P(y) = sum_k C(p-1+k, k) y^k`` is factored through the roots of its
    ``z``-domain counterpart; keeping the roots inside the unit circle
    (plus the ``p``-fold zero at ``z = -1``) yields the extremal-phase
    filter, normalized to sum to ``sqrt(2)``.
    """
    if order < 1:
        raise ConfigurationError(f"Daubechies order must be >= 1, got {order}")
    if order == 1:
        return _DB1.copy()
    from math import comb

    # P(y) coefficients, highest degree first for numpy polynomials.
    p_coeffs = [comb(order - 1 + k, k) for k in range(order)][::-1]
    # Substitute y = (1 - cos w)/2 = (2 - z - 1/z)/4 -> polynomial in z of
    # degree 2(p-1): Q(z) = z^{p-1} P((2 - z - z^{-1})/4).
    q = np.zeros(2 * order - 1)
    base = np.array([-0.25, 0.5, -0.25])  # (2 - z - 1/z)/4 * z -> poly in z
    for k, coeff in enumerate(p_coeffs[::-1]):
        term = np.array([1.0])
        for _ in range(k):
            term = np.convolve(term, base)
        padded = np.zeros(2 * order - 1)
        offset = (len(q) - len(term)) // 2
        padded[offset : offset + len(term)] = term
        q += coeff * padded
    roots = np.roots(q)
    # Keep roots strictly inside the unit circle (minimal phase).
    inside = roots[np.abs(roots) < 1.0]
    # Build h(z) = (1+z)^p * prod (z - r) over inside roots.
    h = np.array([1.0])
    for _ in range(order):
        h = np.convolve(h, [1.0, 1.0])
    for root in inside:
        h = np.convolve(h, [1.0, -root])
    h = np.real(h)
    return h * (np.sqrt(2.0) / h.sum())


def quadrature_mirror(lowpass: np.ndarray) -> np.ndarray:
    """Return the high-pass quadrature mirror of a low-pass filter.

    Uses ``h[k] = (-1)^k l[m-1-k]``; for an orthonormal scaling filter the
    result is the matching wavelet filter.
    """
    lowpass = np.asarray(lowpass, dtype=np.float64)
    signs = np.where(np.arange(lowpass.size) % 2 == 0, 1.0, -1.0)
    return signs * lowpass[::-1]


@dataclass(frozen=True)
class FilterBank:
    """A matched low-pass/high-pass analysis pair.

    Attributes
    ----------
    lowpass:
        Scaling filter ``L`` (sums to ``sqrt(2)`` for orthonormal banks).
    highpass:
        Wavelet filter ``H`` (sums to zero).
    name:
        Human-readable identifier, e.g. ``"daub8"``.
    """

    lowpass: np.ndarray
    highpass: np.ndarray
    name: str = "custom"

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "lowpass", np.ascontiguousarray(self.lowpass, dtype=np.float64)
        )
        object.__setattr__(
            self, "highpass", np.ascontiguousarray(self.highpass, dtype=np.float64)
        )
        if self.lowpass.ndim != 1 or self.highpass.ndim != 1:
            raise ConfigurationError("filters must be 1-D")
        if self.lowpass.size != self.highpass.size:
            raise ConfigurationError(
                f"lowpass length {self.lowpass.size} != highpass length "
                f"{self.highpass.size}"
            )
        if self.lowpass.size < 2 or self.lowpass.size % 2 != 0:
            raise ConfigurationError(
                f"filter length must be even and >= 2, got {self.lowpass.size}"
            )

    @property
    def length(self) -> int:
        """Number of taps."""
        return int(self.lowpass.size)

    def is_orthonormal(self, tol: float = 1e-10) -> bool:
        """Check the orthonormality conditions for perfect reconstruction.

        Verifies unit norm, even-shift self-orthogonality, and cross-channel
        orthogonality of the pair.
        """
        m = self.length
        for filt in (self.lowpass, self.highpass):
            if abs(filt @ filt - 1.0) > tol:
                return False
            for shift in range(2, m, 2):
                if abs(filt[shift:] @ filt[:-shift]) > tol:
                    return False
        for shift in range(0, m, 2):
            a = self.lowpass[shift:] if shift else self.lowpass
            b = self.highpass[: m - shift] if shift else self.highpass
            if abs(a @ b) > tol:
                return False
        return True


def haar_filter() -> FilterBank:
    """Length-2 Haar bank (the paper's "filter size 2")."""
    return FilterBank(_DB1, quadrature_mirror(_DB1), name="haar")


def daubechies_filter(length: int) -> FilterBank:
    """Daubechies extremal-phase bank of the given even tap count.

    Lengths 2, 4, and 8 — the paper's experimental sweep (8 taps /
    1 level, 4 taps / 2 levels, 2 taps / 4 levels) — use the classic
    tabulated coefficients; any other even length is derived by spectral
    factorization.  Numerical conditioning of the factorization limits
    practical lengths to 28 taps.
    """
    if length < 2 or length % 2 != 0:
        raise ConfigurationError(
            f"Daubechies length must be even and >= 2, got {length}"
        )
    if length > 28:
        raise ConfigurationError(
            f"Daubechies length {length} exceeds the numerically stable "
            "factorization range (<= 28 taps)"
        )
    low = _SCALING_BY_LENGTH.get(length)
    if low is None:
        low = _daubechies_scaling(length // 2)
    return FilterBank(low, quadrature_mirror(low), name=f"daub{length}")


def filter_bank_for_length(length: int) -> FilterBank:
    """Convenience dispatcher from tap count to the paper's filter banks."""
    if length == 2:
        return haar_filter()
    return daubechies_filter(length)
