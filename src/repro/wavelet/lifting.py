"""Lifting-scheme factorization of the orthonormal filter banks.

Daubechies & Sweldens showed that any FIR wavelet filter bank factors
into a sequence of elementary *lifting steps* — alternately updating the
even and odd polyphase lanes with short predictions of each other —
followed by a diagonal scaling.  The factored transform performs roughly
half the multiply-adds of direct convolution and works in place on the
two lanes, which is why it is the fast path behind `kernel="lifting"`
and `kernel="fused"` (see :mod:`repro.wavelet.kernels`).

The factorization is computed numerically with the Euclidean algorithm
on Laurent polynomials over the bank's polyphase matrix

    ``M(t) = [[Le, Lo], [He, Ho]]``,   ``[A; D] = M(t) [Xe; Xo]``

where ``Le(t) = sum_j l[2j] t^j`` etc. (advance variable ``t``, matching
the ``a[n] = sum_k l[k] x[2n+k]`` convention of :mod:`repro.wavelet.conv`).
Column operations peel off lifting steps until the top row is a monomial;
the leftover diagonal (or anti-diagonal) supplies the two scale/shift
pairs.  Every factored scheme is verified against the convolution
primitives on a fixed random vector before it is cached; the observed
error is recorded on the scheme (``verify_error``) and documented bounds
are enforced (:data:`VERIFY_TOLERANCE`).

Periodized application uses a single periodic extension per step (no
``np.roll``); valid-mode application tracks the exact interval of valid
lane samples through every step and raises when the caller's guard
margins are insufficient — the SPMD programs size their guard exchanges
from :meth:`LiftingScheme.analysis_margins` /
:meth:`LiftingScheme.synthesis_margins`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.errors import ConfigurationError
from repro.wavelet.filters import FilterBank

__all__ = [
    "LiftingStep",
    "LiftingScheme",
    "lifting_scheme",
    "lifting_analyze_axis",
    "lifting_synthesize_axis",
    "lifting_analyze_axis_valid",
    "lifting_synthesize_axis_valid",
    "VERIFY_TOLERANCE",
]

# Coefficients at or below this magnitude are treated as exact zeros while
# factoring (spectral-factorization banks carry ~1e-12 noise).
_CHOP = 1e-10

# A factored scheme must reproduce the convolution analysis of a fixed
# random vector to this max-abs error, else lifting_scheme() refuses it.
# Haar/D4 factor to ~1e-15; D8 to ~2e-12; the longest supported spectral
# factorizations stay under ~1e-9.
VERIFY_TOLERANCE = 5e-8

_SCHEME_CACHE: dict = {}


# --------------------------------------------------------------------------
# Laurent polynomials (internal to the factorization)
# --------------------------------------------------------------------------


class _Laurent:
    """Dense Laurent polynomial ``sum_i c[i] t^(dmin+i)`` with chopping."""

    __slots__ = ("c", "dmin")

    def __init__(self, coeffs, dmin: int) -> None:
        c = np.asarray(coeffs, dtype=np.float64)
        nz = np.nonzero(np.abs(c) > _CHOP)[0]
        if nz.size == 0:
            self.c = np.zeros(0)
            self.dmin = 0
        else:
            self.c = c[nz[0] : nz[-1] + 1].copy()
            self.dmin = int(dmin) + int(nz[0])

    @property
    def zero(self) -> bool:
        return self.c.size == 0

    @property
    def width(self) -> int:
        return max(0, self.c.size - 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Laurent({list(np.round(self.c, 6))}, t^{self.dmin})"

    def sub(self, other: "_Laurent") -> "_Laurent":
        if other.zero:
            return _Laurent(self.c, self.dmin)
        if self.zero:
            return _Laurent(-other.c, other.dmin)
        lo = min(self.dmin, other.dmin)
        hi = max(self.dmin + self.c.size, other.dmin + other.c.size)
        out = np.zeros(hi - lo)
        out[self.dmin - lo : self.dmin - lo + self.c.size] += self.c
        out[other.dmin - lo : other.dmin - lo + other.c.size] -= other.c
        return _Laurent(out, lo)

    def mul(self, other: "_Laurent") -> "_Laurent":
        if self.zero or other.zero:
            return _Laurent([], 0)
        return _Laurent(np.convolve(self.c, other.c), self.dmin + other.dmin)


def _divmod_top(a: _Laurent, b: _Laurent):
    """Division cancelling the highest-order terms first."""
    ac = a.c.copy()
    bc = b.c
    qlen = ac.size - bc.size + 1
    if qlen <= 0:
        return _Laurent([], 0), _Laurent(a.c, a.dmin)
    q = np.zeros(qlen)
    for i in range(qlen - 1, -1, -1):
        q[i] = ac[i + bc.size - 1] / bc[-1]
        ac[i : i + bc.size] -= q[i] * bc
    return _Laurent(q, a.dmin - b.dmin), _Laurent(ac, a.dmin)


def _divmod_bottom(a: _Laurent, b: _Laurent):
    """Division cancelling the lowest-order terms (mirror via reversal)."""
    ar = _Laurent(a.c[::-1], -(a.dmin + a.c.size - 1))
    br = _Laurent(b.c[::-1], -(b.dmin + b.c.size - 1))
    q, r = _divmod_top(ar, br)
    qf = _Laurent(q.c[::-1], -(q.dmin + q.c.size - 1)) if not q.zero else _Laurent([], 0)
    rf = _Laurent(r.c[::-1], -(r.dmin + r.c.size - 1)) if not r.zero else _Laurent([], 0)
    return qf, rf


def _laurent_divmod(a: _Laurent, b: _Laurent):
    """Laurent division is not unique; try both pivots, keep the division
    whose remainder is narrower (tie-break on remainder magnitude)."""
    qt, rt = _divmod_top(a, b)
    qb, rb = _divmod_bottom(a, b)
    keyt = (rt.width if not rt.zero else -1, np.abs(rt.c).max() if not rt.zero else 0.0)
    keyb = (rb.width if not rb.zero else -1, np.abs(rb.c).max() if not rb.zero else 0.0)
    return (qt, rt) if keyt <= keyb else (qb, rb)


# --------------------------------------------------------------------------
# Scheme dataclasses
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class LiftingStep:
    """One elementary lifting step.

    Applied during analysis as

        ``lane[target][n] += sum_j coeffs[j] * lane[other][n + dmin + j]``

    where ``target`` is ``"e"`` (even lane updated from odd) or ``"o"``
    (odd lane updated from even); synthesis applies the same step with the
    sign flipped, in reverse order.
    """

    target: str
    coeffs: tuple
    dmin: int

    def __post_init__(self) -> None:
        if self.target not in ("e", "o"):
            raise ConfigurationError(f"lifting target must be 'e'|'o', got {self.target!r}")
        if not self.coeffs:
            raise ConfigurationError("lifting step must have at least one tap")

    @property
    def taps(self) -> int:
        """Number of filter taps in this step."""
        return len(self.coeffs)


@dataclass(frozen=True)
class LiftingScheme:
    """A filter bank factored into lifting steps plus output scaling.

    Analysis: split into even/odd lanes, run ``steps`` in order, then

        ``a[n] = low_scale  * lane[low_lane][n + low_shift]``
        ``d[n] = high_scale * lane[high_lane][n + high_shift]``

    (``low_lane``/``high_lane`` are ``"e"``/``"o"``; they are swapped
    relative to the usual convention when the Euclidean reduction ends on
    an anti-diagonal matrix.)  Synthesis inverts the scaling and replays
    the steps backwards with negated coefficients.
    """

    filter_name: str
    filter_length: int
    steps: tuple
    low_lane: str
    low_scale: float
    low_shift: int
    high_lane: str
    high_scale: float
    high_shift: int
    verify_error: float = 0.0

    @property
    def step_taps(self) -> tuple:
        """Tap count per lifting step (the cost model's input)."""
        return tuple(step.taps for step in self.steps)

    @property
    def total_taps(self) -> int:
        """Total taps across all lifting steps."""
        return sum(self.step_taps)

    @cached_property
    def analysis_margins(self) -> tuple:
        """``(front, back)`` guard samples (input grid, front is even)
        required around an owned segment for valid-mode analysis."""
        return _probe_analysis_margins(self)

    @cached_property
    def synthesis_margins(self) -> tuple:
        """``(front, back)`` guard samples (subband grid) required around
        owned subband segments for valid-mode synthesis."""
        return _probe_synthesis_margins(self)


# --------------------------------------------------------------------------
# Factorization
# --------------------------------------------------------------------------


def _factor(bank: FilterBank) -> LiftingScheme:
    lowpass, highpass = bank.lowpass, bank.highpass
    M = [
        [_Laurent(lowpass[0::2], 0), _Laurent(lowpass[1::2], 0)],
        [_Laurent(highpass[0::2], 0), _Laurent(highpass[1::2], 0)],
    ]
    ops: list = []

    def col1_minus(q: _Laurent) -> None:
        # column op: col1 -= q * col2  <=>  execution step xo += q * xe
        M[0][0] = M[0][0].sub(q.mul(M[0][1]))
        M[1][0] = M[1][0].sub(q.mul(M[1][1]))
        ops.append(("o", q))

    def col2_minus(q: _Laurent) -> None:
        # column op: col2 -= q * col1  <=>  execution step xe += q * xo
        M[0][1] = M[0][1].sub(q.mul(M[0][0]))
        M[1][1] = M[1][1].sub(q.mul(M[1][0]))
        ops.append(("e", q))

    swapped = False
    for _ in range(200):
        Le, Lo = M[0]
        if Lo.zero and not Le.zero and Le.width == 0:
            break
        if Le.zero and not Lo.zero and Lo.width == 0:
            swapped = True
            break
        if Le.zero and Lo.zero:
            raise ConfigurationError(
                f"degenerate polyphase matrix for bank {bank.name!r}"
            )
        # Reduce the wider top-row entry with the narrower one.  The strict
        # `>` matters: on ties (e.g. two monomials) we must reduce col2, or
        # the reduction oscillates between (g, 0) and (0, g) forever.
        if Le.zero or (not Lo.zero and Le.width > Lo.width):
            q, _ = _laurent_divmod(Le, Lo)
            col1_minus(q)
        else:
            q, _ = _laurent_divmod(Lo, Le)
            col2_minus(q)
    else:
        raise ConfigurationError(
            f"lifting factorization did not terminate for bank {bank.name!r}"
        )

    if not swapped:
        g1 = M[0][0]
        He_, Ho_ = M[1]
        if Ho_.zero or Ho_.width != 0:
            raise ConfigurationError(
                f"bank {bank.name!r} is not invertible under lifting "
                f"(bottom-row residual is not a monomial)"
            )
        if not He_.zero:
            col1_minus(_Laurent(He_.c / Ho_.c[0], He_.dmin - Ho_.dmin))
        g2 = M[1][1]
        low_lane, high_lane = "e", "o"
    else:
        # Top row reduced to (0, g): the final matrix is anti-diagonal, so
        # the low output reads the odd lane and the high output the even.
        g1 = M[0][1]
        He_, Ho_ = M[1]
        if He_.zero or He_.width != 0:
            raise ConfigurationError(
                f"bank {bank.name!r} is not invertible under lifting "
                f"(bottom-row residual is not a monomial)"
            )
        if not Ho_.zero:
            col2_minus(_Laurent(Ho_.c / He_.c[0], Ho_.dmin - He_.dmin))
        g2 = M[1][0]
        low_lane, high_lane = "o", "e"

    if g1.zero or g1.width != 0 or g2.zero or g2.width != 0:
        raise ConfigurationError(
            f"lifting factorization of bank {bank.name!r} left non-monomial scales"
        )
    steps = tuple(
        LiftingStep(target=t, coeffs=tuple(float(c) for c in q.c), dmin=q.dmin)
        for t, q in ops
    )
    return LiftingScheme(
        filter_name=bank.name,
        filter_length=bank.length,
        steps=steps,
        low_lane=low_lane,
        low_scale=float(g1.c[0]),
        low_shift=g1.dmin,
        high_lane=high_lane,
        high_scale=float(g2.c[0]),
        high_shift=g2.dmin,
    )


def _verify(bank: FilterBank, scheme: LiftingScheme) -> float:
    """Max-abs error of the scheme vs the convolution primitives on a
    fixed random vector (analysis both subbands + round trip)."""
    from repro.wavelet.conv import analyze_axis

    n = max(64, 4 * bank.length)
    x = np.random.RandomState(12345).standard_normal(n)
    a_ref = analyze_axis(x, bank.lowpass, 0)
    d_ref = analyze_axis(x, bank.highpass, 0)
    a, d = lifting_analyze_axis(x, scheme, 0)
    back = lifting_synthesize_axis(a, d, scheme, 0)
    return float(
        max(
            np.abs(a - a_ref).max(),
            np.abs(d - d_ref).max(),
            np.abs(back - x).max(),
        )
    )


def lifting_scheme(bank: FilterBank) -> LiftingScheme:
    """Factor ``bank`` into a verified :class:`LiftingScheme` (cached).

    Raises
    ------
    ConfigurationError
        If the factorization fails or its error against the convolution
        primitives exceeds :data:`VERIFY_TOLERANCE`.
    """
    key = (bank.name, bank.lowpass.tobytes(), bank.highpass.tobytes())
    cached = _SCHEME_CACHE.get(key)
    if cached is not None:
        return cached
    scheme = _factor(bank)
    error = _verify(bank, scheme)
    if not error <= VERIFY_TOLERANCE:
        raise ConfigurationError(
            f"lifting factorization of bank {bank.name!r} verified at "
            f"max-abs error {error:.3e}, above tolerance {VERIFY_TOLERANCE:.0e}"
        )
    scheme = LiftingScheme(
        filter_name=scheme.filter_name,
        filter_length=scheme.filter_length,
        steps=scheme.steps,
        low_lane=scheme.low_lane,
        low_scale=scheme.low_scale,
        low_shift=scheme.low_shift,
        high_lane=scheme.high_lane,
        high_scale=scheme.high_scale,
        high_shift=scheme.high_shift,
        verify_error=error,
    )
    _SCHEME_CACHE[key] = scheme
    return scheme


# --------------------------------------------------------------------------
# Periodized application
# --------------------------------------------------------------------------


def _circular_step(target: np.ndarray, source: np.ndarray, step: LiftingStep, sign: float) -> None:
    """``target[n] += sign * sum_j c[j] * source[(n + dmin + j) mod N]``
    via one periodic extension of ``source`` and strided slices."""
    n = source.shape[-1]
    taps = len(step.coeffs)
    lo = step.dmin
    hi = step.dmin + taps - 1
    pre = max(0, -lo)
    post = max(0, hi)
    if pre > n or post > n:
        raise ConfigurationError(
            f"axis of {n} lane samples too short for a lifting step reaching "
            f"[{lo}, {hi}] (would wrap more than once)"
        )
    if pre or post:
        parts = []
        if pre:
            parts.append(source[..., n - pre :])
        parts.append(source)
        if post:
            parts.append(source[..., :post])
        extended = np.concatenate(parts, axis=-1)
    else:
        extended = source
    for j, c in enumerate(step.coeffs):
        offset = pre + lo + j
        target += (sign * c) * extended[..., offset : offset + n]


def _circular_shift(arr: np.ndarray, k: int) -> np.ndarray:
    """Left-rotate the last axis by ``k`` (``out[n] = arr[(n + k) mod N]``)."""
    n = arr.shape[-1]
    k %= n
    if k == 0:
        return arr
    return np.concatenate([arr[..., k:], arr[..., :k]], axis=-1)


def _split_lanes(moved: np.ndarray):
    xe = np.ascontiguousarray(moved[..., 0::2])
    xo = np.ascontiguousarray(moved[..., 1::2])
    return xe, xo


def lifting_analyze_axis(data: np.ndarray, scheme: LiftingScheme, axis: int):
    """Periodized lifting analysis along ``axis``.

    Returns ``(approx, detail)``, each with the axis halved; numerically
    equivalent to :func:`repro.wavelet.conv.analyze_axis` with the bank's
    lowpass/highpass taps (see :data:`VERIFY_TOLERANCE`).
    """
    data = np.asarray(data, dtype=np.float64)
    moved = np.moveaxis(data, axis, -1)
    n = moved.shape[-1]
    if n % 2 != 0:
        raise ConfigurationError(f"axis length must be even for decimation, got {n}")
    if n < scheme.filter_length:
        raise ConfigurationError(
            f"axis length {n} is shorter than the filter "
            f"({scheme.filter_length} taps); periodized filtering would "
            "wrap more than once"
        )
    xe, xo = _split_lanes(moved)
    lanes = {"e": xe, "o": xo}
    for step in scheme.steps:
        other = "o" if step.target == "e" else "e"
        _circular_step(lanes[step.target], lanes[other], step, 1.0)
    approx = scheme.low_scale * _circular_shift(lanes[scheme.low_lane], scheme.low_shift)
    detail = scheme.high_scale * _circular_shift(lanes[scheme.high_lane], scheme.high_shift)
    return np.moveaxis(approx, -1, axis), np.moveaxis(detail, -1, axis)


def lifting_synthesize_axis(
    approx: np.ndarray, detail: np.ndarray, scheme: LiftingScheme, axis: int
) -> np.ndarray:
    """Invert :func:`lifting_analyze_axis`: returns the doubled-axis signal
    (equals the low + high channel sum of
    :func:`repro.wavelet.conv.synthesize_axis`)."""
    approx = np.asarray(approx, dtype=np.float64)
    detail = np.asarray(detail, dtype=np.float64)
    if approx.shape != detail.shape:
        raise ConfigurationError(
            f"approx shape {approx.shape} does not match detail shape {detail.shape}"
        )
    a = np.moveaxis(approx, axis, -1)
    d = np.moveaxis(detail, axis, -1)
    lanes = {}
    lanes[scheme.low_lane] = _circular_shift(a * (1.0 / scheme.low_scale), -scheme.low_shift)
    lanes[scheme.high_lane] = _circular_shift(d * (1.0 / scheme.high_scale), -scheme.high_shift)
    for step in reversed(scheme.steps):
        other = "o" if step.target == "e" else "e"
        _circular_step(lanes[step.target], lanes[other], step, -1.0)
    out = np.empty(a.shape[:-1] + (2 * a.shape[-1],), dtype=np.float64)
    out[..., 0::2] = lanes["e"]
    out[..., 1::2] = lanes["o"]
    return np.moveaxis(out, -1, axis)


# --------------------------------------------------------------------------
# Valid-mode application (guard-zone SPMD / fused blocking)
# --------------------------------------------------------------------------


def _valid_step(target, source, step, t_valid, s_valid, sign):
    """Apply a lifting step where source samples exist; intersect validity.

    ``t_valid``/``s_valid`` are half-open index intervals of lane samples
    that are correct; returns the target's new valid interval.  Samples the
    step cannot compute (missing source neighbors) are left untouched and
    drop out of the valid interval.
    """
    n_target = target.shape[-1]
    n_source = source.shape[-1]
    lo = step.dmin
    hi = step.dmin + len(step.coeffs) - 1
    a = max(0, -lo)
    b = min(n_target, n_source - hi)
    if b > a:
        acc = target[..., a:b]
        for j, c in enumerate(step.coeffs):
            s0 = a + lo + j
            acc += (sign * c) * source[..., s0 : s0 + (b - a)]
    new_lo = max(t_valid[0], s_valid[0] - lo, a)
    new_hi = min(t_valid[1], s_valid[1] - hi, b)
    return (new_lo, new_hi)


def lifting_analyze_axis_valid(
    data: np.ndarray, scheme: LiftingScheme, axis: int, out_len: int, lead: int
):
    """Valid-mode (non-periodized) lifting analysis along ``axis``.

    ``data`` is an owned segment extended with guard samples: the first
    ``lead`` entries (``lead`` even) come from the preceding neighbor and
    the tail from the following one.  Returns ``(approx, detail)`` of
    ``out_len`` samples aligned with the owned segment — output ``n``
    corresponds to input offset ``2n`` past the guard.  Raises
    :class:`ConfigurationError` when the guards are too shallow
    (:meth:`LiftingScheme.analysis_margins` gives sufficient depths).
    """
    data = np.asarray(data, dtype=np.float64)
    if out_len < 0:
        raise ConfigurationError(f"out_len must be >= 0, got {out_len}")
    if lead < 0 or lead % 2 != 0:
        raise ConfigurationError(f"lead must be even and >= 0, got {lead}")
    moved = np.moveaxis(data, axis, -1)
    if moved.shape[-1] % 2 != 0:
        # An odd sample count would misalign the even/odd lanes; callers
        # extend with whole neighbor sample pairs.
        raise ConfigurationError(
            f"valid-mode lifting needs an even segment length, got {moved.shape[-1]}"
        )
    xe, xo = _split_lanes(moved)
    valid = {"e": (0, xe.shape[-1]), "o": (0, xo.shape[-1])}
    lanes = {"e": xe, "o": xo}
    for step in scheme.steps:
        other = "o" if step.target == "e" else "e"
        valid[step.target] = _valid_step(
            lanes[step.target], lanes[other], step, valid[step.target], valid[other], 1.0
        )
    outputs = []
    for lane, scale, shift in (
        (scheme.low_lane, scheme.low_scale, scheme.low_shift),
        (scheme.high_lane, scheme.high_scale, scheme.high_shift),
    ):
        start = lead // 2 + shift
        v_lo, v_hi = valid[lane]
        if start < v_lo or start + out_len > v_hi:
            raise ConfigurationError(
                f"insufficient guard for valid-mode lifting analysis: need "
                f"lane[{start}:{start + out_len}] valid, have [{v_lo}:{v_hi}) "
                f"(see LiftingScheme.analysis_margins)"
            )
        outputs.append(scale * lanes[lane][..., start : start + out_len])
    return (
        np.moveaxis(outputs[0], -1, axis),
        np.moveaxis(outputs[1], -1, axis),
    )


def lifting_synthesize_axis_valid(
    approx: np.ndarray,
    detail: np.ndarray,
    scheme: LiftingScheme,
    axis: int,
    out_len: int,
    lead: int,
) -> np.ndarray:
    """Valid-mode lifting synthesis along ``axis``.

    ``approx``/``detail`` are owned subband segments extended with ``lead``
    front guard samples (and any needed tail guards).  Returns ``out_len``
    interleaved outputs aligned with the owned subband start — output ``j``
    is signal sample ``2 * (segment_start + lead) + j`` of the sequential
    inverse.  Raises when guards are too shallow
    (:meth:`LiftingScheme.synthesis_margins`).
    """
    approx = np.asarray(approx, dtype=np.float64)
    detail = np.asarray(detail, dtype=np.float64)
    if approx.shape != detail.shape:
        raise ConfigurationError(
            f"approx shape {approx.shape} does not match detail shape {detail.shape}"
        )
    if out_len < 0:
        raise ConfigurationError(f"out_len must be >= 0, got {out_len}")
    if lead < 0:
        raise ConfigurationError(f"lead must be >= 0, got {lead}")
    a = np.moveaxis(approx, axis, -1)
    d = np.moveaxis(detail, axis, -1)
    n = a.shape[-1]
    lanes = {}
    valid = {}
    for (lane, scale, shift), segment in (
        ((scheme.low_lane, scheme.low_scale, scheme.low_shift), a),
        ((scheme.high_lane, scheme.high_scale, scheme.high_shift), d),
    ):
        # lane[i] = segment[i - shift] / scale where defined.
        arr = np.zeros_like(segment)
        if shift >= 0:
            arr[..., shift:] = segment[..., : n - shift] if shift else segment
            valid[lane] = (shift, n)
        else:
            arr[..., : n + shift] = segment[..., -shift:]
            valid[lane] = (0, n + shift)
        arr *= 1.0 / scale
        lanes[lane] = arr
    for step in reversed(scheme.steps):
        other = "o" if step.target == "e" else "e"
        valid[step.target] = _valid_step(
            lanes[step.target], lanes[other], step, valid[step.target], valid[other], -1.0
        )
    even_lo, even_hi = lead, lead + (out_len + 1) // 2
    odd_lo, odd_hi = lead, lead + out_len // 2
    if (
        even_lo < valid["e"][0]
        or even_hi > valid["e"][1]
        or odd_lo < valid["o"][0]
        or odd_hi > valid["o"][1]
    ):
        raise ConfigurationError(
            f"insufficient guard for valid-mode lifting synthesis: need "
            f"e[{even_lo}:{even_hi}) o[{odd_lo}:{odd_hi}), have "
            f"e{valid['e']} o{valid['o']} (see LiftingScheme.synthesis_margins)"
        )
    out = np.empty(a.shape[:-1] + (out_len,), dtype=np.float64)
    out[..., 0::2] = lanes["e"][..., even_lo:even_hi]
    out[..., 1::2] = lanes["o"][..., odd_lo:odd_hi]
    return np.moveaxis(out, -1, axis)


# --------------------------------------------------------------------------
# Margin probing
# --------------------------------------------------------------------------


def _probe_analysis_margins(scheme: LiftingScheme) -> tuple:
    limit = 4 * scheme.filter_length + 8
    for front in range(0, limit, 2):
        for back in range(0, limit):
            probe = np.zeros(front + 8 + back)
            try:
                lifting_analyze_axis_valid(probe, scheme, 0, 4, front)
            except ConfigurationError:
                continue
            return (front, back)
    raise ConfigurationError(
        f"could not determine analysis margins for scheme {scheme.filter_name!r}"
    )


def _probe_synthesis_margins(scheme: LiftingScheme) -> tuple:
    limit = 4 * scheme.filter_length + 8
    for front in range(0, limit):
        for back in range(0, limit):
            probe = np.zeros(front + 4 + back)
            try:
                lifting_synthesize_axis_valid(probe, probe, scheme, 0, 8, front)
            except ConfigurationError:
                continue
            return (front, back)
    raise ConfigurationError(
        f"could not determine synthesis margins for scheme {scheme.filter_name!r}"
    )
