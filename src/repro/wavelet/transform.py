"""Mallat multi-resolution wavelet decomposition and reconstruction.

Implements the exact sequence of steps the paper describes in Section 2:

    (1) high-pass and low-pass filtering of image *rows* at level k,
    (2) decimation by 2 of the columns  -> L_{k+1}, H_{k+1},
    (3) high-pass and low-pass filtering of image *columns*,
    (4) decimation by 2 of the rows     -> LL, LH, HL, HH,
    (5) recurse on LL until the desired level.

Subband naming follows "row-filter then column-filter": ``lh`` means low
pass along rows, high pass along columns.

The 1-D transform (:func:`dwt_1d` / :func:`idwt_1d`) is provided both for
signal work and because the 2-D separable transform is validated against
composing it axis by axis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.wavelet.conv import analyze_axis, synthesize_axis
from repro.wavelet.filters import FilterBank

__all__ = [
    "Subbands2D",
    "mallat_step_2d",
    "mallat_inverse_step_2d",
    "dwt_1d",
    "idwt_1d",
    "max_decomposition_levels",
]


@dataclass(frozen=True)
class Subbands2D:
    """One level of 2-D decomposition output.

    Attributes use the row-then-column filter naming: ``ll`` is the
    coarse approximation (renamed I_{k+1} by the paper), ``hl`` carries
    vertical edges (high along rows), ``lh`` horizontal edges, ``hh``
    diagonal detail.
    """

    ll: np.ndarray
    lh: np.ndarray
    hl: np.ndarray
    hh: np.ndarray

    @property
    def shape(self) -> tuple[int, int]:
        """Shape of each subband (all four match)."""
        return tuple(self.ll.shape)

    def detail_energy(self) -> float:
        """Sum of squares over the three detail subbands."""
        return float(
            (self.lh**2).sum() + (self.hl**2).sum() + (self.hh**2).sum()
        )

    def total_energy(self) -> float:
        """Sum of squares over all four subbands (equals input energy for
        orthonormal banks)."""
        return float((self.ll**2).sum()) + self.detail_energy()


def max_decomposition_levels(shape: tuple[int, int], filter_length: int) -> int:
    """Largest level count for which every intermediate axis stays even and
    no shorter than the filter."""
    levels = 0
    rows, cols = shape
    while (
        rows % 2 == 0
        and cols % 2 == 0
        and rows >= max(2, filter_length)
        and cols >= max(2, filter_length)
    ):
        levels += 1
        rows //= 2
        cols //= 2
    return levels


def mallat_step_2d(
    image: np.ndarray, bank: FilterBank, *, kernel: str = "conv"
) -> Subbands2D:
    """One level of separable 2-D decomposition (steps 1-4 of the paper).

    ``kernel`` selects the implementation (``"conv"``, ``"lifting"``,
    ``"fused"``/``"fused:N"``, or ``"single-loop"`` — see
    :mod:`repro.wavelet.kernels`); the default keeps the seed
    convolution path byte-for-byte.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ConfigurationError(f"expected a 2-D image, got ndim={image.ndim}")
    if kernel != "conv":
        from repro.wavelet.kernels import get_kernel

        return get_kernel(kernel).forward_step_2d(image, bank)

    # Steps 1-2: filter along rows (axis 1), decimating the column count.
    low_rows = analyze_axis(image, bank.lowpass, axis=1)
    high_rows = analyze_axis(image, bank.highpass, axis=1)

    # Steps 3-4: filter along columns (axis 0), decimating the row count.
    return Subbands2D(
        ll=analyze_axis(low_rows, bank.lowpass, axis=0),
        lh=analyze_axis(low_rows, bank.highpass, axis=0),
        hl=analyze_axis(high_rows, bank.lowpass, axis=0),
        hh=analyze_axis(high_rows, bank.highpass, axis=0),
    )


def mallat_inverse_step_2d(
    subbands: Subbands2D, bank: FilterBank, *, kernel: str = "conv"
) -> np.ndarray:
    """Invert one decomposition level (the paper's Figure 2 reverse process)."""
    if kernel != "conv":
        from repro.wavelet.kernels import get_kernel

        return get_kernel(kernel).inverse_step_2d(subbands, bank)
    low_rows = synthesize_axis(subbands.ll, bank.lowpass, axis=0) + synthesize_axis(
        subbands.lh, bank.highpass, axis=0
    )
    high_rows = synthesize_axis(subbands.hl, bank.lowpass, axis=0) + synthesize_axis(
        subbands.hh, bank.highpass, axis=0
    )
    return synthesize_axis(low_rows, bank.lowpass, axis=1) + synthesize_axis(
        high_rows, bank.highpass, axis=1
    )


def dwt_1d(
    signal: np.ndarray, bank: FilterBank, levels: int = 1, *, kernel: str = "conv"
) -> tuple[np.ndarray, list]:
    """Multi-level 1-D decomposition.

    Returns ``(approximation, details)`` where ``details[i]`` is the detail
    band of level ``i + 1`` (finest first).
    """
    if levels < 1:
        raise ConfigurationError(f"levels must be >= 1, got {levels}")
    signal = np.asarray(signal, dtype=np.float64)
    if signal.ndim != 1:
        raise ConfigurationError(f"expected a 1-D signal, got ndim={signal.ndim}")
    if kernel != "conv":
        from repro.wavelet.kernels import get_kernel

        impl = get_kernel(kernel)
        details = []
        approx = signal
        for _ in range(levels):
            approx, detail = impl.forward_1d(approx, bank)
            details.append(detail)
        return approx, details
    details: list[np.ndarray] = []
    approx = signal
    for _ in range(levels):
        detail = analyze_axis(approx, bank.highpass, axis=0)
        approx = analyze_axis(approx, bank.lowpass, axis=0)
        details.append(detail)
    return approx, details


def idwt_1d(
    approx: np.ndarray, details: list, bank: FilterBank, *, kernel: str = "conv"
) -> np.ndarray:
    """Invert :func:`dwt_1d` given the approximation and the detail list."""
    signal = np.asarray(approx, dtype=np.float64)
    if kernel != "conv":
        from repro.wavelet.kernels import get_kernel

        impl = get_kernel(kernel)
        for detail in reversed(details):
            if detail.shape != signal.shape:
                raise ConfigurationError(
                    f"detail shape {detail.shape} does not match running "
                    f"approximation shape {signal.shape}"
                )
            signal = impl.inverse_1d(signal, detail, bank)
        return signal
    for detail in reversed(details):
        if detail.shape != signal.shape:
            raise ConfigurationError(
                f"detail shape {detail.shape} does not match running "
                f"approximation shape {signal.shape}"
            )
        signal = synthesize_axis(signal, bank.lowpass, axis=0) + synthesize_axis(
            detail, bank.highpass, axis=0
        )
    return signal
