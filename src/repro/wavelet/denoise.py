"""Wavelet shrinkage denoising.

A standard application of the 1-D transform (Donoho-Johnstone soft
thresholding): decompose, shrink detail coefficients toward zero, and
reconstruct.  The noise level is estimated robustly from the finest
detail band's median absolute deviation, and the default threshold is
the universal ``sigma * sqrt(2 ln n)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.wavelet.filters import FilterBank, daubechies_filter
from repro.wavelet.transform import dwt_1d, idwt_1d, max_decomposition_levels

__all__ = ["soft_threshold", "estimate_noise_sigma", "denoise_1d", "denoise_2d"]


def soft_threshold(coefficients: np.ndarray, threshold: float) -> np.ndarray:
    """Shrink coefficients toward zero by ``threshold`` (soft rule)."""
    if threshold < 0:
        raise ConfigurationError(f"threshold must be >= 0, got {threshold}")
    coefficients = np.asarray(coefficients, dtype=np.float64)
    return np.sign(coefficients) * np.maximum(np.abs(coefficients) - threshold, 0.0)


def estimate_noise_sigma(finest_detail: np.ndarray) -> float:
    """Robust noise estimate: ``MAD / 0.6745`` of the finest detail band
    (detail coefficients of smooth signals are almost pure noise)."""
    finest_detail = np.asarray(finest_detail, dtype=np.float64)
    if finest_detail.size == 0:
        raise ConfigurationError("empty detail band")
    return float(np.median(np.abs(finest_detail)) / 0.6745)


def denoise_1d(
    signal: np.ndarray,
    *,
    bank: FilterBank | None = None,
    levels: int | None = None,
    threshold: float | None = None,
    kernel: str = "conv",
) -> np.ndarray:
    """Soft-threshold denoising of a 1-D signal.

    Parameters
    ----------
    signal:
        Input samples (length divisible by ``2**levels``).
    bank:
        Analysis bank (default daub8 — smoother than Haar for denoising).
    levels:
        Decomposition depth (default: down to >= 32 samples).
    threshold:
        Shrinkage amount; defaults to the universal threshold computed
        from the estimated noise level.
    kernel:
        Transform kernel (``"conv"``/``"lifting"``/``"fused"``/
        ``"single-loop"``; see :mod:`repro.wavelet.kernels`).
    """
    signal = np.asarray(signal, dtype=np.float64)
    if signal.ndim != 1:
        raise ConfigurationError(f"expected a 1-D signal, got ndim={signal.ndim}")
    bank = bank or daubechies_filter(8)
    allowed = max_decomposition_levels((signal.size, signal.size), bank.length)
    if levels is None:
        levels = 1
        size = signal.size
        while levels < allowed and size // 2 >= 32:
            levels += 1
            size //= 2
    if not 1 <= levels <= allowed:
        raise ConfigurationError(f"levels={levels} out of range (max {allowed})")

    approx, details = dwt_1d(signal, bank, levels, kernel=kernel)
    if threshold is None:
        sigma = estimate_noise_sigma(details[0])
        threshold = sigma * np.sqrt(2.0 * np.log(max(2, signal.size)))
    shrunk = [soft_threshold(d, threshold) for d in details]
    return idwt_1d(approx, shrunk, bank, kernel=kernel)


def denoise_2d(
    image: np.ndarray,
    *,
    bank: FilterBank | None = None,
    levels: int | None = None,
    threshold: float | None = None,
    kernel: str = "conv",
) -> np.ndarray:
    """Soft-threshold denoising of a 2-D image.

    The noise level is estimated from the finest diagonal (HH) band,
    which for natural imagery is nearly pure noise.  With no explicit
    ``threshold``, each detail band gets the adaptive BayesShrink
    threshold ``sigma^2 / sigma_band`` (the universal 1-D rule
    over-smooths images, where detail bands carry real structure); an
    explicit ``threshold`` is applied globally instead.
    """
    from repro.wavelet.pyramid import (
        DetailTriple,
        WaveletPyramid,
        mallat_decompose_2d,
        mallat_reconstruct_2d,
    )

    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ConfigurationError(f"expected a 2-D image, got ndim={image.ndim}")
    bank = bank or daubechies_filter(8)
    allowed = max_decomposition_levels(image.shape, bank.length)
    if levels is None:
        levels = max(1, min(3, allowed))
    if not 1 <= levels <= allowed:
        raise ConfigurationError(f"levels={levels} out of range (max {allowed})")

    pyramid = mallat_decompose_2d(image, bank, levels, kernel=kernel)
    if threshold is None:
        sigma = estimate_noise_sigma(pyramid.details[0].hh)

        def band_threshold(band: np.ndarray) -> float:
            signal_var = max(float(band.var()) - sigma**2, 0.0)
            if signal_var == 0.0:
                return float(np.abs(band).max())  # pure noise: kill the band
            return sigma**2 / np.sqrt(signal_var)

    else:

        def band_threshold(band: np.ndarray) -> float:
            return float(threshold)

    shrunk = tuple(
        DetailTriple(
            lh=soft_threshold(t.lh, band_threshold(t.lh)),
            hl=soft_threshold(t.hl, band_threshold(t.hl)),
            hh=soft_threshold(t.hh, band_threshold(t.hh)),
        )
        for t in pyramid.details
    )
    cleaned = WaveletPyramid(pyramid.approximation, shrunk, pyramid.filter_name)
    return mallat_reconstruct_2d(cleaned, bank, kernel=kernel)
