"""Kernel plans: the declarative half of the kernel stack.

A :class:`KernelPlan` captures *what* a wavelet kernel does, separated
along the axes the "Parallel Algorithm for the 2-D DWT" strategy split
calls out (Barina et al., PAPERS.md):

* **scheme** — the arithmetic: direct periodized convolution taps
  (``"conv"``) or a polyphase lifting factorization (``"lifting"``).
* **traversal** — how the image is walked: ``"separable"`` row pass then
  column pass, ``"strip-fused"`` row strips whose column pass runs while
  the strip is cache-hot, or ``"single-loop"`` — the monolithic sweep
  that interleaves vertical and horizontal lifting steps so each pixel
  is visited once per level.
* **boundary** — ``"periodized"`` circular extension (the sequential
  kernels) or ``"valid-margins"`` valid-mode interiors fed by
  guard-exchanged margins (what the SPMD programs run; the plan's
  :meth:`~KernelPlan.analysis_guard_depths` tells them how deep).
* **buffer** — what intermediate state the traversal materializes:
  full half-band intermediates, a bounded strip, or only the four
  polyphase lanes.

The executor half lives in :mod:`repro.wavelet.kernels`: each
``WaveletKernel`` subclass is a thin configuration of one plan.  The
plan also owns the per-pass :class:`~repro.wavelet.cost.OpCount` model —
:meth:`~KernelPlan.level_passes` returns one entry per charged pass, so
nothing outside this module assumes the row-then-column split.

Plans are parsed from registry specs: ``"fused"`` and ``"fused:16"``
both resolve here, the latter overriding the strip height.  Malformed
specs raise :class:`~repro.errors.ConfigurationError`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.wavelet.cost import (
    OpCount,
    filter_pass_cost,
    lifting_pass_cost,
    single_loop_sweep_cost,
    synthesis_pass_cost,
)
from repro.wavelet.filters import FilterBank

__all__ = [
    "KERNEL_NAMES",
    "SCHEMES",
    "TRAVERSALS",
    "BOUNDARIES",
    "BufferPolicy",
    "KernelPlan",
    "parse_kernel_spec",
]

#: Registry spellings, in registration order.  ``repro.wavelet.kernels``
#: re-exports this tuple; it lives here so the plan parser does not
#: import the executor module.
KERNEL_NAMES = ("conv", "lifting", "fused", "single-loop")

SCHEMES = ("conv", "lifting")
TRAVERSALS = ("separable", "strip-fused", "single-loop")
BOUNDARIES = ("periodized", "valid-margins")

_DEFAULT_BLOCK_ROWS = 32


@dataclass(frozen=True)
class BufferPolicy:
    """How much intermediate state a traversal materializes.

    ``kind`` is ``"full-intermediate"`` (separable passes keep whole
    half-band images alive), ``"strip"`` (the fused kernel bounds the
    live intermediate to ``block_rows`` output rows), or ``"lane"`` (the
    single-loop sweep keeps only the four polyphase lanes — no
    intermediate subband images at all)."""

    kind: str
    block_rows: int = 0

    def __post_init__(self):
        if self.kind not in ("full-intermediate", "strip", "lane"):
            raise ConfigurationError(f"unknown buffer policy kind {self.kind!r}")
        if self.kind == "strip" and self.block_rows < 1:
            raise ConfigurationError(
                f"strip buffer policy needs block_rows >= 1, got {self.block_rows}"
            )


@dataclass(frozen=True)
class KernelPlan:
    """Declarative description of one registered wavelet kernel."""

    name: str
    scheme: str
    traversal: str
    boundary: str
    buffer: BufferPolicy

    def __post_init__(self):
        if self.scheme not in SCHEMES:
            raise ConfigurationError(f"unknown scheme {self.scheme!r}")
        if self.traversal not in TRAVERSALS:
            raise ConfigurationError(f"unknown traversal {self.traversal!r}")
        if self.boundary not in BOUNDARIES:
            raise ConfigurationError(f"unknown boundary {self.boundary!r}")
        if self.scheme == "conv" and self.traversal != "separable":
            raise ConfigurationError(
                "conv arithmetic only supports the separable traversal"
            )

    # -- structural queries -------------------------------------------------

    @property
    def base(self) -> str:
        """The registry family name (``"fused:16"`` -> ``"fused"``)."""
        return self.name.split(":", 1)[0]

    def _step_taps(self, bank: FilterBank) -> tuple:
        from repro.wavelet.lifting import lifting_scheme

        return lifting_scheme(bank).step_taps

    def min_side(self, bank: FilterBank) -> int:
        """Smallest image side a 2-D analysis step accepts under this
        plan: periodized filtering may not wrap more than once, so both
        sides must reach the (effective) filter length."""
        if self.scheme == "conv":
            return bank.length
        from repro.wavelet.lifting import lifting_scheme

        return lifting_scheme(bank).filter_length

    def validate_step_2d(self, rows: int, cols: int, bank: FilterBank) -> None:
        """Uniform minimum-size check for one 2-D analysis step; every
        traversal enforces the same bound, and the error reports the
        actionable minimum."""
        if rows % 2 or cols % 2:
            raise ConfigurationError(
                f"image dimensions must be even for decimation, got {rows}x{cols}"
            )
        need = self.min_side(bank)
        if min(rows, cols) < need:
            raise ConfigurationError(
                f"image {rows}x{cols} is too small for the {self.name!r} kernel "
                f"with the {bank.length}-tap {bank.name} bank: both sides must "
                f"be at least {need} (and even), so the minimum image is "
                f"{need + need % 2}x{need + need % 2}"
            )

    def analysis_guard_depths(self, bank: FilterBank) -> tuple:
        """(front, back) guard rows of the *input* grid a valid-margins
        executor needs per analysis pass.  Lifting-scheme traversals all
        share the scheme's probed margins (the single-loop sweep erodes
        validity exactly like the separable lifting pass along each
        axis); the front depth is kept even so lane parity is preserved,
        and the back depth is rounded up to even for the same reason."""
        if self.scheme == "conv":
            return (0, bank.length)
        from repro.wavelet.lifting import lifting_scheme

        front, back = lifting_scheme(bank).analysis_margins
        return (front, back + back % 2)

    def synthesis_guard_depths(self, bank: FilterBank) -> tuple:
        """(front, back) guard rows of the *subband* grid a valid-margins
        executor needs per synthesis pass."""
        if self.scheme == "conv":
            return (max(1, bank.length // 2), 0)
        from repro.wavelet.lifting import lifting_scheme

        return lifting_scheme(bank).synthesis_margins

    # -- cost model ---------------------------------------------------------

    def analysis_pass_cost(self, output_samples: int, bank: FilterBank) -> OpCount:
        """Cost of one 1-D analysis pass emitting ``output_samples``."""
        if self.scheme == "conv":
            return filter_pass_cost(output_samples, bank.length)
        return lifting_pass_cost(output_samples, self._step_taps(bank))

    def synthesis_pass_cost(self, output_samples: int, bank: FilterBank) -> OpCount:
        """Cost of one 1-D synthesis pass emitting ``output_samples``."""
        if self.scheme == "conv":
            return synthesis_pass_cost(output_samples, bank.length)
        return lifting_pass_cost(output_samples, self._step_taps(bank))

    def level_passes(self, rows: int, cols: int, bank: FilterBank) -> tuple:
        """Per-pass costs of one 2-D analysis level, one entry per charge
        the executor makes.  Separable and strip-fused traversals charge
        a row pass then a column pass; the single-loop sweep charges
        once."""
        if rows % 2 or cols % 2:
            raise ConfigurationError(
                f"level input must have even dimensions, got {(rows, cols)}"
            )
        if self.traversal == "single-loop":
            return (single_loop_sweep_cost(rows, cols, self._step_taps(bank)),)
        row_pass = self.analysis_pass_cost(2 * rows * (cols // 2), bank)
        col_pass = self.analysis_pass_cost(4 * (rows // 2) * (cols // 2), bank)
        return (row_pass, col_pass)

    def level_cost(self, rows: int, cols: int, bank: FilterBank) -> OpCount:
        """Total cost of one 2-D analysis level under this plan."""
        total = OpCount()
        for op in self.level_passes(rows, cols, bank):
            total = total + op
        return total


def _plan(name: str, base: str, block_rows: int) -> KernelPlan:
    if base == "conv":
        return KernelPlan(
            name=name,
            scheme="conv",
            traversal="separable",
            boundary="periodized",
            buffer=BufferPolicy("full-intermediate"),
        )
    if base == "lifting":
        return KernelPlan(
            name=name,
            scheme="lifting",
            traversal="separable",
            boundary="periodized",
            buffer=BufferPolicy("full-intermediate"),
        )
    if base == "fused":
        return KernelPlan(
            name=name,
            scheme="lifting",
            traversal="strip-fused",
            boundary="periodized",
            buffer=BufferPolicy("strip", block_rows=block_rows),
        )
    # base == "single-loop"
    return KernelPlan(
        name=name,
        scheme="lifting",
        traversal="single-loop",
        boundary="periodized",
        buffer=BufferPolicy("lane"),
    )


def parse_kernel_spec(spec: str) -> KernelPlan:
    """Parse a registry spec (``"conv"``, ``"fused"``, ``"fused:16"``,
    ``"single-loop"``) into a :class:`KernelPlan`.

    Only the strip-fused family takes a parameter (the strip height in
    output rows); anything else with a parameter, an unknown family, or
    a malformed parameter raises :class:`ConfigurationError`.
    """
    if not isinstance(spec, str):
        raise ConfigurationError(
            f"kernel spec must be a string, got {type(spec).__name__}"
        )
    base, sep, param = spec.partition(":")
    if base not in KERNEL_NAMES:
        raise ConfigurationError(
            f"unknown kernel {spec!r}; choose one of {KERNEL_NAMES}"
        )
    block_rows = _DEFAULT_BLOCK_ROWS
    if sep:
        if base != "fused":
            raise ConfigurationError(
                f"kernel {base!r} takes no parameter (got spec {spec!r}); "
                "only 'fused:<block_rows>' is parameterized"
            )
        try:
            block_rows = int(param)
        except ValueError:
            raise ConfigurationError(
                f"malformed kernel spec {spec!r}: block_rows must be an "
                "integer, e.g. 'fused:16'"
            ) from None
        if block_rows < 1:
            raise ConfigurationError(
                f"malformed kernel spec {spec!r}: block_rows must be >= 1"
            )
    return _plan(spec, base, block_rows)
