"""Operation-count cost model for the Mallat decomposition.

The machine simulators charge virtual time from operation counts rather
than wall-clock, so parallel speedup curves are a function of the
algorithm and machine spec, not of the host Python interpreter.  This
module centralizes the arithmetic/memory op counts of the 2-D transform;
the figures below follow directly from the algorithm:

* Each output sample of a decimating filter pass costs ``m`` multiplies and
  ``m - 1`` adds (m = tap count), which we count as ``2m - 1`` flops.
* A decomposition level on an ``r x c`` input produces ``r*c`` row-pass
  samples (two half-width images) and ``r*c`` column-pass samples (four
  quarter-size images), i.e. ``2*r*c`` filtered samples per level.
* Memory traffic is ``m`` reads plus one write per output sample.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "OpCount",
    "dwt_level_cost",
    "dwt_total_cost",
    "filter_pass_cost",
    "synthesis_pass_cost",
    "lifting_pass_cost",
    "lifting_level_cost",
    "single_loop_sweep_cost",
]


@dataclass(frozen=True)
class OpCount:
    """Bundle of operation counts chargeable to a machine model."""

    flops: float = 0.0
    intops: float = 0.0
    memops: float = 0.0

    def __add__(self, other: "OpCount") -> "OpCount":
        return OpCount(
            self.flops + other.flops,
            self.intops + other.intops,
            self.memops + other.memops,
        )

    def __mul__(self, factor: float) -> "OpCount":
        return OpCount(self.flops * factor, self.intops * factor, self.memops * factor)

    __rmul__ = __mul__

    def total(self) -> float:
        """Sum of all operation categories."""
        return self.flops + self.intops + self.memops


def filter_pass_cost(output_samples: int, filter_length: int) -> OpCount:
    """Cost of producing ``output_samples`` decimated filter outputs."""
    if output_samples < 0:
        raise ConfigurationError(f"output_samples must be >= 0, got {output_samples}")
    if filter_length < 1:
        raise ConfigurationError(f"filter_length must be >= 1, got {filter_length}")
    flops = output_samples * (2 * filter_length - 1)
    memops = output_samples * (filter_length + 1)
    # Index arithmetic: loop counter, two decimation-index updates, and
    # address computation — six integer ops per output sample (this count
    # is part of the machine-spec calibration; see repro.machines.specs).
    intops = output_samples * 6
    return OpCount(flops=flops, intops=intops, memops=memops)


def synthesis_pass_cost(output_samples: int, filter_length: int) -> OpCount:
    """Cost of producing ``output_samples`` upsampling-synthesis outputs.

    Zero-stuffed upsampling means each output touches only every other
    tap (the polyphase identity), so the per-output arithmetic is half an
    analysis pass's; a full inverse level therefore costs the same as the
    forward level despite emitting twice the samples.
    """
    if filter_length < 2:
        raise ConfigurationError(f"filter_length must be >= 2, got {filter_length}")
    return filter_pass_cost(output_samples, (filter_length + 1) // 2)


def lifting_pass_cost(output_samples: int, step_taps: tuple) -> OpCount:
    """Cost of producing ``output_samples`` outputs through a lifting
    factorization with the given per-step tap counts.

    Lifting works on even/odd lane *pairs*: producing one approximation
    and one detail sample (analysis), or one even and one odd signal
    sample (synthesis), costs one multiply-add per step tap plus the two
    scaling multiplies — ``2 * sum(step_taps) + 2`` flops per pair, versus
    ``2 * (2m - 1)`` for direct convolution.  ``output_samples`` counts
    *all* outputs (both subbands / the full synthesized rate), matching
    how :func:`filter_pass_cost` is charged by the SPMD programs.

    Memory traffic per pair: each step reads its ``t`` source taps and
    reads+writes its target sample (``t + 2``), and the final scaling
    reads and writes both lanes (4).  ``step_taps`` comes from
    :attr:`repro.wavelet.lifting.LiftingScheme.step_taps`; this module
    deliberately takes the plain tuple so the machine models do not
    import the lifting code.
    """
    if output_samples < 0:
        raise ConfigurationError(f"output_samples must be >= 0, got {output_samples}")
    if not step_taps:
        raise ConfigurationError("step_taps must be a non-empty tuple")
    if any(t < 1 for t in step_taps):
        raise ConfigurationError(f"step tap counts must be >= 1, got {step_taps}")
    total_taps = sum(step_taps)
    pairs = output_samples / 2
    flops = pairs * (2 * total_taps + 2)
    memops = pairs * (total_taps + 2 * len(step_taps) + 4)
    # Same per-output indexing machinery as the convolution pass.
    intops = output_samples * 6
    return OpCount(flops=flops, intops=intops, memops=memops)


def lifting_level_cost(rows: int, cols: int, step_taps: tuple) -> OpCount:
    """Cost of one 2-D decomposition level under the lifting kernels
    (row pass emits ``rows * cols`` samples across two subbands, column
    pass ``rows * cols / 2`` across four — the lifting analogue of
    :func:`dwt_level_cost`)."""
    if rows % 2 or cols % 2:
        raise ConfigurationError(
            f"level input must have even dimensions, got {(rows, cols)}"
        )
    row_pass = lifting_pass_cost(2 * rows * (cols // 2), step_taps)
    col_pass = lifting_pass_cost(4 * (rows // 2) * (cols // 2), step_taps)
    return row_pass + col_pass


def single_loop_sweep_cost(rows: int, cols: int, step_taps: tuple) -> OpCount:
    """Cost of one monolithic single-loop 2-D lifting sweep over an
    ``rows x cols`` input (Barina et al.'s single-loop scheme: the image
    is split once into 2x2 polyphase quads and every lifting step is
    applied along both axes before the next step — one visit per pixel
    per level instead of a row pass followed by a column pass).

    Per quad (four samples): each step applies one multiply-add per tap
    to two lane samples along each axis (``8 * T`` flops for ``T`` total
    taps), and the fused diagonal scaling is a single multiply per output
    sample (4) — the separable form pays the scaling twice, once per
    pass.  Memory traffic per quad: each step/axis reads its taps and
    reads+writes its two targets (``4T + 8S``) plus the scaling's four
    reads and writes (8).  Index arithmetic is the same six-integer-op
    convention as the filter passes, but charged once per pixel rather
    than once per pass output — the whole point of the single loop.
    """
    if rows % 2 or cols % 2:
        raise ConfigurationError(
            f"sweep input must have even dimensions, got {(rows, cols)}"
        )
    if not step_taps:
        raise ConfigurationError("step_taps must be a non-empty tuple")
    if any(t < 1 for t in step_taps):
        raise ConfigurationError(f"step tap counts must be >= 1, got {step_taps}")
    total_taps = sum(step_taps)
    quads = rows * cols / 4
    flops = quads * (8 * total_taps + 4)
    memops = quads * (4 * total_taps + 8 * len(step_taps) + 8)
    intops = rows * cols * 6
    return OpCount(flops=flops, intops=intops, memops=memops)


def dwt_level_cost(rows: int, cols: int, filter_length: int) -> OpCount:
    """Cost of one full 2-D decomposition level on an ``rows x cols`` input.

    The row pass emits two ``rows x cols/2`` images; the column pass emits
    four ``rows/2 x cols/2`` images.
    """
    if rows % 2 or cols % 2:
        raise ConfigurationError(
            f"level input must have even dimensions, got {(rows, cols)}"
        )
    row_pass = filter_pass_cost(2 * rows * (cols // 2), filter_length)
    col_pass = filter_pass_cost(4 * (rows // 2) * (cols // 2), filter_length)
    return row_pass + col_pass


def dwt_total_cost(
    rows: int, cols: int, filter_length: int, levels: int
) -> OpCount:
    """Total cost of a ``levels``-deep decomposition of an ``rows x cols``
    image (the LL band shrinks by 4x per level, so cost converges
    geometrically)."""
    if levels < 1:
        raise ConfigurationError(f"levels must be >= 1, got {levels}")
    total = OpCount()
    r, c = rows, cols
    for _ in range(levels):
        total = total + dwt_level_cost(r, c, filter_length)
        r //= 2
        c //= 2
    return total
