"""Kernel registry for the Mallat transform hot paths.

Every public transform entry point accepts
``kernel="conv"|"lifting"|"fused"|"single-loop"`` (default ``"conv"``,
the seed implementation, byte-for-byte preserved):

* ``"conv"`` — direct periodized correlation/convolution
  (:mod:`repro.wavelet.conv`), one pass per subband.
* ``"lifting"`` — the factored scheme of :mod:`repro.wavelet.lifting`:
  roughly half the multiply-adds, both subbands in one in-place pass over
  the even/odd lanes.
* ``"fused"`` — lifting arithmetic with the 2-D row and column passes
  fused into one strip-blocked sweep: each block of output rows pulls only
  the input rows it needs (plus the scheme's guard margins), runs the row
  pass on that strip, and immediately column-transforms it — the full-height
  L/H intermediate images are never materialized, so the working set stays
  cache-sized.
* ``"single-loop"`` — the monolithic sweep of
  :mod:`repro.wavelet.singleloop`: the image is split once into its four
  polyphase lanes and every lifting step runs along both axes before the
  next, so each pixel is visited once per level and no intermediate
  subband image exists at all.

Each kernel is the *executor* half of a :class:`repro.wavelet.plan.KernelPlan`
— a thin configuration binding the plan's arithmetic scheme, traversal,
boundary handling, and buffer policy to concrete NumPy passes.  The cost
methods delegate to the plan (:meth:`KernelPlan.level_passes` charges one
entry per pass, so the single-loop kernel charges one sweep where the
separable kernels charge a row pass and a column pass), and the
cost-consistency tests hold them equal to what the SPMD programs actually
charge through ``ctx.charge``.

:func:`get_kernel` resolves *specs*, not just names: ``"fused:16"``
configures the strip height, and every call returns a fresh instance —
the registry stores factories, so no caller can mutate state out from
under another (the old shared-singleton ``block_rows`` hazard).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.wavelet.cost import OpCount
from repro.wavelet.conv import analyze_axis, synthesize_axis
from repro.wavelet.filters import FilterBank
from repro.wavelet.lifting import (
    LiftingScheme,
    lifting_analyze_axis,
    lifting_analyze_axis_valid,
    lifting_scheme,
    lifting_synthesize_axis,
    lifting_synthesize_axis_valid,
)
from repro.wavelet.plan import KERNEL_NAMES, KernelPlan, parse_kernel_spec
from repro.wavelet.singleloop import (
    single_loop_analyze_2d,
    single_loop_synthesize_2d,
)

__all__ = [
    "KERNEL_NAMES",
    "WaveletKernel",
    "ConvKernel",
    "LiftingKernel",
    "FusedKernel",
    "SingleLoopKernel",
    "get_kernel",
]


class WaveletKernel:
    """Interface every transform kernel implements.

    2-D methods consume/produce :class:`repro.wavelet.transform.Subbands2D`;
    1-D methods run one analysis/synthesis level.  Cost queries delegate
    to the kernel's :class:`~repro.wavelet.plan.KernelPlan` —
    ``output_samples`` counts every emitted sample (both subbands for
    analysis, the full doubled rate for synthesis).
    """

    name = "abstract"

    def __init__(self, plan: KernelPlan | None = None) -> None:
        self.plan = plan if plan is not None else parse_kernel_spec(self.name)

    def forward_step_2d(self, image: np.ndarray, bank: FilterBank):
        raise NotImplementedError

    def inverse_step_2d(self, subbands, bank: FilterBank) -> np.ndarray:
        raise NotImplementedError

    def forward_1d(self, signal: np.ndarray, bank: FilterBank):
        raise NotImplementedError

    def inverse_1d(
        self, approx: np.ndarray, detail: np.ndarray, bank: FilterBank
    ) -> np.ndarray:
        raise NotImplementedError

    def analysis_pass_cost(self, output_samples: int, bank: FilterBank) -> OpCount:
        return self.plan.analysis_pass_cost(output_samples, bank)

    def synthesis_pass_cost(self, output_samples: int, bank: FilterBank) -> OpCount:
        return self.plan.synthesis_pass_cost(output_samples, bank)

    def level_cost(self, rows: int, cols: int, bank: FilterBank) -> OpCount:
        """One 2-D analysis level on an ``rows x cols`` input, totalled
        over the plan's per-pass charges (row pass plus column pass for
        the separable traversals, one sweep for single-loop)."""
        return self.plan.level_cost(rows, cols, bank)


class ConvKernel(WaveletKernel):
    """The seed convolution implementation (the default)."""

    name = "conv"

    def forward_step_2d(self, image, bank):
        from repro.wavelet.transform import mallat_step_2d

        image = np.asarray(image, dtype=np.float64)
        if image.ndim == 2:
            self.plan.validate_step_2d(*image.shape, bank)
        return mallat_step_2d(image, bank)

    def inverse_step_2d(self, subbands, bank):
        from repro.wavelet.transform import mallat_inverse_step_2d

        return mallat_inverse_step_2d(subbands, bank)

    def forward_1d(self, signal, bank):
        detail = analyze_axis(signal, bank.highpass, axis=0)
        approx = analyze_axis(signal, bank.lowpass, axis=0)
        return approx, detail

    def inverse_1d(self, approx, detail, bank):
        return synthesize_axis(approx, bank.lowpass, axis=0) + synthesize_axis(
            detail, bank.highpass, axis=0
        )


class LiftingKernel(WaveletKernel):
    """Factored lifting passes, separable (row pass then column pass)."""

    name = "lifting"

    def _scheme(self, bank: FilterBank) -> LiftingScheme:
        return lifting_scheme(bank)

    def forward_step_2d(self, image, bank):
        from repro.wavelet.transform import Subbands2D

        scheme = self._scheme(bank)
        image = np.asarray(image, dtype=np.float64)
        if image.ndim == 2:
            self.plan.validate_step_2d(*image.shape, bank)
        low, high = lifting_analyze_axis(image, scheme, axis=1)
        ll, lh = lifting_analyze_axis(low, scheme, axis=0)
        hl, hh = lifting_analyze_axis(high, scheme, axis=0)
        return Subbands2D(ll=ll, lh=lh, hl=hl, hh=hh)

    def inverse_step_2d(self, subbands, bank):
        scheme = self._scheme(bank)
        low = lifting_synthesize_axis(subbands.ll, subbands.lh, scheme, axis=0)
        high = lifting_synthesize_axis(subbands.hl, subbands.hh, scheme, axis=0)
        return lifting_synthesize_axis(low, high, scheme, axis=1)

    def forward_1d(self, signal, bank):
        return lifting_analyze_axis(signal, self._scheme(bank), axis=0)

    def inverse_1d(self, approx, detail, bank):
        return lifting_synthesize_axis(approx, detail, self._scheme(bank), axis=0)


class FusedKernel(LiftingKernel):
    """Lifting arithmetic with the 2-D row/column passes strip-fused.

    ``block_rows`` coarse output rows are produced per sweep; the strip's
    working set is about ``(2 * block_rows + margins) * cols`` doubles.
    The 1-D paths and per-pass costs are inherited from the lifting kernel
    — fusion changes traversal order, not arithmetic.
    """

    name = "fused"

    def __init__(
        self, block_rows: int | None = None, plan: KernelPlan | None = None
    ) -> None:
        if plan is None:
            plan = parse_kernel_spec(
                "fused" if block_rows is None else f"fused:{block_rows}"
            )
        super().__init__(plan)

    @property
    def block_rows(self) -> int:
        return self.plan.buffer.block_rows

    def forward_step_2d(self, image, bank):
        from repro.wavelet.transform import Subbands2D

        scheme = self._scheme(bank)
        image = np.asarray(image, dtype=np.float64)
        rows, cols = image.shape
        self.plan.validate_step_2d(rows, cols, bank)
        front, back = scheme.analysis_margins
        back += back % 2  # keep strips an even number of rows
        half_rows, half_cols = rows // 2, cols // 2
        ll = np.empty((half_rows, half_cols))
        lh = np.empty((half_rows, half_cols))
        hl = np.empty((half_rows, half_cols))
        hh = np.empty((half_rows, half_cols))
        for r0 in range(0, half_rows, self.block_rows):
            r1 = min(half_rows, r0 + self.block_rows)
            need = np.arange(2 * r0 - front, 2 * r1 + back) % rows
            strip = image[need]
            low, high = lifting_analyze_axis(strip, scheme, axis=1)
            ll[r0:r1], lh[r0:r1] = lifting_analyze_axis_valid(
                low, scheme, 0, r1 - r0, front
            )
            hl[r0:r1], hh[r0:r1] = lifting_analyze_axis_valid(
                high, scheme, 0, r1 - r0, front
            )
        return Subbands2D(ll=ll, lh=lh, hl=hl, hh=hh)

    def inverse_step_2d(self, subbands, bank):
        scheme = self._scheme(bank)
        ll = np.asarray(subbands.ll, dtype=np.float64)
        lh = np.asarray(subbands.lh, dtype=np.float64)
        hl = np.asarray(subbands.hl, dtype=np.float64)
        hh = np.asarray(subbands.hh, dtype=np.float64)
        half_rows, half_cols = ll.shape
        rows = 2 * half_rows
        front, back = scheme.synthesis_margins
        image = np.empty((rows, 2 * half_cols))
        for j0 in range(0, rows, 2 * self.block_rows):
            j1 = min(rows, j0 + 2 * self.block_rows)
            seg = np.arange(j0 // 2 - front, (j1 + 1) // 2 + back) % half_rows
            low = lifting_synthesize_axis_valid(
                ll[seg], lh[seg], scheme, 0, j1 - j0, front
            )
            high = lifting_synthesize_axis_valid(
                hl[seg], hh[seg], scheme, 0, j1 - j0, front
            )
            image[j0:j1] = lifting_synthesize_axis(low, high, scheme, axis=1)
        return image


class SingleLoopKernel(LiftingKernel):
    """The monolithic single-loop 2-D sweep (Barina et al.).

    Lifting arithmetic, but the traversal interleaves vertical and
    horizontal steps over the four polyphase lanes so each pixel is
    visited once per level (:mod:`repro.wavelet.singleloop`).  In 1-D
    there is only one axis to sweep, so the monolithic unit degenerates
    to the plain lifting pass — the 1-D paths are inherited.  The plan
    charges one sweep per level instead of two passes.
    """

    name = "single-loop"

    def forward_step_2d(self, image, bank):
        from repro.wavelet.transform import Subbands2D

        scheme = self._scheme(bank)
        image = np.asarray(image, dtype=np.float64)
        if image.ndim == 2:
            self.plan.validate_step_2d(*image.shape, bank)
        ll, lh, hl, hh = single_loop_analyze_2d(image, scheme)
        return Subbands2D(ll=ll, lh=lh, hl=hl, hh=hh)

    def inverse_step_2d(self, subbands, bank):
        scheme = self._scheme(bank)
        return single_loop_synthesize_2d(
            subbands.ll, subbands.lh, subbands.hl, subbands.hh, scheme
        )


_FACTORIES = {
    "conv": ConvKernel,
    "lifting": LiftingKernel,
    "fused": FusedKernel,
    "single-loop": SingleLoopKernel,
}


def get_kernel(kernel) -> WaveletKernel:
    """Resolve a kernel spec to a freshly configured kernel.

    Accepts a registered name (``"fused"``), a parameterized spec
    (``"fused:16"`` — strip height 16), or an already-built
    :class:`WaveletKernel` (passed through).  Every spec resolution
    returns a *new* instance, so configuring one caller's kernel can
    never leak into another's.  Malformed or unknown specs raise
    :class:`ConfigurationError`.
    """
    if isinstance(kernel, WaveletKernel):
        return kernel
    plan = parse_kernel_spec(kernel)
    return _FACTORIES[plan.base](plan=plan)
