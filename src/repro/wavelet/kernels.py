"""Kernel registry for the Mallat transform hot paths.

Every public transform entry point accepts ``kernel="conv"|"lifting"|"fused"``
(default ``"conv"``, the seed implementation, byte-for-byte preserved):

* ``"conv"`` — direct periodized correlation/convolution
  (:mod:`repro.wavelet.conv`), one pass per subband.
* ``"lifting"`` — the factored scheme of :mod:`repro.wavelet.lifting`:
  roughly half the multiply-adds, both subbands in one in-place pass over
  the even/odd lanes.
* ``"fused"`` — lifting arithmetic with the 2-D row and column passes
  fused into one strip-blocked sweep: each block of output rows pulls only
  the input rows it needs (plus the scheme's guard margins), runs the row
  pass on that strip, and immediately column-transforms it — the full-height
  L/H intermediate images are never materialized, so the working set stays
  cache-sized.

Kernels also expose the operation counts their passes charge to the
simulated machines (:meth:`WaveletKernel.level_cost` etc.), which the
cost-consistency tests hold equal to what the SPMD programs actually
charge through ``ctx.charge``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.wavelet.cost import (
    OpCount,
    filter_pass_cost,
    lifting_pass_cost,
    synthesis_pass_cost,
)
from repro.wavelet.conv import analyze_axis, synthesize_axis
from repro.wavelet.filters import FilterBank
from repro.wavelet.lifting import (
    LiftingScheme,
    lifting_analyze_axis,
    lifting_analyze_axis_valid,
    lifting_scheme,
    lifting_synthesize_axis,
    lifting_synthesize_axis_valid,
)

__all__ = [
    "KERNEL_NAMES",
    "WaveletKernel",
    "ConvKernel",
    "LiftingKernel",
    "FusedKernel",
    "get_kernel",
]

KERNEL_NAMES = ("conv", "lifting", "fused")


class WaveletKernel:
    """Interface every transform kernel implements.

    2-D methods consume/produce :class:`repro.wavelet.transform.Subbands2D`;
    1-D methods run one analysis/synthesis level.  The cost methods report
    the operation counts one pass charges to the machine models —
    ``output_samples`` counts every emitted sample (both subbands for
    analysis, the full doubled rate for synthesis).
    """

    name = "abstract"

    def forward_step_2d(self, image: np.ndarray, bank: FilterBank):
        raise NotImplementedError

    def inverse_step_2d(self, subbands, bank: FilterBank) -> np.ndarray:
        raise NotImplementedError

    def forward_1d(self, signal: np.ndarray, bank: FilterBank):
        raise NotImplementedError

    def inverse_1d(
        self, approx: np.ndarray, detail: np.ndarray, bank: FilterBank
    ) -> np.ndarray:
        raise NotImplementedError

    def analysis_pass_cost(self, output_samples: int, bank: FilterBank) -> OpCount:
        raise NotImplementedError

    def synthesis_pass_cost(self, output_samples: int, bank: FilterBank) -> OpCount:
        raise NotImplementedError

    def level_cost(self, rows: int, cols: int, bank: FilterBank) -> OpCount:
        """One 2-D analysis level on an ``rows x cols`` input, split the
        way the SPMD programs charge it (row pass then column pass)."""
        if rows % 2 or cols % 2:
            raise ConfigurationError(
                f"level input must have even dimensions, got {(rows, cols)}"
            )
        row_pass = self.analysis_pass_cost(2 * rows * (cols // 2), bank)
        col_pass = self.analysis_pass_cost(4 * (rows // 2) * (cols // 2), bank)
        return row_pass + col_pass


class ConvKernel(WaveletKernel):
    """The seed convolution implementation (the default)."""

    name = "conv"

    def forward_step_2d(self, image, bank):
        from repro.wavelet.transform import mallat_step_2d

        return mallat_step_2d(image, bank)

    def inverse_step_2d(self, subbands, bank):
        from repro.wavelet.transform import mallat_inverse_step_2d

        return mallat_inverse_step_2d(subbands, bank)

    def forward_1d(self, signal, bank):
        detail = analyze_axis(signal, bank.highpass, axis=0)
        approx = analyze_axis(signal, bank.lowpass, axis=0)
        return approx, detail

    def inverse_1d(self, approx, detail, bank):
        return synthesize_axis(approx, bank.lowpass, axis=0) + synthesize_axis(
            detail, bank.highpass, axis=0
        )

    def analysis_pass_cost(self, output_samples, bank):
        return filter_pass_cost(output_samples, bank.length)

    def synthesis_pass_cost(self, output_samples, bank):
        return synthesis_pass_cost(output_samples, bank.length)


class LiftingKernel(WaveletKernel):
    """Factored lifting passes, separable (row pass then column pass)."""

    name = "lifting"

    def _scheme(self, bank: FilterBank) -> LiftingScheme:
        return lifting_scheme(bank)

    def forward_step_2d(self, image, bank):
        from repro.wavelet.transform import Subbands2D

        scheme = self._scheme(bank)
        low, high = lifting_analyze_axis(image, scheme, axis=1)
        ll, lh = lifting_analyze_axis(low, scheme, axis=0)
        hl, hh = lifting_analyze_axis(high, scheme, axis=0)
        return Subbands2D(ll=ll, lh=lh, hl=hl, hh=hh)

    def inverse_step_2d(self, subbands, bank):
        scheme = self._scheme(bank)
        low = lifting_synthesize_axis(subbands.ll, subbands.lh, scheme, axis=0)
        high = lifting_synthesize_axis(subbands.hl, subbands.hh, scheme, axis=0)
        return lifting_synthesize_axis(low, high, scheme, axis=1)

    def forward_1d(self, signal, bank):
        return lifting_analyze_axis(signal, self._scheme(bank), axis=0)

    def inverse_1d(self, approx, detail, bank):
        return lifting_synthesize_axis(approx, detail, self._scheme(bank), axis=0)

    def analysis_pass_cost(self, output_samples, bank):
        return lifting_pass_cost(output_samples, self._scheme(bank).step_taps)

    def synthesis_pass_cost(self, output_samples, bank):
        return lifting_pass_cost(output_samples, self._scheme(bank).step_taps)


class FusedKernel(LiftingKernel):
    """Lifting arithmetic with the 2-D row/column passes strip-fused.

    ``block_rows`` coarse output rows are produced per sweep; the strip's
    working set is about ``(2 * block_rows + margins) * cols`` doubles.
    The 1-D paths and per-pass costs are inherited from the lifting kernel
    — fusion changes traversal order, not arithmetic.
    """

    name = "fused"

    def __init__(self, block_rows: int = 32) -> None:
        if block_rows < 1:
            raise ConfigurationError(f"block_rows must be >= 1, got {block_rows}")
        self.block_rows = block_rows

    def forward_step_2d(self, image, bank):
        from repro.wavelet.transform import Subbands2D

        scheme = self._scheme(bank)
        image = np.asarray(image, dtype=np.float64)
        rows, cols = image.shape
        if rows % 2 or cols % 2:
            raise ConfigurationError(
                f"image dimensions must be even, got {(rows, cols)}"
            )
        if min(rows, cols) < scheme.filter_length:
            raise ConfigurationError(
                f"image {rows}x{cols} is smaller than the "
                f"{scheme.filter_length}-tap filter"
            )
        front, back = scheme.analysis_margins
        back += back % 2  # keep strips an even number of rows
        half_rows, half_cols = rows // 2, cols // 2
        ll = np.empty((half_rows, half_cols))
        lh = np.empty((half_rows, half_cols))
        hl = np.empty((half_rows, half_cols))
        hh = np.empty((half_rows, half_cols))
        for r0 in range(0, half_rows, self.block_rows):
            r1 = min(half_rows, r0 + self.block_rows)
            need = np.arange(2 * r0 - front, 2 * r1 + back) % rows
            strip = image[need]
            low, high = lifting_analyze_axis(strip, scheme, axis=1)
            ll[r0:r1], lh[r0:r1] = lifting_analyze_axis_valid(
                low, scheme, 0, r1 - r0, front
            )
            hl[r0:r1], hh[r0:r1] = lifting_analyze_axis_valid(
                high, scheme, 0, r1 - r0, front
            )
        return Subbands2D(ll=ll, lh=lh, hl=hl, hh=hh)

    def inverse_step_2d(self, subbands, bank):
        scheme = self._scheme(bank)
        ll = np.asarray(subbands.ll, dtype=np.float64)
        lh = np.asarray(subbands.lh, dtype=np.float64)
        hl = np.asarray(subbands.hl, dtype=np.float64)
        hh = np.asarray(subbands.hh, dtype=np.float64)
        half_rows, half_cols = ll.shape
        rows = 2 * half_rows
        front, back = scheme.synthesis_margins
        image = np.empty((rows, 2 * half_cols))
        for j0 in range(0, rows, 2 * self.block_rows):
            j1 = min(rows, j0 + 2 * self.block_rows)
            seg = np.arange(j0 // 2 - front, (j1 + 1) // 2 + back) % half_rows
            low = lifting_synthesize_axis_valid(
                ll[seg], lh[seg], scheme, 0, j1 - j0, front
            )
            high = lifting_synthesize_axis_valid(
                hl[seg], hh[seg], scheme, 0, j1 - j0, front
            )
            image[j0:j1] = lifting_synthesize_axis(low, high, scheme, axis=1)
        return image


_REGISTRY = {
    "conv": ConvKernel(),
    "lifting": LiftingKernel(),
    "fused": FusedKernel(),
}


def get_kernel(kernel) -> WaveletKernel:
    """Resolve a kernel name (or pass a :class:`WaveletKernel` through)."""
    if isinstance(kernel, WaveletKernel):
        return kernel
    try:
        return _REGISTRY[kernel]
    except (KeyError, TypeError):
        raise ConfigurationError(
            f"unknown kernel {kernel!r}; choose one of {KERNEL_NAMES}"
        ) from None
