"""Mallat multi-resolution wavelet decomposition (the paper's Section 2)
and its parallel formulations (Section 4).

Sequential API
--------------
* :func:`daubechies_filter` / :func:`haar_filter` — the filter banks the
  experiments sweep (lengths 8, 4, 2).
* :func:`mallat_decompose_2d` / :func:`mallat_reconstruct_2d` — the
  multi-level 2-D transform and its exact inverse.
* :func:`dwt_1d` / :func:`idwt_1d` — 1-D counterparts.
* :mod:`repro.wavelet.cost` — the operation-count model the machine
  simulators charge virtual time from.

Parallel API (under :mod:`repro.wavelet.parallel`)
--------------------------------------------------
* Coarse-grain SPMD decomposition with striped domains, guard zones, and
  snake placement (the Paragon algorithm of Section 4.2).
* Fine-grain SIMD systolic and dilution algorithms with cut-and-stack or
  hierarchical virtualization (the MasPar algorithms of Section 4.1).
"""

from repro.wavelet.conv import (
    analyze_axis,
    analyze_axis_valid,
    periodic_convolve,
    periodic_correlate,
    synthesize_axis,
    synthesize_axis_valid,
)
from repro.wavelet.cost import (
    OpCount,
    dwt_level_cost,
    dwt_total_cost,
    filter_pass_cost,
    lifting_level_cost,
    lifting_pass_cost,
    synthesis_pass_cost,
)
from repro.wavelet.cost import single_loop_sweep_cost
from repro.wavelet.kernels import (
    KERNEL_NAMES,
    ConvKernel,
    FusedKernel,
    LiftingKernel,
    SingleLoopKernel,
    WaveletKernel,
    get_kernel,
)
from repro.wavelet.plan import BufferPolicy, KernelPlan, parse_kernel_spec
from repro.wavelet.lifting import (
    LiftingScheme,
    LiftingStep,
    lifting_analyze_axis,
    lifting_analyze_axis_valid,
    lifting_scheme,
    lifting_synthesize_axis,
    lifting_synthesize_axis_valid,
)
from repro.wavelet.filters import (
    SUPPORTED_LENGTHS,
    FilterBank,
    daubechies_filter,
    filter_bank_for_length,
    haar_filter,
    quadrature_mirror,
)
from repro.wavelet.denoise import (
    denoise_1d,
    denoise_2d,
    estimate_noise_sigma,
    soft_threshold,
)
from repro.wavelet.features import (
    orientation_dominance,
    signature_distance,
    subband_energies,
    texture_signature,
)
from repro.wavelet.registration import (
    RegistrationResult,
    phase_correlation,
    register_translation,
)
from repro.wavelet.pyramid import (
    DetailTriple,
    WaveletPyramid,
    mallat_decompose_2d,
    mallat_reconstruct_2d,
)
from repro.wavelet.transform import (
    Subbands2D,
    dwt_1d,
    idwt_1d,
    mallat_inverse_step_2d,
    mallat_step_2d,
    max_decomposition_levels,
)

__all__ = [
    "FilterBank",
    "quadrature_mirror",
    "haar_filter",
    "daubechies_filter",
    "filter_bank_for_length",
    "SUPPORTED_LENGTHS",
    "analyze_axis",
    "analyze_axis_valid",
    "synthesize_axis",
    "synthesize_axis_valid",
    "periodic_correlate",
    "periodic_convolve",
    "Subbands2D",
    "mallat_step_2d",
    "mallat_inverse_step_2d",
    "dwt_1d",
    "idwt_1d",
    "max_decomposition_levels",
    "DetailTriple",
    "WaveletPyramid",
    "mallat_decompose_2d",
    "mallat_reconstruct_2d",
    "OpCount",
    "RegistrationResult",
    "phase_correlation",
    "register_translation",
    "subband_energies",
    "texture_signature",
    "signature_distance",
    "orientation_dominance",
    "denoise_1d",
    "denoise_2d",
    "soft_threshold",
    "estimate_noise_sigma",
    "filter_pass_cost",
    "dwt_level_cost",
    "dwt_total_cost",
    "synthesis_pass_cost",
    "lifting_pass_cost",
    "lifting_level_cost",
    "single_loop_sweep_cost",
    "KERNEL_NAMES",
    "WaveletKernel",
    "ConvKernel",
    "LiftingKernel",
    "FusedKernel",
    "SingleLoopKernel",
    "get_kernel",
    "KernelPlan",
    "BufferPolicy",
    "parse_kernel_spec",
    "LiftingScheme",
    "LiftingStep",
    "lifting_scheme",
    "lifting_analyze_axis",
    "lifting_synthesize_axis",
    "lifting_analyze_axis_valid",
    "lifting_synthesize_axis_valid",
]
