"""Wavelet feature extraction for imagery.

The paper's introduction lists feature extraction among the wavelet
applications driving the need for fast decomposition.  This module
implements the standard multi-resolution texture signature: per-level,
per-orientation subband energies (plus entropy), which discriminate
textures by the scales and directions their energy lives at.

A signature is a flat vector ordered ``[LL, (LH, HL, HH) x level]``
(finest level first), each entry the mean squared coefficient of the
band, optionally log-compressed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.wavelet.filters import FilterBank, haar_filter
from repro.wavelet.pyramid import WaveletPyramid, mallat_decompose_2d

__all__ = [
    "subband_energies",
    "texture_signature",
    "signature_distance",
    "orientation_dominance",
]


def subband_energies(pyramid: WaveletPyramid) -> dict:
    """Mean squared coefficient per band.

    Keys: ``"ll"`` plus ``"lh{k}"``, ``"hl{k}"``, ``"hh{k}"`` for level
    ``k`` (1 = finest).
    """
    energies = {"ll": float((pyramid.approximation**2).mean())}
    for level, triple in enumerate(pyramid.details, start=1):
        energies[f"lh{level}"] = float((triple.lh**2).mean())
        energies[f"hl{level}"] = float((triple.hl**2).mean())
        energies[f"hh{level}"] = float((triple.hh**2).mean())
    return energies


def texture_signature(
    image: np.ndarray,
    *,
    bank: FilterBank | None = None,
    levels: int = 3,
    log_compress: bool = True,
) -> np.ndarray:
    """Multi-resolution texture signature of an image.

    Parameters
    ----------
    image:
        2-D image.
    bank:
        Analysis bank (default Haar).
    levels:
        Decomposition depth.
    log_compress:
        Apply ``log1p`` to the energies (stabilizes distances across
        images of very different contrast).
    """
    bank = bank or haar_filter()
    pyramid = mallat_decompose_2d(np.asarray(image, dtype=np.float64), bank, levels)
    energies = subband_energies(pyramid)
    ordered = [energies["ll"]]
    for level in range(1, levels + 1):
        ordered += [energies[f"lh{level}"], energies[f"hl{level}"], energies[f"hh{level}"]]
    vector = np.array(ordered)
    return np.log1p(vector) if log_compress else vector


def signature_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Normalized Euclidean distance between two signatures (the same
    metric shape as the workload-similarity measure: 0 identical,
    1 orthogonal)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ConfigurationError(
            f"signatures must share a shape, got {a.shape} vs {b.shape}"
        )
    scale = float(np.linalg.norm(np.maximum(a, b)))
    if scale == 0.0:
        return 0.0
    return float(np.linalg.norm(a - b)) / scale


def orientation_dominance(image: np.ndarray, *, bank: FilterBank | None = None, levels: int = 2) -> str:
    """Classify an image's dominant edge orientation from its detail
    energies: ``"horizontal"`` (LH dominates: edges across rows),
    ``"vertical"`` (HL), ``"diagonal"`` (HH), or ``"isotropic"``.
    """
    bank = bank or haar_filter()
    pyramid = mallat_decompose_2d(np.asarray(image, dtype=np.float64), bank, levels)
    energies = subband_energies(pyramid)
    lh = sum(energies[f"lh{k}"] for k in range(1, levels + 1))
    hl = sum(energies[f"hl{k}"] for k in range(1, levels + 1))
    hh = sum(energies[f"hh{k}"] for k in range(1, levels + 1))
    total = lh + hl + hh
    if total == 0.0:
        return "isotropic"
    shares = {"horizontal": lh / total, "vertical": hl / total, "diagonal": hh / total}
    best, share = max(shares.items(), key=lambda item: item[1])
    return best if share > 0.5 else "isotropic"
