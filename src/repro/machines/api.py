"""NX/PVM-style collective operations built from point-to-point messages.

Every collective is a generator subroutine used with ``yield from`` inside
a rank program::

    total = yield from allreduce(ctx, local_array)

All ranks must call the same collectives in the same order (SPMD
discipline).  Tags at and above :data:`COLLECTIVE_TAG_BASE` are reserved
for these routines; user point-to-point traffic should stay below it.

Two global-sum implementations are provided because their difference is an
Appendix B finding: the vendor ``gssum`` (modelled by
:func:`gssum_naive`, a many-to-many exchange) "does not scale well with
the number of processors", while the authors' replacement based on a
parallel-prefix / recursive-doubling pattern (:func:`allreduce`) restored
scalability.  ``benchmarks/test_bench_allreduce.py`` regenerates the
comparison.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CommunicationError
from repro.machines import tags
from repro.machines.engine import RankContext

__all__ = [
    "COLLECTIVE_TAG_BASE",
    "ALLREDUCE_ALGORITHMS",
    "barrier",
    "bcast",
    "broadcast_tree",
    "reduce",
    "allreduce",
    "allreduce_rabenseifner",
    "get_allreduce",
    "gssum_naive",
    "gather",
    "allgather",
    "scatter",
    "alltoall",
    "sendrecv",
    "exercise_collectives",
]

COLLECTIVE_TAG_BASE = tags.COLLECTIVE_TAG_BASE

_TAG_BCAST = tags.COLLECTIVE_BCAST
_TAG_REDUCE = tags.COLLECTIVE_REDUCE
_TAG_ALLREDUCE = tags.COLLECTIVE_ALLREDUCE
_TAG_GSSUM = tags.COLLECTIVE_GSSUM
_TAG_GATHER = tags.COLLECTIVE_GATHER
_TAG_SCATTER = tags.COLLECTIVE_SCATTER
_TAG_BARRIER = tags.COLLECTIVE_BARRIER
_TAG_ALLGATHER = tags.COLLECTIVE_ALLGATHER
_TAG_ALLTOALL = tags.COLLECTIVE_ALLTOALL
_TAG_SENDRECV = tags.COLLECTIVE_SENDRECV
_TAG_RABENSEIFNER = tags.COLLECTIVE_RABENSEIFNER
_TAG_BCAST_TREE = tags.COLLECTIVE_BCAST_TREE


def _add(a, b):
    return a + b


def _shifted(rank: int, root: int, n: int) -> int:
    """Rank relabeled so the root is 0 (binomial trees assume root 0)."""
    return (rank - root) % n


def _unshifted(vrank: int, root: int, n: int) -> int:
    return (vrank + root) % n


def bcast(ctx: RankContext, data=None, root: int = 0, *, tag: int = _TAG_BCAST):
    """Binomial-tree broadcast from ``root``; returns the data on every rank."""
    n = ctx.nranks
    if not 0 <= root < n:
        raise CommunicationError(f"bcast root {root} out of range")
    vrank = _shifted(ctx.rank, root, n)
    mask = 1
    # Find the bit at which this rank receives, then forward to higher bits.
    if vrank != 0:
        while mask <= vrank:
            mask <<= 1
        mask >>= 1
        src = _unshifted(vrank - mask, root, n)
        data = yield ctx.recv(src, tag=tag)
        mask <<= 1
    while mask < n:
        if vrank + mask < n and vrank < mask:
            dst = _unshifted(vrank + mask, root, n)
            yield ctx.send(dst, data, tag=tag)
        mask <<= 1
    return data


def reduce(ctx: RankContext, value, op=_add, root: int = 0, *, tag: int = _TAG_REDUCE):
    """Binomial-tree reduction to ``root``; non-roots return ``None``."""
    n = ctx.nranks
    if not 0 <= root < n:
        raise CommunicationError(f"reduce root {root} out of range")
    vrank = _shifted(ctx.rank, root, n)
    acc = value
    mask = 1
    while mask < n:
        if vrank & mask:
            dst = _unshifted(vrank & ~mask, root, n)
            yield ctx.send(dst, acc, tag=tag)
            return None
        partner = vrank | mask
        if partner < n:
            other = yield ctx.recv(_unshifted(partner, root, n), tag=tag)
            acc = op(acc, other)
        mask <<= 1
    return acc if vrank == 0 else None


def allreduce(ctx: RankContext, value, op=_add, *, tag: int = _TAG_ALLREDUCE):
    """Recursive-doubling all-reduce (the authors' parallel-prefix global
    sum): O(log P) rounds of pairwise one-to-one exchanges.

    Handles non-power-of-two rank counts by folding the excess ranks into
    the largest power-of-two subset first.
    """
    n = ctx.nranks
    rank = ctx.rank
    acc = value
    pow2 = 1
    while pow2 * 2 <= n:
        pow2 *= 2
    rem = n - pow2

    # Fold phase: ranks >= pow2 hand their value to rank - pow2.
    if rank >= pow2:
        yield ctx.send(rank - pow2, acc, tag=tag)
    elif rank < rem:
        other = yield ctx.recv(rank + pow2, tag=tag)
        acc = op(acc, other)

    if rank < pow2:
        mask = 1
        while mask < pow2:
            partner = rank ^ mask
            yield ctx.send(partner, acc, tag=tag)
            other = yield ctx.recv(partner, tag=tag)
            acc = op(acc, other)
            mask <<= 1

    # Unfold phase: send the result back to the folded ranks.
    if rank < rem:
        yield ctx.send(rank + pow2, acc, tag=tag)
    elif rank >= pow2:
        acc = yield ctx.recv(rank - pow2, tag=tag)
    return acc


def allreduce_rabenseifner(
    ctx: RankContext, value, op=_add, *, tag: int = _TAG_RABENSEIFNER
):
    """Rabenseifner all-reduce: reduce-scatter by recursive halving, then
    allgather by recursive doubling.

    Bandwidth-optimal for large payloads: each rank moves roughly ``2n``
    bytes of an ``n``-byte vector instead of recursive doubling's
    ``n log P``.  Requires an array payload whose leading axis can be
    split across the power-of-two rank subset and an *elementwise*
    ``op``; anything else (scalars, short vectors, one rank) falls back
    to :func:`allreduce`, which is value-equivalent.

    Like :func:`allreduce`, non-power-of-two rank counts fold the excess
    ranks into the largest power-of-two subset first and unfold the
    result at the end.  Floating-point results can differ from
    :func:`allreduce` only by association order (exact for ints and
    exactly representable floats).
    """
    n = ctx.nranks
    rank = ctx.rank
    pow2 = 1
    while pow2 * 2 <= n:
        pow2 *= 2
    if (
        pow2 == 1
        or not isinstance(value, np.ndarray)
        or value.ndim < 1
        or value.shape[0] < pow2
    ):
        return (yield from allreduce(ctx, value, op, tag=tag))
    rem = n - pow2
    acc = value

    # Fold phase: ranks >= pow2 hand their value to rank - pow2.
    if rank >= pow2:
        yield ctx.send(rank - pow2, acc, tag=tag)
    else:
        if rank < rem:
            other = yield ctx.recv(rank + pow2, tag=tag)
            acc = op(acc, other)
        acc = np.array(acc)  # private copy: segments are reduced in place
        rows = acc.shape[0]

        def cuts(i):
            # Row offset of chunk boundary i (0 <= i <= pow2), closed
            # form rather than a precomputed list: building pow2+1
            # entries on every rank is O(P^2) across the job.
            return (rows * i) // pow2

        # Reduce-scatter by recursive halving: each round trades half of
        # the active window with the partner and keeps reducing the other
        # half; after log2(pow2) rounds rank r owns chunk r exactly.
        lo, hi = 0, pow2
        mask = pow2 >> 1
        while mask:
            partner = rank ^ mask
            mid = (lo + hi) // 2
            if rank & mask:
                send_lo, send_hi = lo, mid
                keep_lo, keep_hi = mid, hi
            else:
                send_lo, send_hi = mid, hi
                keep_lo, keep_hi = lo, mid
            yield ctx.send(partner, acc[cuts(send_lo) : cuts(send_hi)], tag=tag)
            other = yield ctx.recv(partner, tag=tag)
            seg = slice(cuts(keep_lo), cuts(keep_hi))
            acc[seg] = op(acc[seg], other)
            lo, hi = keep_lo, keep_hi
            mask >>= 1

        # Allgather by recursive doubling, mirroring the halving order:
        # each round doubles the owned window by swapping it with the
        # partner's adjacent window.
        mask = 1
        while mask < pow2:
            partner = rank ^ mask
            span = hi - lo
            yield ctx.send(partner, acc[cuts(lo) : cuts(hi)], tag=tag)
            other = yield ctx.recv(partner, tag=tag)
            if rank & mask:
                acc[cuts(lo - span) : cuts(lo)] = other
                lo -= span
            else:
                acc[cuts(hi) : cuts(hi + span)] = other
                hi += span
            mask <<= 1

    # Unfold phase: send the result back to the folded ranks.
    if rank < rem:
        yield ctx.send(rank + pow2, acc, tag=tag)
    elif rank >= pow2:
        acc = yield ctx.recv(rank - pow2, tag=tag)
    return acc


#: Selectable all-reduce schedules for the runtime's ``collective=`` knob.
ALLREDUCE_ALGORITHMS = {
    "rdouble": allreduce,
    "rabenseifner": allreduce_rabenseifner,
}


def get_allreduce(name: str):
    """Resolve a ``collective=`` knob value to its all-reduce schedule."""
    try:
        return ALLREDUCE_ALGORITHMS[name]
    except KeyError:
        from repro.errors import ConfigurationError

        raise ConfigurationError(
            f"unknown collective {name!r}; "
            f"use one of {sorted(ALLREDUCE_ALGORITHMS)}"
        ) from None


def broadcast_tree(
    ctx: RankContext,
    data=None,
    root: int = 0,
    *,
    radix: int = 2,
    tag: int = _TAG_BCAST_TREE,
):
    """k-nomial tree broadcast from ``root``.

    ``radix=2`` is the classic binomial tree (same schedule family as
    :func:`bcast` but with the high-order subtrees forwarded first, the
    MPICH ordering); larger radices trade tree depth for per-node fanout,
    which pays off when the per-message latency dominates.
    """
    n = ctx.nranks
    if not 0 <= root < n:
        raise CommunicationError(f"broadcast_tree root {root} out of range")
    if radix < 2:
        raise CommunicationError(f"broadcast_tree radix must be >= 2, got {radix}")
    vrank = _shifted(ctx.rank, root, n)
    # Receive from the parent: the rank whose label clears our lowest
    # nonzero base-radix digit.
    p = 1
    if vrank != 0:
        while (vrank // p) % radix == 0:
            p *= radix
        parent = vrank - ((vrank // p) % radix) * p
        data = yield ctx.recv(_unshifted(parent, root, n), tag=tag)
    else:
        while p < n:
            p *= radix
    # Forward to children: one subtree per digit position below the
    # receive position, deepest (largest) subtree first.
    q = p // radix
    while q >= 1:
        for j in range(1, radix):
            child = vrank + j * q
            if child < n:
                yield ctx.send(_unshifted(child, root, n), data, tag=tag)
        q //= radix
    return data


def gssum_naive(ctx: RankContext, value, op=_add, *, tag: int = _TAG_GSSUM):
    """The vendor-library-style global sum: every rank sends its value to
    every other rank and reduces locally.

    This is the "many many-to-many communications" implementation whose
    collapse beyond 8 processors Appendix B reports; kept as the baseline
    for the allreduce ablation.
    """
    n = ctx.nranks
    rank = ctx.rank
    for dst in range(n):
        if dst != rank:
            yield ctx.send(dst, value, tag=tag)
    acc = value
    for src in range(n):
        if src != rank:
            other = yield ctx.recv(src, tag=tag)
            acc = op(acc, other)
    return acc


def gather(ctx: RankContext, value, root: int = 0, *, tag: int = _TAG_GATHER):
    """Gather one value per rank to ``root`` (returns the ordered list
    there, ``None`` elsewhere)."""
    n = ctx.nranks
    if not 0 <= root < n:
        raise CommunicationError(f"gather root {root} out of range")
    if ctx.rank == root:
        out = [None] * n
        out[root] = value
        for src in range(n):
            if src != root:
                out[src] = yield ctx.recv(src, tag=tag)
        return out
    yield ctx.send(root, value, tag=tag)
    return None


def allgather(ctx: RankContext, value, *, tag: int = _TAG_ALLGATHER):
    """Gather one value per rank onto every rank (ring algorithm)."""
    n = ctx.nranks
    rank = ctx.rank
    out = [None] * n
    out[rank] = value
    current = value
    current_src = rank
    right = (rank + 1) % n
    left = (rank - 1) % n
    for _ in range(n - 1):
        yield ctx.send(right, current, tag=tag)
        current = yield ctx.recv(left, tag=tag)
        current_src = (current_src - 1) % n
        out[current_src] = current
    return out


def scatter(ctx: RankContext, values=None, root: int = 0, *, tag: int = _TAG_SCATTER):
    """Scatter ``values[i]`` from ``root`` to rank ``i``."""
    n = ctx.nranks
    if not 0 <= root < n:
        raise CommunicationError(f"scatter root {root} out of range")
    if ctx.rank == root:
        if values is None or len(values) != n:
            raise CommunicationError(
                f"scatter root needs one value per rank ({n}), got "
                f"{None if values is None else len(values)}"
            )
        for dst in range(n):
            if dst != root:
                yield ctx.send(dst, values[dst], tag=tag)
        return values[root]
    return (yield ctx.recv(root, tag=tag))


def alltoall(ctx: RankContext, values, *, tag: int = _TAG_ALLTOALL):
    """Personalized all-to-all: rank ``i`` delivers ``values[j]`` to rank
    ``j`` and returns the list of items addressed to it."""
    n = ctx.nranks
    rank = ctx.rank
    if len(values) != n:
        raise CommunicationError(f"alltoall needs one value per rank ({n}), got {len(values)}")
    out = [None] * n
    out[rank] = values[rank]
    # Stagger destinations so the exchange doesn't hot-spot one node.
    for offset in range(1, n):
        dst = (rank + offset) % n
        src = (rank - offset) % n
        yield ctx.send(dst, values[dst], tag=tag)
        out[src] = yield ctx.recv(src, tag=tag)
    return out


def barrier(ctx: RankContext):
    """Tree barrier: reduce a token to rank 0, broadcast it back."""
    token = yield from reduce(ctx, 1, root=0, tag=_TAG_BARRIER)
    yield from bcast(ctx, token, root=0, tag=_TAG_BARRIER)
    return None


def sendrecv(
    ctx: RankContext, dst: int, senddata, src: int, *, tag: int = _TAG_SENDRECV
):
    """Simultaneous exchange: send to ``dst`` while receiving from ``src``."""
    yield ctx.send(dst, senddata, tag=tag)
    received = yield ctx.recv(src, tag=tag)
    return received


def exercise_collectives(ctx: RankContext, value=None):
    """Run every collective in this library once and return the results.

    The sweep the certification tests trace: with ``value`` defaulting to
    the rank index, runs ``bcast``, ``reduce``, ``allreduce``,
    ``gssum_naive``, ``gather``, ``allgather``, ``scatter``, ``alltoall``,
    ``barrier``, a ring ``sendrecv``, ``allreduce_rabenseifner``, and
    ``broadcast_tree``, returning a dict keyed by collective name.  Used with the causality race detector to certify
    that no collective relies on wildcard matching
    (``tests/test_causality_collectives.py``).
    """
    rank, n = ctx.rank, ctx.nranks
    if value is None:
        value = rank
    out = {}
    out["bcast"] = yield from bcast(ctx, value if rank == 0 else None, root=0)
    out["reduce"] = yield from reduce(ctx, value, root=0)
    out["allreduce"] = yield from allreduce(ctx, value)
    out["gssum_naive"] = yield from gssum_naive(ctx, value)
    out["gather"] = yield from gather(ctx, value, root=0)
    out["allgather"] = yield from allgather(ctx, value)
    out["scatter"] = yield from scatter(
        ctx, list(range(n)) if rank == 0 else None, root=0
    )
    out["alltoall"] = yield from alltoall(ctx, [(rank, dst) for dst in range(n)])
    yield from barrier(ctx)
    out["sendrecv"] = yield from sendrecv(ctx, (rank + 1) % n, value, (rank - 1) % n)
    vec = np.full(max(n, 2), float(rank))
    out["allreduce_rabenseifner"] = yield from allreduce_rabenseifner(ctx, vec)
    out["broadcast_tree"] = yield from broadcast_tree(
        ctx, value if rank == 0 else None, root=0
    )
    return out
