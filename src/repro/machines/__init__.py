"""Simulated parallel machines.

Two machine families back the reproduction:

* A deterministic discrete-event **MIMD message-passing simulator**
  (:mod:`~repro.machines.engine`, :mod:`~repro.machines.network`) with
  calibrated specs for the Intel Paragon, Cray T3D, and a workstation
  baseline (:mod:`~repro.machines.specs`), plus NX/PVM-style collectives
  (:mod:`~repro.machines.api`).
* A cycle-counting **SIMD processor-array model** of the MasPar MP-1/MP-2
  (:mod:`~repro.machines.simd`).

Rank programs run real NumPy computations through the MIMD engine; only
*time* is simulated, so parallel outputs validate against sequential
references exactly.
"""

from repro.machines.api import (
    allgather,
    allreduce,
    allreduce_rabenseifner,
    alltoall,
    barrier,
    bcast,
    broadcast_tree,
    exercise_collectives,
    get_allreduce,
    gather,
    gssum_naive,
    reduce,
    scatter,
    sendrecv,
)
from repro.machines.cpu import CpuModel
from repro.machines.engine import (
    ANY_SOURCE,
    ANY_TAG,
    Engine,
    Machine,
    RankBudget,
    RankContext,
    RunResult,
    payload_nbytes,
)
from repro.machines.faults import (
    CorruptedPayload,
    FaultConfig,
    FaultPlan,
    MessageFate,
    RecoveryOutcome,
    reliable_recv,
    reliable_send,
    run_with_recovery,
)
from repro.machines.microbench import (
    AlphaBeta,
    bisection_exchange,
    ping_pong,
    ring_bandwidth,
)
from repro.machines.partition import Partition, PartitionManager
from repro.machines.network import (
    ContentionNetwork,
    FullyConnected,
    Mesh2D,
    Topology,
    Torus3D,
)
from repro.machines.specs import (
    cooling_gradient_factors,
    paragon,
    row_major_placement,
    snake_placement,
    t3d,
    workstation,
)

__all__ = [
    "Engine",
    "Machine",
    "RankContext",
    "RankBudget",
    "RunResult",
    "ANY_SOURCE",
    "ANY_TAG",
    "payload_nbytes",
    "FaultPlan",
    "FaultConfig",
    "MessageFate",
    "CorruptedPayload",
    "reliable_send",
    "reliable_recv",
    "run_with_recovery",
    "RecoveryOutcome",
    "CpuModel",
    "Topology",
    "Mesh2D",
    "Torus3D",
    "FullyConnected",
    "ContentionNetwork",
    "paragon",
    "t3d",
    "workstation",
    "snake_placement",
    "row_major_placement",
    "cooling_gradient_factors",
    "AlphaBeta",
    "ping_pong",
    "ring_bandwidth",
    "bisection_exchange",
    "Partition",
    "PartitionManager",
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "allreduce_rabenseifner",
    "broadcast_tree",
    "get_allreduce",
    "gssum_naive",
    "gather",
    "allgather",
    "scatter",
    "alltoall",
    "sendrecv",
    "exercise_collectives",
]
