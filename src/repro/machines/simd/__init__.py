"""MasPar MP-1/MP-2 SIMD array model (cycle-accurate at the primitive
level: MAC, X-net shift, ACU broadcast, global-router transaction)."""

from repro.machines.simd.machine import MasParMachine, SimdStats
from repro.machines.simd.spec import MasParSpec, maspar_mp1, maspar_mp2
from repro.machines.simd.virtualization import CutAndStack, Hierarchical, Virtualization

__all__ = [
    "MasParMachine",
    "SimdStats",
    "MasParSpec",
    "maspar_mp1",
    "maspar_mp2",
    "Virtualization",
    "Hierarchical",
    "CutAndStack",
]
