"""MasPar MP-1 / MP-2 cycle-cost specifications.

The MasPar is a lockstep SIMD array: up to 16,384 PEs in a 128x128 grid,
an X-net mesh (with diagonal/toroidal links), a circuit-switched global
router shared one port per 4x4 PE cluster, and an ACU that broadcasts
instructions and scalars.  The model charges *cycles per primitive*:

* ``c_mac`` — one multiply-accumulate on every active PE,
* ``c_mem`` — one PE-local memory move (virtualized shifts that stay
  inside a PE's subimage are memory traffic, not X-net traffic),
* ``c_xnet_hop`` — one X-net hop for one element,
* ``c_bcast`` — ACU scalar broadcast,
* ``c_router_elem`` — per-element router transaction time (serialized
  ``cluster_size`` PEs to a port), plus ``c_router_setup`` per operation.

MP-1 PEs are 4-bit slices, so each 32-bit float op is microcoded over many
cycles; MP-2's 32-bit RISC PEs cut arithmetic cost by roughly an order of
magnitude while the network costs stay put — which is why the MP-2 spec
mostly scales ``c_mac``/``c_mem`` down.  Constants are calibrated so the
MP-2 16K row of Appendix A Table 1 lands at its measured 0.017 / 0.014 /
0.012 s for F8L1 / F4L2 / F2L4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["MasParSpec", "maspar_mp1", "maspar_mp2"]


@dataclass(frozen=True)
class MasParSpec:
    """Cycle costs and geometry of a MasPar-style SIMD array."""

    name: str
    pe_side: int = 128
    clock_hz: float = 12.5e6
    c_mac: float = 64.0
    c_mem: float = 32.0
    c_xnet_hop: float = 48.0
    c_bcast: float = 40.0
    c_router_elem: float = 16.0
    c_router_setup: float = 200.0
    cluster_size: int = 16

    def __post_init__(self) -> None:
        if self.pe_side < 1:
            raise ConfigurationError(f"pe_side must be >= 1, got {self.pe_side}")
        if self.clock_hz <= 0:
            raise ConfigurationError("clock_hz must be positive")

    @property
    def num_pes(self) -> int:
        """Total processing elements."""
        return self.pe_side * self.pe_side

    def seconds(self, cycles: float) -> float:
        """Convert a cycle count to virtual seconds."""
        return cycles / self.clock_hz


def maspar_mp2(pe_side: int = 128) -> MasParSpec:
    """MP-2 (32-bit RISC PEs).  Constants calibrated to Appendix A Table 1."""
    return MasParSpec(
        name=f"maspar-mp2-{pe_side * pe_side // 1024}k",
        pe_side=pe_side,
        clock_hz=12.5e6,
        c_mac=170.0,
        c_mem=90.0,
        c_xnet_hop=160.0,
        c_bcast=260.0,
        c_router_elem=69.0,
        c_router_setup=1670.0,
        cluster_size=16,
    )


def maspar_mp1(pe_side: int = 128) -> MasParSpec:
    """MP-1 (4-bit PEs): arithmetic ~8x slower, network unchanged."""
    base = maspar_mp2(pe_side)
    return MasParSpec(
        name=f"maspar-mp1-{pe_side * pe_side // 1024}k",
        pe_side=pe_side,
        clock_hz=base.clock_hz,
        c_mac=base.c_mac * 8.0,
        c_mem=base.c_mem * 3.0,
        c_xnet_hop=base.c_xnet_hop,
        c_bcast=base.c_bcast,
        c_router_elem=base.c_router_elem,
        c_router_setup=base.c_router_setup,
        cluster_size=base.cluster_size,
    )
