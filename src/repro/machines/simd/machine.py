"""The MasPar-style SIMD array machine.

Operations execute the real computation on NumPy arrays representing the
*logical* PE grid (one logical PE per pixel) while charging cycles
according to the physical spec and the active virtualization scheme.
Because the array marches in lockstep, cost depends only on geometry
(active element count, shift distance, router traffic) — never on data
values — so charging costs alongside exact NumPy arithmetic is faithful.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.machines.simd.spec import MasParSpec
from repro.machines.simd.virtualization import CutAndStack, Hierarchical, Virtualization

__all__ = ["MasParMachine", "SimdStats"]


class SimdStats:
    """Cycle breakdown of one SIMD run."""

    def __init__(self) -> None:
        self.mac_cycles = 0.0
        self.shift_cycles = 0.0
        self.broadcast_cycles = 0.0
        self.router_cycles = 0.0

    @property
    def total_cycles(self) -> float:
        """All cycles charged."""
        return (
            self.mac_cycles
            + self.shift_cycles
            + self.broadcast_cycles
            + self.router_cycles
        )

    def fractions(self) -> dict:
        """Share of cycles per primitive category."""
        total = self.total_cycles
        if total <= 0:
            return {"mac": 0.0, "shift": 0.0, "broadcast": 0.0, "router": 0.0}
        return {
            "mac": self.mac_cycles / total,
            "shift": self.shift_cycles / total,
            "broadcast": self.broadcast_cycles / total,
            "router": self.router_cycles / total,
        }


class MasParMachine:
    """A MasPar array executing logical-grid operations with cycle costs.

    Parameters
    ----------
    spec:
        Physical array spec (:func:`~repro.machines.simd.spec.maspar_mp2`
        etc.).
    virtualization:
        ``"hierarchical"`` or ``"cut_and_stack"``.
    """

    def __init__(self, spec: MasParSpec, virtualization: str = "hierarchical") -> None:
        self.spec = spec
        if virtualization == "hierarchical":
            self.virt: Virtualization = Hierarchical(spec)
        elif virtualization == "cut_and_stack":
            self.virt = CutAndStack(spec)
        else:
            raise ConfigurationError(
                f"unknown virtualization {virtualization!r}; "
                "use 'hierarchical' or 'cut_and_stack'"
            )
        self.virtualization = virtualization
        self.stats = SimdStats()

    @property
    def elapsed_s(self) -> float:
        """Virtual seconds consumed so far."""
        return self.spec.seconds(self.stats.total_cycles)

    def reset(self) -> None:
        """Zero the cycle counters."""
        self.stats = SimdStats()

    # -- primitives ---------------------------------------------------------

    def broadcast(self, scalar: float) -> float:
        """ACU scalar broadcast to every PE."""
        self.stats.broadcast_cycles += self.virt.broadcast_cycles()
        return float(scalar)

    def mac(self, acc: np.ndarray, data: np.ndarray, coeff: float) -> None:
        """In-place multiply-accumulate ``acc += coeff * data`` on all PEs."""
        if acc.shape != data.shape:
            raise ConfigurationError(
                f"mac operand shapes differ: {acc.shape} vs {data.shape}"
            )
        self.stats.mac_cycles += self.virt.mac_cycles(acc.size)
        acc += coeff * data

    def shift(self, data: np.ndarray, distance: int, axis: int) -> np.ndarray:
        """Logical toroidal shift moving each element ``distance`` positions
        toward lower indices along ``axis`` (the systolic 'shift left')."""
        self.stats.shift_cycles += self.virt.shift_cycles(data.size, abs(distance))
        return np.roll(data, -distance, axis=axis)

    def router_decimate(self, data: np.ndarray, axis: int) -> np.ndarray:
        """Keep every second element along ``axis``, compacting through the
        global router (the systolic algorithm's decimation step)."""
        moved = data.size // 2
        self.stats.router_cycles += self.virt.router_cycles(moved)
        slicer = [slice(None)] * data.ndim
        slicer[axis] = slice(0, None, 2)
        return np.ascontiguousarray(data[tuple(slicer)])
