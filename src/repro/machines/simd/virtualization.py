"""PE-array virtualization schemes.

A 512x512 image on a 128x128 PE array needs each physical PE to stand in
for 16 logical PEs.  Section 4.1 evaluates two ways to fold the image:

* **Cut-and-stack** — the image is cut into PE-array-sized tiles and
  stacked as layers; logical neighbors in different layers sit in the
  *same relative position* of different tiles, so every logical shift by
  ``d`` pixels is a physical X-net shift by ``d`` applied to every layer.
* **Hierarchical** — each PE owns a contiguous ``s x s`` subimage; a
  logical shift by ``d < s`` keeps most elements inside their PE (a local
  memory move) and only a ``d/s`` fraction crosses to the neighbor PE.

The paper reports the hierarchical scheme "gave the best results since it
improves data locality" — the cost methods below are exactly that effect.

Costs are computed from the number of *active logical elements* of the
operand (idle PEs still march in lockstep, so the layer count never drops
below one).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.machines.simd.spec import MasParSpec

__all__ = ["Virtualization", "Hierarchical", "CutAndStack"]


@dataclass(frozen=True)
class Virtualization:
    """Base: maps logical operand geometry onto the physical PE array."""

    spec: MasParSpec

    def layers(self, active_elements: int) -> int:
        """Logical elements per PE (>= 1: the array runs lockstep even when
        most PEs are idle)."""
        return max(1, math.ceil(active_elements / self.spec.num_pes))

    def mac_cycles(self, active_elements: int) -> float:
        """One multiply-accumulate across the active logical elements."""
        return self.layers(active_elements) * self.spec.c_mac

    def shift_cycles(self, active_elements: int, distance: int) -> float:
        """One logical shift of the active elements by ``distance`` pixels."""
        raise NotImplementedError

    def broadcast_cycles(self) -> float:
        """ACU scalar broadcast (virtualization-independent)."""
        return self.spec.c_bcast

    def router_cycles(self, moved_elements: int) -> float:
        """Global-router permutation of ``moved_elements`` logical elements.

        Each 4x4 cluster shares a serial router port, so per-PE traffic is
        serialized ``cluster_size``-fold.
        """
        per_pe = moved_elements / self.spec.num_pes
        serialized = per_pe * self.spec.cluster_size
        return self.spec.c_router_setup + serialized * self.spec.c_router_elem


@dataclass(frozen=True)
class Hierarchical(Virtualization):
    """Each PE owns a contiguous subimage (the locality-preserving scheme)."""

    def shift_cycles(self, active_elements: int, distance: int) -> float:
        if distance == 0:
            return 0.0
        v = self.layers(active_elements)
        subimage_side = max(1, int(math.isqrt(v)))
        crossing_fraction = min(1.0, distance / subimage_side)
        hops = max(1, distance // subimage_side)
        local = v * self.spec.c_mem
        xnet = v * crossing_fraction * hops * self.spec.c_xnet_hop
        return local + xnet


@dataclass(frozen=True)
class CutAndStack(Virtualization):
    """Tile-stacking scheme: every logical shift is a physical X-net shift
    of every layer (no locality)."""

    def shift_cycles(self, active_elements: int, distance: int) -> float:
        if distance == 0:
            return 0.0
        v = self.layers(active_elements)
        return v * (self.spec.c_mem + distance * self.spec.c_xnet_hop)
