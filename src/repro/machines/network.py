"""Interconnection-network models with contention.

The Paragon experiments in Section 5.1 hinge on one network phenomenon:
under dimension-ordered (X-then-Y) routing, the "straightforward" stripe
placement makes logical neighbors at row boundaries communicate across an
entire mesh row, and those long paths collide with the single-hop neighbor
traffic inside the row.  The snake placement removes the collisions by
keeping every logical neighbor at physical distance one.

The model here reproduces that mechanism:

* Topologies expose ``route(src, dst)`` returning the ordered physical
  channels a message occupies.  Channels are *undirected* (a half-duplex
  shared physical channel), which is what makes opposing neighbor traffic
  collide with row-crossing messages.
* A message reserves its whole path for its full transfer duration
  (a conservative wormhole approximation: a blocked head blocks the whole
  worm).  Per-channel ``free_at`` bookkeeping turns simultaneous path
  overlaps into serialization delays.

Transfer time for an ``n``-byte message over ``h`` hops:

    ``latency + h * per_hop + n / bandwidth``   (+ any wait for busy channels)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CommunicationError, ConfigurationError

__all__ = ["Topology", "Mesh2D", "Torus3D", "FullyConnected", "ContentionNetwork"]


def _canonical(a: tuple, b: tuple) -> tuple:
    """Canonical undirected channel key between two node coordinates."""
    return (a, b) if a <= b else (b, a)


class Topology:
    """Abstract interconnect topology.

    Subclasses define the node coordinate space and the deterministic route
    (an ordered channel list) between any two nodes.
    """

    num_nodes: int

    def coord(self, node: int) -> tuple:
        """Coordinate tuple of a node index."""
        raise NotImplementedError

    def route(self, src: int, dst: int) -> list:
        """Ordered list of undirected channel keys from ``src`` to ``dst``."""
        raise NotImplementedError

    def hops(self, src: int, dst: int) -> int:
        """Path length in channels."""
        return len(self.route(src, dst))

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise CommunicationError(
                f"node {node} out of range for {self.num_nodes}-node topology"
            )


class Mesh2D(Topology):
    """2-D mesh with dimension-ordered X-then-Y routing (the Paragon's
    16x4 compute mesh; we follow Figure 4 and treat it as ``width`` columns
    by ``height`` rows).

    With ``torus=True``, each dimension wraps and routes take the shorter
    direction (used to approximate richer meshes; the Paragon itself is a
    plain mesh).
    """

    def __init__(self, width: int, height: int, *, torus: bool = False) -> None:
        if width < 1 or height < 1:
            raise ConfigurationError(f"mesh dims must be >= 1, got {width}x{height}")
        self.width = width
        self.height = height
        self.torus = torus
        self.num_nodes = width * height

    def coord(self, node: int) -> tuple:
        self._check_node(node)
        return (node % self.width, node // self.width)

    def node_at(self, x: int, y: int) -> int:
        """Node index at mesh coordinate ``(x, y)``."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise CommunicationError(f"coordinate {(x, y)} outside {self.width}x{self.height} mesh")
        return y * self.width + x

    def _steps(self, start: int, end: int, extent: int) -> list:
        """1-D dimension walk from start to end, honoring torus wrap."""
        if start == end:
            return []
        if not self.torus:
            step = 1 if end > start else -1
            return list(range(start, end, step))
        forward = (end - start) % extent
        backward = (start - end) % extent
        if forward <= backward:
            return [(start + i) % extent for i in range(forward)]
        return [(start - i) % extent for i in range(backward)]

    def route(self, src: int, dst: int) -> list:
        sx, sy = self.coord(src)
        dx, dy = self.coord(dst)
        channels = []
        # X dimension first (the behavior Section 5.1 blames for conflicts).
        xs = self._steps(sx, dx, self.width)
        for i, x in enumerate(xs):
            nxt = xs[i + 1] if i + 1 < len(xs) else dx
            channels.append(_canonical((x, sy), (nxt, sy)))
        ys = self._steps(sy, dy, self.height)
        for i, y in enumerate(ys):
            nxt = ys[i + 1] if i + 1 < len(ys) else dy
            channels.append(_canonical((dx, y), (dx, nxt)))
        return channels


class Torus3D(Topology):
    """3-D bidirectional torus with dimension-ordered routing (Cray T3D)."""

    def __init__(self, nx: int, ny: int, nz: int) -> None:
        if min(nx, ny, nz) < 1:
            raise ConfigurationError(f"torus dims must be >= 1, got {(nx, ny, nz)}")
        self.nx, self.ny, self.nz = nx, ny, nz
        self.num_nodes = nx * ny * nz

    def coord(self, node: int) -> tuple:
        self._check_node(node)
        x = node % self.nx
        y = (node // self.nx) % self.ny
        z = node // (self.nx * self.ny)
        return (x, y, z)

    @staticmethod
    def _walk(start: int, end: int, extent: int) -> list:
        if start == end:
            return []
        forward = (end - start) % extent
        backward = (start - end) % extent
        if forward <= backward:
            return [(start + i) % extent for i in range(forward + 1)]
        return [(start - i) % extent for i in range(backward + 1)]

    def route(self, src: int, dst: int) -> list:
        sx, sy, sz = self.coord(src)
        dx, dy, dz = self.coord(dst)
        channels = []
        walk = self._walk(sx, dx, self.nx)
        for a, b in zip(walk, walk[1:]):
            channels.append(_canonical((a, sy, sz), (b, sy, sz)))
        walk = self._walk(sy, dy, self.ny)
        for a, b in zip(walk, walk[1:]):
            channels.append(_canonical((dx, a, sz), (dx, b, sz)))
        walk = self._walk(sz, dz, self.nz)
        for a, b in zip(walk, walk[1:]):
            channels.append(_canonical((dx, dy, a), (dx, dy, b)))
        return channels


class FullyConnected(Topology):
    """Idealized crossbar: every node pair has a private channel.

    Used for single-node "machines" (the workstation baseline) and as a
    no-contention control in tests.
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 1:
            raise ConfigurationError(f"num_nodes must be >= 1, got {num_nodes}")
        self.num_nodes = num_nodes

    def coord(self, node: int) -> tuple:
        self._check_node(node)
        return (node,)

    def route(self, src: int, dst: int) -> list:
        self._check_node(src)
        self._check_node(dst)
        if src == dst:
            return []
        return [_canonical((src,), (dst,))]


@dataclass
class ContentionNetwork:
    """Virtual-time network state: per-channel busy intervals plus the
    latency/bandwidth cost model.

    Parameters
    ----------
    topology:
        Where messages route.
    latency_s:
        Fixed per-message network latency (hardware setup).
    per_hop_s:
        Additional latency per channel traversed.
    bytes_per_s:
        Channel bandwidth.
    local_bytes_per_s:
        Memory-copy bandwidth for self-sends (src == dst), which never
        touch the network.
    """

    topology: Topology
    latency_s: float = 50e-6
    per_hop_s: float = 1e-6
    bytes_per_s: float = 40e6
    local_bytes_per_s: float = 400e6
    #: Optional fault-injection hook installed by the engine for the
    #: duration of a run: ``(src_node, dst_node, t_start) -> factor >= 1``
    #: scaling a transfer's duration (transient link degradation).
    link_slowdown: object = field(default=None, repr=False)

    _free_at: dict = field(default_factory=dict, repr=False)
    messages_sent: int = field(default=0, repr=False)
    bytes_sent: int = field(default=0, repr=False)
    total_contention_s: float = field(default=0.0, repr=False)

    def reset(self) -> None:
        """Clear all channel state and counters."""
        self._free_at.clear()
        self.messages_sent = 0
        self.bytes_sent = 0
        self.total_contention_s = 0.0

    def transfer(self, src: int, dst: int, nbytes: int, t_inject: float) -> float:
        """Reserve the path for a message and return its delivery time.

        The message waits until every channel on its path is free, then
        occupies all of them for ``hops*per_hop + nbytes/bandwidth``.
        """
        if nbytes < 0:
            raise CommunicationError(f"message size must be >= 0, got {nbytes}")
        self.messages_sent += 1
        self.bytes_sent += nbytes
        if src == dst:
            return t_inject + nbytes / self.local_bytes_per_s

        path = self.topology.route(src, dst)
        t_start = t_inject
        for channel in path:
            t_start = max(t_start, self._free_at.get(channel, 0.0))
        self.total_contention_s += t_start - t_inject
        duration = self.latency_s + len(path) * self.per_hop_s + nbytes / self.bytes_per_s
        if self.link_slowdown is not None:
            duration *= self.link_slowdown(src, dst, t_start)
        t_end = t_start + duration
        for channel in path:
            self._free_at[channel] = t_end
        return t_end
