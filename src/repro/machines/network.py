"""Interconnection-network models with contention.

The Paragon experiments in Section 5.1 hinge on one network phenomenon:
under dimension-ordered (X-then-Y) routing, the "straightforward" stripe
placement makes logical neighbors at row boundaries communicate across an
entire mesh row, and those long paths collide with the single-hop neighbor
traffic inside the row.  The snake placement removes the collisions by
keeping every logical neighbor at physical distance one.

The model here reproduces that mechanism:

* Topologies expose ``route(src, dst)`` returning the ordered physical
  channels a message occupies.  Channels are *undirected* (a half-duplex
  shared physical channel), which is what makes opposing neighbor traffic
  collide with row-crossing messages.
* A message reserves its whole path for its full transfer duration
  (a conservative wormhole approximation: a blocked head blocks the whole
  worm).  Per-channel ``free_at`` bookkeeping turns simultaneous path
  overlaps into serialization delays.

Transfer time for an ``n``-byte message over ``h`` hops:

    ``latency + h * per_hop + n / bandwidth``   (+ any wait for busy channels)
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.errors import CommunicationError, ConfigurationError

__all__ = ["Topology", "Mesh2D", "Torus3D", "FullyConnected", "ContentionNetwork"]

#: Bound on memoized entries so adversarial traffic patterns cannot grow
#: the caches without limit (LRU eviction).  The route cache stores tuples
#: of channel tuples — heavy in small GC-tracked objects — so its bound is
#: deliberately tight: hot pairs survive via LRU promotion while one-shot
#: routes (butterfly exchange partners at 4k ranks) cycle out instead of
#: bloating every generation-2 GC pass.  The path cache stores one compact
#: numpy array per pair and can afford a much larger bound.
_ROUTE_CACHE_MAX = 8192
_PATH_CACHE_MAX = 131072

#: Paths at or below this hop count use a scalar free-time walk; longer
#: paths (row-crossing routes on big meshes) get the vectorized numpy
#: gather/max/scatter, which only pays off once the per-call overhead is
#: amortized over many channels.
_VECTOR_HOPS = 12


def _canonical(a: tuple, b: tuple) -> tuple:
    """Canonical undirected channel key between two node coordinates."""
    return (a, b) if a <= b else (b, a)


class Topology:
    """Abstract interconnect topology.

    Subclasses define the node coordinate space and the deterministic route
    (an ordered channel list) between any two nodes.
    """

    num_nodes: int

    def coord(self, node: int) -> tuple:
        """Coordinate tuple of a node index."""
        raise NotImplementedError

    def route(self, src: int, dst: int) -> list:
        """Ordered list of undirected channel keys from ``src`` to ``dst``."""
        raise NotImplementedError

    def route_cached(self, src: int, dst: int) -> tuple:
        """Memoized :meth:`route` (routes are pure functions of the node
        pair, so the LRU-bounded cache is exact).  Returns the path as an
        immutable tuple; hit/miss counters are surfaced in engine stats.
        """
        cache = getattr(self, "_route_cache", None)
        if cache is None:
            cache = self._route_cache = OrderedDict()
            self.route_cache_hits = 0
            self.route_cache_misses = 0
        key = (src, dst)
        path = cache.get(key)
        if path is not None:
            self.route_cache_hits += 1
            cache.move_to_end(key)
            return path
        self.route_cache_misses += 1
        path = tuple(self.route(src, dst))
        cache[key] = path
        if len(cache) > _ROUTE_CACHE_MAX:
            cache.popitem(last=False)
        return path

    def route_cache_stats(self) -> tuple:
        """``(hits, misses)`` of the route cache (zeros if never used)."""
        return (
            getattr(self, "route_cache_hits", 0),
            getattr(self, "route_cache_misses", 0),
        )

    def reset_route_cache_stats(self) -> None:
        """Zero the hit/miss counters (cached routes stay valid)."""
        if getattr(self, "_route_cache", None) is not None:
            self.route_cache_hits = 0
            self.route_cache_misses = 0

    def hops(self, src: int, dst: int) -> int:
        """Path length in channels."""
        return len(self.route_cached(src, dst))

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise CommunicationError(
                f"node {node} out of range for {self.num_nodes}-node topology"
            )


class Mesh2D(Topology):
    """2-D mesh with dimension-ordered X-then-Y routing (the Paragon's
    16x4 compute mesh; we follow Figure 4 and treat it as ``width`` columns
    by ``height`` rows).

    With ``torus=True``, each dimension wraps and routes take the shorter
    direction (used to approximate richer meshes; the Paragon itself is a
    plain mesh).
    """

    def __init__(self, width: int, height: int, *, torus: bool = False) -> None:
        if width < 1 or height < 1:
            raise ConfigurationError(f"mesh dims must be >= 1, got {width}x{height}")
        self.width = width
        self.height = height
        self.torus = torus
        self.num_nodes = width * height

    def coord(self, node: int) -> tuple:
        self._check_node(node)
        return (node % self.width, node // self.width)

    def node_at(self, x: int, y: int) -> int:
        """Node index at mesh coordinate ``(x, y)``."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise CommunicationError(f"coordinate {(x, y)} outside {self.width}x{self.height} mesh")
        return y * self.width + x

    def _steps(self, start: int, end: int, extent: int) -> list:
        """1-D dimension walk from start to end, honoring torus wrap."""
        if start == end:
            return []
        if not self.torus:
            step = 1 if end > start else -1
            return list(range(start, end, step))
        forward = (end - start) % extent
        backward = (start - end) % extent
        if forward <= backward:
            return [(start + i) % extent for i in range(forward)]
        return [(start - i) % extent for i in range(backward)]

    def route(self, src: int, dst: int) -> list:
        sx, sy = self.coord(src)
        dx, dy = self.coord(dst)
        channels = []
        # X dimension first (the behavior Section 5.1 blames for conflicts).
        xs = self._steps(sx, dx, self.width)
        for i, x in enumerate(xs):
            nxt = xs[i + 1] if i + 1 < len(xs) else dx
            channels.append(_canonical((x, sy), (nxt, sy)))
        ys = self._steps(sy, dy, self.height)
        for i, y in enumerate(ys):
            nxt = ys[i + 1] if i + 1 < len(ys) else dy
            channels.append(_canonical((dx, y), (dx, nxt)))
        return channels


class Torus3D(Topology):
    """3-D bidirectional torus with dimension-ordered routing (Cray T3D)."""

    def __init__(self, nx: int, ny: int, nz: int) -> None:
        if min(nx, ny, nz) < 1:
            raise ConfigurationError(f"torus dims must be >= 1, got {(nx, ny, nz)}")
        self.nx, self.ny, self.nz = nx, ny, nz
        self.num_nodes = nx * ny * nz

    def coord(self, node: int) -> tuple:
        self._check_node(node)
        x = node % self.nx
        y = (node // self.nx) % self.ny
        z = node // (self.nx * self.ny)
        return (x, y, z)

    @staticmethod
    def _walk(start: int, end: int, extent: int) -> list:
        if start == end:
            return []
        forward = (end - start) % extent
        backward = (start - end) % extent
        if forward <= backward:
            return [(start + i) % extent for i in range(forward + 1)]
        return [(start - i) % extent for i in range(backward + 1)]

    def route(self, src: int, dst: int) -> list:
        sx, sy, sz = self.coord(src)
        dx, dy, dz = self.coord(dst)
        channels = []
        walk = self._walk(sx, dx, self.nx)
        for a, b in zip(walk, walk[1:]):
            channels.append(_canonical((a, sy, sz), (b, sy, sz)))
        walk = self._walk(sy, dy, self.ny)
        for a, b in zip(walk, walk[1:]):
            channels.append(_canonical((dx, a, sz), (dx, b, sz)))
        walk = self._walk(sz, dz, self.nz)
        for a, b in zip(walk, walk[1:]):
            channels.append(_canonical((dx, dy, a), (dx, dy, b)))
        return channels


class FullyConnected(Topology):
    """Idealized crossbar: every node pair has a private channel.

    Used for single-node "machines" (the workstation baseline) and as a
    no-contention control in tests.
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 1:
            raise ConfigurationError(f"num_nodes must be >= 1, got {num_nodes}")
        self.num_nodes = num_nodes

    def coord(self, node: int) -> tuple:
        self._check_node(node)
        return (node,)

    def route(self, src: int, dst: int) -> list:
        self._check_node(src)
        self._check_node(dst)
        if src == dst:
            return []
        return [_canonical((src,), (dst,))]


@dataclass
class ContentionNetwork:
    """Virtual-time network state: per-channel busy intervals plus the
    latency/bandwidth cost model.

    Parameters
    ----------
    topology:
        Where messages route.
    latency_s:
        Fixed per-message network latency (hardware setup).
    per_hop_s:
        Additional latency per channel traversed.
    bytes_per_s:
        Channel bandwidth.
    local_bytes_per_s:
        Memory-copy bandwidth for self-sends (src == dst), which never
        touch the network.
    """

    topology: Topology
    latency_s: float = 50e-6
    per_hop_s: float = 1e-6
    bytes_per_s: float = 40e6
    local_bytes_per_s: float = 400e6
    #: Optional fault-injection hook installed by the engine for the
    #: duration of a run: ``(src_node, dst_node, t_start) -> factor >= 1``
    #: scaling a transfer's duration (transient link degradation).
    link_slowdown: object = field(default=None, repr=False)

    _free_at: dict = field(default_factory=dict, repr=False)
    messages_sent: int = field(default=0, repr=False)
    bytes_sent: int = field(default=0, repr=False)
    total_contention_s: float = field(default=0.0, repr=False)
    #: ``True`` (default) uses the vectorized fast path: interned channel
    #: ids, per-(src, dst) precomputed path-id arrays, and a NumPy
    #: free-time vector.  ``False`` keeps the original per-channel dict
    #: walk (the benchmark baseline).  Both are bitwise-identical:
    #: ``max`` over floats returns one of its operands exactly, and the
    #: duration arithmetic stays pure Python either way.
    use_path_cache: bool = field(default=True, repr=False)
    _chan_ids: dict = field(default_factory=dict, repr=False, compare=False)
    _paths: OrderedDict = field(
        default_factory=OrderedDict, repr=False, compare=False
    )
    _free_times: object = field(
        default_factory=lambda: np.zeros(64), repr=False, compare=False
    )
    _seen_pairs: set = field(default_factory=set, repr=False, compare=False)
    path_cache_hits: int = field(default=0, repr=False, compare=False)
    path_cache_misses: int = field(default=0, repr=False, compare=False)

    def reset(self) -> None:
        """Clear all channel busy state and traffic counters.

        Static route knowledge (interned channel ids, cached path arrays,
        the topology's route cache) survives: it is a pure function of the
        topology, so successive runs on one machine reuse it.
        """
        self._free_at.clear()
        self._free_times[:] = 0.0
        self.messages_sent = 0
        self.bytes_sent = 0
        self.total_contention_s = 0.0
        self.path_cache_hits = 0
        self.path_cache_misses = 0
        self.topology.reset_route_cache_stats()

    def _path_ids(self, src: int, dst: int):
        """Interned-channel-id ``np.intp`` array for the ``src -> dst``
        route, cached per node pair (LRU-bounded).

        The array is the cache's only per-pair payload on purpose: numpy
        arrays hold their ints as raw memory the garbage collector never
        traverses, whereas caching Python lists/tuples of channel tuples
        for tens of thousands of pairs puts millions of small objects on
        every generation-2 GC pass and measurably slows the whole
        simulation (observed at 4096 ranks)."""
        key = (src << 32) | dst
        paths = self._paths
        ids = paths.get(key)
        if ids is not None:
            self.path_cache_hits += 1
            paths.move_to_end(key)
            return ids
        self.path_cache_misses += 1
        seen = self._seen_pairs
        repeat = key in seen
        if repeat:
            # Second sighting: the pair is hot, retain its route and ids.
            route = self.topology.route_cached(src, dst)
        else:
            # First sighting: butterfly exchanges at 4k ranks produce tens
            # of thousands of pairs used exactly once; retaining a route
            # tuple + id array for each would push millions of objects
            # into generation 2 and slow every GC pass.  Compute the route
            # transiently and remember only a packed int (GC-untracked).
            seen.add(key)
            route = self.topology.route(src, dst)
        chan_ids = self._chan_ids
        id_list = []
        for channel in route:
            cid = chan_ids.get(channel)
            if cid is None:
                cid = len(chan_ids)
                chan_ids[channel] = cid
            id_list.append(cid)
        if len(chan_ids) > self._free_times.shape[0]:
            grown = np.zeros(max(len(chan_ids), 2 * self._free_times.shape[0]))
            grown[: self._free_times.shape[0]] = self._free_times
            self._free_times = grown
        if repeat:
            # Long hot paths cache an intp array (vectorized walk); short
            # ones cache the plain int list (scalar reads beat numpy's
            # fancy-indexing overhead below _VECTOR_HOPS).
            ids = (
                np.array(id_list, dtype=np.intp)
                if len(id_list) > _VECTOR_HOPS
                else id_list
            )
            paths[key] = ids
            if len(paths) > _PATH_CACHE_MAX:
                paths.popitem(last=False)
            return ids
        return id_list

    def transfer(self, src: int, dst: int, nbytes: int, t_inject: float) -> float:
        """Reserve the path for a message and return its delivery time.

        The message waits until every channel on its path is free, then
        occupies all of them for ``hops*per_hop + nbytes/bandwidth``.
        """
        if nbytes < 0:
            raise CommunicationError(f"message size must be >= 0, got {nbytes}")
        self.messages_sent += 1
        self.bytes_sent += nbytes
        if src == dst:
            return t_inject + nbytes / self.local_bytes_per_s
        if not self.use_path_cache:
            return self._transfer_uncached(src, dst, nbytes, t_inject)

        ids = self._path_ids(src, dst)
        free = self._free_times
        t_start = t_inject
        if type(ids) is list:
            # Scalar walk (short or one-shot path): plain int indexing into
            # the numpy store.  float() wraps the read so virtual clocks
            # stay pure Python floats (digest-stable reprs).
            hops = len(ids)
            for cid in ids:
                busy = free[cid]
                if busy > t_start:
                    t_start = float(busy)
        else:
            # Cached long row-crossing path: one vectorized gather + max.
            # float() returns the stored operand exactly, so the math
            # matches the scalar walk bit for bit.
            hops = ids.shape[0]
            busy = float(free[ids].max())
            if busy > t_start:
                t_start = busy
        self.total_contention_s += t_start - t_inject
        duration = self.latency_s + hops * self.per_hop_s + nbytes / self.bytes_per_s
        if self.link_slowdown is not None:
            duration *= self.link_slowdown(src, dst, t_start)
        t_end = t_start + duration
        if type(ids) is list:
            for cid in ids:
                free[cid] = t_end
        else:
            free[ids] = t_end
        return t_end

    def _transfer_uncached(
        self, src: int, dst: int, nbytes: int, t_inject: float
    ) -> float:
        """Original per-channel dict walk, kept as the benchmark baseline
        (``use_path_cache=False``) and scalar reference."""
        path = self.topology.route(src, dst)
        t_start = t_inject
        for channel in path:
            t_start = max(t_start, self._free_at.get(channel, 0.0))
        self.total_contention_s += t_start - t_inject
        duration = self.latency_s + len(path) * self.per_hop_s + nbytes / self.bytes_per_s
        if self.link_slowdown is not None:
            duration *= self.link_slowdown(src, dst, t_start)
        t_end = t_start + duration
        for channel in path:
            self._free_at[channel] = t_end
        return t_end
