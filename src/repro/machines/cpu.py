"""Per-node CPU and memory cost model.

Virtual compute time is charged from operation counts (floating-point,
integer, memory ops) against per-category sustained rates.  Appendix B's
instruction-mix observations motivate the split: the N-body code is ~60%
integer (tree manipulation) and sped up ~10x moving from the i860 to the
Alpha, while the memory-bound PIC barely improved — per-category rates are
what let one machine spec reproduce both behaviors.

The model also includes the report's paging effect (Appendix B Figure 9):
when a rank's resident set exceeds node memory, compute time is inflated
by a super-linear slowdown, which is precisely what produced the paper's
"superlinear speedup" once partitioning dropped per-node data below the
memory ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.wavelet.cost import OpCount

__all__ = ["CpuModel"]


@dataclass(frozen=True)
class CpuModel:
    """Sustained per-category operation rates of one compute node.

    Parameters
    ----------
    flops_per_s, intops_per_s, memops_per_s:
        Sustained rates (ops/second) for floating-point, integer, and
        memory operations respectively.
    memory_bytes:
        Physical memory available to a user process on one node.
    paging_alpha, paging_beta:
        Paging slowdown parameters: when the resident set is ``r`` times
        node memory (r > 1), compute time is multiplied by
        ``1 + paging_alpha * (r - 1) ** paging_beta``.
    """

    flops_per_s: float
    intops_per_s: float
    memops_per_s: float
    memory_bytes: float = 32e6
    paging_alpha: float = 12.0
    paging_beta: float = 1.5

    def __post_init__(self) -> None:
        for name in ("flops_per_s", "intops_per_s", "memops_per_s", "memory_bytes"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    def seconds_for(self, ops: OpCount, resident_bytes: float = 0.0) -> float:
        """Virtual seconds to execute ``ops`` with the given resident set."""
        base = (
            ops.flops / self.flops_per_s
            + ops.intops / self.intops_per_s
            + ops.memops / self.memops_per_s
        )
        return base * self.paging_factor(resident_bytes)

    def paging_factor(self, resident_bytes: float) -> float:
        """Compute-time multiplier for a given resident-set size."""
        if resident_bytes <= self.memory_bytes:
            return 1.0
        overflow = resident_bytes / self.memory_bytes - 1.0
        return 1.0 + self.paging_alpha * overflow**self.paging_beta
